"""ABL-T — truncation parameter and stopping-condition ablation (§4).

Measures (a) how the iteration count of the condition-sensitive
algorithm responds to the starting truncation parameter, and (b) the
relative cost of the two sufficient stopping conditions. The paper's
choice (start at r = 2, square each round, AddTwo-form condition) is
the reference point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import scaled
from repro.data import generate
from repro.pram import condition_sensitive_sum

N = scaled(1024)


def _hard_input():
    return generate("sumzero", N, delta=1000, seed=17)


@pytest.mark.parametrize("initial_r", [2, 4, 16])
def test_truncation_initial_r(benchmark, initial_r):
    x = _hard_input()
    benchmark.group = "ablation-truncation-r0"
    res = benchmark(condition_sensitive_sum, x, initial_r=initial_r)
    # larger starting r reaches the stopping condition in fewer rounds
    assert len(res.iterations) <= 6


@pytest.mark.parametrize("condition", ["addtwo", "exponent"])
def test_truncation_stopping_condition(benchmark, condition):
    x = _hard_input()
    benchmark.group = "ablation-truncation-cond"
    res = benchmark(condition_sensitive_sum, x, condition=condition)
    assert res.value == 0.0


def test_truncation_iterations_shrink_with_r0(benchmark):
    benchmark.group = "ablation-truncation-r0"
    x = _hard_input()

    def measure():
        return [
            len(condition_sensitive_sum(x, initial_r=r0).iterations)
            for r0 in (2, 16)
        ]

    iters_small, iters_big = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert iters_big <= iters_small
