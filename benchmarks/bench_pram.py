"""THM2/THM4 — PRAM time/work counters versus the theorems' bounds.

Theorem 2 claims O(log n) time (O(log^2 n) in this level-by-level
simulation) and O(n log n) work; Theorem 4 claims condition-sensitive
work O(n log C(X)) with O(log log log C(X)) iterations. The benches
time the simulations and assert the counter scaling so a regression in
either the algorithm or the accounting fails loudly.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import dataset, scaled
from repro.data import generate
from repro.pram import condition_sensitive_sum, pram_exact_sum

SIZES = [scaled(256), scaled(1024), scaled(4096)]


@pytest.mark.parametrize("n", SIZES)
def test_thm2_fast_pram_sum(benchmark, n):
    x = dataset("random", n, 300)
    benchmark.group = "thm2-pram"
    res = benchmark(pram_exact_sum, x)
    logn = math.log2(max(n, 2))
    # polylog rounds, O(n log n) work (generous constants)
    assert res.stats.rounds <= 6 * logn * logn
    assert res.stats.work <= 12 * n * logn


def test_thm2_work_is_superlinear_sublog2(benchmark):
    benchmark.group = "thm2-pram"

    def measure():
        w = []
        for n in (512, 4096):
            w.append(pram_exact_sum(dataset("random", n, 300)).stats.work)
        return w

    w512, w4096 = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = w4096 / w512
    assert 6 <= ratio <= 16  # 8x elements, ~n log n growth


@pytest.mark.parametrize("n", [1024, 4096])
def test_thm2_cole_vs_level_rounds(benchmark, n):
    """The cascading ingredient: pipelined sort rounds are O(log n),
    level-by-level rounds O(log^2 n) — measured side by side."""
    from repro.pram import PRAM, cole_merge_sort, parallel_merge_sort

    keys = dataset("random", n, 300)
    benchmark.group = "thm2-sort-rounds"

    def measure():
        m_cole = PRAM()
        cole_merge_sort(m_cole, keys, check_cover=False)
        m_level = PRAM()
        parallel_merge_sort(m_level, keys)
        return m_cole.stats.rounds, m_level.stats.rounds

    cole_rounds, level_rounds = benchmark.pedantic(measure, rounds=1, iterations=1)
    logn = math.ceil(math.log2(n))
    assert cole_rounds <= 4 * logn + 6
    assert cole_rounds < level_rounds


@pytest.mark.parametrize("cond_kind", ["mild", "harsh"])
def test_thm4_condition_sensitive(benchmark, cond_kind):
    if cond_kind == "mild":
        x = dataset("well", scaled(2048), 20)
    else:
        x = generate("sumzero", scaled(2048), delta=1200, seed=9)
    benchmark.group = "thm4-condition"
    res = benchmark(condition_sensitive_sum, x)
    if cond_kind == "mild":
        assert len(res.iterations) <= 2
    else:
        assert len(res.iterations) >= 2


def test_thm4_work_grows_with_condition(benchmark):
    benchmark.group = "thm4-condition"

    def measure():
        mild = condition_sensitive_sum(dataset("well", scaled(1024), 20))
        harsh = condition_sensitive_sum(
            generate("sumzero", scaled(1024), delta=1200, seed=3)
        )
        return mild.stats.work, harsh.stats.work

    mild_work, harsh_work = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert harsh_work > mild_work
