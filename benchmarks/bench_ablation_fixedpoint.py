"""ABL-FX — carry propagation: the §2 fixed-point register vs carry-free.

The paper's motivation for the whole representation: a plain
fixed-point register is exact but its additions ripple carries ("in the
worst-case, there can be a lot of carry-bit propagations"), which
serializes parallel hardware. This bench measures (a) the observed
worst carry-chain length on adversarial streams and (b) the throughput
gap against the superaccumulators at equal exactness.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import dataset, scaled
from repro.core import SmallSuperaccumulator, SparseSuperaccumulator
from repro.core.fixedpoint import FixedPointRegister

N = scaled(5_000)  # the register path is a scalar big-int loop


def _carry_adversarial(n):
    out = []
    for k in range(n):
        e = 20 + (k % 30)
        out.append(float(np.nextafter(2.0**e, 0.0)))
        out.append(math.ulp(2.0 ** (e - 1)))
    return np.array(out)


def test_fixedpoint_register(benchmark):
    x = dataset("random", N, 300)
    benchmark.group = "ablation-fixedpoint"

    def run():
        reg = FixedPointRegister()
        reg.add_array(x)
        return reg

    reg = benchmark(run)
    assert reg.to_float() is not None


def test_sparse_scalar_path(benchmark):
    # like-for-like: both scalar per-element loops
    x = dataset("random", N, 300)
    benchmark.group = "ablation-fixedpoint"

    def run():
        acc = SparseSuperaccumulator.zero()
        for v in x:
            acc = acc.add_float(float(v))
        return acc

    benchmark(run)


def test_small_vectorized_path(benchmark):
    x = dataset("random", N, 300)
    benchmark.group = "ablation-fixedpoint"

    def run():
        acc = SmallSuperaccumulator()
        acc.add_array(x)
        return acc

    benchmark(run)


def test_carry_chain_lengths(benchmark):
    benchmark.group = "ablation-fixedpoint-carries"
    x = _carry_adversarial(N // 2)

    def run():
        reg = FixedPointRegister()
        reg.add_array(x)
        return reg.max_carry_chain

    chain = benchmark.pedantic(run, rounds=1, iterations=1)
    # the §2 worst case realized: long ripples on the register ...
    assert chain >= 40
    # ... while the carry-free representation's carries reach exactly
    # one adjacent digit position by Lemma 1 (checked structurally in
    # the core tests; nothing to measure here).
