"""Streaming-API benches: running sums, sliding windows, cumsums.

Documents the per-update cost of exact streaming state — the price of
never drifting — against the float deque baseline that drifts.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import dataset, scaled
from repro.streaming import ExactRunningSum, SlidingWindowSum, exact_cumsum

N = scaled(20_000)


def test_running_sum_batched(benchmark):
    x = dataset("random", scaled(500_000), 200)
    benchmark.group = "streaming"

    def run():
        rs = ExactRunningSum()
        for chunk in np.array_split(x, 50):
            rs.add_array(chunk)
        return rs.value()

    benchmark(run)


def test_sliding_window_updates(benchmark):
    x = dataset("random", N, 100)
    benchmark.group = "streaming"

    def run():
        win = SlidingWindowSum(128)
        last = 0.0
        for v in x:
            last = win.push(float(v))
        return last

    benchmark(run)


def test_float_deque_window_baseline(benchmark):
    # the drifting baseline the exact window replaces (cost reference)
    from collections import deque

    x = dataset("random", N, 100)
    benchmark.group = "streaming"

    def run():
        buf = deque()
        total = 0.0
        for v in x:
            v = float(v)
            total += v
            buf.append(v)
            if len(buf) > 128:
                total -= buf.popleft()
        return total

    benchmark(run)


def test_exact_cumsum(benchmark):
    x = dataset("random", scaled(5_000), 100)
    benchmark.group = "streaming"
    out = benchmark(exact_cumsum, x)
    assert out.size == x.size


def test_decimal_accumulate(benchmark):
    from decimal import Decimal

    from repro.core.decimal_acc import DecimalSuperaccumulator

    vals = [Decimal(int(v * 10**6)).scaleb(-6) for v in
            dataset("random", scaled(2_000), 30)]
    benchmark.group = "streaming-other-bases"

    def run():
        acc = DecimalSuperaccumulator()
        for v in vals:
            acc = acc.add_decimal(v)
        return acc

    benchmark(run)


def test_apfloat_accumulate(benchmark):
    from repro.core.apfloat import APFloat, exact_sum_apfloat

    vals = [APFloat(k * 2 + 1, (k * 7919) % 4001 - 2000)
            for k in range(scaled(500))]
    benchmark.group = "streaming-other-bases"
    benchmark(exact_sum_apfloat, vals)
