"""SHM — shared-memory data plane vs pickled-block dispatch.

Measures what the zero-copy data plane buys on the process-pool path:
the pickled-block baseline serializes every input block into each task
message, so dispatch bytes scale with ``n``; the shared-memory path
ships 100-ish-byte :class:`BlockRef` descriptors and workers resolve
them as in-place views, so dispatch bytes scale with the block *count*.
Both paths produce bit-identical, correctly rounded sums — this
benchmark is about wall-clock and bytes moved, never accuracy.

Usage::

    python benchmarks/bench_shm_dataplane.py               # full sweep
    python benchmarks/bench_shm_dataplane.py --quick       # CI smoke
    python benchmarks/bench_shm_dataplane.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_shm_dataplane.json`` in the repo
root) with one row per (n, workers, variant): combine/total seconds,
dispatch bytes, copies avoided, and combine throughput.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.data import generate
from repro.mapreduce import parallel_sum, shutdown_shared_executors

BLOCK_ITEMS = 1 << 17


def run_case(
    x: np.ndarray, workers: int, *, zero_copy: bool, repeats: int
) -> Dict[str, Any]:
    """Best-of-``repeats`` timing for one (input, workers, variant) cell."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeats):
        res = parallel_sum(
            x,
            method="sparse",
            workers=workers,
            executor="process",
            zero_copy=zero_copy,
            block_items=BLOCK_ITEMS,
            report=True,
        )
        row = {
            "variant": "shm" if zero_copy else "pickled",
            "n": int(x.size),
            "workers": workers,
            "value": res.value,
            "combine_seconds": res.phase_seconds.get("combine", 0.0),
            "total_seconds": res.total_seconds,
            "dispatch_bytes": res.dispatch_bytes,
            "copies_avoided_bytes": res.copies_avoided_bytes,
            "shuffle_bytes": res.shuffle_bytes,
            "combine_items_per_second": res.phase_throughput("combine"),
            "blocks": res.blocks,
        }
        if best is None or row["combine_seconds"] < best["combine_seconds"]:
            best = row
    assert best is not None
    return best


def sweep(sizes: Sequence[int], workers: Sequence[int], repeats: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        x = generate("random", n, delta=500, seed=42)
        for p in workers:
            cells = [
                run_case(x, p, zero_copy=False, repeats=repeats),
                run_case(x, p, zero_copy=True, repeats=repeats),
            ]
            if cells[0]["value"] != cells[1]["value"]:
                raise AssertionError(
                    f"paths disagree at n={n}, workers={p}: "
                    f"{cells[0]['value']!r} != {cells[1]['value']!r}"
                )
            rows.extend(cells)
            speedup = cells[0]["combine_seconds"] / max(
                cells[1]["combine_seconds"], 1e-12
            )
            print(
                f"n=2^{int(math.log2(n)):<2d} workers={p}  "
                f"combine pickled={cells[0]['combine_seconds']:.3f}s "
                f"shm={cells[1]['combine_seconds']:.3f}s "
                f"({speedup:.2f}x)  "
                f"dispatch {cells[0]['dispatch_bytes']:>12,}B -> "
                f"{cells[1]['dispatch_bytes']:>8,}B",
                flush=True,
            )
        # fresh pools per input size so one size's warm state can't
        # subsidize the next
        shutdown_shared_executors()
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke sweep for CI")
    parser.add_argument("-o", "--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_shm_dataplane.json")
    args = parser.parse_args(argv)

    if args.quick:
        sizes, workers, repeats = [1 << 18], [2], 1
    else:
        sizes, workers, repeats = [1 << 20, 1 << 22], [1, 2, 4], 2

    rows = sweep(sizes, workers, repeats)

    record = {
        "benchmark": "shm_dataplane",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "block_items": BLOCK_ITEMS,
            "sizes": [int(n) for n in sizes],
            "workers": list(workers),
            "repeats": repeats,
            "method": "sparse",
            "distribution": "random delta=500 seed=42",
        },
        "rows": rows,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # headline: does shm beat pickled dispatch at the biggest sweep cell?
    if not args.quick:
        top_n, top_p = max(sizes), max(workers)
        pick = {r["variant"]: r for r in rows
                if r["n"] == top_n and r["workers"] == top_p}
        ok = pick["shm"]["combine_seconds"] <= pick["pickled"]["combine_seconds"]
        print(
            f"headline (n={top_n}, workers={top_p}): "
            f"shm {'beats' if ok else 'DOES NOT beat'} pickled on combine "
            f"({pick['shm']['combine_seconds']:.3f}s vs "
            f"{pick['pickled']['combine_seconds']:.3f}s)"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
