"""FIG2 — total running time vs exponent-spread delta (paper Figure 2).

Paper setup: n = 1B fixed, delta sweeps 10 -> 2000. Expected shapes:

* sparse-superaccumulator time grows mildly with delta (more active
  indices per accumulator);
* small-superaccumulator time is flat in delta (fixed limb array);
* the Anderson panel is flat for everyone (mean subtraction collapses
  the effective exponent range to ~15 whatever delta is);
* iFastSum degrades with delta on the Sum=Zero panel (more distillation
  passes as the cancellation structure deepens).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.baselines import ifastsum
from repro.mapreduce import parallel_sum

DISTS = ["well", "random", "anderson", "sumzero"]
DELTAS = [10, 100, 2000]
N = scaled(50_000)


def _mapreduce(method, x):
    return parallel_sum(x, method=method, block_items=1 << 14, executor="serial")


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("delta", DELTAS)
def test_fig2_ifastsum(benchmark, dist, delta):
    x = dataset(dist, N, delta)
    benchmark.group = f"fig2-{dist}-d{delta}"
    benchmark(ifastsum, x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("delta", DELTAS)
def test_fig2_mapreduce_sparse(benchmark, dist, delta):
    x = dataset(dist, N, delta)
    benchmark.group = f"fig2-{dist}-d{delta}"
    benchmark(_mapreduce, "sparse", x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("delta", DELTAS)
def test_fig2_mapreduce_small(benchmark, dist, delta):
    x = dataset(dist, N, delta)
    benchmark.group = f"fig2-{dist}-d{delta}"
    benchmark(_mapreduce, "small", x)
