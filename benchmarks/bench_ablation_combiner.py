"""ABL-C — the combine-step ablation (paper §6.2).

"The goal of the combine step is to reduce the size of the data that
need to be shuffled between mappers and reducers." This bench
quantifies it: the same exact job with and without the local combine,
recording wall time and shuffle volume. Without combining, shuffle
bytes equal the whole input and the reduce phase does all the work
serially per reducer.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.mapreduce import (
    BlockStore,
    NoCombinerSumJob,
    SparseSuperaccumulatorJob,
    run_job,
)

N = scaled(200_000)


def _blocks(x):
    store = BlockStore(block_items=1 << 14)
    store.put("d", x)
    return [b.data for b in store.blocks("d")]


@pytest.mark.parametrize("combiner", [True, False], ids=["combine", "no-combine"])
def test_combiner_ablation(benchmark, combiner):
    x = dataset("random", N, 500)
    blocks = _blocks(x)
    job = SparseSuperaccumulatorJob() if combiner else NoCombinerSumJob()
    benchmark.group = "ablation-combiner"
    res = benchmark(run_job, job, blocks, reducers=4)
    if combiner:
        assert res.shuffle_bytes < 8 * N // 50
    else:
        assert res.shuffle_bytes >= 8 * N


def test_combiner_shuffle_ratio(benchmark):
    benchmark.group = "ablation-combiner"
    x = dataset("random", N, 500)
    blocks = _blocks(x)

    def measure():
        with_c = run_job(SparseSuperaccumulatorJob(), blocks, reducers=4)
        without = run_job(NoCombinerSumJob(), blocks, reducers=4)
        assert with_c.value == without.value
        return without.shuffle_bytes / max(with_c.shuffle_bytes, 1)

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert ratio > 100  # combine shrinks the shuffle by orders of magnitude
