"""FIG3 — total running time vs cluster size (paper Figure 3).

Paper setup: fixed input, worker count sweeps 1 -> 32 on one EC2 node.
iFastSum is flat (single core); the MapReduce algorithms scale ~linearly
and then saturate.

On this host the cluster is modeled with the simulated-cluster executor
(serial execution, measured per-block costs scheduled LPT onto p
virtual workers — DESIGN.md §2); on a multicore host set
``executor="process"`` in the harness for physical scaling. Each bench
case times the *whole job* at one worker count; the makespan series the
paper plots is printed by ``python benchmarks/harness.py fig3``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.baselines import ifastsum
from repro.mapreduce import parallel_sum

DISTS = ["well", "sumzero"]
WORKERS = [1, 4, 16]
N = scaled(100_000)
DELTA = 2000


@pytest.mark.parametrize("dist", DISTS)
def test_fig3_ifastsum_single_core(benchmark, dist):
    x = dataset(dist, N, DELTA)
    benchmark.group = f"fig3-{dist}"
    benchmark(ifastsum, x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("workers", WORKERS)
def test_fig3_mapreduce_sparse_makespan(benchmark, dist, workers):
    """Time one simulated-cluster job; the reported wall time is the
    serial execution, while the modeled p-worker makespan is printed by
    the harness. The bench tracks the per-point cost of generating the
    makespan series."""
    x = dataset(dist, N, DELTA)
    benchmark.group = f"fig3-{dist}"

    def job():
        return parallel_sum(
            x,
            method="sparse",
            workers=workers,
            executor="simulated",
            block_items=1 << 14,
            report=True,
        ).total_seconds

    benchmark(job)
