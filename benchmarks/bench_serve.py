"""SERVE — microbatched service ingest vs one-request-per-add.

Stands up the real TCP stack (server + pipelined clients over
loopback) and measures sustained ingest throughput as a function of
request batch size and shard count. The baseline is one ``add``
request per value — the naive client every RPC framework produces —
against ``add_array`` batches, which the service's per-shard
microbatcher folds with one superaccumulator operation per coalesced
run. Every cell also asserts the service's rounded ``value()`` is
bit-identical to ``core.exact_sum`` of everything it ingested: this
benchmark may never trade exactness for speed.

Usage::

    python benchmarks/bench_serve.py               # full sweep
    python benchmarks/bench_serve.py --quick       # CI smoke
    python benchmarks/bench_serve.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_serve.json`` in the repo root)
with one row per (batch_size, shards, clients) cell: wall seconds,
requests/s, values/s, and server-side fold statistics. The headline
checks the acceptance bar: batch-256 ingest sustaining >= 5x the
values/s of per-add ingest.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.core import exact_sum
from repro.data import generate
from repro.serve import ReproServeClient, ReproServer, ReproService, ServeConfig


async def run_cell(
    data: np.ndarray,
    *,
    batch_size: int,
    shards: int,
    clients: int,
) -> Dict[str, Any]:
    """One measurement: ingest ``data`` fully, then verify exactness."""
    service = ReproService(ServeConfig(shards=shards, queue_depth=1024))
    await service.start()
    server = ReproServer(service, port=0)
    await server.start()
    stream = "bench"
    parts = np.array_split(data, clients)

    async def producer(chunk: np.ndarray) -> int:
        client = await ReproServeClient.connect(port=server.port)
        sent = 0
        if batch_size == 1:
            for v in chunk:
                sent += await client.add(stream, float(v))
        else:
            for lo in range(0, chunk.size, batch_size):
                sent += await client.add_array(stream, chunk[lo : lo + batch_size])
        await client.close()
        return sent

    t0 = time.perf_counter()
    sent = sum(await asyncio.gather(*(producer(p) for p in parts)))
    elapsed = time.perf_counter() - t0

    reader = await ReproServeClient.connect(port=server.port)
    got = await reader.value(stream)
    count = await reader.count(stream)
    stats = await reader.stats()
    await reader.close()
    await server.close()
    await service.close()

    expected = exact_sum(data)
    if got != expected or count != data.size or sent != data.size:
        raise AssertionError(
            f"exactness violated: value {got!r} vs {expected!r}, "
            f"count {count} vs {data.size}"
        )
    requests = (data.size if batch_size == 1
                else sum(-(-p.size // batch_size) for p in parts))
    return {
        "batch_size": batch_size,
        "shards": shards,
        "clients": clients,
        "n": int(data.size),
        "seconds": elapsed,
        "requests": int(requests),
        "requests_per_second": requests / elapsed,
        "values_per_second": data.size / elapsed,
        "value_hex": got.hex(),
        "server_batches_folded": stats["batches_folded"],
        "server_mean_batch_values": stats["mean_batch_values"],
        "server_max_coalesced_ops": stats["max_coalesced_ops"],
        "server_queue_depth_peak": stats["queue_depth_peak"],
    }


async def sweep(
    n: int,
    batch_sizes: Sequence[int],
    shard_counts: Sequence[int],
    clients: int,
) -> List[Dict[str, Any]]:
    data = generate("sumzero", n, delta=600, seed=42)
    rows: List[Dict[str, Any]] = []
    for shards in shard_counts:
        for batch in batch_sizes:
            # per-add over TCP is slow; cap its n so cells stay bounded
            cell_data = data if batch > 1 else data[: min(n, 4096)]
            row = await run_cell(
                cell_data, batch_size=batch, shards=shards, clients=clients
            )
            rows.append(row)
            print(
                f"  shards={shards:<2d} batch={batch:<5d} n={row['n']:>8,d}  "
                f"{row['values_per_second']:>12,.0f} values/s  "
                f"{row['requests_per_second']:>10,.0f} req/s  "
                f"folds={row['server_batches_folded']}"
            )
    return rows


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument("-n", type=int, default=None, help="values per cell")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    args = parser.parse_args(argv or sys.argv[1:])

    n = args.n if args.n else (1 << 15 if args.quick else 1 << 18)
    batch_sizes = [1, 64, 256, 1024]
    shard_counts = [1, 4] if args.quick else [1, 2, 4, 8]

    print(f"serve ingest sweep: n={n:,}, clients={args.clients}, "
          f"shards={shard_counts}, batches={batch_sizes}")
    rows = asyncio.run(sweep(n, batch_sizes, shard_counts, args.clients))

    record = {
        "benchmark": "serve",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "n": n,
            "clients": args.clients,
            "batch_sizes": batch_sizes,
            "shard_counts": shard_counts,
            "distribution": "sumzero delta=600 seed=42",
            "exactness": "every cell asserted bit-identical to core.exact_sum",
        },
        "rows": rows,
    }

    # headline: batch-256 ingest must sustain >= 5x per-add values/s
    # (compared at the same shard count, the largest swept)
    top = max(shard_counts)
    per_add = next(r for r in rows if r["shards"] == top and r["batch_size"] == 1)
    batched = next(r for r in rows if r["shards"] == top and r["batch_size"] == 256)
    speedup = batched["values_per_second"] / per_add["values_per_second"]
    record["headline"] = {
        "shards": top,
        "per_add_values_per_second": per_add["values_per_second"],
        "batch256_values_per_second": batched["values_per_second"],
        "speedup": speedup,
        "target": 5.0,
        "pass": speedup >= 5.0,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline (shards={top}): batch-256 ingest at {speedup:,.1f}x "
        f"per-add throughput ({'PASS' if speedup >= 5.0 else 'FAIL'}, target 5x)"
    )
    return 0 if speedup >= 5.0 else 1


if __name__ == "__main__":
    sys.exit(main())
