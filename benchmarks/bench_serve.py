"""SERVE — microbatched service ingest vs one-request-per-add.

Stands up the real TCP stack (server + pipelined clients over
loopback) and measures sustained ingest throughput as a function of
request batch size, shard count, and **wire mode**. The baseline is
one ``add`` request per value — the naive client every RPC framework
produces — against ``add_array`` batches, which the service's
per-shard microbatcher folds with one superaccumulator operation per
coalesced run. Batched cells run once per wire: ``json`` (boxed
JSON-lines text) and ``binary`` (negotiated codec ``BBAT`` frames
carrying raw little-endian float64, parsed server-side as zero-copy
views). Every cell also asserts the service's rounded ``value()`` is
bit-identical to ``core.exact_sum`` of everything it ingested: this
benchmark may never trade exactness for speed, and the two wires must
agree bitwise.

Usage::

    python benchmarks/bench_serve.py               # full sweep
    python benchmarks/bench_serve.py --quick       # CI smoke
    python benchmarks/bench_serve.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_serve.json`` in the repo root)
with one row per (batch_size, shards, clients, wire) cell: wall
seconds, requests/s, values/s, and server-side fold statistics. Two
headlines check the acceptance bars: batch-256 ingest sustaining
>= 5x the values/s of per-add ingest, and the binary wire sustaining
>= 3x the JSON wire's values/s at batch >= 256.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.core import exact_sum
from repro.data import generate
from repro.serve import ReproServeClient, ReproServer, ReproService, ServeConfig


async def run_cell(
    data: np.ndarray,
    *,
    batch_size: int,
    shards: int,
    clients: int,
    wire: str = "json",
) -> Dict[str, Any]:
    """One measurement: ingest ``data`` fully, then verify exactness."""
    service = ReproService(ServeConfig(shards=shards, queue_depth=1024))
    await service.start()
    server = ReproServer(service, port=0)
    await server.start()
    stream = "bench"
    parts = np.array_split(data, clients)

    async def producer(chunk: np.ndarray) -> int:
        client = await ReproServeClient.connect(port=server.port, wire=wire)
        if client.wire != wire:
            raise AssertionError(f"wire negotiation failed: wanted {wire}")
        sent = 0
        if batch_size == 1:
            for v in chunk:
                sent += await client.add(stream, float(v))
        elif wire == "binary":
            for lo in range(0, chunk.size, batch_size):
                sent += await client.add_batch(stream, chunk[lo : lo + batch_size])
        else:
            for lo in range(0, chunk.size, batch_size):
                sent += await client.add_array(stream, chunk[lo : lo + batch_size])
        await client.close()
        return sent

    t0 = time.perf_counter()
    sent = sum(await asyncio.gather(*(producer(p) for p in parts)))
    elapsed = time.perf_counter() - t0

    reader = await ReproServeClient.connect(port=server.port)
    got = await reader.value(stream)
    count = await reader.count(stream)
    stats = await reader.stats()
    await reader.close()
    await server.close()
    await service.close()

    expected = exact_sum(data)
    if got != expected or count != data.size or sent != data.size:
        raise AssertionError(
            f"exactness violated: value {got!r} vs {expected!r}, "
            f"count {count} vs {data.size}"
        )
    requests = (data.size if batch_size == 1
                else sum(-(-p.size // batch_size) for p in parts))
    wire_stats = stats.get("wire", {}).get(wire, {})
    return {
        "batch_size": batch_size,
        "shards": shards,
        "clients": clients,
        "wire": wire,
        "n": int(data.size),
        "seconds": elapsed,
        "requests": int(requests),
        "requests_per_second": requests / elapsed,
        "values_per_second": data.size / elapsed,
        "value_hex": got.hex(),
        "wire_payload_bytes": wire_stats.get("payload_bytes", 0),
        "wire_frames": wire_stats.get("frames", 0),
        "server_batches_folded": stats["batches_folded"],
        "server_mean_batch_values": stats["mean_batch_values"],
        "server_max_coalesced_ops": stats["max_coalesced_ops"],
        "server_queue_depth_peak": stats["queue_depth_peak"],
    }


async def sweep(
    n: int,
    batch_sizes: Sequence[int],
    shard_counts: Sequence[int],
    clients: int,
) -> List[Dict[str, Any]]:
    data = generate("sumzero", n, delta=600, seed=42)
    rows: List[Dict[str, Any]] = []
    for shards in shard_counts:
        for batch in batch_sizes:
            # per-add over TCP is slow; cap its n so cells stay bounded.
            # Per-add has no batch frame, so it is a JSON-only cell.
            cell_data = data if batch > 1 else data[: min(n, 4096)]
            wires = ("json",) if batch == 1 else ("json", "binary")
            for wire in wires:
                row = await run_cell(
                    cell_data,
                    batch_size=batch,
                    shards=shards,
                    clients=clients,
                    wire=wire,
                )
                rows.append(row)
                print(
                    f"  shards={shards:<2d} batch={batch:<5d} "
                    f"wire={wire:<6s} n={row['n']:>8,d}  "
                    f"{row['values_per_second']:>12,.0f} values/s  "
                    f"{row['requests_per_second']:>10,.0f} req/s  "
                    f"folds={row['server_batches_folded']}"
                )
    # the two wires must agree bitwise in every (shards, batch) cell
    by_cell: Dict[Any, set] = {}
    for row in rows:
        by_cell.setdefault((row["shards"], row["batch_size"]), set()).add(
            row["value_hex"]
        )
    for cell, hexes in by_cell.items():
        if len(hexes) != 1:
            raise AssertionError(f"wire modes disagree bitwise in cell {cell}: {hexes}")
    return rows


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument("-n", type=int, default=None, help="values per cell")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serve.json",
    )
    args = parser.parse_args(argv or sys.argv[1:])

    n = args.n if args.n else (1 << 15 if args.quick else 1 << 18)
    batch_sizes = [1, 64, 256, 1024] if args.quick else [1, 64, 256, 1024, 4096]
    shard_counts = [1, 4] if args.quick else [1, 2, 4, 8]

    print(f"serve ingest sweep: n={n:,}, clients={args.clients}, "
          f"shards={shard_counts}, batches={batch_sizes}")
    rows = asyncio.run(sweep(n, batch_sizes, shard_counts, args.clients))

    record = {
        "benchmark": "serve",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "n": n,
            "clients": args.clients,
            "batch_sizes": batch_sizes,
            "shard_counts": shard_counts,
            "distribution": "sumzero delta=600 seed=42",
            "exactness": "every cell asserted bit-identical to core.exact_sum",
        },
        "rows": rows,
    }

    # headline 1: batch-256 ingest must sustain >= 5x per-add values/s
    # (compared at the same shard count, the largest swept)
    top = max(shard_counts)
    per_add = next(r for r in rows if r["shards"] == top and r["batch_size"] == 1)
    batched = next(
        r
        for r in rows
        if r["shards"] == top and r["batch_size"] == 256 and r["wire"] == "json"
    )
    speedup = batched["values_per_second"] / per_add["values_per_second"]
    record["headline"] = {
        "shards": top,
        "per_add_values_per_second": per_add["values_per_second"],
        "batch256_values_per_second": batched["values_per_second"],
        "speedup": speedup,
        "target": 5.0,
        "pass": speedup >= 5.0,
    }

    # headline 2: the binary wire must sustain >= 3x the JSON wire's
    # values/s in some batch>=256 cell at the largest shard count
    wire_ratios = []
    for batch in (b for b in batch_sizes if b >= 256):
        jrow = next(
            r
            for r in rows
            if r["shards"] == top and r["batch_size"] == batch and r["wire"] == "json"
        )
        brow = next(
            r
            for r in rows
            if r["shards"] == top and r["batch_size"] == batch and r["wire"] == "binary"
        )
        wire_ratios.append(
            {
                "batch_size": batch,
                "json_values_per_second": jrow["values_per_second"],
                "binary_values_per_second": brow["values_per_second"],
                "speedup": brow["values_per_second"] / jrow["values_per_second"],
                "payload_bytes_ratio": (
                    jrow["wire_payload_bytes"] / brow["wire_payload_bytes"]
                    if brow["wire_payload_bytes"]
                    else None
                ),
            }
        )
    best = max(wire_ratios, key=lambda c: c["speedup"])
    record["headline_wire"] = {
        "shards": top,
        "cells": wire_ratios,
        "best_batch_size": best["batch_size"],
        "speedup": best["speedup"],
        "target": 3.0,
        "pass": best["speedup"] >= 3.0,
        "bit_identity": "every (shards,batch) cell asserted identical hex across wires",
    }

    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline (shards={top}): batch-256 ingest at {speedup:,.1f}x "
        f"per-add throughput ({'PASS' if speedup >= 5.0 else 'FAIL'}, target 5x)"
    )
    print(
        f"headline (wire): binary at {best['speedup']:,.1f}x JSON values/s "
        f"(batch={best['batch_size']}, "
        f"{'PASS' if best['speedup'] >= 3.0 else 'FAIL'}, target 3x)"
    )
    return 0 if (speedup >= 5.0 and best["speedup"] >= 3.0) else 1


if __name__ == "__main__":
    sys.exit(main())
