"""Benchmark suite: one module per paper figure/theorem plus ablations.

Run with ``pytest benchmarks/ --benchmark-only``; print paper-style
series with ``python benchmarks/harness.py {fig1,fig2,fig3,...}``.
"""
