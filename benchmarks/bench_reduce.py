"""REDUCE — exact inner products vs numpy and compensated Dot2.

The reduction layer's pitch (PR 9 tentpole): a dot product is a sum of
TwoProduct terms, so the exact summation machinery prices exact inner
products at "one expansion plus one fold". This bench quantifies the
trade against the two usual alternatives:

* ``np.dot`` — fast and approximate; its forward error carries the
  classic deterministic bound ``gamma_n |x|^T|y|`` and the far tighter
  Hallman–Ipsen probabilistic bound ``lambda u sqrt(n) ||x|| ||y||``
  (arXiv:2107.01604, Thm 4.4-style). Both predicted columns sit next
  to the measured error so the record doubles as a bound check: every
  cell asserts measured <= predicted.
* ``dot2`` — Ogita–Rump–Oishi compensated dot (TwoProduct + TwoSum
  cascade), the classical correctly-rounded-in-practice contender,
  scalar like the repo's other compensated baselines; its error bound
  ``u|s| + gamma_n^2 |x|^T|y|`` is checked the same way.

Exact values come from ``repro.reduce`` (binned kernel), asserted
bit-identical to the rational reference ``exact_dot_fraction`` — the
exactness column is not a claim, it is an assertion.

Usage::

    python benchmarks/bench_reduce.py               # full sweep
    python benchmarks/bench_reduce.py --quick       # CI smoke
    python benchmarks/bench_reduce.py -o out.json   # custom output

Writes ``BENCH_reduce.json`` in the repo root. Headline acceptance bar:

* ``n >= 2**20``: exact ``norm2`` (binned kernel) within **3x** the
  runtime of the compensated norm (``sqrt(dot2(x, x))``).

Exit status is non-zero if the bar (or any exactness/bound assertion)
fails, so CI can run this directly.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from fractions import Fraction
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro import reduce
from repro.core.eft import two_product, two_sum
from repro.data import generate
from repro.stats import exact_dot_fraction, exact_norm2, round_fraction

#: Unit roundoff of binary64.
U = 2.0**-53

#: Hallman–Ipsen confidence parameter: the probabilistic bound holds
#: with probability >= 1 - 2 exp(-lambda^2 / 2); lambda = 3.2 puts the
#: failure mass below 1.2%.
LAMBDA = 3.2

#: (distribution, delta) cells. Deltas stay modest so every product is
#: inside the error-free TwoProduct band the reduction ops police.
CASES = [
    ("random", 40),
    ("well", 10),
    ("anderson", 30),
]

#: Kernel hosting the exact reductions (the vectorized binned fold).
EXACT_KERNEL = "binned"


def dot2(x: np.ndarray, y: np.ndarray) -> float:
    """Ogita–Rump–Oishi compensated dot product (Algorithm Dot2).

    Scalar on purpose, like the compensated summation baselines in
    :mod:`repro.baselines.compensated`: this is the classical
    algorithm, measured as published.
    """
    s = 0.0
    c = 0.0
    for a, b in zip(x, y):
        p, ep = two_product(float(a), float(b))
        s, es = two_sum(s, p)
        c += es + ep
    return s + c


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rel_err(value: float, exact: Fraction) -> float:
    if exact == 0:
        return abs(float(Fraction(value)))
    return abs(float((Fraction(value) - exact) / abs(exact)))


def run_cell(dist: str, delta: int, n: int, reps: int) -> Dict[str, Any]:
    """One (distribution, delta, n) cell: times, errors, bound checks."""
    x = generate(dist, n, delta=delta, seed=7)
    y = generate(dist, n, delta=delta, seed=8)

    exact_frac = exact_dot_fraction(x, y)
    exact_value = round_fraction(exact_frac)
    got = reduce.dot(x, y, kernel=EXACT_KERNEL)
    if got != exact_value or repr(got) != repr(exact_value):
        raise AssertionError(
            f"exactness violated at {dist}/n={n}: "
            f"reduce.dot={got!r} != {exact_value!r}"
        )

    naive = float(np.dot(x, y))
    comp = dot2(x, y)

    # Bound ingredients (computed in exact rational arithmetic where it
    # matters: |x|^T|y| and the norms are conditioning data, not results).
    abs_dot = exact_dot_fraction(np.abs(x), np.abs(y))
    norm_x, norm_y = exact_norm2(x), exact_norm2(y)
    gamma_n = (n * U) / (1.0 - n * U)
    scale = abs(exact_frac) if exact_frac != 0 else Fraction(1)

    naive_err = _rel_err(naive, exact_frac)
    comp_err = _rel_err(comp, exact_frac)
    bound_naive_det = float(gamma_n * abs_dot / scale)
    bound_naive_hi = float(
        Fraction(LAMBDA * U * math.sqrt(n)) * Fraction(norm_x) * Fraction(norm_y)
        / scale
    )
    bound_comp_det = float(U + gamma_n * gamma_n * abs_dot / scale)

    for label, err, bound in [
        ("np.dot vs deterministic", naive_err, bound_naive_det),
        ("np.dot vs Hallman-Ipsen", naive_err, bound_naive_hi),
        ("dot2 vs deterministic", comp_err, bound_comp_det),
    ]:
        if err > bound:
            raise AssertionError(
                f"bound violated at {dist}/n={n}: {label}: "
                f"measured {err:.3e} > predicted {bound:.3e}"
            )

    seconds = {
        "exact_dot": _best(
            lambda: reduce.dot(x, y, kernel=EXACT_KERNEL), reps
        ),
        "np_dot": _best(lambda: np.dot(x, y), reps),
        "dot2": _best(lambda: dot2(x, y), max(1, reps - 1)),
        "exact_norm2": _best(
            lambda: reduce.norm2(x, kernel=EXACT_KERNEL), reps
        ),
        "comp_norm2": _best(lambda: math.sqrt(dot2(x, x)), max(1, reps - 1)),
    }
    return {
        "distribution": dist,
        "delta": delta,
        "n": int(n),
        "condition_log10": float(
            math.log10(float(abs_dot / scale)) if abs_dot else 0.0
        ),
        "seconds": seconds,
        "values": {
            "exact_hex": exact_value.hex(),
            "np_dot_rel_err": naive_err,
            "dot2_rel_err": comp_err,
        },
        "bounds": {
            "naive_deterministic": bound_naive_det,
            "naive_hallman_ipsen": bound_naive_hi,
            "dot2_deterministic": bound_comp_det,
            "all_hold": True,  # a violation aborts before this point
        },
        "norm2_slowdown_vs_compensated": (
            seconds["exact_norm2"] / seconds["comp_norm2"]
        ),
    }


def sweep(sizes: Sequence[int], reps: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for dist, delta in CASES:
        for n in sizes:
            row = run_cell(dist, delta, n, reps)
            rows.append(row)
            s = row["seconds"]
            print(
                f"  {dist:<9s} n=2^{int(np.log2(n)):<3d} "
                f"exact_dot={s['exact_dot'] * 1e3:8.1f}ms  "
                f"np={s['np_dot'] * 1e6:7.1f}us  "
                f"dot2={s['dot2'] * 1e3:8.1f}ms  "
                f"np_err={row['values']['np_dot_rel_err']:.2e} "
                f"(<= HI {row['bounds']['naive_hallman_ipsen']:.2e})  "
                f"norm2 {row['norm2_slowdown_vs_compensated']:5.2f}x comp",
                flush=True,
            )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_reduce.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes, reps = [1 << 14, 1 << 16], 2
    else:
        sizes, reps = [1 << 16, 1 << 18, 1 << 20], 2

    print(
        f"reduce sweep: sizes={[f'2^{int(np.log2(n))}' for n in sizes]}, "
        f"exact kernel={EXACT_KERNEL!r}, lambda={LAMBDA}"
    )
    rows = sweep(sizes, reps)

    big = [r for r in rows if r["n"] >= 1 << 20]
    gate = big if big else rows  # --quick never reaches 2^20
    worst = max(r["norm2_slowdown_vs_compensated"] for r in gate)
    checks = {
        "exact_norm2_vs_compensated": {
            "worst_slowdown_n_ge_2^20": worst,
            "target": 3.0,
            "pass": worst <= 3.0,
            "gated_on_full_sizes": bool(big),
        },
        "error_bounds": {
            "note": (
                "every cell asserted measured error <= deterministic "
                "and Hallman-Ipsen predicted bounds"
            ),
            "pass": True,
        },
        "exactness": {
            "note": (
                "every cell asserted reduce.dot bit-identical to "
                "round_fraction(exact_dot_fraction(x, y))"
            ),
            "pass": True,
        },
    }
    ok = all(c["pass"] for c in checks.values())

    record = {
        "benchmark": "reduce",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "cases": [{"distribution": d, "delta": dl} for d, dl in CASES],
            "sizes": [int(n) for n in sizes],
            "repeats": reps,
            "seeds": [7, 8],
            "exact_kernel": EXACT_KERNEL,
            "hallman_ipsen_lambda": LAMBDA,
        },
        "rows": rows,
        "headline": checks,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: exact norm2 at worst {worst:.2f}x the compensated "
        f"norm (target <= 3.0x) -> {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
