"""CLUSTER — replicated ingest, failover, and WAL replay vs one node.

Spawns a real multi-process cluster (``repro cluster node`` processes
over loopback TCP) and measures replicated ingest throughput, then
runs the two failure drills the subsystem exists for:

* **kill/recover** — SIGKILL the stream's primary mid-ingest, keep
  ingesting through failover, replay the dead node's write-ahead log
  onto the survivors, and assert the final rounded sum is
  bit-identical to the uninterrupted single-node serve path;
* **cold restart** — start a fresh process on the dead node's WAL and
  assert it reconstructs its acked prefix bit-exactly.

The ingest and kill/recover drills run once per **wire mode**:
``json`` (boxed JSON-lines text) and ``binary`` (codec ``BBAT``
frames whose raw float64 payloads land verbatim in ``WALR`` records —
the zero-copy passthrough path). On the binary wire the replayed WAL
records are therefore byte-for-byte the payloads the clients shipped,
and the drill proves their replay is bit-identical anyway.

Every cell asserts bit-identity (``float.hex`` equality) against the
single-node reference; this benchmark may never trade exactness for
availability. The headline is the binary-wire kill/recover drill's
bit-identity, plus cross-wire hex equality in every drill case.

Usage::

    python benchmarks/bench_cluster.py               # full run
    python benchmarks/bench_cluster.py --quick       # CI smoke
    python benchmarks/bench_cluster.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_cluster.json`` in the repo
root) with one row per drill.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.cluster import ClusterCoordinator, RemoteNodeHandle, spawn_local_cluster
from repro.core import exact_sum
from repro.data import generate
from repro.serve import InProcessClient, ReproService, ServeConfig


async def serve_reference(batches: List[np.ndarray]) -> Dict[str, Any]:
    """The uninterrupted single-node serve path every drill compares to."""
    async with ReproService(ServeConfig(shards=2)) as service:
        client = InProcessClient(service)
        t0 = time.perf_counter()
        for batch in batches:
            await client.add_array("ref", batch)
        resp = await client.request("value", stream="ref")
        elapsed = time.perf_counter() - t0
    return {
        "value": float(resp["value"]),
        "hex": float(resp["value"]).hex(),
        "count": int(resp["count"]),
        "seconds": elapsed,
    }


class Drill:
    """A spawned cluster plus the coordinator driving it."""

    def __init__(
        self, directory: str, *, nodes: int, shards: int, wire: str = "binary"
    ) -> None:
        self.wire = wire
        self.procs = spawn_local_cluster(nodes, directory, shards=shards)
        self.by_id = {p.node_id: p for p in self.procs}
        self.coordinator = ClusterCoordinator(
            [
                RemoteNodeHandle(p.node_id, p.host, p.port, wire=wire)
                for p in self.procs
            ],
            replication=2,
        )

    def assert_wire(self) -> None:
        """Every connected handle must have negotiated the drill's wire."""
        for handle in self.coordinator._handles.values():
            client = getattr(handle, "_client", None)
            if client is not None and client.wire != self.wire:
                raise AssertionError(
                    f"{handle.node_id} negotiated {client.wire!r}, "
                    f"wanted {self.wire!r}"
                )

    async def close(self) -> None:
        await self.coordinator.close()
        for proc in self.procs:
            proc.terminate()


async def drill_uninterrupted(
    batches: List[np.ndarray],
    ref: Dict[str, Any],
    tmp: str,
    *,
    nodes: int,
    wire: str = "binary",
) -> Dict[str, Any]:
    drill = Drill(tmp, nodes=nodes, shards=2, wire=wire)
    try:
        co = drill.coordinator
        t0 = time.perf_counter()
        for batch in batches:
            await co.append("ledger", batch)
        got = await co.value("ledger")
        elapsed = time.perf_counter() - t0
        drill.assert_wire()
        identical = got["value"].hex() == ref["hex"] and got["count"] == ref["count"]
        if not identical:
            raise AssertionError(
                f"uninterrupted cluster drifted: {got['value']!r} vs "
                f"{ref['value']!r}"
            )
        n = sum(b.size for b in batches)
        return {
            "case": "uninterrupted",
            "wire": wire,
            "nodes": nodes,
            "n": n,
            "seconds": elapsed,
            "values_per_second": n / elapsed,
            "value_hex": got["value"].hex(),
            "bit_identical": identical,
        }
    finally:
        await drill.close()


async def drill_kill_recover(
    batches: List[np.ndarray],
    ref: Dict[str, Any],
    tmp: str,
    *,
    nodes: int,
    wire: str = "binary",
) -> Dict[str, Any]:
    """THE acceptance drill: SIGKILL the primary mid-ingest, fail over,
    replay its WAL, read bit-identically.

    On the binary wire the victim's WAL records hold the client frame
    payloads verbatim (no decode/re-encode), so this drill doubles as
    the end-to-end proof that replaying passthrough records through the
    vectorized fold reproduces the uninterrupted sum bit-exactly.
    """
    drill = Drill(tmp, nodes=nodes, shards=2, wire=wire)
    try:
        co = drill.coordinator
        half = len(batches) // 2
        t0 = time.perf_counter()
        for batch in batches[:half]:
            await co.append("ledger", batch)
        victim = co._placement("ledger").primary
        drill.by_id[victim].kill()  # SIGKILL: no flush, no goodbye
        for batch in batches[half:]:
            await co.append("ledger", batch)
        replay = await co.replay_wal_onto(drill.by_id[victim].wal)
        got = await co.value("ledger")
        elapsed = time.perf_counter() - t0
        identical = got["value"].hex() == ref["hex"] and got["count"] == ref["count"]
        if not identical:
            raise AssertionError(
                f"kill/recover drifted: {got['value']!r} vs {ref['value']!r}"
            )
        return {
            "case": "kill_recover",
            "wire": wire,
            "nodes": nodes,
            "victim": victim,
            "killed_after_batches": half,
            "failovers": co.failovers,
            "wal_replay": replay,
            "seconds": elapsed,
            "value_hex": got["value"].hex(),
            "read_from": got["node"],
            "bit_identical": identical,
        }
    finally:
        await drill.close()


async def drill_cold_restart(
    batches: List[np.ndarray], tmp: str, *, nodes: int
) -> Dict[str, Any]:
    """Kill a node, restart a fresh process on its WAL, and assert the
    acked prefix is reconstructed bit-exactly from the log alone."""
    drill = Drill(tmp, nodes=nodes, shards=2)
    try:
        co = drill.coordinator
        half = len(batches) // 2
        for batch in batches[:half]:
            await co.append("ledger", batch)
        victim = co._placement("ledger").primary
        prefix = np.concatenate(batches[:half])
        expected = exact_sum(prefix)
        drill.by_id[victim].kill()
        t0 = time.perf_counter()
        spec = drill.by_id[victim].restart()
        fresh = RemoteNodeHandle(spec.node_id, spec.host, spec.port)
        resp = await fresh.request("value", stream="ledger")
        elapsed = time.perf_counter() - t0
        await fresh.close()
        identical = (
            float(resp["value"]).hex() == expected.hex()
            and int(resp["count"]) == prefix.size
        )
        if not identical:
            raise AssertionError(
                f"cold restart drifted: {resp['value']!r} vs {expected!r}"
            )
        return {
            "case": "cold_restart",
            "wire": drill.wire,
            "nodes": nodes,
            "victim": victim,
            "recovered_values": int(resp["count"]),
            "recovery_seconds": elapsed,
            "value_hex": float(resp["value"]).hex(),
            "bit_identical": identical,
        }
    finally:
        await drill.close()


async def run(n: int, *, nodes: int, batch: int) -> Dict[str, Any]:
    data = generate("sumzero", n, delta=500, seed=42)
    batches = [data[i : i + batch] for i in range(0, data.size, batch)]
    ref = await serve_reference(batches)
    print(f"reference (single-node serve): sum={ref['value']!r} "
          f"count={ref['count']:,} in {ref['seconds']:.2f}s")
    rows: List[Dict[str, Any]] = []
    for drill_fn in (drill_uninterrupted, drill_kill_recover):
        for wire in ("json", "binary"):
            with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
                row = await drill_fn(batches, ref, tmp, nodes=nodes, wire=wire)
            rows.append(row)
            print(f"  {row['case']:<14s} wire={wire:<6s} "
                  f"bit_identical={row['bit_identical']} "
                  f"({row['seconds']:.2f}s)")
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        row = await drill_cold_restart(batches, tmp, nodes=nodes)
    rows.append(row)
    print(f"  {row['case']:<14s} wire={row['wire']:<6s} "
          f"bit_identical={row['bit_identical']} "
          f"(recovery {row['recovery_seconds']:.2f}s)")
    # both wires must read the same bits in every drill case
    by_case: Dict[str, set] = {}
    for row in rows:
        by_case.setdefault(row["case"], set()).add(row["value_hex"])
    for case, hexes in by_case.items():
        if len(hexes) != 1:
            raise AssertionError(f"wire modes disagree bitwise in {case}: {hexes}")
    return {"reference": ref, "rows": rows}


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("-n", type=int, default=None, help="values per drill")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--batch", type=int, default=500)
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_cluster.json",
    )
    args = parser.parse_args(argv or sys.argv[1:])

    n = args.n if args.n else (20_000 if args.quick else 100_000)
    print(f"cluster drills: n={n:,}, nodes={args.nodes}, batch={args.batch}")
    result = asyncio.run(run(n, nodes=args.nodes, batch=args.batch))

    kill = next(
        r
        for r in result["rows"]
        if r["case"] == "kill_recover" and r["wire"] == "binary"
    )
    record = {
        "benchmark": "cluster",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "n": n,
            "nodes": args.nodes,
            "batch": args.batch,
            "replication": 2,
            "distribution": "sumzero delta=500 seed=42",
            "exactness": (
                "every drill asserted bit-identical to the uninterrupted "
                "single-node serve path"
            ),
        },
        "reference": result["reference"],
        "rows": result["rows"],
        "headline": {
            "case": "kill_recover",
            "wire": "binary",
            "bit_identical": kill["bit_identical"],
            "failovers": kill["failovers"],
            "wal_records_replayed": kill["wal_replay"]["records"],
            "wal_passthrough": (
                "binary-wire WAL records hold client frame payloads "
                "verbatim; replay folds them through the vectorized path"
            ),
            "pass": all(r["bit_identical"] for r in result["rows"]),
        },
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    ok = record["headline"]["pass"]
    print(f"headline: kill/recover replays binary WAL bit-identically "
          f"({'PASS' if ok else 'FAIL'})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
