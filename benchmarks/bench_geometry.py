"""Geometry-application benches: predicate throughput and filter value.

Measures the cost ladder of orientation predicates — float-only (wrong
on degenerate input), adaptive (float filter + exact fallback), always-
exact — on both benign and adversarial point sets, plus robust hull
throughput. Quantifies the standard claim that the adaptive filter
makes exactness ~free on benign data.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.geometry import convex_hull, orient2d, orient2d_fast, signed_area


def _benign_triples(n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((n, 6)) * 100).tolist()


def _adversarial_triples(n):
    out = []
    for i in range(n):
        out.append(
            [0.5 + (i % 13) * 2.0**-53, 0.5 + (i % 7) * 2.0**-53,
             12.0, 12.0, 24.0, 24.0]
        )
    return out


N = scaled(2_000)


def test_orient_float_only(benchmark):
    triples = _benign_triples(N)
    benchmark.group = "geometry-orient-benign"

    def run():
        s = 0
        for ax, ay, bx, by, cx, cy in triples:
            det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
            s += (det > 0) - (det < 0)
        return s

    benchmark(run)


def test_orient_adaptive_benign(benchmark):
    triples = _benign_triples(N)
    benchmark.group = "geometry-orient-benign"
    benchmark(lambda: sum(orient2d_fast(*t) for t in triples))


def test_orient_exact_benign(benchmark):
    triples = _benign_triples(N // 10)  # exact is ~10-100x slower
    benchmark.group = "geometry-orient-benign"
    benchmark(lambda: sum(orient2d(*t) for t in triples))


def test_orient_adaptive_adversarial(benchmark):
    # every call falls through to the exact path: the filter's floor
    triples = _adversarial_triples(N // 10)
    benchmark.group = "geometry-orient-adversarial"
    benchmark(lambda: sum(orient2d_fast(*t) for t in triples))


@pytest.mark.parametrize("kind", ["random", "collinear-heavy"])
def test_convex_hull(benchmark, kind):
    rng = np.random.default_rng(3)
    n = scaled(1_000)
    if kind == "random":
        pts = rng.random((n, 2)) * 100
    else:
        t = np.sort(rng.random(n))
        pts = np.column_stack([t, t + rng.integers(-2, 3, n) * 2.0**-52])
    benchmark.group = "geometry-hull"
    hull = benchmark(convex_hull, pts)
    assert len(hull) >= 2


def test_exact_area_large_polygon(benchmark):
    rng = np.random.default_rng(4)
    n = scaled(5_000)
    theta = np.sort(rng.random(n)) * 2 * np.pi
    pts = np.column_stack([np.cos(theta), np.sin(theta)]) * 1e6 + 1e8
    benchmark.group = "geometry-area"
    area = benchmark(signed_area, pts)
    assert area > 0
