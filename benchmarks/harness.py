"""Figure harness: regenerate the paper's experimental series.

Prints, for every figure of the evaluation section, the same
rows/series the paper plots — at laptop scale (see DESIGN.md §2 for the
scale and environment substitutions). Usage::

    python benchmarks/harness.py fig1          # time vs n
    python benchmarks/harness.py fig2          # time vs delta
    python benchmarks/harness.py fig3          # time vs workers
    python benchmarks/harness.py thm2          # PRAM rounds/work vs n
    python benchmarks/harness.py thm4          # iterations/work vs C(X)
    python benchmarks/harness.py thm5          # I/Os vs n
    python benchmarks/harness.py all
    python benchmarks/harness.py all --quick   # smaller sweeps

Numbers go to stdout as aligned tables; EXPERIMENTS.md records one run
and compares the shapes against the paper.
"""

from __future__ import annotations

import argparse
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.baselines import hybrid_sum, ifastsum
from repro.data import PANEL_NAMES, generate
from repro.extmem import (
    BlockDevice,
    ExtArray,
    extmem_sum_scan,
    extmem_sum_sorted,
    scan_bound,
    sum_sorted_bound,
)
from repro.mapreduce import parallel_sum
from repro.pram import condition_sensitive_sum, pram_exact_sum

DISTS = ["well", "random", "anderson", "sumzero"]
BLOCK_ITEMS = 1 << 14


def bench_stamp() -> Dict[str, object]:
    """Provenance stamp every ``BENCH_*.json`` record embeds.

    Records the git commit, platform, CPU count, numpy version and the
    optional-accelerator state (numba availability/version and thread
    count) so a stored benchmark JSON can always be traced back to the
    code, host, and backend mix that produced it. Degrades to
    ``"unknown"`` when the tree is not a git checkout (tarball
    installs, CI artifact stages).
    """
    from repro.util.capabilities import capability_report

    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    stamp: Dict[str, object] = {
        "git_sha": sha,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
    }
    stamp.update(capability_report())
    return stamp


def _timeit(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _print_table(title: str, header: Sequence[str], rows: List[Sequence[object]]) -> None:
    print(f"\n## {title}")
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)


# ----------------------------------------------------------------------
# Figure 1: time vs input size, delta = 2000
# ----------------------------------------------------------------------

def fig1(quick: bool) -> None:
    sizes = [1_000, 10_000, 100_000] if quick else [1_000, 10_000, 100_000, 1_000_000]
    print("\n# Figure 1 — total running time (s) vs input size (delta=2000)")
    print("# paper: n = 1M..1B on 32 cores; here laptop-scale, same shapes")
    for dist in DISTS:
        rows = []
        for n in sizes:
            x = generate(dist, n, delta=2000, seed=42)
            t_if = _timeit(lambda: ifastsum(x))
            t_hy = _timeit(lambda: hybrid_sum(x))
            t_sm = _timeit(
                lambda: parallel_sum(x, method="small", block_items=BLOCK_ITEMS,
                                     executor="serial")
            )
            t_sp = _timeit(
                lambda: parallel_sum(x, method="sparse", block_items=BLOCK_ITEMS,
                                     executor="serial")
            )
            rows.append((n, t_if, t_hy, t_sm, t_sp))
        _print_table(
            f"Figure 1 panel: {PANEL_NAMES[dist]}",
            ["n", "iFastSum", "HybridSum", "MR-Small", "MR-Sparse"],
            rows,
        )


# ----------------------------------------------------------------------
# Figure 2: time vs delta, fixed n
# ----------------------------------------------------------------------

def fig2(quick: bool) -> None:
    deltas = [10, 100, 1000, 2000] if quick else [10, 30, 50, 100, 300, 500, 1000, 2000]
    n = 20_000 if quick else 100_000
    print(f"\n# Figure 2 — total running time (s) vs delta (n={n})")
    for dist in DISTS:
        rows = []
        for delta in deltas:
            x = generate(dist, n, delta=delta, seed=42)
            t_if = _timeit(lambda: ifastsum(x))
            t_sm = _timeit(
                lambda: parallel_sum(x, method="small", block_items=BLOCK_ITEMS,
                                     executor="serial")
            )
            t_sp = _timeit(
                lambda: parallel_sum(x, method="sparse", block_items=BLOCK_ITEMS,
                                     executor="serial")
            )
            rows.append((delta, t_if, t_sm, t_sp))
        _print_table(
            f"Figure 2 panel: {PANEL_NAMES[dist]}",
            ["delta", "iFastSum", "MR-Small", "MR-Sparse"],
            rows,
        )


# ----------------------------------------------------------------------
# Figure 3: time vs workers (simulated cluster on single-core hosts)
# ----------------------------------------------------------------------

def fig3(quick: bool) -> None:
    workers = [1, 2, 4, 8, 16, 32]
    n = 50_000 if quick else 500_000
    print(f"\n# Figure 3 — total running time (s) vs cluster size (n={n}, delta=2000)")
    print("# MapReduce times are simulated-cluster makespans (DESIGN.md §2);")
    print("# iFastSum is single-core and flat by construction")
    for dist in DISTS:
        x = generate(dist, n, delta=2000, seed=42)
        t_if = _timeit(lambda: ifastsum(x))
        rows = []
        for p in workers:
            r_sp = parallel_sum(x, method="sparse", workers=p,
                                executor="simulated", block_items=BLOCK_ITEMS,
                                report=True)
            r_sm = parallel_sum(x, method="small", workers=p,
                                executor="simulated", block_items=BLOCK_ITEMS,
                                report=True)
            rows.append((p, t_if, r_sm.total_seconds, r_sp.total_seconds))
        _print_table(
            f"Figure 3 panel: {PANEL_NAMES[dist]}",
            ["workers", "iFastSum", "MR-Small", "MR-Sparse"],
            rows,
        )


# ----------------------------------------------------------------------
# Theory-section counters
# ----------------------------------------------------------------------

def thm2(quick: bool) -> None:
    sizes = [256, 1024, 4096] if quick else [256, 1024, 4096, 16384]
    print("\n# Theorem 2 — PRAM rounds and work vs n (random, delta=300)")
    rows = []
    for n in sizes:
        x = generate("random", n, delta=300, seed=1)
        res = pram_exact_sum(x)
        rows.append((n, res.stats.rounds, res.stats.work, res.root_active))
    _print_table("fast PRAM algorithm", ["n", "rounds", "work", "sigma"], rows)

    # the cascading ingredient: pipelined vs level-by-level sort rounds
    from repro.pram import PRAM, cole_merge_sort, parallel_merge_sort

    rows = []
    for n in sizes:
        keys = generate("random", n, delta=300, seed=1)
        m_cole = PRAM()
        _, cstats = cole_merge_sort(m_cole, keys, check_cover=False)
        m_level = PRAM()
        parallel_merge_sort(m_level, keys)
        rows.append((n, m_cole.stats.rounds, m_level.stats.rounds, cstats.stages))
    _print_table(
        "cascading (Cole) vs level-by-level sort rounds",
        ["n", "cole rounds", "level rounds", "cole stages"],
        rows,
    )


def thm4(quick: bool) -> None:
    n = 1024 if quick else 4096
    print(f"\n# Theorem 4 — condition-sensitive iterations and work (n={n})")
    cases = [
        ("well delta=20 (C=1)", generate("well", n, delta=20, seed=1)),
        ("random delta=300", generate("random", n, delta=300, seed=1)),
        ("anderson delta=300", generate("anderson", n, delta=300, seed=1)),
        ("sumzero delta=1200 (C=inf)", generate("sumzero", n, delta=1200, seed=1)),
    ]
    rows = []
    for name, x in cases:
        res = condition_sensitive_sum(x)
        rows.append(
            (name, len(res.iterations), res.iterations[-1].r, res.stats.work)
        )
    _print_table(
        "condition-sensitive algorithm",
        ["input", "iterations", "final r", "work"],
        rows,
    )


def thm5(quick: bool) -> None:
    sizes = [2_000, 8_000] if quick else [2_000, 8_000, 32_000]
    B, mem_blocks = 256, 16
    print(f"\n# Theorems 5/6 — I/O counts (B={B}, M={B * mem_blocks})")
    rows = []
    for n in sizes:
        x = generate("random", n, delta=500, seed=1)
        dev = BlockDevice(block_size=B, memory=B * mem_blocks)
        src = ExtArray.from_numpy(dev, "in", x)
        r5 = extmem_sum_sorted(dev, src)
        dev2 = BlockDevice(block_size=B, memory=B * mem_blocks)
        src2 = ExtArray.from_numpy(dev2, "in", x)
        r6 = extmem_sum_scan(dev2, src2)
        rows.append(
            (
                n,
                r5.io.total,
                sum_sorted_bound(n, B * mem_blocks, B),
                r6.io.total,
                scan_bound(n, B),
            )
        )
    _print_table(
        "I/O counters vs closed-form bounds",
        ["n", "thm5 IOs", "thm5 bound", "thm6 IOs", "scan(n)"],
        rows,
    )


def abl(quick: bool) -> None:
    """Ablation tables: radix width, combiner, fixed-point carries."""
    n = 20_000 if quick else 100_000
    x = generate("random", n, delta=500, seed=42)

    # ABL-R: digit width
    from repro.core import RadixConfig, SparseSuperaccumulator

    print(f"\n# ABL-R — radix width (n={n}, delta=500)")
    rows = []
    for w in (8, 16, 26, 30, 31):
        radix = RadixConfig(w)
        t = _timeit(lambda: SparseSuperaccumulator.from_floats(x, radix))
        sigma = SparseSuperaccumulator.from_floats(x, radix).active_count
    # (re-run per width to report sigma with the timing)
        rows.append((w, t, sigma))
    _print_table("bulk accumulate by digit width", ["w", "seconds", "sigma"], rows)

    # ABL-C: combiner on/off
    from repro.mapreduce import (
        BlockStore,
        NoCombinerSumJob,
        SparseSuperaccumulatorJob,
        run_job,
    )

    store = BlockStore(block_items=1 << 13)
    store.put("d", x)
    blocks = [b.data for b in store.blocks("d")]
    with_c = run_job(SparseSuperaccumulatorJob(), blocks, reducers=4)
    without = run_job(NoCombinerSumJob(), blocks, reducers=4)
    print("\n# ABL-C — the combine step (paper §6.2)")
    _print_table(
        "shuffle volume and time",
        ["variant", "shuffle bytes", "seconds"],
        [
            ("with combiner", with_c.shuffle_bytes, with_c.total_seconds),
            ("no combiner", without.shuffle_bytes, without.total_seconds),
        ],
    )

    # ABL-FX: fixed-point carry chains
    from repro.core.fixedpoint import FixedPointRegister

    m = 2_000 if quick else 10_000
    adv = []
    for k in range(m // 2):
        e = 20 + (k % 30)
        adv.append(float(np.ldexp(1.0, e)) * (1 - 2.0**-53))
        adv.append(float(np.ldexp(1.0, e - 53)))
    reg = FixedPointRegister()
    t = _timeit(lambda: reg.add_array(adv))
    print("\n# ABL-FX — §2 fixed-point register on a carry-adversarial stream")
    _print_table(
        "carry propagation",
        ["adds", "max carry chain (bits)", "seconds"],
        [(reg.adds, reg.max_carry_chain, t)],
    )
    print("(Lemma 1 carries travel exactly one digit position; "
          "the register's ripple above is the §2 hazard)")


COMMANDS: Dict[str, Callable[[bool], None]] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "thm2": thm2,
    "thm4": thm4,
    "thm5": thm5,
    "abl": abl,
}


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("what", choices=sorted(COMMANDS) + ["all"])
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)
    targets = sorted(COMMANDS) if args.what == "all" else [args.what]
    for t in targets:
        COMMANDS[t](args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
