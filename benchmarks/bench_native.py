"""NATIVE — binned exponent-fold kernels vs the classic exact folds.

Sweeps the standard input distributions against input size and times
the vectorized binned superaccumulator fold (PR 6 tentpole) next to
every pre-existing exact fold (``sparse``, ``small``, ``dense``).
When numba is importable the thread-parallel ``binned_jit`` backend is
measured in the same cells. Every cell asserts the candidate answer is
bit-identical to the serial sparse superaccumulator's — a native-speed
kernel may only ever trade *work*, never a bit of the result.

Usage::

    python benchmarks/bench_native.py               # full sweep
    python benchmarks/bench_native.py --quick       # CI smoke
    python benchmarks/bench_native.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_native.json`` in the repo root).
Headline acceptance bar:

* well-conditioned, ``n >= 2**20``: ``binned`` must be **>= 3x**
  faster than the fastest pre-existing exact fold in the same cell.

The record also carries a ``kernel_rates`` section (median Melem/s per
kernel over the largest cells) — the measured numbers behind
``repro.plan.KERNEL_RATES``; refresh that table from here whenever the
reference host changes.

Exit status is non-zero if the bar (or any exactness assertion) fails,
so CI can run this directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.core import exact_sum
from repro.data import generate
from repro.util.capabilities import has_numba

#: Pre-existing exact folds the binned kernel must beat.
BASELINES = ["sparse", "small", "dense"]

#: (distribution, delta) cells, ordered from benign to adversarial.
CASES = [
    ("well", 2000),
    ("random", 500),
    ("anderson", 300),
    ("sumzero", 1200),
]


def _candidates() -> List[str]:
    return ["binned"] + (["binned_jit"] if has_numba() else [])


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cell(dist: str, delta: int, n: int, reps: int) -> Dict[str, Any]:
    """One (distribution, delta, n) measurement with exactness asserts."""
    x = generate(dist, n, delta=delta, seed=42)
    expected = exact_sum(x, method="sparse")
    seconds: Dict[str, float] = {}
    for method in _candidates() + BASELINES:
        got = exact_sum(x, method=method)
        if got != expected or repr(got) != repr(expected):
            raise AssertionError(
                f"exactness violated at {dist}/delta={delta}/n={n} "
                f"({method}): {got!r} != {expected!r}"
            )
        seconds[method] = _best(lambda: exact_sum(x, method=method), reps)
    best_baseline = min(BASELINES, key=lambda m: seconds[m])
    return {
        "distribution": dist,
        "delta": delta,
        "n": int(n),
        "seconds": seconds,
        "rate_melem_per_s": {
            m: n / t / 1e6 for m, t in seconds.items()
        },
        "best_baseline": best_baseline,
        "binned_speedup": seconds[best_baseline] / seconds["binned"],
        "value_hex": expected.hex(),
    }


def sweep(sizes: Sequence[int], reps: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for dist, delta in CASES:
        for n in sizes:
            row = run_cell(dist, delta, n, reps)
            rows.append(row)
            s = row["seconds"]
            jit = (
                f"  jit={s['binned_jit'] * 1e3:8.1f}ms"
                if "binned_jit" in s
                else ""
            )
            print(
                f"  {dist:<9s} delta={delta:<5d} n=2^{int(np.log2(n)):<3d} "
                f"binned={s['binned'] * 1e3:8.1f}ms{jit}  "
                f"{row['best_baseline']}={s[row['best_baseline']] * 1e3:8.1f}ms  "
                f"{row['binned_speedup']:6.2f}x",
                flush=True,
            )
    return rows


def _median_rates(rows: List[Dict[str, Any]]) -> Dict[str, float]:
    """Median Melem/s per kernel over the largest measured cells."""
    top_n = max(r["n"] for r in rows)
    big = [r for r in rows if r["n"] == top_n]
    out: Dict[str, float] = {}
    for method in big[0]["rate_melem_per_s"]:
        out[method] = float(
            np.median([r["rate_melem_per_s"][method] for r in big])
        )
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_native.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes, reps = [1 << 16, 1 << 20], 2
    else:
        sizes, reps = [1 << 16, 1 << 18, 1 << 20, 1 << 22], 3

    print(
        f"native kernel sweep: sizes={[f'2^{int(np.log2(n))}' for n in sizes]}, "
        f"candidates={_candidates()}, baselines={BASELINES}"
    )
    rows = sweep(sizes, reps)

    big_well = [
        r for r in rows if r["distribution"] == "well" and r["n"] >= 1 << 20
    ]
    worst_speedup = min(r["binned_speedup"] for r in big_well)
    checks = {
        "binned_vs_fastest_exact_fold": {
            "worst_speedup_well_conditioned_n_ge_2^20": worst_speedup,
            "target": 3.0,
            "pass": worst_speedup >= 3.0,
        },
        "exactness": {
            "note": (
                "every cell asserted bit-identical to "
                "exact_sum(method='sparse')"
            ),
            "pass": True,  # an assertion failure aborts before this point
        },
    }
    ok = all(c["pass"] for c in checks.values())

    record = {
        "benchmark": "native",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "cases": [{"distribution": d, "delta": dl} for d, dl in CASES],
            "sizes": [int(n) for n in sizes],
            "repeats": reps,
            "seed": 42,
            "candidates": _candidates(),
            "baselines": BASELINES,
        },
        "rows": rows,
        "kernel_rates_melem_per_s": _median_rates(rows),
        "headline": checks,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: binned {worst_speedup:.1f}x the fastest exact fold "
        f"(target >= 3x) -> {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
