"""ABL-SEQ — the sequential accuracy/speed ladder.

One place to compare every sequential method on identical data: the
naive orderings, compensated summation, Shewchuk expansions, iFastSum,
HybridSum, and the two superaccumulators. Exact methods must agree
bit-for-bit; the bench records what each accuracy level costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.baselines import (
    expansion_sum_value,
    hybrid_sum,
    ifastsum,
    kahan_sum,
    klein_sum,
    neumaier_sum,
    pairwise_sum,
    recursive_sum,
)
from repro.core import SmallSuperaccumulator, exact_sum

N = scaled(50_000)

LADDER = [
    ("recursive", recursive_sum, False),
    ("pairwise", pairwise_sum, False),
    ("kahan", kahan_sum, False),
    ("neumaier", neumaier_sum, False),
    ("klein", klein_sum, False),
    ("ifastsum", ifastsum, True),
    ("hybrid", hybrid_sum, True),
    ("small-superacc", SmallSuperaccumulator.sum, True),
    ("sparse-superacc", lambda x: exact_sum(x, method="sparse"), True),
]


@pytest.mark.parametrize("name,fn,exact", LADDER, ids=[r[0] for r in LADDER])
def test_ladder_random(benchmark, name, fn, exact):
    x = dataset("random", N, 400)
    benchmark.group = "sequential-ladder-random"
    got = benchmark(fn, x)
    if exact:
        assert got == exact_sum(x)


@pytest.mark.parametrize(
    "name,fn,exact",
    [r for r in LADDER if r[2]],
    ids=[r[0] for r in LADDER if r[2]],
)
def test_ladder_sumzero_exact_only(benchmark, name, fn, exact):
    x = dataset("sumzero", N, 400)
    benchmark.group = "sequential-ladder-sumzero"
    got = benchmark(fn, x)
    assert got == 0.0


def test_expansion_small_input(benchmark):
    # expansions are quadratic under cancellation: bench at reduced n
    x = dataset("random", scaled(2_000), 400)
    benchmark.group = "sequential-ladder-random"
    got = benchmark(expansion_sum_value, x)
    assert got == pytest.approx(exact_sum(x), abs=0.0) or got == exact_sum(x)
