"""FIG1 — total running time vs input size (paper Figure 1).

Paper setup: n sweeps 1M -> 1B at delta = 2000, four distribution
panels, three algorithms: sequential iFastSum, MapReduce with small
superaccumulators, MapReduce with sparse superaccumulators.

Here each (algorithm x distribution x n) point is a pytest-benchmark
case at laptop scale (n in {10k, 100k}; the full multi-point series is
printed by ``python benchmarks/harness.py fig1``). Expected shape:
iFastSum wins at small n; the combine-based algorithms win at large n
(they are vectorized, iFastSum is an inherently sequential loop);
small-superaccumulator slightly faster than sparse.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.baselines import hybrid_sum, ifastsum
from repro.mapreduce import parallel_sum

DISTS = ["well", "random", "anderson", "sumzero"]
SIZES = [scaled(10_000), scaled(100_000)]
DELTA = 2000


def _mapreduce(method, x):
    return parallel_sum(x, method=method, block_items=1 << 14, executor="serial")


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("n", SIZES)
def test_fig1_ifastsum(benchmark, dist, n):
    x = dataset(dist, n, DELTA)
    benchmark.group = f"fig1-{dist}-n{n}"
    benchmark(ifastsum, x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("n", SIZES)
def test_fig1_hybridsum(benchmark, dist, n):
    # the vectorized sequential champion (wall-clock-fair comparator for
    # the paper's C++ iFastSum; see DESIGN.md substitutions)
    x = dataset(dist, n, DELTA)
    benchmark.group = f"fig1-{dist}-n{n}"
    benchmark(hybrid_sum, x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("n", SIZES)
def test_fig1_mapreduce_sparse(benchmark, dist, n):
    x = dataset(dist, n, DELTA)
    benchmark.group = f"fig1-{dist}-n{n}"
    benchmark(_mapreduce, "sparse", x)


@pytest.mark.parametrize("dist", DISTS)
@pytest.mark.parametrize("n", SIZES)
def test_fig1_mapreduce_small(benchmark, dist, n):
    x = dataset(dist, n, DELTA)
    benchmark.group = f"fig1-{dist}-n{n}"
    benchmark(_mapreduce, "small", x)
