"""Shared configuration for the benchmark suite.

Scales: the paper ran 1M-1B elements on a 32-core EC2 node; this pure
Python/NumPy reproduction defaults to laptop-friendly sizes that keep a
full ``pytest benchmarks/ --benchmark-only`` run in minutes while
preserving every qualitative shape (see EXPERIMENTS.md). Override with
``REPRO_BENCH_SCALE`` (a float multiplier on every n).
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.data import generate

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Apply the global size multiplier."""
    return max(4, int(n * SCALE))


@lru_cache(maxsize=64)
def dataset(dist: str, n: int, delta: int = 2000, seed: int = 42):
    """Cached paper-distribution dataset (shared across benches)."""
    return generate(dist, n, delta=delta, seed=seed)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE
