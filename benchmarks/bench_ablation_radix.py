"""ABL-R — digit-width ablation for the sparse superaccumulator.

DESIGN.md §5.1: we default to w = 30 rather than the paper's
R = 2**(t-1) = 2**51 because int64 vectorization needs w <= 31. This
bench quantifies the trade-off: wider digits mean fewer components per
double and fewer active indices (less merge work) but a smaller
deferred-accumulation budget; narrow digits inflate component counts.
The scalar paper radix (w = 51) is measured through the per-element
path to document what the vectorization buys.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.core import RadixConfig, SparseSuperaccumulator

N = scaled(100_000)
WIDTHS = [8, 16, 26, 30, 31]


@pytest.mark.parametrize("w", WIDTHS)
def test_radix_bulk_accumulate(benchmark, w):
    x = dataset("random", N, 500)
    radix = RadixConfig(w)
    benchmark.group = "ablation-radix-bulk"
    acc = benchmark(SparseSuperaccumulator.from_floats, x, radix)
    assert acc.to_float() is not None


@pytest.mark.parametrize("w", WIDTHS)
def test_radix_active_count(benchmark, w):
    """Component counts vs width (the sigma(n) the merges pay for)."""
    x = dataset("random", scaled(20_000), 500)
    radix = RadixConfig(w)
    benchmark.group = "ablation-radix-sigma"
    acc = benchmark.pedantic(
        SparseSuperaccumulator.from_floats, args=(x, radix), rounds=1, iterations=1
    )
    # narrower digits => more active components for the same data
    assert acc.active_count >= 500 // (2 * w)


def test_radix_paper_scalar_path(benchmark):
    """The paper's R = 2**51 through the scalar add_float path."""
    x = dataset("random", scaled(2_000), 500)
    radix = RadixConfig(51)
    benchmark.group = "ablation-radix-scalar"

    def run():
        acc = SparseSuperaccumulator.zero(radix)
        for v in x:
            acc = acc.add_float(float(v))
        return acc

    acc = benchmark(run)
    assert acc.to_float() is not None


def test_radix_w30_scalar_path(benchmark):
    """Same scalar path at the default width, for a like-for-like."""
    x = dataset("random", scaled(2_000), 500)
    radix = RadixConfig(30)
    benchmark.group = "ablation-radix-scalar"

    def run():
        acc = SparseSuperaccumulator.zero(radix)
        for v in x:
            acc = acc.add_float(float(v))
        return acc

    benchmark(run)
