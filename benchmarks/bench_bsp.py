"""BSP substrate benches: exact allreduce scaling in rank count.

The allreduce moves P log P fixed-size accumulators instead of data, so
cost should be dominated by the per-rank combine of local blocks —
near-constant in P for fixed total data — with supersteps = log P.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import dataset, scaled
from repro.bsp import exact_allreduce_sum

N = scaled(200_000)


@pytest.mark.parametrize("p", [2, 8, 32])
def test_allreduce_rank_scaling(benchmark, p):
    x = dataset("random", N, 300)
    blocks = np.array_split(x, p)
    benchmark.group = "bsp-allreduce"
    res = benchmark(exact_allreduce_sum, blocks)
    assert res.supersteps <= math.ceil(math.log2(p)) + 2
    assert len(set(res.values)) == 1


def test_allreduce_wire_volume(benchmark):
    benchmark.group = "bsp-allreduce"
    x = dataset("random", N, 300)

    def measure():
        vols = []
        for p in (4, 16):
            res = exact_allreduce_sum(np.array_split(x, p))
            vols.append(res.bytes_sent)
        return vols

    v4, v16 = benchmark.pedantic(measure, rounds=1, iterations=1)
    # P log P growth in accumulator-sized messages, not data-sized
    assert v16 < v4 * 16
    assert v16 < 8 * N  # far below shipping the data
