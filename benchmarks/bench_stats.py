"""Exact-reduction benches: what correct rounding costs downstream users.

Compares the exact mean/variance/norm against their NumPy counterparts
(which are approximate) and benchmarks the reproducible binned sum
against the exact methods — the speed/guarantee trade-off triangle:
fast-and-wrong (NumPy), fast-and-reproducible (binned), exact (ours).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import dataset, scaled
from repro.baselines.binned import binned_sum
from repro.core import exact_sum
from repro.stats import exact_mean, exact_norm2, exact_variance

N = scaled(100_000)


@pytest.mark.parametrize(
    "name,fn",
    [
        ("np.mean", lambda x: float(np.mean(x))),
        ("exact_mean", exact_mean),
    ],
    ids=["np-mean", "exact-mean"],
)
def test_mean(benchmark, name, fn):
    x = dataset("random", N, 100)
    benchmark.group = "stats-mean"
    benchmark(fn, x)


@pytest.mark.parametrize(
    "name,fn",
    [
        ("np.var", lambda x: float(np.var(x))),
        ("exact_variance", exact_variance),
    ],
    ids=["np-var", "exact-var"],
)
def test_variance(benchmark, name, fn):
    x = dataset("random", scaled(20_000), 30)
    benchmark.group = "stats-variance"
    benchmark(fn, x)


@pytest.mark.parametrize(
    "name,fn",
    [
        ("np.linalg.norm", lambda x: float(np.linalg.norm(x))),
        ("exact_norm2", exact_norm2),
    ],
    ids=["np-norm", "exact-norm"],
)
def test_norm(benchmark, name, fn):
    x = dataset("random", scaled(20_000), 30)
    benchmark.group = "stats-norm"
    benchmark(fn, x)


@pytest.mark.parametrize(
    "name,fn",
    [
        ("np.sum", lambda x: float(np.sum(x))),
        ("binned(reproducible)", lambda x: binned_sum(x).value),
        ("exact", exact_sum),
    ],
    ids=["np-sum", "binned", "exact"],
)
def test_guarantee_ladder(benchmark, name, fn):
    x = dataset("random", N, 200)
    benchmark.group = "stats-guarantee-ladder"
    benchmark(fn, x)
