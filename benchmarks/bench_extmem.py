"""THM5/THM6 — external-memory I/O counters versus the theorems' bounds.

Theorem 5: O(sort(n)) I/Os without memory assumptions. Theorem 6:
O(scan(n)) I/Os when the superaccumulator fits in internal memory —
and exactly scan(n) in this implementation. Counters are asserted
against the closed-form predictions of :mod:`repro.extmem.io_model`.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import dataset, scaled
from repro.extmem import (
    BlockDevice,
    ExtArray,
    extmem_sum_scan,
    extmem_sum_sorted,
    scan_bound,
    sum_sorted_bound,
)

B = 256
N = scaled(20_000)


def _device(mem_blocks: int) -> BlockDevice:
    return BlockDevice(block_size=B, memory=B * mem_blocks)


@pytest.mark.parametrize("mem_blocks", [8, 64])
def test_thm5_sorting_based(benchmark, mem_blocks):
    x = dataset("random", N, 500)
    benchmark.group = "thm5-sort"

    def run():
        dev = _device(mem_blocks)
        src = ExtArray.from_numpy(dev, "in", x)
        return extmem_sum_sorted(dev, src)

    res = benchmark(run)
    assert res.io.total <= 2 * sum_sorted_bound(N, B * mem_blocks, B)


def test_thm5_io_shrinks_with_memory(benchmark):
    benchmark.group = "thm5-sort"
    x = dataset("random", N, 500)

    def measure():
        ios = []
        for mem_blocks in (6, 48):
            dev = _device(mem_blocks)
            src = ExtArray.from_numpy(dev, "in", x)
            ios.append(extmem_sum_sorted(dev, src).io.total)
        return ios

    small_m, big_m = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert big_m <= small_m


@pytest.mark.parametrize("delta", [50, 1500])
def test_thm6_scan_based(benchmark, delta):
    x = dataset("random", N, delta)
    benchmark.group = "thm6-scan"

    def run():
        dev = _device(64)
        src = ExtArray.from_numpy(dev, "in", x)
        return extmem_sum_scan(dev, src)

    res = benchmark(run)
    # exactly scan(n) reads, zero writes
    assert res.io.total == scan_bound(N, B)
    assert res.io.writes == 0


def test_thm6_beats_thm5_in_ios(benchmark):
    benchmark.group = "thm6-scan"
    x = dataset("random", N, 500)

    def measure():
        dev = _device(64)
        src = ExtArray.from_numpy(dev, "in", x)
        io6 = extmem_sum_scan(dev, src).io.total
        dev2 = _device(64)
        src2 = ExtArray.from_numpy(dev2, "in", x)
        io5 = extmem_sum_sorted(dev2, src2).io.total
        return io5, io6

    io5, io6 = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert io6 < io5
