"""ADAPTIVE — condition-adaptive tiered engine vs always-exact sparse.

Sweeps condition number (via the input distributions) against input
size and times ``adaptive_sum`` next to ``exact_sum(method="sparse")``.
Every cell asserts the adaptive answer is bit-identical to the sparse
superaccumulator's — the engine may only ever trade *work*, never a
bit of the result. Each cell also records which tier served it and the
Tier-0 certificate margin, so the JSON doubles as a regression record
for the certificate's tightness.

Usage::

    python benchmarks/bench_adaptive.py               # full sweep
    python benchmarks/bench_adaptive.py --quick       # CI smoke
    python benchmarks/bench_adaptive.py -o out.json   # custom output

Writes a JSON record (default ``BENCH_adaptive.json`` in the repo
root). Headline acceptance bars:

* well-conditioned (``C(X) ~ 1``), ``n >= 2**20``: adaptive must be
  **>= 5x** faster than the sparse exact path (Tier 0 certifies and
  returns after ~6 vector passes);
* adversarial massive cancellation: adaptive may cost at most **1.3x**
  the sparse path (the failed certificate is a small prefix of the
  exact work it escalates into);
* Tier-0 acceptance on well-conditioned cells must be non-zero — a
  certificate that never fires is a silent perf regression.

Exit status is non-zero if any bar (or any exactness assertion) fails,
so CI can run this directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

try:
    from benchmarks.harness import bench_stamp
except ImportError:  # run as a plain script from benchmarks/
    from harness import bench_stamp

from repro.adaptive import adaptive_sum_detail
from repro.core import condition_number, exact_sum
from repro.data import generate

#: (distribution, delta) cells, ordered from benign to adversarial.
CASES = [
    ("well", 100),
    ("well", 2000),
    ("random", 500),
    ("anderson", 300),
    ("cancel", 1000),
    ("tie", 40),
]


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cell(dist: str, delta: int, n: int, reps: int) -> Dict[str, Any]:
    """One (distribution, delta, n) measurement with exactness assert."""
    x = generate(dist, n, delta=delta, seed=42)
    detail = adaptive_sum_detail(x)
    expected = exact_sum(x, method="sparse")
    if detail.value != expected:
        raise AssertionError(
            f"exactness violated at {dist}/delta={delta}/n={n}: "
            f"{detail.value!r} != {expected!r}"
        )
    t_adapt = _best(lambda: adaptive_sum_detail(x), reps)
    t_sparse = _best(lambda: exact_sum(x, method="sparse"), reps)
    cond = condition_number(x)
    return {
        "distribution": dist,
        "delta": delta,
        "n": int(n),
        "condition_number": cond if np.isfinite(cond) else "inf",
        "tier": detail.tier,
        "escalations": detail.escalations,
        "margin_bits": detail.margin_bits if np.isfinite(detail.margin_bits) else None,
        "adaptive_seconds": t_adapt,
        "sparse_seconds": t_sparse,
        "speedup": t_sparse / t_adapt,
        "value_hex": detail.value.hex(),
    }


def sweep(sizes: Sequence[int], reps: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for dist, delta in CASES:
        for n in sizes:
            row = run_cell(dist, delta, n, reps)
            rows.append(row)
            margin = row["margin_bits"]
            print(
                f"  {dist:<9s} delta={delta:<5d} n=2^{int(np.log2(n)):<3d} "
                f"tier={row['tier']}  "
                f"adaptive={row['adaptive_seconds'] * 1e3:8.1f}ms  "
                f"sparse={row['sparse_seconds'] * 1e3:8.1f}ms  "
                f"{row['speedup']:6.2f}x"
                + (f"  margin={margin:.0f}b" if margin is not None else ""),
                flush=True,
            )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_adaptive.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes, reps = [1 << 16, 1 << 20], 2
    else:
        sizes, reps = [1 << 16, 1 << 18, 1 << 20, 1 << 22], 3

    print(f"adaptive engine sweep: sizes={[f'2^{int(np.log2(n))}' for n in sizes]}, "
          f"cases={CASES}")
    rows = sweep(sizes, reps)

    # Headline bars.
    big_well = [
        r for r in rows if r["distribution"] == "well" and r["n"] >= 1 << 20
    ]
    well_speedup = min(r["speedup"] for r in big_well)
    tier0_well = sum(1 for r in rows if r["distribution"] == "well" and r["tier"] == 0)
    adversarial = [r for r in rows if r["distribution"] == "cancel"]
    worst_ratio = max(r["adaptive_seconds"] / r["sparse_seconds"] for r in adversarial)

    checks = {
        "well_conditioned_speedup": {
            "worst_speedup_at_n_ge_2^20": well_speedup,
            "target": 5.0,
            "pass": well_speedup >= 5.0,
        },
        "adversarial_overhead": {
            "worst_adaptive_over_sparse": worst_ratio,
            "target": 1.3,
            "pass": worst_ratio <= 1.3,
        },
        "tier0_acceptance": {
            "well_conditioned_tier0_cells": tier0_well,
            "pass": tier0_well > 0,
        },
        "exactness": {
            "note": "every cell asserted bit-identical to exact_sum(method='sparse')",
            "pass": True,  # an assertion failure aborts before this point
        },
    }
    ok = all(c["pass"] for c in checks.values())

    record = {
        "benchmark": "adaptive",
        "quick": args.quick,
        "host": bench_stamp(),
        "config": {
            "cases": [{"distribution": d, "delta": dl} for d, dl in CASES],
            "sizes": [int(n) for n in sizes],
            "repeats": reps,
            "seed": 42,
        },
        "rows": rows,
        "headline": checks,
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"headline: well-conditioned {well_speedup:.1f}x (target >= 5x), "
        f"adversarial {worst_ratio:.2f}x (target <= 1.3x), "
        f"tier-0 acceptance {tier0_well} cells -> {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
