"""ABL-B — HDFS block-size ablation for the MapReduce job.

The paper inherits 128 MB blocks from HDFS. Block size trades combine
vectorization (bigger = better amortization) against parallel slack and
shuffle volume (more blocks = more combiner outputs). This bench sweeps
block_items and records total job time plus the simulated 8-worker
makespan, exposing the plateau the default sits on.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import dataset, scaled
from repro.mapreduce import parallel_sum

N = scaled(400_000)
BLOCK_SIZES = [1 << 10, 1 << 13, 1 << 16, 1 << 18]


@pytest.mark.parametrize("block_items", BLOCK_SIZES)
def test_block_size_serial(benchmark, block_items):
    x = dataset("random", N, 500)
    benchmark.group = "ablation-blocksize-serial"
    value = benchmark(
        parallel_sum, x, method="sparse", block_items=block_items,
        executor="serial",
    )
    assert value == parallel_sum(x, method="sparse")


@pytest.mark.parametrize("block_items", BLOCK_SIZES)
def test_block_size_makespan_8_workers(benchmark, block_items):
    x = dataset("random", N, 500)
    benchmark.group = "ablation-blocksize-makespan"

    def run():
        return parallel_sum(
            x, method="sparse", block_items=block_items, workers=8,
            executor="simulated", report=True,
        ).total_seconds

    makespan = benchmark.pedantic(run, rounds=3, iterations=1)
    assert makespan > 0
