"""Unit tests for the Theorem 2 set-equality reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pram.lower_bound import (
    set_equality_instance,
    sets_equal_by_summation,
    tau_for,
)


class TestTau:
    def test_values(self):
        assert tau_for(1) == 1
        assert tau_for(2) == 2
        assert tau_for(3) == 2
        assert tau_for(4) == 4   # log2(4)=2 -> smallest power of two > 2
        assert tau_for(16) == 8
        assert tau_for(1000) == 16

    def test_strictly_exceeds_log(self):
        import math

        for n in (2, 5, 100, 10_000):
            assert tau_for(n) > math.log2(n)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tau_for(0)


class TestInstance:
    def test_shapes_and_signs(self):
        vals, tau = set_equality_instance([1, 2], [2, 3])
        assert vals.size == 4
        assert (vals[:2] < 0).all() and (vals[2:] > 0).all()

    def test_exponent_gap(self):
        vals, tau = set_equality_instance([0, 1, 2], [0, 1, 2])
        mags = np.unique(np.abs(vals))
        ratios = mags[1:] / mags[:-1]
        assert (ratios >= 2.0**tau).all()

    def test_universe_too_large(self):
        with pytest.raises(ValueError, match="universe"):
            set_equality_instance([600], [600])  # tau=2, 2*600 > 1023

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            set_equality_instance([-1], [1])


class TestReduction:
    def test_equal_multisets(self):
        assert sets_equal_by_summation([1, 2, 3], [3, 2, 1])
        assert sets_equal_by_summation([5, 5, 2], [2, 5, 5])
        assert sets_equal_by_summation([], [])
        assert sets_equal_by_summation([7], [7])

    def test_unequal(self):
        assert not sets_equal_by_summation([1, 2, 3], [1, 2, 4])
        assert not sets_equal_by_summation([5, 5, 2], [5, 2, 2])
        assert not sets_equal_by_summation([1], [1, 1])  # different sizes

    def test_multiplicity_matters(self):
        assert not sets_equal_by_summation([1, 1, 2], [1, 2, 2])

    def test_random_permutations(self, rng):
        for _ in range(20):
            c = rng.integers(0, 30, size=12).tolist()
            d = list(c)
            rng.shuffle(d)
            assert sets_equal_by_summation(c, d)
            d[0] = (d[0] + 1) % 30
            same = sorted(c) == sorted(d)
            assert sets_equal_by_summation(c, d) == same

    def test_cancellation_cannot_fool_it(self):
        # n copies of a smaller exponent cannot pile up into a larger
        # one: the tau gap guarantees it
        c = [0] * 8
        d = [1] + [0] * 7
        assert not sets_equal_by_summation(c, d)
