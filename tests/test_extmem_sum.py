"""Unit tests for the Theorem 5 / Theorem 6 summation algorithms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelViolationError
from repro.extmem.device import BlockDevice
from repro.extmem.ext_array import ExtArray
from repro.extmem.io_model import scan_bound, sum_sorted_bound
from repro.extmem.sum_scan import extmem_sum_scan
from repro.extmem.sum_sort import extmem_sum_sorted
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum


def load(x, *, B=64, mem_blocks=8):
    dev = BlockDevice(block_size=B, memory=B * mem_blocks)
    return dev, ExtArray.from_numpy(dev, "input", np.asarray(x, dtype=np.float64))


class TestTheorem5:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        # Theorem 5 needs ~6 blocks resident (input + 3x component
        # expansion + writer + merge buffers); see extmem_sum_sorted.
        dev, src = load(case, B=4, mem_blocks=8)
        assert extmem_sum_sorted(dev, src).value == ref_sum(case)

    def test_random(self, rng):
        for _ in range(8):
            x = random_hard_array(rng, int(rng.integers(1, 2000)))
            dev, src = load(x)
            assert extmem_sum_sorted(dev, src).value == ref_sum(x)

    def test_io_within_sort_bound(self, rng):
        n = 10_000
        x = random_hard_array(rng, n)
        dev, src = load(x, B=128, mem_blocks=10)
        res = extmem_sum_sorted(dev, src)
        assert res.io.total <= 2 * sum_sorted_bound(n, dev.memory, dev.block_size)

    def test_scratch_cleaned(self, rng):
        dev, src = load(random_hard_array(rng, 500))
        extmem_sum_sorted(dev, src)
        assert dev.list_files() == ["input"]

    def test_sigma_reported(self, rng):
        dev, src = load(random_hard_array(rng, 500))
        res = extmem_sum_sorted(dev, src)
        assert res.components > 0

    def test_empty_file(self):
        dev = BlockDevice(block_size=8, memory=64)
        src = ExtArray(dev, "input")
        assert extmem_sum_sorted(dev, src).value == 0.0

    def test_sum_zero(self, rng):
        x = rng.random(300)
        data = np.concatenate([x, -x])
        rng.shuffle(data)
        dev, src = load(data)
        assert extmem_sum_sorted(dev, src).value == 0.0

    def test_directed_mode(self, rng):
        from fractions import Fraction
        from tests.conftest import exact_fraction

        x = random_hard_array(rng, 200)
        dev, src = load(x)
        lo = extmem_sum_sorted(dev, src, mode="down", scratch_prefix="_d").value
        hi = extmem_sum_sorted(dev, src, mode="up", scratch_prefix="_u").value
        assert Fraction(lo) <= exact_fraction(x) <= Fraction(hi)


class TestTheorem6:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        dev, src = load(case, B=4, mem_blocks=64)
        assert extmem_sum_scan(dev, src).value == ref_sum(case)

    def test_random(self, rng):
        for _ in range(8):
            x = random_hard_array(rng, int(rng.integers(1, 2000)))
            dev, src = load(x, mem_blocks=16)
            assert extmem_sum_scan(dev, src).value == ref_sum(x)

    def test_exactly_scan_ios(self, rng):
        n = 5000
        x = random_hard_array(rng, n)
        dev, src = load(x, B=64, mem_blocks=16)
        res = extmem_sum_scan(dev, src)
        assert res.io.total == scan_bound(n, 64)
        assert res.io.writes == 0  # pure scan: no output spilling

    def test_memory_violation_when_sigma_exceeds_m(self, rng):
        # wide exponent range -> many active components; tiny M trips it
        x = random_hard_array(rng, 2000, emin=-900, emax=900)
        dev = BlockDevice(block_size=8, memory=30)
        src = ExtArray.from_numpy(dev, "input", x)
        with pytest.raises(ModelViolationError):
            extmem_sum_scan(dev, src)

    def test_agrees_with_theorem5(self, rng):
        x = random_hard_array(rng, 3000)
        dev, src = load(x, mem_blocks=16)
        v6 = extmem_sum_scan(dev, src).value
        dev2, src2 = load(x, mem_blocks=16)
        v5 = extmem_sum_sorted(dev2, src2).value
        assert v5 == v6

    def test_fewer_ios_than_theorem5(self, rng):
        x = random_hard_array(rng, 5000)
        dev, src = load(x, mem_blocks=16)
        r6 = extmem_sum_scan(dev, src)
        dev2, src2 = load(x, mem_blocks=16)
        r5 = extmem_sum_sorted(dev2, src2)
        assert r6.io.total < r5.io.total
