"""Unit tests for the Cole-style pipelined merge sort."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ModelViolationError
from repro.pram.cole import cole_merge_sort
from repro.pram.machine import PRAM
from repro.pram.primitives import parallel_merge_sort


class TestCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 16, 17, 100, 1024, 1025])
    def test_sorts(self, n, rng):
        keys = rng.random(n)
        out, _ = cole_merge_sort(PRAM(), keys)
        assert (out == np.sort(keys)).all()

    def test_duplicates(self, rng):
        keys = rng.integers(0, 5, 500).astype(np.float64)
        out, stats = cole_merge_sort(PRAM(), keys)
        assert (out == np.sort(keys)).all()

    def test_presorted_and_reversed(self, rng):
        keys = np.sort(rng.random(300))
        out, _ = cole_merge_sort(PRAM(), keys)
        assert (out == keys).all()
        out2, _ = cole_merge_sort(PRAM(), keys[::-1])
        assert (out2 == keys).all()

    def test_negative_and_special_values(self):
        keys = np.array([-1e300, 0.0, -0.0, 1e-300, -5.0, 2.0**-1074])
        out, _ = cole_merge_sort(PRAM(), keys)
        assert (out == np.sort(keys)).all()


class TestPipelineProperties:
    def test_stages_linear_in_log_n(self, rng):
        for n in (64, 1024, 4096):
            _, stats = cole_merge_sort(PRAM(), rng.random(n))
            logn = math.ceil(math.log2(n))
            # the schedule fills one level every ~4 stages
            assert stats.stages <= 4 * logn + 6

    def test_rounds_beat_level_by_level_asymptotically(self, rng):
        n = 4096
        m_cole = PRAM()
        cole_merge_sort(m_cole, rng.random(n))
        m_level = PRAM()
        parallel_merge_sort(m_level, rng.random(n))
        # O(log n) vs O(log^2 n): at n = 4096 the gap is already visible
        assert m_cole.stats.rounds < m_level.stats.rounds

    def test_work_n_log_n(self, rng):
        _, s1 = cole_merge_sort(PRAM(), rng.random(512))
        _, s2 = cole_merge_sort(PRAM(), rng.random(4096))
        ratio = s2.total_items_processed / s1.total_items_processed
        assert 6 <= ratio <= 16  # 8x elements, ~n log n growth

    def test_cover_property_holds(self, rng):
        # the invariant justifying O(1) rounds per stage: bounded
        # interleaving between successive lists at every node
        for seed in range(5):
            keys = np.random.default_rng(seed).random(2000)
            _, stats = cole_merge_sort(PRAM(), keys, check_cover=True)
            assert stats.max_cover_gap <= 6

    def test_cover_check_can_trip(self, rng):
        # sanity that the checker is live: an absurd bound of 0 trips
        with pytest.raises(ModelViolationError):
            cole_merge_sort(PRAM(), rng.random(64), cover_bound=0)

    def test_adversarial_orders_keep_cover(self, rng):
        n = 1024
        for keys in (
            np.arange(n, dtype=np.float64),
            np.arange(n, dtype=np.float64)[::-1].copy(),
            np.tile([1.0, -1.0], n // 2),
            np.repeat(rng.random(8), n // 8),
        ):
            _, stats = cole_merge_sort(PRAM(), keys, check_cover=True)
            assert stats.max_cover_gap <= 6
            assert (cole_merge_sort(PRAM(), keys)[0] == np.sort(keys)).all()
