"""Unit tests for the BSP substrate and exact allreduce."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bsp import BSPMachine, exact_allreduce_sum
from repro.errors import ModelViolationError
from tests.conftest import random_hard_array, ref_sum


class TestBSPMachine:
    def test_ping_pong(self):
        machine = BSPMachine(2)

        def prog(rank):
            if rank.rank == 0:
                rank.send(1, b"ping")
            yield
            got = rank.recv_all()
            if rank.rank == 1:
                assert got == [(0, b"ping")]
                rank.send(0, b"pong")
            yield
            return rank.recv_all()

        results = machine.run(prog)
        assert results[0] == [(1, b"pong")]
        assert machine.stats.messages == 2
        assert machine.stats.bytes_sent == 8

    def test_deterministic_delivery_order(self):
        machine = BSPMachine(4)

        def prog(rank):
            if rank.rank != 3:
                rank.send(3, bytes([rank.rank]))
            yield
            return [src for src, _ in rank.recv_all()]

        results = machine.run(prog)
        assert results[3] == [0, 1, 2]  # sender order, deterministic

    def test_bad_destination(self):
        machine = BSPMachine(2)

        def prog(rank):
            rank.send(5, b"x")
            yield

        with pytest.raises(ValueError):
            machine.run(prog)

    def test_non_bytes_payload_rejected(self):
        machine = BSPMachine(1)

        def prog(rank):
            rank.send(0, 3.14)  # type: ignore[arg-type]
            yield

        with pytest.raises(TypeError):
            machine.run(prog)

    def test_runaway_program_detected(self):
        machine = BSPMachine(1)

        def prog(rank):
            while True:
                yield

        with pytest.raises(ModelViolationError):
            machine.run(prog)


class TestExactAllreduce:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 16])
    def test_all_ranks_identical_and_correct(self, p, rng):
        data = random_hard_array(rng, 1000)
        blocks = np.array_split(data, p)
        res = exact_allreduce_sum(blocks)
        want = ref_sum(data)
        assert res.values == [want] * p

    @pytest.mark.parametrize("p", [2, 4, 8, 16, 32])
    def test_log_p_supersteps(self, p, rng):
        blocks = [rng.random(10) for _ in range(p)]
        res = exact_allreduce_sum(blocks)
        assert res.supersteps <= math.ceil(math.log2(p)) + 2

    def test_schedule_independence(self, rng):
        # the reproducibility claim: any partitioning, same bits
        data = random_hard_array(rng, 2000)
        outs = set()
        for p in (1, 3, 4, 7, 16):
            res = exact_allreduce_sum(np.array_split(data, p))
            outs.update(res.values)
        assert len(outs) == 1

    def test_uneven_and_empty_blocks(self, rng):
        blocks = [rng.random(100), np.empty(0), rng.random(3), np.empty(0)]
        res = exact_allreduce_sum(blocks)
        want = ref_sum(np.concatenate(blocks))
        assert res.values == [want] * 4

    def test_sum_zero_exact(self, rng):
        x = rng.random(500)
        data = np.concatenate([x, -x])
        rng.shuffle(data)
        res = exact_allreduce_sum(np.array_split(data, 6))
        assert res.values == [0.0] * 6

    def test_message_volume_p_log_p(self, rng):
        p = 16
        blocks = [rng.random(10) for _ in range(p)]
        res = exact_allreduce_sum(blocks)
        assert res.messages == p * math.ceil(math.log2(p))

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            exact_allreduce_sum([])

    def test_directed_mode(self, rng):
        from fractions import Fraction

        from tests.conftest import exact_fraction

        data = random_hard_array(rng, 300)
        lo = exact_allreduce_sum(np.array_split(data, 4), mode="down").values[0]
        hi = exact_allreduce_sum(np.array_split(data, 4), mode="up").values[0]
        assert Fraction(lo) <= exact_fraction(data) <= Fraction(hi)
