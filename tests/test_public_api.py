"""Release-quality guards: public API surface integrity.

Every package must export exactly what its ``__all__`` promises, the
README quickstart must run verbatim, and version metadata must be
consistent.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.baselines",
    "repro.pram",
    "repro.extmem",
    "repro.mapreduce",
    "repro.bsp",
    "repro.geometry",
    "repro.data",
    "repro.util",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for sym in mod.__all__:
        assert hasattr(mod, sym), f"{name}.{sym} in __all__ but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_symbols_documented(name):
    mod = importlib.import_module(name)
    assert (mod.__doc__ or "").strip(), f"{name} lacks a module docstring"
    for sym in mod.__all__:
        obj = getattr(mod, sym)
        if callable(obj) or isinstance(obj, type):
            assert (getattr(obj, "__doc__", None) or "").strip(), (
                f"{name}.{sym} lacks a docstring"
            )


def test_version_consistent():
    import repro

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    text = pyproject.read_text()
    m = re.search(r'^version = "([^"]+)"', text, re.M)
    assert m and m.group(1) == repro.__version__


def test_readme_quickstart_runs():
    import numpy as np

    from repro import exact_sum

    x = np.array([1e16, 1.0, -1e16])
    assert float(np.sum(x)) != 1.0
    assert exact_sum(x) == 1.0


def test_readme_code_mentions_exist():
    """Every module path mentioned in the README exists."""
    readme = (Path(__file__).resolve().parents[1] / "README.md").read_text()
    for mod in re.findall(r"`repro\.([a-z_.]+)`", readme):
        mod = mod.rstrip(".")
        try:
            importlib.import_module(f"repro.{mod}")
        except ImportError:
            # might be an attribute path like repro.core.sparse.Foo
            parent, _, leaf = f"repro.{mod}".rpartition(".")
            pmod = importlib.import_module(parent)
            assert hasattr(pmod, leaf), f"README mentions missing repro.{mod}"


def test_examples_referenced_in_readme_exist():
    root = Path(__file__).resolve().parents[1]
    readme = (root / "README.md").read_text()
    for script in re.findall(r"`([a-z_]+\.py)`", readme):
        assert (root / "examples" / script).exists(), script
