"""Unit tests for error-free transformations."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.eft import (
    fast_two_sum,
    fast_two_sum_vec,
    split,
    two_product,
    two_product_vec,
    two_square,
    two_square_vec,
    two_sum,
    two_sum_vec,
)


class TestTwoSum:
    def test_identity(self):
        s, e = two_sum(1.5, 2.25)
        assert s == 3.75 and e == 0.0

    def test_error_captured(self):
        s, e = two_sum(1e16, 1.0)
        assert s == 1e16
        assert e == 1.0  # the lost addend reappears exactly

    def test_exactness_property(self):
        # s + e == x + y exactly, over a wide range of magnitudes.
        rng = np.random.default_rng(1)
        for _ in range(500):
            x = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-80, 80))))
            y = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-80, 80))))
            s, e = two_sum(x, y)
            assert Fraction(s) + Fraction(e) == Fraction(x) + Fraction(y)

    def test_order_independent(self):
        for x, y in [(1e300, 1e-300), (3.0, -7.25), (2.0**-1074, 1.0)]:
            assert two_sum(x, y) == two_sum(y, x)

    def test_zero_partner(self):
        assert two_sum(0.0, 5.5) == (5.5, 0.0)
        assert two_sum(-3.25, 0.0) == (-3.25, 0.0)

    def test_subnormal_sum_is_exact(self):
        # Hauser: additions landing in the subnormal range are exact.
        s, e = two_sum(2.0**-1074, 3 * 2.0**-1074)
        assert (s, e) == (4 * 2.0**-1074, 0.0)


class TestFastTwoSum:
    def test_matches_two_sum_when_ordered(self):
        rng = np.random.default_rng(2)
        for _ in range(300):
            x = float(np.ldexp(rng.random() + 1.0, int(rng.integers(-40, 40))))
            y = float(np.ldexp(rng.random(), int(rng.integers(-80, -41))))
            assert fast_two_sum(x, y) == two_sum(x, y)

    def test_negative_big_operand(self):
        x, y = -1e20, 3.0
        assert fast_two_sum(x, y) == two_sum(x, y)


class TestVectorized:
    def test_two_sum_vec_matches_scalar(self, rng):
        x = rng.random(1000) * 10.0 ** rng.integers(-30, 30, 1000)
        y = rng.random(1000) * 10.0 ** rng.integers(-30, 30, 1000)
        s, e = two_sum_vec(x, y)
        for i in range(0, 1000, 97):
            ss, ee = two_sum(float(x[i]), float(y[i]))
            assert s[i] == ss and e[i] == ee

    def test_fast_two_sum_vec_ordered(self, rng):
        x = rng.random(256) + 1.0
        y = (rng.random(256) - 0.5) * 2.0**-30
        s, e = fast_two_sum_vec(x, y)
        sv, ev = two_sum_vec(x, y)
        assert (s == sv).all() and (e == ev).all()


class TestSplitAndProduct:
    def test_split_reassembles(self):
        for a in (1.0, math.pi, -1234.5678e15, 2.0**-500):
            hi, lo = split(a)
            assert hi + lo == a
            # hi has at most 26 significant bits
            m, _ = math.frexp(hi)
            assert (abs(int(m * 2**53)) % (1 << 27)) == 0

    def test_two_product_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(300):
            a = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-40, 40))))
            b = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-40, 40))))
            p, e = two_product(a, b)
            assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(b)

    def test_two_product_of_exact_product(self):
        p, e = two_product(3.0, 0.5)
        assert (p, e) == (1.5, 0.0)


#: Magnitudes whose products/squares stay strictly inside the
#: error-free TwoProduct/TwoSquare band the reduction ops police
#: (|x*y| in (2^-1000, 2^996), |x^2| in (2^-500, 2^500)).
_safe_floats = st.floats(
    min_value=2.0**-240,
    max_value=2.0**240,
    allow_nan=False,
    allow_infinity=False,
)
_signed_safe = st.tuples(st.booleans(), _safe_floats).map(
    lambda t: -t[1] if t[0] else t[1]
)


class TestVectorizedProductDifferential:
    """Hypothesis differentials: the vectorized EFTs are bit-identical
    to looping the scalar routines — the property the reduction layer's
    deterministic server-side re-expansion rests on."""

    @given(st.lists(st.tuples(_signed_safe, _signed_safe), max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_two_product_vec_matches_scalar(self, pairs):
        a = np.array([p[0] for p in pairs], dtype=np.float64)
        b = np.array([p[1] for p in pairs], dtype=np.float64)
        p, e = two_product_vec(a, b)
        assert p.shape == e.shape == a.shape
        for i in range(a.size):
            ps, es = two_product(float(a[i]), float(b[i]))
            assert p[i] == ps and e[i] == es
            assert Fraction(ps) + Fraction(es) == Fraction(
                float(a[i])
            ) * Fraction(float(b[i]))

    @given(st.lists(_signed_safe, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_two_square_vec_matches_scalar(self, values):
        a = np.array(values, dtype=np.float64)
        p, e = two_square_vec(a)
        assert p.shape == e.shape == a.shape
        for i in range(a.size):
            ps, es = two_square(float(a[i]))
            assert p[i] == ps and e[i] == es
            assert Fraction(ps) + Fraction(es) == Fraction(float(a[i])) ** 2

    def test_two_square_vec_agrees_with_two_product_vec(self, rng):
        a = rng.standard_normal(512) * 10.0 ** rng.integers(-30, 30, 512)
        psq, esq = two_square_vec(a)
        ppr, epr = two_product_vec(a, a)
        assert (psq == ppr).all() and (esq == epr).all()

    def test_zero_and_negative_zero(self):
        a = np.array([0.0, -0.0])
        p, e = two_square_vec(a)
        assert p[0] == 0.0 and p[1] == 0.0
        assert e[0] == 0.0 and e[1] == 0.0
