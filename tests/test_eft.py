"""Unit tests for error-free transformations."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.eft import (
    fast_two_sum,
    fast_two_sum_vec,
    split,
    two_product,
    two_sum,
    two_sum_vec,
)


class TestTwoSum:
    def test_identity(self):
        s, e = two_sum(1.5, 2.25)
        assert s == 3.75 and e == 0.0

    def test_error_captured(self):
        s, e = two_sum(1e16, 1.0)
        assert s == 1e16
        assert e == 1.0  # the lost addend reappears exactly

    def test_exactness_property(self):
        # s + e == x + y exactly, over a wide range of magnitudes.
        rng = np.random.default_rng(1)
        for _ in range(500):
            x = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-80, 80))))
            y = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-80, 80))))
            s, e = two_sum(x, y)
            assert Fraction(s) + Fraction(e) == Fraction(x) + Fraction(y)

    def test_order_independent(self):
        for x, y in [(1e300, 1e-300), (3.0, -7.25), (2.0**-1074, 1.0)]:
            assert two_sum(x, y) == two_sum(y, x)

    def test_zero_partner(self):
        assert two_sum(0.0, 5.5) == (5.5, 0.0)
        assert two_sum(-3.25, 0.0) == (-3.25, 0.0)

    def test_subnormal_sum_is_exact(self):
        # Hauser: additions landing in the subnormal range are exact.
        s, e = two_sum(2.0**-1074, 3 * 2.0**-1074)
        assert (s, e) == (4 * 2.0**-1074, 0.0)


class TestFastTwoSum:
    def test_matches_two_sum_when_ordered(self):
        rng = np.random.default_rng(2)
        for _ in range(300):
            x = float(np.ldexp(rng.random() + 1.0, int(rng.integers(-40, 40))))
            y = float(np.ldexp(rng.random(), int(rng.integers(-80, -41))))
            assert fast_two_sum(x, y) == two_sum(x, y)

    def test_negative_big_operand(self):
        x, y = -1e20, 3.0
        assert fast_two_sum(x, y) == two_sum(x, y)


class TestVectorized:
    def test_two_sum_vec_matches_scalar(self, rng):
        x = rng.random(1000) * 10.0 ** rng.integers(-30, 30, 1000)
        y = rng.random(1000) * 10.0 ** rng.integers(-30, 30, 1000)
        s, e = two_sum_vec(x, y)
        for i in range(0, 1000, 97):
            ss, ee = two_sum(float(x[i]), float(y[i]))
            assert s[i] == ss and e[i] == ee

    def test_fast_two_sum_vec_ordered(self, rng):
        x = rng.random(256) + 1.0
        y = (rng.random(256) - 0.5) * 2.0**-30
        s, e = fast_two_sum_vec(x, y)
        sv, ev = two_sum_vec(x, y)
        assert (s == sv).all() and (e == ev).all()


class TestSplitAndProduct:
    def test_split_reassembles(self):
        for a in (1.0, math.pi, -1234.5678e15, 2.0**-500):
            hi, lo = split(a)
            assert hi + lo == a
            # hi has at most 26 significant bits
            m, _ = math.frexp(hi)
            assert (abs(int(m * 2**53)) % (1 << 27)) == 0

    def test_two_product_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(300):
            a = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-40, 40))))
            b = float(np.ldexp(rng.random() - 0.5, int(rng.integers(-40, 40))))
            p, e = two_product(a, b)
            assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(b)

    def test_two_product_of_exact_product(self):
        p, e = two_product(3.0, 0.5)
        assert (p, e) == (1.5, 0.0)
