"""Unit tests for format-parameterized rounding (precision independence)."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.exact import exact_sum_to_format
from repro.core.fpinfo import BINARY32, BINARY64, FloatFormat
from repro.core.rounding import round_scaled_int, round_scaled_int_to_format
from tests.conftest import exact_fraction, random_hard_array

BINARY16 = FloatFormat(t=10, l=5)
QUAD = FloatFormat(t=112, l=15)


def as_fraction(m: int, e: int) -> Fraction:
    return Fraction(m) * Fraction(2) ** e


class TestFormatRounding:
    def test_binary64_agrees_with_specialized(self):
        import random

        rnd = random.Random(5)
        for _ in range(1000):
            v = rnd.getrandbits(rnd.randint(1, 150)) - rnd.getrandbits(
                rnd.randint(1, 150)
            )
            s = rnd.randint(-1150, 900)
            want = round_scaled_int(v, s)
            if math.isinf(want):
                with pytest.raises(OverflowError):
                    round_scaled_int_to_format(v, s, BINARY64)
                continue
            m, e = round_scaled_int_to_format(v, s, BINARY64)
            assert math.ldexp(float(m), e) == want

    def test_binary32_against_numpy_representables(self, rng):
        # values exactly representable in binary32 must round-trip
        f32 = rng.standard_normal(500).astype(np.float32)
        for x in f32:
            from repro.core.fpinfo import decompose

            mv, ev = decompose(float(x))
            m, e = round_scaled_int_to_format(mv, ev, BINARY32)
            assert as_fraction(m, e) == Fraction(float(x))

    def test_binary32_mantissa_bound(self, rng):
        for _ in range(300):
            v = int(rng.integers(-(2**60), 2**60))
            if v == 0:
                continue
            m, e = round_scaled_int_to_format(v, int(rng.integers(-140, 60)), BINARY32)
            assert abs(m) < 1 << 24
            assert e >= BINARY32.min_subnormal_exponent

    def test_binary16_ties(self):
        # 2**11 + 1 at t=10: tie between 2048 and 2050 -> even (2048)
        m, e = round_scaled_int_to_format((1 << 11) + 1, 0, BINARY16)
        assert as_fraction(m, e) == 2048
        m, e = round_scaled_int_to_format((1 << 11) + 3, 0, BINARY16)
        assert as_fraction(m, e) == 2052  # ties aside, nearest is 2052

    def test_binary16_overflow(self):
        with pytest.raises(OverflowError):
            round_scaled_int_to_format(1, 16, BINARY16)  # 65536 > max 65504
        m, e = round_scaled_int_to_format(65504, 0, BINARY16)
        assert as_fraction(m, e) == 65504

    def test_subnormal_floor(self):
        # binary32 subnormal floor is 2**-149
        m, e = round_scaled_int_to_format(1, -149, BINARY32)
        assert (m, e) == (1, -149)
        assert round_scaled_int_to_format(1, -150, BINARY32) == (0, 0)  # tie->even
        m, e = round_scaled_int_to_format(3, -151, BINARY32)
        assert as_fraction(m, e) == Fraction(2) ** -149

    def test_directed_modes(self):
        v, s = (1 << 30) + 1, -10
        lo = as_fraction(*round_scaled_int_to_format(v, s, BINARY32, "down"))
        hi = as_fraction(*round_scaled_int_to_format(v, s, BINARY32, "up"))
        exact = Fraction(v) * Fraction(2) ** s
        assert lo < exact < hi


class TestExactSumToFormat:
    def test_correct_binary32_rounding(self, rng):
        for _ in range(60):
            x = random_hard_array(rng, int(rng.integers(1, 200)), emin=-30, emax=30)
            m, e = exact_sum_to_format(x, BINARY32)
            got = as_fraction(m, e)
            exact = exact_fraction(x)
            if got == exact:
                continue
            # verify nearest among binary32 neighbours via midpoints
            f32 = np.float32(float(got))
            lo = np.nextafter(f32, np.float32(-np.inf))
            hi = np.nextafter(f32, np.float32(np.inf))
            mid_lo = (Fraction(float(lo)) + got) / 2
            mid_hi = (got + Fraction(float(hi))) / 2
            assert mid_lo <= exact <= mid_hi

    def test_double_rounding_hazard_demonstrated(self):
        # crafted so round-to-double-then-to-float differs from direct
        # round-to-float: exact = 1 + 2**-24 + 2**-60 (just above the
        # float32 tie); double keeps the crumb, float32-direct rounds up
        x = [1.0, 2.0**-24, 2.0**-60]
        m, e = exact_sum_to_format(x, BINARY32)
        direct = as_fraction(m, e)
        assert direct == 1 + Fraction(2) ** -23  # rounds UP (above tie)
        via_double = np.float32(math.fsum(x))
        # the double value 1 + 2**-24 + 2**-60 rounds to double exactly?
        # fsum keeps the crumb in the double, so float32 also sees it;
        # build the true hazard with a crumb below double precision:
        y = [1.0, 2.0**-24, 2.0**-80]
        m2, e2 = exact_sum_to_format(y, BINARY32)
        assert as_fraction(m2, e2) == 1 + Fraction(2) ** -23
        via_double2 = np.float32(math.fsum(y))  # double drops the crumb
        assert Fraction(float(via_double2)) == 1  # tie -> even -> 1.0
        assert as_fraction(m2, e2) != Fraction(float(via_double2))

    def test_quad_target(self):
        x = [1.0, 2.0**-100]
        m, e = exact_sum_to_format(x, QUAD)
        assert as_fraction(m, e) == 1 + Fraction(2) ** -100  # fits in quad

    def test_empty(self):
        assert exact_sum_to_format([], BINARY32) == (0, 0)
