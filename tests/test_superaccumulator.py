"""Unit tests for the dense and small superaccumulators."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.digits import RadixConfig
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator
from repro.errors import NonFiniteInputError
from tests.conftest import ADVERSARIAL_CASES, exact_fraction, random_hard_array, ref_sum


class TestDenseBasics:
    def test_empty_is_zero(self):
        acc = DenseSuperaccumulator()
        assert acc.is_zero()
        assert acc.to_float() == 0.0
        assert acc.to_fraction() == 0

    def test_single_value_roundtrip(self):
        for x in (1.0, -math.pi, 1e308, 2.0**-1074):
            acc = DenseSuperaccumulator()
            acc.add_float(x)
            assert acc.to_float() == x
            assert acc.to_fraction() == Fraction(x)

    def test_full_range_bounds_cover_binary64(self):
        base, n = DenseSuperaccumulator.full_range_bounds(RadixConfig(30))
        assert base * 30 <= -1074
        assert (base + n) * 30 >= 1024

    def test_scalar_and_vector_paths_agree(self, rng):
        x = random_hard_array(rng, 200)
        a = DenseSuperaccumulator()
        a.add_array(x)
        b = DenseSuperaccumulator()
        for v in x:
            b.add_float(float(v))
        assert a == b

    def test_add_accumulator(self, rng):
        x = random_hard_array(rng, 300)
        a = DenseSuperaccumulator.from_array(x[:100])
        b = DenseSuperaccumulator.from_array(x[100:])
        a.add_accumulator(b)
        assert a.to_fraction() == exact_fraction(x)

    def test_copy_independent(self):
        a = DenseSuperaccumulator.from_array([1.0, 2.0])
        b = a.copy()
        b.add_float(5.0)
        assert a.to_float() == 3.0 and b.to_float() == 8.0

    def test_nonfinite_rejected(self):
        acc = DenseSuperaccumulator()
        with pytest.raises(NonFiniteInputError):
            acc.add_array(np.array([1.0, np.inf]))


class TestDenseExactness:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        acc = DenseSuperaccumulator.from_array(np.array(case))
        assert acc.to_float() == ref_sum(case)

    def test_order_independence(self, rng):
        x = random_hard_array(rng, 500)
        a = DenseSuperaccumulator.from_array(x)
        perm = rng.permutation(x.size)
        b = DenseSuperaccumulator.from_array(x[perm])
        assert a == b

    def test_many_renormalizations(self, rng):
        # force deposits past the renorm budget through repeated adds
        acc = DenseSuperaccumulator()
        total = Fraction(0)
        chunk = rng.random(1000)
        for _ in range(20):
            acc.add_array(chunk)
            total += exact_fraction(chunk)
        acc.renormalize()
        assert acc.to_fraction() == total


class TestDenseSerialization:
    def test_roundtrip(self, rng):
        x = random_hard_array(rng, 200)
        a = DenseSuperaccumulator.from_array(x)
        b = DenseSuperaccumulator.from_bytes(a.to_bytes())
        assert a == b
        assert b.to_float() == ref_sum(x)

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            DenseSuperaccumulator.from_bytes(b"XXXX" + b"\0" * 64)


class TestSmallSuperaccumulator:
    def test_sum_classmethod(self, rng):
        x = random_hard_array(rng, 400)
        assert SmallSuperaccumulator.sum(x) == ref_sum(x)

    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        assert SmallSuperaccumulator.sum(np.array(case)) == ref_sum(case)

    def test_fixed_limb_count(self):
        # the defining property: size independent of data
        a = SmallSuperaccumulator()
        b = SmallSuperaccumulator()
        a.add_array(np.array([1e-300, 1e300]))
        b.add_array(np.array([1.0, 2.0]))
        assert len(a.limbs) == len(b.limbs)

    def test_against_fsum_random(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 500))
            x = random_hard_array(rng, n)
            assert SmallSuperaccumulator.sum(x) == math.fsum(x)

    def test_rounding_modes(self, rng):
        x = random_hard_array(rng, 100)
        acc = SmallSuperaccumulator()
        acc.add_array(x)
        lo = acc.to_float("down")
        hi = acc.to_float("up")
        exact = exact_fraction(x)
        assert Fraction(lo) <= exact <= Fraction(hi)
        assert acc.to_float("nearest") in (lo, hi)


class TestRenormalizationGuards:
    """Regression tests for the two add_accumulator overflow guards
    (self-overflow vs other-overflow) near the deferred-carry budget."""

    def _make(self, rng, n=50):
        acc = DenseSuperaccumulator()
        acc.add_array(random_hard_array(rng, n))
        return acc

    def test_self_overflow_renormalizes_self(self, rng):
        from repro.core.superaccumulator import _NORM_BUDGET

        a = self._make(rng)
        b = self._make(rng)
        expect = a.to_fraction() + b.to_fraction()
        a._deposits = _NORM_BUDGET - 1  # simulate a near-budget history
        a.add_accumulator(b)
        # the guard must renormalize a (deposits reset), keep b intact,
        # and preserve exactness
        assert a._deposits < _NORM_BUDGET
        assert a.to_fraction() == expect

    def test_other_overflow_renormalizes_copy(self, rng):
        from repro.core.superaccumulator import _NORM_BUDGET

        a = self._make(rng)
        b = self._make(rng)
        expect = a.to_fraction() + b.to_fraction()
        b_value = b.to_fraction()
        a._deposits = _NORM_BUDGET // 2
        b._deposits = _NORM_BUDGET - 1  # other alone nearly exhausts it
        a.add_accumulator(b)
        assert a.to_fraction() == expect
        # the argument is renormalized via a private copy, never mutated
        assert b._deposits == _NORM_BUDGET - 1
        assert b.to_fraction() == b_value
        assert a._deposits < _NORM_BUDGET

    def test_both_near_budget(self, rng):
        from repro.core.superaccumulator import _NORM_BUDGET

        a = self._make(rng)
        b = self._make(rng)
        expect = a.to_fraction() + b.to_fraction()
        a._deposits = _NORM_BUDGET - 1
        b._deposits = _NORM_BUDGET - 1
        a.add_accumulator(b)
        assert a.to_fraction() == expect
        assert a._deposits < _NORM_BUDGET

    def test_below_budget_defers(self, rng):
        a = self._make(rng)
        b = self._make(rng)
        expect = a.to_fraction() + b.to_fraction()
        deposits_before = a._deposits
        a.add_accumulator(b)
        # no guard fires: deposits accumulate instead of resetting
        assert a._deposits == deposits_before + b._deposits + 1
        assert a.to_fraction() == expect
