"""Unit tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.data import read_dataset, write_dataset


@pytest.fixture
def dataset_path(tmp_path):
    p = tmp_path / "d.f64"
    # delta=2000 so pairwise np.sum visibly misses the exact zero
    main(["generate", "sumzero", str(p), "-n", "5000", "--delta", "2000"])
    return p


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        p = tmp_path / "g.f64"
        rc = main(["generate", "well", str(p), "-n", "1000", "--delta", "50",
                   "--seed", "3"])
        assert rc == 0
        data = read_dataset(p)
        assert data.size == 1000 and (data > 0).all()
        assert "wrote 1,000 values" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        p1, p2 = tmp_path / "a.f64", tmp_path / "b.f64"
        main(["generate", "random", str(p1), "-n", "100", "--seed", "9"])
        main(["generate", "random", str(p2), "-n", "100", "--seed", "9"])
        assert (read_dataset(p1) == read_dataset(p2)).all()


class TestSum:
    @pytest.mark.parametrize(
        "method", ["sparse", "small", "dense", "ifastsum", "hybrid",
                   "mapreduce-sparse", "mapreduce-small"]
    )
    def test_exact_methods_report_zero(self, dataset_path, capsys, method):
        rc = main(["sum", str(dataset_path), "--method", method, "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sum    : 0.0" in out
        assert "OK (correctly rounded)" in out

    def test_naive_differs(self, dataset_path, capsys):
        rc = main(["sum", str(dataset_path), "--method", "naive"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sum    : 0.0" not in out  # cancellation defeats np.sum


class TestInfo:
    def test_reports(self, dataset_path, capsys):
        rc = main(["info", str(dataset_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n              : 5,000" in out
        assert "exact sum      : 0.0" in out
        assert "condition C(X) : inf" in out
        assert "naive correct  : False" in out

    def test_empty_dataset(self, tmp_path, capsys):
        p = tmp_path / "e.f64"
        write_dataset(p, np.array([]))
        assert main(["info", str(p)]) == 0
        assert "n              : 0" in capsys.readouterr().out


class TestParsing:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_method(self, dataset_path):
        with pytest.raises(SystemExit):
            main(["sum", str(dataset_path), "--method", "quantum"])


class TestServe:
    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--shards", "2", "--queue-depth", "8",
             "--policy", "reject", "--state-path", "/tmp/x.json",
             "--no-shutdown-op"]
        )
        assert args.port == 0 and args.shards == 2
        assert args.policy == "reject" and args.no_shutdown_op

    def test_serve_subprocess_roundtrip(self, tmp_path):
        """`python -m repro serve` end to end: boot, ingest, shutdown,
        state persisted, then restored on a second boot."""
        import asyncio
        import os
        import re
        import subprocess
        import sys

        from repro.serve import ReproServeClient

        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        state = tmp_path / "state.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def boot():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--shards", "2", "--state-path", str(state)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True, env=env,
            )
            line = ""
            while "listening on" not in line:
                line = proc.stdout.readline()
                assert line, "server exited before listening"
            port = int(re.search(r":(\d+) ", line).group(1))
            return proc, port

        async def first_session(port):
            client = await ReproServeClient.connect(port=port)
            await client.add_array("persisted", [1e16, 1.0, -1e16, 2.0])
            assert await client.value("persisted") == 3.0
            await client.shutdown()
            await client.close()

        async def second_session(port):
            client = await ReproServeClient.connect(port=port)
            assert await client.value("persisted") == 3.0
            assert await client.count("persisted") == 4
            await client.shutdown()
            await client.close()

        proc, port = boot()
        try:
            asyncio.run(first_session(port))
            assert proc.wait(timeout=30) == 0
            assert state.exists()
            proc, port = boot()
            asyncio.run(second_session(port))
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
