"""Hypothesis properties for the extension modules.

Covers arbitrary-precision floats, base-10 accumulators, geometry
monomial expansion, format-parameterized rounding, the reproducible
binned sum, and the rational rounding helper.
"""

from __future__ import annotations

import math
from decimal import Decimal
from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.baselines.binned import binned_sum
from repro.core.apfloat import APFloat, exact_sum_apfloat, split_apfloat
from repro.core.decimal_acc import DecimalSuperaccumulator
from repro.core.fpinfo import BINARY32, FloatFormat
from repro.core.rounding import round_scaled_int_to_format
from repro.geometry import product_expansion
from repro.stats import round_fraction
from tests.conftest import exact_fraction

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)

ap_floats = st.builds(
    APFloat,
    st.integers(min_value=-(2**200), max_value=2**200),
    st.integers(min_value=-5000, max_value=5000),
)


@given(a=ap_floats, b=ap_floats)
def test_apfloat_add_exact(a, b):
    assert (a + b).to_fraction() == a.to_fraction() + b.to_fraction()


@given(a=ap_floats)
def test_apfloat_canonical_and_roundtrip(a):
    # canonical: odd mantissa or zero
    assert a.mantissa == 0 or a.mantissa % 2 != 0
    assert APFloat(a.mantissa, a.exponent) == a


@given(a=ap_floats, w=st.sampled_from([4, 16, 30, 51]))
def test_apfloat_split_exact(a, w):
    from repro.core.digits import RadixConfig

    radix = RadixConfig(w)
    pairs = split_apfloat(a, radix)
    total = sum(
        (Fraction(d) * Fraction(2) ** (w * j) for j, d in pairs), Fraction(0)
    )
    assert total == a.to_fraction()


@given(vals=st.lists(ap_floats, min_size=0, max_size=12))
@settings(max_examples=60)
def test_apfloat_sum_exact(vals):
    s = exact_sum_apfloat(vals)
    assert s.to_fraction() == sum((v.to_fraction() for v in vals), Fraction(0))


@given(a=ap_floats, t=st.integers(min_value=1, max_value=300))
def test_apfloat_round_faithful(a, t):
    r = a.round_to_precision(t)
    assert r.precision <= t
    err = abs(r.to_fraction() - a.to_fraction())
    if a.mantissa != 0:
        # at most half an ulp at precision t
        ulp = Fraction(2) ** (abs(a.mantissa).bit_length() - t + a.exponent)
        assert err <= ulp / 2


decimals = st.decimals(
    allow_nan=False, allow_infinity=False, min_value=-(10**25), max_value=10**25,
    places=20,
)


@given(vals=st.lists(decimals, min_size=0, max_size=15))
@settings(max_examples=60)
def test_decimal_accumulator_exact(vals):
    acc = DecimalSuperaccumulator()
    total = Fraction(0)
    for v in vals:
        acc = acc.add_decimal(Decimal(v))
        total += Fraction(Decimal(v))
    assert acc.to_fraction() == total


@given(
    factors=st.lists(
        st.floats(
            allow_nan=False, allow_infinity=False, width=64,
            min_value=-1e70, max_value=1e70,
        ).filter(lambda x: x == 0.0 or abs(x) > 1e-70),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=150)
def test_product_expansion_exact(factors):
    exp = product_expansion(factors)
    want = Fraction(1)
    for f in factors:
        want *= Fraction(float(f))
    assert sum((Fraction(t) for t in exp), Fraction(0)) == want


@given(
    v=st.integers(min_value=-(2**80), max_value=2**80),
    s=st.integers(min_value=-200, max_value=60),
    t=st.sampled_from([5, 10, 23, 52]),
)
@settings(max_examples=200)
def test_format_rounding_faithful(v, s, t):
    assume(v != 0)
    fmt = FloatFormat(t=t, l=11)  # wide exponent: isolate mantissa logic
    m, e = round_scaled_int_to_format(v, s, fmt)
    got = Fraction(m) * Fraction(2) ** e
    exact = Fraction(v) * Fraction(2) ** s
    if got != exact:
        # within half an ulp at precision t+1
        ulp = Fraction(2) ** (max(abs(v).bit_length() - 1 + s - t, e))
        assert abs(got - exact) <= ulp / 2
    assert m == 0 or abs(m) < 1 << (t + 1)


@given(
    nums=st.lists(
        st.floats(min_value=-1e20, max_value=1e20, allow_nan=False, width=64),
        min_size=1,
        max_size=40,
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60)
def test_binned_sum_permutation_invariant(nums, seed):
    arr = np.array(nums, dtype=np.float64)
    base = binned_sum(arr)
    perm = np.random.default_rng(seed).permutation(arr.size)
    assert binned_sum(arr[perm]).value == base.value
    err = abs(Fraction(base.value) - exact_fraction(arr))
    assert err <= Fraction(base.error_bound)


@given(
    num=st.integers(min_value=-(2**120), max_value=2**120),
    den=st.integers(min_value=1, max_value=2**120),
)
@settings(max_examples=300)
def test_round_fraction_matches_cpython(num, den):
    f = Fraction(num, den)
    try:
        want = float(f)
    except OverflowError:
        want = math.inf if f > 0 else -math.inf
    assert round_fraction(f) == want
