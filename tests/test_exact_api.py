"""Unit tests for the high-level exact_sum / exact_dot API and
condition numbers."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.condition import condition_number, condition_number_exact
from repro.core.exact import exact_dot, exact_sum, exact_sum_fraction, exact_sum_scaled
from repro.errors import NonFiniteInputError
from tests.conftest import ADVERSARIAL_CASES, exact_fraction, random_hard_array, ref_sum


class TestExactSum:
    @pytest.mark.parametrize("method", ["sparse", "small", "dense", "auto"])
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_all_methods_agree(self, method, case):
        assert exact_sum(case, method=method) == ref_sum(case)

    def test_methods_agree_random(self, rng):
        x = random_hard_array(rng, 1000)
        vals = {exact_sum(x, method=m) for m in ("sparse", "small", "dense")}
        assert len(vals) == 1

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            exact_sum([1.0], method="magic")

    def test_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            exact_sum([1.0, math.inf])

    def test_accepts_lists_and_2d(self):
        assert exact_sum([1.0, 2.0, 3.0]) == 6.0
        assert exact_sum(np.ones((2, 3))) == 6.0

    def test_scaled_and_fraction_consistent(self, rng):
        x = random_hard_array(rng, 100)
        v, s = exact_sum_scaled(x)
        assert Fraction(v) * Fraction(2) ** s == exact_sum_fraction(x)
        assert exact_sum_fraction(x) == exact_fraction(x)

    def test_where_numpy_fails(self):
        x = np.array([1e16, 1.0, -1e16])
        assert float(np.sum(x)) != 1.0  # the motivating failure
        assert exact_sum(x) == 1.0


class TestExactDot:
    def test_simple(self):
        assert exact_dot([1.0, 2.0], [3.0, 4.0]) == 11.0

    def test_catastrophic_cancellation(self):
        # classic: naive dot is wildly wrong
        x = np.array([1e150, 1.0, -1e150])
        y = np.array([1e150, 1.0, 1e150])
        assert exact_dot(x, y) == 1.0

    def test_against_fraction(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 100))
            x = random_hard_array(rng, n, emin=-100, emax=100)
            y = random_hard_array(rng, n, emin=-100, emax=100)
            want = sum(
                (Fraction(float(a)) * Fraction(float(b)) for a, b in zip(x, y)),
                Fraction(0),
            )
            from tests.conftest import fraction_to_float

            assert exact_dot(x, y) == fraction_to_float(want)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_dot([1.0], [1.0, 2.0])

    def test_product_overflow_rounds_to_inf(self):
        # the exact dot is ~1e616: correctly rounded to binary64 = inf
        assert exact_dot([1e308], [1e308]) == math.inf
        assert exact_dot([1e308], [-1e308]) == -math.inf
        # but a cancelling pair of huge products is finite and exact
        assert exact_dot([1e308, 1e308], [1e308, -1e308]) == 0.0

    def test_subnormal_products_exact(self):
        # float products underflow; the exact dot does not
        v = exact_dot([2.0**-600], [2.0**-600])
        assert v == 0.0  # 2**-1200 rounds to zero in binary64 ...
        from fractions import Fraction

        from repro.stats import exact_dot_fraction

        assert exact_dot_fraction([2.0**-600], [2.0**-600]) == Fraction(2) ** -1200

    def test_input_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            exact_dot([math.inf], [1.0])


class TestConditionNumber:
    def test_positive_data_is_one(self, rng):
        assert condition_number(rng.random(500)) == 1.0

    def test_exact_zero_sum_is_inf(self, rng):
        x = rng.random(100)
        assert condition_number(np.concatenate([x, -x])) == math.inf

    def test_empty_and_zeros(self):
        assert condition_number([]) == 1.0
        assert condition_number([0.0, 0.0]) == 1.0

    def test_known_value(self):
        # |1| + |-1| + |eps| over |eps|
        eps = 2.0**-30
        got = condition_number([1.0, -1.0, eps])
        assert abs(got - (2.0 + eps) / eps) < 1e-3

    def test_exact_pair(self, rng):
        x = random_hard_array(rng, 200)
        mag, total = condition_number_exact(x)
        assert mag == exact_fraction(np.abs(x))
        assert total == abs(exact_fraction(x))

    def test_grows_with_cancellation(self, rng):
        base = rng.random(100)
        mild = condition_number(base)
        harsh = condition_number(np.concatenate([base, -base + 1e-9]))
        assert harsh > mild
