"""Unit tests for the fast PRAM summation algorithm (§3, Theorem 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.digits import DEFAULT_RADIX, digits_to_int
from repro.core.rounding import to_nonoverlapping
from repro.pram.fast_sum import pram_carry_propagate, pram_exact_sum
from repro.pram.machine import PRAM
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum


class TestCarryPropagate:
    def test_matches_sequential(self, rng):
        R = DEFAULT_RADIX.R
        for _ in range(40):
            d = rng.integers(-(R - 1), R, size=int(rng.integers(1, 50))).astype(
                np.int64
            )
            par = pram_carry_propagate(PRAM(check_erew=True), d)
            seq = to_nonoverlapping(d)
            assert digits_to_int(par, 0)[0] == digits_to_int(seq, 0)[0]
            # balanced non-redundant digits
            assert (par >= -(R // 2)).all() and (par < R // 2).all()

    def test_log_rounds(self, rng):
        R = DEFAULT_RADIX.R
        m = PRAM()
        d = rng.integers(-(R - 1), R, size=256).astype(np.int64)
        pram_carry_propagate(m, d)
        assert m.stats.rounds <= 2 * 9 + 6

    def test_empty(self):
        out = pram_carry_propagate(PRAM(), np.empty(0, dtype=np.int64))
        assert (out == 0).all()


class TestPRAMExactSum:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        res = pram_exact_sum(case)
        assert res.value == ref_sum(case)

    def test_random(self, rng):
        for _ in range(15):
            x = random_hard_array(rng, int(rng.integers(1, 300)))
            assert pram_exact_sum(x).value == ref_sum(x)

    def test_empty(self):
        assert pram_exact_sum([]).value == 0.0

    def test_rounds_scale_as_log_squared(self, rng):
        rounds = []
        for n in (256, 1024, 4096):
            res = pram_exact_sum(rng.random(n))
            rounds.append(res.stats.rounds)
        # doubling log n should far less than double rounds beyond log^2
        r256, r1024, r4096 = rounds
        assert r1024 < r256 * 3 and r4096 < r1024 * 3
        # and rounds are polylog: tiny versus n
        assert r4096 < 4096 // 4

    def test_work_scales_n_log_n(self, rng):
        res1 = pram_exact_sum(random_hard_array(rng, 512))
        res2 = pram_exact_sum(random_hard_array(rng, 4096))
        # 8x elements, log factor 12/9 -> work ratio well under 8 * 2
        assert res2.stats.work < res1.stats.work * 16
        assert res2.stats.work > res1.stats.work * 4

    def test_reports_sigma(self, rng):
        res = pram_exact_sum(random_hard_array(rng, 200))
        assert res.root_active > 0

    def test_directed_mode(self, rng):
        x = random_hard_array(rng, 100)
        lo = pram_exact_sum(x, mode="down").value
        hi = pram_exact_sum(x, mode="up").value
        assert lo <= ref_sum(x) <= hi

    def test_uses_supplied_machine(self):
        m = PRAM()
        pram_exact_sum([1.0, 2.0], machine=m)
        assert m.stats.rounds > 0


class TestCascadeMode:
    def test_same_value_as_level_by_level(self, rng):
        for _ in range(8):
            x = random_hard_array(rng, int(rng.integers(2, 400)))
            assert (
                pram_exact_sum(x, cascade=True).value
                == pram_exact_sum(x).value
                == ref_sum(x)
            )

    def test_rounds_linear_in_log_n(self, rng):
        import math

        rounds = []
        for n in (256, 4096):
            x = random_hard_array(rng, n)
            rounds.append(pram_exact_sum(x, cascade=True).stats.rounds)
        # +4 levels of log n: increments stay bounded (linear in log n)
        assert rounds[1] - rounds[0] <= 8 * (math.log2(4096) - math.log2(256))

    def test_empty_and_single(self):
        assert pram_exact_sum([], cascade=True).value == 0.0
        assert pram_exact_sum([3.5], cascade=True).value == 3.5
