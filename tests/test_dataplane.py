"""Tests for the zero-copy shared-memory data plane.

Covers the descriptor machinery (segments, refs, in-process and
in-worker resolution), the installed-job executor protocol with both
fork and spawn start methods, the persistent pool, the shared
BlockStore, the mmap descriptor path, and — non-negotiably — that every
path produces bit-identical results to the serial superaccumulator.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data.io import dataset_block_refs, map_dataset, write_dataset
from repro.extmem import MappedExtArray
from repro.mapreduce import (
    BlockRef,
    BlockStore,
    MultiprocessExecutor,
    ShmDataPlane,
    parallel_sum,
    pick_start_method,
    resolve_block,
    run_job,
    shared_process_executor,
    shutdown_shared_executors,
)
from repro.mapreduce.sum_job import (
    SmallSuperaccumulatorJob,
    SparseSuperaccumulatorJob,
)
from tests.conftest import random_hard_array, ref_sum


@pytest.fixture(autouse=True)
def _clean_shared_pools():
    yield
    shutdown_shared_executors()


class TestBlockRef:
    def test_descriptor_is_tiny(self):
        ref = BlockRef(kind="shm", segment="repro-abc", offset=0, length=1 << 24)
        assert len(pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)) < 200
        assert ref.nbytes == (1 << 24) * 8

    def test_unknown_kind_rejected(self):
        ref = BlockRef(kind="carrier-pigeon", segment="x", offset=0, length=1)
        with pytest.raises(ValueError):
            resolve_block(ref)

    def test_ndarray_passthrough(self, rng):
        x = rng.random(10)
        assert resolve_block(x) is x


class TestShmDataPlane:
    def test_share_blocks_roundtrip(self, rng):
        blocks = [rng.random(100), rng.random(37), rng.random(1)]
        with ShmDataPlane() as plane:
            refs = plane.share_blocks(blocks)
            assert [r.length for r in refs] == [100, 37, 1]
            for ref, block in zip(refs, blocks):
                np.testing.assert_array_equal(resolve_block(ref), block)

    def test_views_are_readonly(self, rng):
        with ShmDataPlane() as plane:
            (ref,) = plane.share_blocks([rng.random(8)])
            view = resolve_block(ref)
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_share_array_then_tile(self, rng):
        x = rng.random(250)
        with ShmDataPlane() as plane:
            name, _ = plane.share_array(x)
            refs = plane.refs_for_array(name, x.size, 100)
            assert [r.length for r in refs] == [100, 100, 50]
            got = np.concatenate([resolve_block(r) for r in refs])
            np.testing.assert_array_equal(got, x)
            assert plane.placed_bytes == x.nbytes

    def test_empty_array(self):
        with ShmDataPlane() as plane:
            name, _ = plane.share_array(np.empty(0))
            refs = plane.refs_for_array(name, 0, 4)
            assert len(refs) == 1 and refs[0].length == 0
            assert resolve_block(refs[0]).size == 0

    def test_close_is_idempotent(self, rng):
        plane = ShmDataPlane()
        plane.share_blocks([rng.random(4)])
        plane.close()
        plane.close()


class TestSharedBlockStore:
    def test_blocks_view_shared_segment(self, rng):
        x = rng.random(25)
        with BlockStore(nodes=3, block_items=10, shared=True) as store:
            blocks = store.put("d", x)
            assert [b.data.size for b in blocks] == [10, 10, 5]
            assert all(b.ref is not None for b in blocks)
            np.testing.assert_array_equal(
                np.concatenate([b.data for b in blocks]), x
            )
            refs = store.block_refs("d")
            assert [r.length for r in refs] == [10, 10, 5]

    def test_refs_require_shared_store(self, rng):
        store = BlockStore(block_items=10)
        store.put("d", rng.random(20))
        with pytest.raises(ValueError):
            store.block_refs("d")

    def test_delete_unlinks_segment(self, rng):
        store = BlockStore(block_items=10, shared=True)
        store.put("d", rng.random(20))
        seg = store.block_refs("d")[0].segment
        store.delete("d")
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=seg, create=False)

    def test_empty_dataset(self):
        with BlockStore(shared=True) as store:
            blocks = store.put("d", [])
            assert len(blocks) == 1 and blocks[0].data.size == 0


class TestRunJobOverRefs:
    """Exactness and accounting when combine consumes descriptors."""

    def refs(self, store, x):
        store.put("d", x)
        return store.block_refs("d")

    @pytest.mark.parametrize("job_cls", [SparseSuperaccumulatorJob, SmallSuperaccumulatorJob])
    def test_serial_executor_resolves_refs(self, rng, job_cls):
        x = random_hard_array(rng, 1200)
        with BlockStore(block_items=100, shared=True) as store:
            res = run_job(job_cls(), self.refs(store, x), reducers=3)
        assert res.value == ref_sum(x)
        assert res.zero_copy and res.executor_kind == "serial"
        assert res.input_items == 1200 and res.input_bytes == x.nbytes
        assert res.dispatch_bytes == 0  # no process boundary crossed

    def test_process_executor_zero_copy(self, rng):
        x = random_hard_array(rng, 3000)
        with BlockStore(block_items=256, shared=True) as store:
            refs = self.refs(store, x)
            with MultiprocessExecutor(2) as exe:
                res = run_job(SparseSuperaccumulatorJob(), refs, reducers=2, executor=exe)
        assert res.value == ref_sum(x)
        assert res.executor_kind == "process" and res.zero_copy
        # dispatch is descriptors, not payloads: orders of magnitude
        # smaller than the input, and independent of items per block
        assert res.dispatch_bytes < 300 * len(refs)
        assert res.copies_avoided_bytes == x.nbytes

    def test_legacy_process_path_still_exact(self, rng):
        x = random_hard_array(rng, 2000)
        with BlockStore(block_items=256) as store:
            store.put("d", x)
            blocks = [b.data for b in store.blocks("d")]
            with MultiprocessExecutor(2) as exe:
                res = run_job(SparseSuperaccumulatorJob(), blocks, reducers=2, executor=exe)
        assert res.value == ref_sum(x)
        assert not res.zero_copy
        assert res.dispatch_bytes >= x.nbytes  # payloads crossed per task
        assert res.copies_avoided_bytes == 0

    def test_retry_fallback_resolves_refs_in_process(self, rng):
        x = random_hard_array(rng, 500)

        class FlakySparse(SparseSuperaccumulatorJob):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def combine(self, block):
                self.calls += 1
                if self.calls == 1:
                    raise OSError("transient")
                return super().combine(block)

        with BlockStore(block_items=100, shared=True) as store:
            res = run_job(
                FlakySparse(), self.refs(store, x), reducers=2, max_retries=1
            )
        assert res.value == ref_sum(x)

    def test_mixed_refs_and_arrays(self, rng):
        x = random_hard_array(rng, 600)
        with ShmDataPlane() as plane:
            refs = plane.share_blocks([x[:200], x[200:400]])
            items = list(refs) + [x[400:]]
            res = run_job(SparseSuperaccumulatorJob(), items, reducers=2)
        assert res.value == ref_sum(x)
        assert res.zero_copy and res.input_items == 600


class TestInstalledJobProtocol:
    def test_run_phase_requires_install(self):
        with MultiprocessExecutor(2) as exe:
            with pytest.raises(RuntimeError):
                exe.run_phase("combine", [np.zeros(1)])

    def test_install_same_job_reuses_pool(self):
        with MultiprocessExecutor(2) as exe:
            exe.install_job(SparseSuperaccumulatorJob())
            pool = exe._pool
            exe.install_job(SparseSuperaccumulatorJob())
            assert exe._pool is pool  # identical payload: no rebuild
            exe.install_job(SmallSuperaccumulatorJob())
            assert exe._pool is not pool  # different job: rebuilt

    def test_closed_executor_rejects_work(self):
        exe = MultiprocessExecutor(2)
        exe.close()
        with pytest.raises(RuntimeError):
            exe.map(len, [b""])
        with pytest.raises(RuntimeError):
            exe.install_job(SparseSuperaccumulatorJob())


class TestStartMethods:
    def test_pick_start_method_default(self):
        assert pick_start_method() in ("fork", "spawn")

    def test_pick_start_method_rejects_unknown(self):
        with pytest.raises(ValueError):
            pick_start_method("telepathy")

    def test_spawn_path_exact(self, rng):
        # The spawn-only-platform path (macOS/Windows): viable because
        # the initializer re-installs the job in fresh interpreters.
        x = random_hard_array(rng, 1500)
        with BlockStore(block_items=256, shared=True) as store:
            store.put("d", x)
            refs = store.block_refs("d")
            with MultiprocessExecutor(2, start_method="spawn") as exe:
                assert exe.start_method == "spawn"
                res = run_job(SparseSuperaccumulatorJob(), refs, reducers=2, executor=exe)
        assert res.value == ref_sum(x)


class TestPersistentExecutor:
    def test_same_key_same_executor(self):
        a = shared_process_executor(2)
        b = shared_process_executor(2)
        assert a is b

    def test_replaced_after_shutdown(self):
        a = shared_process_executor(2)
        shutdown_shared_executors()
        b = shared_process_executor(2)
        assert a is not b

    def test_driver_reuses_pool_across_calls(self, rng):
        x = random_hard_array(rng, 2000)
        expect = ref_sum(x)
        assert parallel_sum(x, workers=2, executor="process", block_items=256) == expect
        exe = shared_process_executor(2)
        pool = exe._pool
        assert parallel_sum(x, workers=2, executor="process", block_items=256) == expect
        assert shared_process_executor(2)._pool is pool


class TestMmapDescriptors:
    def test_dataset_refs_roundtrip(self, tmp_path, rng):
        x = random_hard_array(rng, 700)
        path = tmp_path / "d.f64"
        write_dataset(path, x)
        np.testing.assert_array_equal(map_dataset(path), x)
        refs = dataset_block_refs(path, block_items=128)
        assert all(r.kind == "mmap" for r in refs)
        got = np.concatenate([resolve_block(r) for r in refs])
        np.testing.assert_array_equal(got, x)

    def test_refs_feed_combine_across_processes(self, tmp_path, rng):
        x = random_hard_array(rng, 2000)
        path = tmp_path / "d.f64"
        write_dataset(path, x)
        refs = dataset_block_refs(path, block_items=256)
        with MultiprocessExecutor(2) as exe:
            res = run_job(SparseSuperaccumulatorJob(), refs, reducers=2, executor=exe)
        assert res.value == ref_sum(x)
        assert res.zero_copy and res.dispatch_bytes < 8 * x.size

    def test_mapped_ext_array_scan_matches(self, tmp_path, rng):
        x = random_hard_array(rng, 500)
        path = tmp_path / "d.f64"
        write_dataset(path, x)
        arr = MappedExtArray(path, block_items=64)
        assert len(arr) == 500 and arr.num_blocks == 8
        np.testing.assert_array_equal(np.concatenate(list(arr.scan())), x)
        back = np.concatenate(list(arr.scan(reverse=True))[::-1])
        np.testing.assert_array_equal(back, x)
        np.testing.assert_array_equal(arr.to_numpy(), x)

    def test_mapped_ext_array_refs(self, tmp_path, rng):
        x = random_hard_array(rng, 300)
        path = tmp_path / "d.f64"
        write_dataset(path, x)
        refs = MappedExtArray(path, block_items=100).block_refs()
        res = run_job(SparseSuperaccumulatorJob(), refs, reducers=2)
        assert res.value == ref_sum(x)

    def test_empty_dataset_refs(self, tmp_path):
        path = tmp_path / "e.f64"
        write_dataset(path, [])
        refs = dataset_block_refs(path)
        assert len(refs) == 1 and refs[0].length == 0


class TestJobResultAccounting:
    def test_throughput_fields(self, rng):
        x = random_hard_array(rng, 5000)
        res = parallel_sum(x, workers=4, executor="simulated", report=True,
                           block_items=512)
        assert res.input_items == 5000
        assert res.input_bytes == x.nbytes
        assert res.phase_throughput("combine") > 0
        assert res.combine_bytes_per_second > 0
        assert res.phase_throughput("no-such-phase") == 0.0

    def test_shuffle_scales_with_p_not_n(self, rng):
        # the acceptance criterion: dispatch + shuffle volume must be
        # independent of n once the combiner and the data plane are on
        small = random_hard_array(rng, 1 << 10)
        big = random_hard_array(rng, 1 << 14)
        results = {}
        for name, x in (("small", small), ("big", big)):
            with BlockStore(block_items=1 << 8, shared=True) as store:
                store.put("d", x)
                refs = store.block_refs("d")
                with MultiprocessExecutor(2) as exe:
                    results[name] = run_job(
                        SparseSuperaccumulatorJob(), refs, reducers=2, executor=exe
                    )
        per_block_small = results["small"].dispatch_bytes / results["small"].blocks
        per_block_big = results["big"].dispatch_bytes / results["big"].blocks
        # dispatch cost per task is a descriptor: flat in block payload
        assert abs(per_block_big - per_block_small) < 50
