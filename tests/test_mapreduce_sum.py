"""Unit tests for the MapReduce summation jobs and driver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.mapreduce.driver import parallel_sum
from repro.mapreduce.hdfs import BlockStore
from repro.mapreduce.runtime import run_job
from repro.mapreduce.sum_job import (
    NaiveSumJob,
    NoCombinerSumJob,
    SmallSuperaccumulatorJob,
    SparseSuperaccumulatorJob,
)
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum

EXACT_JOBS = [SparseSuperaccumulatorJob, SmallSuperaccumulatorJob]


def run_direct(job, x, *, block_items=32, reducers=3):
    store = BlockStore(block_items=block_items)
    store.put("d", x)
    return run_job(job, [b.data for b in store.blocks("d")], reducers=reducers)


class TestJobs:
    @pytest.mark.parametrize("job_cls", EXACT_JOBS)
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, job_cls, case):
        res = run_direct(job_cls(), np.array(case, dtype=np.float64), block_items=2)
        assert res.value == ref_sum(case)

    @pytest.mark.parametrize("job_cls", EXACT_JOBS)
    def test_random(self, job_cls, rng):
        for _ in range(10):
            x = random_hard_array(rng, int(rng.integers(1, 1500)))
            res = run_direct(job_cls(), x, block_items=128)
            assert res.value == ref_sum(x)

    @pytest.mark.parametrize("job_cls", EXACT_JOBS)
    def test_block_size_invariance(self, job_cls, rng):
        x = random_hard_array(rng, 700)
        vals = {
            run_direct(job_cls(), x, block_items=b).value for b in (7, 64, 1000)
        }
        assert len(vals) == 1

    @pytest.mark.parametrize("job_cls", EXACT_JOBS)
    def test_reducer_count_invariance(self, job_cls, rng):
        x = random_hard_array(rng, 500)
        vals = {
            run_direct(job_cls(), x, reducers=p).value for p in (1, 2, 7, 64)
        }
        assert len(vals) == 1

    def test_naive_job_is_inexact_on_hard_input(self):
        x = np.array([1e16, 1.0, -1e16] * 100)
        naive = run_direct(NaiveSumJob(), x, block_items=7).value
        exact = run_direct(SparseSuperaccumulatorJob(), x, block_items=7).value
        assert exact == 100.0
        assert naive != exact

    def test_shuffle_volume_is_small(self, rng):
        # the combine step means shuffle ~ p accumulators, not n records
        x = random_hard_array(rng, 10_000)
        res = run_direct(SparseSuperaccumulatorJob(), x, block_items=500)
        assert res.shuffle_bytes < 8 * x.size / 10

    def test_no_combiner_job_exact_but_heavy_shuffle(self, rng):
        # the §6.2 ablation: same answer, shuffle carries the whole input
        x = random_hard_array(rng, 5_000)
        with_comb = run_direct(SparseSuperaccumulatorJob(), x, block_items=250)
        without = run_direct(NoCombinerSumJob(), x, block_items=250)
        assert without.value == with_comb.value == ref_sum(x)
        assert without.shuffle_bytes >= 8 * x.size  # raw data crosses
        # the volume ratio grows with the block size (raw bytes per
        # block vs one fixed-size accumulator); at this small scale
        # expect a modest factor, at bench scale >100x (ABL-C bench)
        assert without.shuffle_bytes > 4 * with_comb.shuffle_bytes

    def test_no_combiner_adversarial(self):
        for case in ADVERSARIAL_CASES:
            res = run_direct(
                NoCombinerSumJob(), np.array(case, dtype=np.float64), block_items=2
            )
            assert res.value == ref_sum(case)


class TestDriver:
    def test_exact_serial(self, rng):
        x = random_hard_array(rng, 2000)
        for method in ("sparse", "small"):
            assert parallel_sum(x, method=method) == ref_sum(x)

    def test_exact_multiprocess(self, rng):
        x = random_hard_array(rng, 5000)
        got = parallel_sum(x, workers=2, method="sparse", executor="process",
                           block_items=512)
        assert got == ref_sum(x)

    def test_exact_simulated(self, rng):
        x = random_hard_array(rng, 5000)
        got = parallel_sum(x, workers=8, method="small", executor="simulated",
                           block_items=512)
        assert got == ref_sum(x)

    def test_report(self, rng):
        x = random_hard_array(rng, 1000)
        res = parallel_sum(x, workers=4, executor="simulated", report=True,
                           block_items=128)
        assert res.value == ref_sum(x)
        assert res.blocks == 8
        assert res.total_seconds > 0

    def test_worker_invariance(self, rng):
        x = random_hard_array(rng, 3000)
        vals = {
            parallel_sum(x, workers=w, executor="simulated", block_items=256)
            for w in (1, 2, 8, 32)
        }
        assert len(vals) == 1

    def test_bad_method(self):
        with pytest.raises(ValueError):
            parallel_sum([1.0], method="quantum")

    def test_bad_executor(self):
        with pytest.raises(ValueError):
            parallel_sum([1.0], executor="gpu")

    def test_empty_input(self):
        assert parallel_sum([]) == 0.0

    def test_mode_passthrough(self, rng):
        from fractions import Fraction
        from tests.conftest import exact_fraction

        x = random_hard_array(rng, 300)
        lo = parallel_sum(x, mode="down")
        hi = parallel_sum(x, mode="up")
        assert Fraction(lo) <= exact_fraction(x) <= Fraction(hi)
