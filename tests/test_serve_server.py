"""TCP server tests: round-trips, pipelining, concurrency exactness,
wire abuse, and clean shutdown.

The headline test is the acceptance criterion: 8 concurrent TCP
clients interleaving adds of an ill-conditioned dataset into a
4-shard service must produce a ``value()`` bit-identical to the serial
exact sum.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.core import exact_sum
from repro.data import generate
from repro.errors import ProtocolError, ServiceError
from repro.serve import (
    ReproServeClient,
    ReproServer,
    ReproService,
    ServeConfig,
)
from repro.serve.protocol import encode_frame, read_frame
from tests.conftest import random_hard_array, ref_sum


def run(coro):
    return asyncio.run(coro)


async def start_stack(**kwargs):
    service = ReproService(ServeConfig(**kwargs))
    await service.start()
    server = ReproServer(service, port=0)
    await server.start()
    return service, server


async def stop_stack(service, server):
    await server.close()
    await service.close()


class TestRoundTrip:
    def test_ping_add_value(self, rng):
        async def main():
            service, server = await start_stack(shards=2)
            client = await ReproServeClient.connect(port=server.port)
            pong = await client.ping()
            assert pong["pong"] is True and pong["shards"] == 2
            x = random_hard_array(rng, 100)
            await client.add_array("s", x)
            assert await client.value("s") == ref_sum(x)
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_pipelined_requests_one_connection(self, rng):
        async def main():
            service, server = await start_stack(shards=4)
            client = await ReproServeClient.connect(port=server.port)
            x = random_hard_array(rng, 640)
            chunks = np.array_split(x, 64)
            # fire all requests without awaiting in between: responses
            # come back tagged by id and may complete out of order
            await asyncio.gather(
                *(client.add_array("p", chunk) for chunk in chunks)
            )
            assert await client.value("p") == ref_sum(x)
            assert await client.count("p") == 640
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_snapshot_restore_over_wire(self, rng):
        async def main():
            service, server = await start_stack(shards=3)
            client = await ReproServeClient.connect(port=server.port)
            x = random_hard_array(rng, 250)
            await client.add_array("a", x)
            blob = await client.snapshot("a")
            await client.restore("b", blob)
            assert await client.value("b") == ref_sum(x)
            value, count, _ = await client.drain("a")
            assert value == ref_sum(x) and count == 250
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_error_response_raises_typed(self):
        async def main():
            service, server = await start_stack(shards=1)
            client = await ReproServeClient.connect(port=server.port)
            with pytest.raises(ServiceError):
                await client.request("warp")
            # connection still healthy afterwards
            assert (await client.ping())["pong"] is True
            await client.close()
            await stop_stack(service, server)

        run(main())


class TestConcurrentExactness:
    """Acceptance criterion: K clients x M interleaved adds == serial sum."""

    @pytest.mark.parametrize("dist", ["sumzero", "anderson"])
    def test_eight_clients_four_shards_bit_identical(self, dist):
        async def main():
            service, server = await start_stack(shards=4, queue_depth=128)
            data = generate(dist, 8192, delta=600, seed=7)
            reference = exact_sum(data)
            parts = np.array_split(data, 8)

            async def client_task(chunk, i):
                client = await ReproServeClient.connect(port=server.port)
                # interleave: many small adds plus array batches
                pieces = np.array_split(chunk, 32)
                for j, piece in enumerate(pieces):
                    if j % 8 == 0 and piece.size:
                        for v in piece[:2]:
                            await client.add("hot", float(v))
                        if piece.size > 2:
                            await client.add_array("hot", piece[2:])
                    else:
                        await client.add_array("hot", piece)
                await client.close()

            await asyncio.gather(*(client_task(p, i) for i, p in enumerate(parts)))
            reader = await ReproServeClient.connect(port=server.port)
            got = await reader.value("hot")
            assert got == reference, (got, reference)
            assert got.hex() == reference.hex()
            assert await reader.count("hot") == data.size
            await reader.close()
            await stop_stack(service, server)

        run(main())

    def test_reads_interleaved_with_writes_stay_exact(self, rng):
        # every intermediate read must be *some* correctly rounded
        # prefix state; the final read must be the full exact sum
        async def main():
            service, server = await start_stack(shards=4)
            x = random_hard_array(rng, 2000)
            writer_done = asyncio.Event()

            async def writer():
                client = await ReproServeClient.connect(port=server.port)
                for chunk in np.array_split(x, 40):
                    await client.add_array("w", chunk)
                await client.close()
                writer_done.set()

            async def poller():
                client = await ReproServeClient.connect(port=server.port)
                while not writer_done.is_set():
                    await client.value("w")  # must never error or wedge
                    await asyncio.sleep(0)
                await client.close()

            await asyncio.gather(writer(), poller())
            client = await ReproServeClient.connect(port=server.port)
            assert await client.value("w") == ref_sum(x)
            await client.close()
            await stop_stack(service, server)

        run(main())


class TestWireAbuse:
    async def _raw_connection(self, server):
        return await asyncio.open_connection("127.0.0.1", server.port)

    def test_invalid_json_connection_survives(self):
        async def main():
            service, server = await start_stack(shards=1)
            reader, writer = await self._raw_connection(server)
            bad = b"this is not json\n"
            writer.write(struct.pack("!I", len(bad)) + bad)
            await writer.drain()
            resp = await read_frame(reader)
            assert resp["ok"] is False and resp["code"] == "protocol"
            assert resp["fatal"] is False
            # same connection, valid request: still served
            writer.write(encode_frame({"op": "ping", "id": 1}))
            await writer.drain()
            resp = await read_frame(reader)
            assert resp["ok"] is True and resp["pong"] is True
            writer.close()
            await writer.wait_closed()
            await stop_stack(service, server)

        run(main())

    def test_oversized_prefix_clean_close(self):
        async def main():
            service, server = await start_stack(shards=1)
            reader, writer = await self._raw_connection(server)
            writer.write(struct.pack("!I", 1 << 31) + b"x" * 64)
            await writer.drain()
            resp = await read_frame(reader)
            assert resp["ok"] is False and resp["code"] == "protocol"
            assert resp["fatal"] is True
            assert await reader.read() == b""  # server closed the connection
            writer.close()
            await writer.wait_closed()
            # the server itself is unharmed: fresh connections work
            client = await ReproServeClient.connect(port=server.port)
            assert (await client.ping())["pong"] is True
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_truncated_frame_then_disconnect(self):
        async def main():
            service, server = await start_stack(shards=1)
            reader, writer = await self._raw_connection(server)
            frame = encode_frame({"op": "ping"})
            writer.write(frame[: len(frame) - 2])  # cut mid-payload
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # server survives the half-frame disconnect
            client = await ReproServeClient.connect(port=server.port)
            assert (await client.ping())["pong"] is True
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_garbage_flood(self, rng):
        async def main():
            service, server = await start_stack(shards=1)
            for _ in range(5):
                reader, writer = await self._raw_connection(server)
                blob = rng.integers(0, 256, size=257).astype(np.uint8).tobytes()
                writer.write(blob)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            client = await ReproServeClient.connect(port=server.port)
            x = [1e16, 1.0, -1e16]
            await client.add_array("g", x)
            assert await client.value("g") == 1.0
            await client.close()
            await stop_stack(service, server)

        run(main())


class TestShutdown:
    def test_shutdown_op_stops_server(self, rng):
        async def main():
            service, server = await start_stack(shards=2)
            client = await ReproServeClient.connect(port=server.port)
            x = random_hard_array(rng, 64)
            await client.add_array("s", x)
            resp = await client.shutdown()
            assert resp["stopping"] is True
            await asyncio.wait_for(server.serve_forever(), timeout=5)
            # state survives server (not service) shutdown
            from repro.serve import InProcessClient

            assert await InProcessClient(service).value("s") == ref_sum(x)
            await client.close()
            await service.close()

        run(main())

    def test_shutdown_op_can_be_disabled(self):
        async def main():
            service, server = await start_stack(shards=1, allow_shutdown=False)
            client = await ReproServeClient.connect(port=server.port)
            with pytest.raises(ServiceError):
                await client.shutdown()
            await client.close()
            await stop_stack(service, server)

        run(main())


class TestBinaryNegotiation:
    """hello upgrade, version rejection, fallback, mixed fleets."""

    def test_hello_upgrades_wire(self):
        async def main():
            service, server = await start_stack(shards=2)
            client = await ReproServeClient.connect(port=server.port, wire="binary")
            assert client.wire == "binary"
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_bad_version_raises_typed_and_connection_survives(self):
        from repro.errors import ProtocolVersionError

        async def main():
            service, server = await start_stack(shards=1)
            client = await ReproServeClient.connect(port=server.port)
            with pytest.raises(ProtocolVersionError):
                await client.hello(version=99)
            assert client.wire == "json"
            with pytest.raises(ProtocolVersionError):
                await client.hello(wire="carrier-pigeon")
            # the connection stays usable on its previous wire
            assert (await client.ping())["pong"] is True
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_binary_batch_bit_identical_to_json(self, rng):
        async def main():
            service, server = await start_stack(shards=4)
            x = random_hard_array(rng, 5000)
            jc = await ReproServeClient.connect(port=server.port)
            bc = await ReproServeClient.connect(port=server.port, wire="binary")
            await jc.add_array("via-json", x)
            await bc.add_batch("via-binary", x)
            assert await jc.value("via-json") == await bc.value("via-binary") == ref_sum(x)
            await jc.close()
            await bc.close()
            await stop_stack(service, server)

        run(main())

    def test_mixed_fleet_same_stream_same_total(self, rng):
        """One JSON + one binary client interleave into ONE stream."""

        async def main():
            service, server = await start_stack(shards=4)
            x = random_hard_array(rng, 8192)
            jc = await ReproServeClient.connect(port=server.port)
            bc = await ReproServeClient.connect(port=server.port, wire="binary")
            chunks = np.array_split(x, 32)
            sends = []
            for i, chunk in enumerate(chunks):
                client = bc if i % 2 else jc
                sends.append(client.add_batch("fleet", chunk))
            await asyncio.gather(*sends)
            assert await jc.value("fleet") == ref_sum(x)
            assert await bc.value("fleet") == ref_sum(x)
            # wire metrics saw both modes
            wire = (await jc.stats())["wire"]
            assert wire["json"]["frames"] == 16
            assert wire["binary"]["frames"] == 16
            assert wire["json"]["values"] == wire["binary"]["values"]
            # binary payloads are materially denser than JSON text
            assert wire["binary"]["payload_bytes"] < wire["json"]["payload_bytes"]
            assert wire["binary"]["mean_values_per_frame"] == pytest.approx(256.0)
            await jc.close()
            await bc.close()
            await stop_stack(service, server)

        run(main())

    def test_corrupt_binary_frame_recoverable_on_live_connection(self, rng):
        """Raw socket: hello, good frame, corrupt frame, good frame.

        The corrupt frame's error response carries no ``id`` (the
        request id is inside the unparseable payload), so this drives
        the wire by hand instead of through the pipelined client.
        """

        async def main():
            service, server = await start_stack(shards=2)
            from repro.serve.protocol import (
                encode_batch_frame,
                read_frame,
                write_frame,
            )

            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await write_frame(writer, {"op": "hello", "id": 1, "version": 2, "wire": "binary"})
            hello = await read_frame(reader)
            assert hello["ok"] and hello["wire"] == "binary"
            x = random_hard_array(rng, 64)

            writer.write(encode_batch_frame(2, "s", x))
            await writer.drain()
            assert (await read_frame(reader))["added"] == 64

            corrupt = bytearray(encode_batch_frame(3, "s", x[:16]))
            corrupt[4:8] = b"ZZZZ"  # ruin the magic, keep the framing
            writer.write(bytes(corrupt))
            await writer.drain()
            err = await read_frame(reader)
            assert err["ok"] is False and err["code"] == "protocol"

            # connection survived; shard state unharmed; binary still works
            writer.write(encode_batch_frame(4, "s", x))
            await writer.drain()
            assert (await read_frame(reader))["added"] == 64
            await write_frame(writer, {"op": "value", "id": 5, "stream": "s"})
            resp = await read_frame(reader)
            assert resp["value"] == ref_sum(np.concatenate([x, x]))
            assert resp["count"] == 128
            writer.close()
            await stop_stack(service, server)

        run(main())

    def test_nonfinite_binary_frame_rejected_stream_unharmed(self, rng):
        async def main():
            service, server = await start_stack(shards=2)
            client = await ReproServeClient.connect(port=server.port, wire="binary")
            x = random_hard_array(rng, 500)
            await client.add_batch("s", x)
            with pytest.raises(ProtocolError, match="non-finite"):
                await client.add_batch("s", np.array([1.0, np.inf]))
            assert await client.value("s") == ref_sum(x)
            assert await client.count("s") == 500
            await client.close()
            await stop_stack(service, server)

        run(main())

    def test_in_process_client_binary_matches_tcp(self, rng):
        from repro.serve import InProcessClient

        async def main():
            service = ReproService(ServeConfig(shards=3))
            await service.start()
            client = InProcessClient(service, wire="binary")
            x = random_hard_array(rng, 4096)
            added = await client.add_batch("s", x)
            assert added == 4096
            assert await client.value("s") == ref_sum(x)
            wire = (await client.stats())["wire"]
            assert wire["binary"]["frames"] == 1
            assert wire["binary"]["values"] == 4096
            await service.close()

        run(main())
