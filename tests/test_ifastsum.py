"""Unit tests for the iFastSum baseline (Zhu & Hayes distillation)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.ifastsum import ifastsum, round_three_exact
from repro.errors import NonFiniteInputError
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum


class TestRoundThreeExact:
    def test_simple(self):
        assert round_three_exact(1.0, 2.0, 3.0) == 6.0
        assert round_three_exact(0.0, 0.0, 0.0) == 0.0

    def test_cancellation(self):
        assert round_three_exact(1e16, 1.0, -1e16) == 1.0

    def test_tie(self):
        # 1 + 2**-53 is an exact tie -> even
        assert round_three_exact(1.0, 2.0**-53, 0.0) == 1.0
        # crumb breaks it upward
        assert round_three_exact(1.0, 2.0**-53, 2.0**-105) == 1.0 + 2.0**-52

    def test_random_vs_reference(self, rng):
        for _ in range(300):
            a, b, c = (random_hard_array(rng, 3)).tolist()
            assert round_three_exact(a, b, c) == ref_sum([a, b, c])

    def test_directed(self):
        got = round_three_exact(1.0, 2.0**-60, 0.0, mode="up")
        assert got == 1.0 + 2.0**-52
        got = round_three_exact(1.0, 2.0**-60, 0.0, mode="down")
        assert got == 1.0


class TestIFastSum:
    def test_empty_and_single(self):
        assert ifastsum([]) == 0.0
        assert ifastsum([-2.5]) == -2.5

    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        assert ifastsum(case) == ref_sum(case)

    def test_random_wide_range(self, rng):
        for _ in range(40):
            n = int(rng.integers(1, 500))
            x = random_hard_array(rng, n)
            assert ifastsum(x) == ref_sum(x)

    def test_sum_zero_instances(self, rng):
        x = rng.random(500)
        data = np.concatenate([x, -x])
        rng.shuffle(data)
        assert ifastsum(data) == 0.0

    def test_near_tie_resolution(self):
        # engineered half-way cases that require the recursion/fallback
        cases = [
            [1.0, 2.0**-53, 2.0**-108, -(2.0**-108), 2.0**-140],
            [2.0**52, 0.5, 2.0**-60],
            [2.0**52, 0.5, -(2.0**-60)],
            [1.0] + [2.0**-55] * 4,          # 4 * 2**-55 = half ulp: tie
            [1.0] + [2.0**-55] * 4 + [2.0**-200],
        ]
        for c in cases:
            assert ifastsum(c) == ref_sum(c), c

    def test_prefix_overflow_fallback(self):
        data = [1e308, 1e308, -1e308, -1e308, 3.25]
        assert ifastsum(data) == 3.25

    def test_overflowing_total(self):
        assert ifastsum([1e308, 1e308]) == math.inf
        assert ifastsum([-1e308, -1e308]) == -math.inf

    def test_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            ifastsum([1.0, math.nan])

    def test_input_not_modified(self, rng):
        x = rng.random(100)
        before = x.copy()
        ifastsum(x)
        assert (x == before).all()

    def test_subnormal_only_data(self, rng):
        x = (rng.integers(-100, 100, 50)).astype(np.float64) * 2.0**-1074
        assert ifastsum(x) == ref_sum(x)
