"""Unit tests for the external multiway merge sort."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extmem.device import BlockDevice
from repro.extmem.ext_array import ExtArray
from repro.extmem.ext_sort import external_merge_sort
from repro.extmem.io_model import sort_bound
from repro.extmem.sum_sort import COMPONENT_DTYPE


def make_records(rng, n, key_range=100):
    rec = np.empty(n, dtype=COMPONENT_DTYPE)
    rec["idx"] = rng.integers(-key_range, key_range, n)
    rec["dig"] = rng.integers(-(1 << 40), 1 << 40, n)
    return rec


class TestCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 7, 64, 500, 4096])
    def test_sorted_output(self, n, rng):
        dev = BlockDevice(block_size=16, memory=16 * 5)
        rec = make_records(rng, n)
        src = ExtArray.from_numpy(dev, "in", rec)
        out = external_merge_sort(dev, src, key="idx", out_name="sorted")
        got = out.to_numpy()
        exp = rec[np.argsort(rec["idx"], kind="stable")]
        if n:
            assert (got["idx"] == exp["idx"]).all()
            assert (got["dig"] == exp["dig"]).all()
        else:
            assert got.size == 0

    def test_stability(self, rng):
        # equal keys keep original relative order
        dev = BlockDevice(block_size=8, memory=8 * 4)
        rec = np.empty(40, dtype=COMPONENT_DTYPE)
        rec["idx"] = 7
        rec["dig"] = np.arange(40)
        src = ExtArray.from_numpy(dev, "in", rec)
        out = external_merge_sort(dev, src, key="idx", out_name="s")
        assert (out.to_numpy()["dig"] == np.arange(40)).all()

    def test_source_preserved(self, rng):
        dev = BlockDevice(block_size=8, memory=64)
        rec = make_records(rng, 50)
        src = ExtArray.from_numpy(dev, "in", rec)
        external_merge_sort(dev, src, key="idx", out_name="s")
        assert (src.to_numpy() == rec).all()

    def test_intermediate_runs_cleaned(self, rng):
        dev = BlockDevice(block_size=8, memory=8 * 4)
        src = ExtArray.from_numpy(dev, "in", make_records(rng, 600))
        external_merge_sort(dev, src, key="idx", out_name="s")
        assert set(dev.list_files()) == {"in", "s"}


class TestIOBehaviour:
    def test_io_near_bound(self, rng):
        n = 8000
        dev = BlockDevice(block_size=32, memory=32 * 8)
        src = ExtArray.from_numpy(dev, "in", make_records(rng, n))
        before = dev.stats.total
        external_merge_sort(dev, src, key="idx", out_name="s")
        used = dev.stats.total - before
        bound = sort_bound(n, dev.memory, dev.block_size)
        assert used <= 2 * bound  # constant-factor agreement

    def test_more_memory_fewer_ios(self, rng):
        n = 6000
        ios = []
        for mem_blocks in (4, 32):
            dev = BlockDevice(block_size=16, memory=16 * mem_blocks)
            src = ExtArray.from_numpy(dev, "in", make_records(rng, n))
            before = dev.stats.total
            external_merge_sort(dev, src, key="idx", out_name="s")
            ios.append(dev.stats.total - before)
        assert ios[1] < ios[0]

    def test_single_run_case(self, rng):
        # everything fits in memory: one run, no merge levels
        n = 50
        dev = BlockDevice(block_size=16, memory=16 * 8)
        src = ExtArray.from_numpy(dev, "in", make_records(rng, n))
        before = dev.stats.total
        external_merge_sort(dev, src, key="idx", out_name="s")
        used = dev.stats.total - before
        assert used <= 2 * (-(-n // 16)) + 2
