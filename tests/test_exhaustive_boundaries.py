"""Exhaustive verification on the format's boundary regions.

Random testing rarely lands on the exact boundaries where rounding
logic branches (subnormal threshold, overflow threshold, tie points,
digit-width seams). These tests enumerate those regions *densely* —
every value in a window — so any off-by-one in a boundary comparison
fails deterministically.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.digits import RadixConfig, split_float
from repro.core.rounding import MAX_FINITE, round_scaled_int
from repro.core.sparse import SparseSuperaccumulator
from tests.conftest import fraction_to_float


def ref(v: int, s: int) -> float:
    try:
        return float(Fraction(v) * Fraction(2) ** s)
    except OverflowError:
        return math.inf if v > 0 else -math.inf


class TestSubnormalBoundaryExhaustive:
    def test_every_value_near_the_floor(self):
        # all integers scaled to straddle 2**-1074 ... 2**-1070
        for v in range(-70, 71):
            for s in (-1080, -1077, -1075, -1074, -1073, -1072):
                assert round_scaled_int(v, s) == ref(v, s), (v, s)

    def test_half_units_tie_to_even(self):
        # v * 2**-1075: exactly half the smallest subnormal per odd v
        for v in range(1, 64, 2):
            got = round_scaled_int(v, -1075)
            want = ref(v, -1075)
            assert got == want, v

    def test_normal_subnormal_seam(self):
        # dense window around 2**-1022 where the lsb rule switches
        base = 1 << 60
        for dv in range(-40, 41):
            v = base + dv
            for s in (-1082, -1083, -1084):
                assert round_scaled_int(v, s) == ref(v, s), (v, s)


class TestOverflowBoundaryExhaustive:
    def test_window_around_max_finite(self):
        # values maxfinite + k * 2**970 for k in [-8, 8]: the overflow
        # tie sits at k = +1/2 in these units
        m = (1 << 53) - 1  # maxfinite mantissa at scale 2**971
        for k in range(-16, 17):
            v = (m << 1) + k  # scale 2**970
            assert round_scaled_int(v, 970) == ref(v, 970), k

    def test_directed_saturation_window(self):
        m = (1 << 54) - 2  # maxfinite at scale 2**970
        for k in range(0, 8):
            v = m + k
            down = round_scaled_int(v, 970, "down")
            up = round_scaled_int(v, 970, "up")
            assert down <= MAX_FINITE
            if k > 0:
                assert up == math.inf
            else:
                assert up == MAX_FINITE


class TestTieExhaustive:
    def test_all_53bit_ties(self):
        # v = (2m+1) * 2**(cut-1): exact ties at several cut widths —
        # result must always have an even mantissa
        for mantissa in range((1 << 53) - 32, (1 << 53) + 32):
            v = 2 * mantissa + 1  # odd low bit
            got = round_scaled_int(v, 0)
            assert got == ref(v, 0), mantissa
            if mantissa < 1 << 53:
                # 54-bit v, cut = 1, remainder exactly half: a genuine
                # tie, so ties-to-even forces an even result mantissa
                m53, _ = math.frexp(got)
                assert int(m53 * (1 << 53)) % 2 == 0


class TestDigitSeamExhaustive:
    @pytest.mark.parametrize("w", [4, 8, 16, 26, 30, 31])
    def test_exponents_across_every_seam(self, w):
        # values 2**e for e crossing every digit-index boundary in a
        # window: splitting must stay exact and regularized
        radix = RadixConfig(w)
        for e in range(-3 * w, 3 * w + 1):
            x = math.ldexp(1.0 + 0.5, e)  # 1.5 * 2**e: two set bits
            pairs = split_float(x, radix)
            total = sum(
                (Fraction(d) * Fraction(2) ** (w * j) for j, d in pairs),
                Fraction(0),
            )
            assert total == Fraction(x), (w, e)
            for _, d in pairs:
                assert 0 < abs(d) <= radix.alpha

    @pytest.mark.parametrize("w", [8, 30])
    def test_accumulator_at_every_seam(self, w):
        # sums that place the carry exactly on a digit boundary
        radix = RadixConfig(w)
        for j in range(-3, 4):
            edge = math.ldexp(1.0, w * j)
            below = math.ldexp(1.0, w * j - 1)
            acc = SparseSuperaccumulator.from_floats(
                np.array([below, below]), radix
            )
            assert acc.to_fraction() == Fraction(edge), (w, j)


class TestUlpNeighborhoodSums:
    def test_all_pairs_in_an_ulp_cloud(self):
        # every ordered pair from a +-4-ulp cloud around 1.0 and 2**52:
        # two_sum-based and superaccumulator sums must agree exactly
        from repro.baselines import ifastsum

        for center in (1.0, float(1 << 52)):
            cloud = [center]
            lo = hi = center
            for _ in range(4):
                lo = math.nextafter(lo, -math.inf)
                hi = math.nextafter(hi, math.inf)
                cloud += [lo, hi]
            for a in cloud:
                for b in cloud:
                    data = [a, -b, b, -a, a]
                    want = fraction_to_float(
                        sum((Fraction(v) for v in data), Fraction(0))
                    )
                    assert ifastsum(data) == want
                    assert (
                        SparseSuperaccumulator.from_floats(
                            np.array(data)
                        ).to_float()
                        == want
                    )
