"""Hypothesis properties for the machine-model substrates.

Random operation sequences against the block device, block store and
BSP machine: invariants must hold for *any* usage pattern, not just the
ones the algorithms happen to exercise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.extmem.device import BlockDevice
from repro.extmem.ext_array import ExtArray
from repro.mapreduce.hdfs import BlockStore


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=12),
    block_size=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=80)
def test_ext_array_writer_preserves_content(sizes, block_size):
    dev = BlockDevice(block_size=block_size, memory=block_size * 4)
    out = ExtArray(dev, "f")
    rng = np.random.default_rng(sum(sizes) + block_size)
    chunks = [rng.random(s) for s in sizes]
    with out.writer() as w:
        for c in chunks:
            w.write(c)
    expect = np.concatenate(chunks) if chunks else np.empty(0)
    got = out.to_numpy()
    assert got.shape == expect.shape and (got == expect).all()
    # every block except possibly the last is exactly full
    for i in range(out.num_blocks - 1):
        assert dev.read_block("f", i).shape[0] == block_size


@given(
    n=st.integers(min_value=0, max_value=200),
    block_items=st.integers(min_value=1, max_value=50),
    nodes=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=80)
def test_block_store_partition_covers_exactly(n, block_items, nodes):
    store = BlockStore(nodes=nodes, block_items=block_items)
    data = np.arange(n, dtype=np.float64)
    blocks = store.put("d", data)
    back = np.concatenate([b.data for b in blocks]) if blocks else np.empty(0)
    assert (back == data).all()
    # round-robin placement
    for i, b in enumerate(blocks):
        assert b.node == i % nodes
    # locality views partition the block set
    total = sum(len(store.blocks_on_node("d", k)) for k in range(nodes))
    assert total == len(blocks)


@given(
    io_ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=5)),
        min_size=0,
        max_size=30,
    )
)
@settings(max_examples=60)
def test_device_counters_monotone(io_ops):
    dev = BlockDevice(block_size=4, memory=16)
    dev.create("f")
    for _ in range(6):
        dev.append_block("f", np.zeros(4))
    prev = 0
    for is_read, idx in io_ops:
        if is_read:
            dev.read_block("f", idx)
        else:
            dev.append_block("f", np.zeros(2))
        assert dev.stats.total > prev
        prev = dev.stats.total


@given(
    payload_sizes=st.lists(
        st.integers(min_value=0, max_value=64), min_size=1, max_size=10
    ),
    p=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60)
def test_bsp_byte_accounting(payload_sizes, p):
    from repro.bsp.simulator import BSPMachine

    machine = BSPMachine(p)

    def prog(rank):
        if rank.rank == 0:
            for i, size in enumerate(payload_sizes):
                rank.send(i % rank.size, b"x" * size)
        yield
        return len(rank.recv_all())

    received = machine.run(prog)
    assert sum(received) == len(payload_sizes)
    assert machine.stats.bytes_sent == sum(payload_sizes)
    assert machine.stats.messages == len(payload_sizes)
