"""Metamorphic tests: algebraic laws the exact machinery must satisfy.

Instead of comparing against a reference value, these check relations
between outputs on *transformed* inputs — permutation, partitioning,
negation, scaling by powers of two, concatenation — which exact
arithmetic must preserve identically and float arithmetic does not.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import SparseSuperaccumulator, exact_sum
from tests.conftest import random_hard_array


class TestSumLaws:
    def test_permutation_invariance(self, rng):
        x = random_hard_array(rng, 800)
        base = exact_sum(x)
        for _ in range(5):
            assert exact_sum(rng.permutation(x)) == base

    def test_partition_invariance(self, rng):
        # sum of exact partial states == exact sum of the whole
        x = random_hard_array(rng, 700)
        whole = SparseSuperaccumulator.from_floats(x)
        for k in (2, 3, 7, 50):
            parts = [
                SparseSuperaccumulator.from_floats(c) for c in np.array_split(x, k)
            ]
            assert SparseSuperaccumulator.sum_many(parts) == whole

    def test_negation_antisymmetry(self, rng):
        x = random_hard_array(rng, 300)
        assert exact_sum(-x) == -exact_sum(x)

    def test_power_of_two_scaling_commutes(self, rng):
        # 2^k * sum(x) == sum(2^k * x) exactly while no over/underflow
        x = random_hard_array(rng, 200, emin=-100, emax=100)
        s = exact_sum(x)
        for k in (-40, -3, 1, 17):
            scaled = np.ldexp(x, k)
            assert exact_sum(scaled) == math.ldexp(s, k) or (
                # rounding happens at different absolute positions only
                # when the scaled sum leaves the normal range
                not math.isfinite(math.ldexp(s, k))
            )

    def test_concatenation_additivity(self, rng):
        x = random_hard_array(rng, 150)
        y = random_hard_array(rng, 150)
        a = SparseSuperaccumulator.from_floats(x)
        b = SparseSuperaccumulator.from_floats(y)
        both = SparseSuperaccumulator.from_floats(np.concatenate([x, y]))
        assert a.add(b) == both

    def test_zero_padding_invariance(self, rng):
        x = random_hard_array(rng, 100)
        padded = np.concatenate([x, np.zeros(500), [-0.0] * 3])
        assert exact_sum(padded) == exact_sum(x)

    def test_pairing_cancellation(self, rng):
        # appending {v, -v} pairs never changes the exact sum
        x = random_hard_array(rng, 100)
        noise = random_hard_array(rng, 50)
        padded = np.concatenate([x, noise, -noise])
        rng.shuffle(padded)
        assert exact_sum(padded) == exact_sum(x)


class TestAddAlgebra:
    def test_associativity(self, rng):
        a = SparseSuperaccumulator.from_floats(random_hard_array(rng, 60))
        b = SparseSuperaccumulator.from_floats(random_hard_array(rng, 60))
        c = SparseSuperaccumulator.from_floats(random_hard_array(rng, 60))
        assert a.add(b).add(c) == a.add(b.add(c))

    def test_inverse(self, rng):
        x = random_hard_array(rng, 80)
        a = SparseSuperaccumulator.from_floats(x)
        neg = SparseSuperaccumulator.from_floats(-x)
        assert a.add(neg).is_zero()

    def test_idempotent_doubling(self, rng):
        x = random_hard_array(rng, 80)
        a = SparseSuperaccumulator.from_floats(x)
        doubled = a.add(a)
        direct = SparseSuperaccumulator.from_floats(np.concatenate([x, x]))
        assert doubled == direct


class TestCrossModelLaws:
    def test_mapreduce_equals_streaming_equals_batch(self, rng):
        from repro.mapreduce import parallel_sum
        from repro.streaming import ExactRunningSum

        x = random_hard_array(rng, 2000)
        batch = exact_sum(x)
        rs = ExactRunningSum()
        for chunk in np.array_split(x, 13):
            rs.add_array(chunk)
        assert rs.value() == batch
        assert parallel_sum(x, block_items=173) == batch

    def test_extmem_block_size_invariance(self, rng):
        from repro.extmem import BlockDevice, ExtArray, extmem_sum_sorted

        x = random_hard_array(rng, 1500)
        results = set()
        for B in (16, 64, 256):
            dev = BlockDevice(block_size=B, memory=B * 10)
            src = ExtArray.from_numpy(dev, "x", x)
            results.add(extmem_sum_sorted(dev, src).value)
        assert len(results) == 1

    def test_allreduce_rank_count_invariance(self, rng):
        from repro.bsp import exact_allreduce_sum

        x = random_hard_array(rng, 900)
        outs = {
            exact_allreduce_sum(np.array_split(x, p)).values[0]
            for p in (1, 2, 5, 9)
        }
        assert outs == {exact_sum(x)}
