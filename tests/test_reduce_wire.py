"""Wire-plane tests for the reduction layer (PR 9).

Covers the op-tagged frames end to end: ``RBAT`` / ``WALO`` codec
round-trips and corruption behaviour, the serve plane's six reduction
endpoints over both JSON and binary wires, shadow-stream moments, and
the cluster plane's scatter/gather plus WAL replay — including crash
recovery on a *fresh* node instance reading the dead node's log.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import codec
from repro.errors import CodecError, EmptyStreamError, ReductionRangeError, ServiceError
from repro.stats import (
    exact_dot_fraction,
    exact_mean,
    exact_norm2,
    exact_variance,
    round_fraction,
)
from repro.util.bits import same_float


def _panel(n=600, seed=21, spread=40):
    rng = np.random.default_rng(seed)
    return np.ldexp(rng.standard_normal(n), rng.integers(-spread, spread, n))


# ---------------------------------------------------------------------------
# codec: RBAT / WALO


class TestReduceBatchFrame:
    def test_round_trip_pairs(self):
        x, y = _panel(50, seed=1), _panel(50, seed=2)
        frame = codec.encode_reduce_batch(7, 3, "s", "pairs", x, y)
        rid, seq, stream, op, gx, gy = codec.decode_reduce_batch(frame)
        assert (rid, seq, stream, op) == (7, 3, "s", "pairs")
        assert np.array_equal(gx, x) and np.array_equal(gy, y)

    @pytest.mark.parametrize("op", ["squares", "observations"])
    def test_round_trip_single_input(self, op):
        x = _panel(33, seed=3)
        frame = codec.encode_reduce_batch(1, codec.WAL_UNSEQUENCED, "t", op, x)
        rid, seq, stream, got_op, gx, gy = codec.decode_reduce_batch(frame)
        assert (rid, seq, got_op, gy) == (1, codec.WAL_UNSEQUENCED, op, None)
        assert np.array_equal(gx, x)

    def test_wire_bodies_are_input_bytes(self):
        x, y = _panel(20, seed=4), _panel(20, seed=5)
        frame = codec.encode_reduce_batch(2, -1, "s", "pairs", x, y)
        bx, by = codec.reduce_batch_wire_bodies(frame)
        assert bx == x.tobytes() and by == y.tobytes()

    def test_unknown_op_and_pair_rules(self):
        x = _panel(4, seed=6)
        with pytest.raises(CodecError):
            codec.encode_reduce_batch(0, -1, "s", "cumsum", x)
        with pytest.raises(CodecError):
            codec.encode_reduce_batch(0, -1, "s", "pairs", x)  # missing y
        with pytest.raises(CodecError):
            codec.encode_reduce_batch(0, -1, "s", "squares", x, x)  # extra y

    def test_corruption_raises(self):
        x = _panel(8, seed=7)
        frame = bytearray(codec.encode_reduce_batch(5, -1, "s", "squares", x))
        with pytest.raises(CodecError):
            codec.decode_reduce_batch(bytes(frame[:-3]))  # truncated
        frame[0] = ord(b"X")
        with pytest.raises(CodecError):
            codec.decode_reduce_batch(bytes(frame))  # bad magic


class TestWalReduceFrame:
    def test_header_size_matches_wal_contract(self):
        # WALO headers are exactly WAL_HEADER_SIZE bytes so one fixed
        # prefix read dispatches both record kinds in the WAL.
        x = _panel(5, seed=8)
        blob = codec.encode_wal_reduce(4, "s", "squares", x)
        assert codec.peek_magic(blob[: codec.WAL_HEADER_SIZE]) == b"WALO"
        assert codec.wal_record_size(blob[: codec.WAL_HEADER_SIZE]) == len(blob)

    def test_round_trip_and_raw_bytes_input(self):
        x, y = _panel(12, seed=9), _panel(12, seed=10)
        blob = codec.encode_wal_reduce(9, "s", "pairs", x.tobytes(), y.tobytes())
        seq, stream, op, gx, gy = codec.decode_wal_any(blob)
        assert (seq, stream, op) == (9, "s", "pairs")
        assert np.array_equal(gx, x) and np.array_equal(gy, y)

    def test_decode_wal_any_dispatches_plain_records(self):
        x = _panel(6, seed=11)
        blob = codec.encode_wal_record(2, "s", x)
        seq, stream, op, gx, gy = codec.decode_wal_any(blob)
        assert (seq, stream, op, gy) == (2, "s", "sum", None)
        assert np.array_equal(gx, x)

    def test_crc_corruption_raises(self):
        x = _panel(10, seed=12)
        blob = bytearray(codec.encode_wal_reduce(1, "s", "observations", x))
        blob[-2] ^= 0xFF
        with pytest.raises(CodecError):
            codec.decode_wal_any(bytes(blob))


# ---------------------------------------------------------------------------
# serve plane: endpoints over both wires


def _serve(coro_fn, *, wire="json", **config_kw):
    from repro.serve import InProcessClient, ReproService, ServeConfig

    async def run():
        async with ReproService(ServeConfig(shards=2, **config_kw)) as service:
            client = InProcessClient(service, wire=wire)
            return await coro_fn(client)

    return asyncio.run(run())


@pytest.mark.parametrize("wire", ["json", "binary"])
class TestServeReductionEndpoints:
    def test_dot_round_trip(self, wire):
        x, y = _panel(seed=13), _panel(seed=14)

        async def go(client):
            added = await client.add_pairs("d", x[:300], y[:300])
            added += await client.add_pairs("d", x[300:], y[300:])
            return added, await client.dot("d")

        added, got = _serve(go, wire=wire)
        assert added == x.size
        assert same_float(got, round_fraction(exact_dot_fraction(x, y)))

    def test_norm2_round_trip(self, wire):
        x = _panel(seed=15)

        async def go(client):
            await client.add_squares("n", x)
            return await client.norm2("n")

        assert same_float(_serve(go, wire=wire), exact_norm2(x))

    def test_moments_round_trip(self, wire):
        x = _panel(seed=16)

        async def go(client):
            await client.add_observations("m", x[:100])
            await client.add_observations("m", x[100:])
            return await client.moments("m", ddof=1)

        stats = _serve(go, wire=wire)
        assert stats["count"] == x.size
        assert same_float(stats["mean"], exact_mean(x))
        assert same_float(stats["variance"], exact_variance(x, ddof=1))

    def test_reduction_range_error_code(self, wire):
        async def go(client):
            await client.add_squares("bad", np.array([1e300]))

        with pytest.raises(ReductionRangeError):
            _serve(go, wire=wire)

    def test_empty_moments_raise(self, wire):
        async def go(client):
            await client.add_observations("e", np.array([]))
            return await client.moments("e")

        with pytest.raises(EmptyStreamError):
            _serve(go, wire=wire)


class TestServeReductionValidation:
    def test_add_pairs_shape_mismatch(self):
        async def go(client):
            await client.add_pairs("d", [1.0, 2.0], [3.0])

        with pytest.raises(ServiceError):
            _serve(go)

    def test_empty_norm2_is_zero(self):
        async def go(client):
            return await client.norm2("missing")

        assert _serve(go) == 0.0

    def test_observation_streams_serve_all_reads(self):
        # One observations ingest answers sum, mean, and moments —
        # the shadow stream carries the squares alongside.
        x = _panel(200, seed=17)

        async def go(client):
            await client.add_observations("obs", x)
            return (
                await client.value("obs"),
                await client.mean("obs"),
                await client.moments("obs", ddof=0),
            )

        value, mean, stats = _serve(go)
        assert same_float(mean, exact_mean(x))
        assert same_float(stats["variance"], exact_variance(x))

    def test_binary_wire_records_reduce_traffic(self):
        from repro.serve import InProcessClient, ReproService, ServeConfig

        async def go():
            async with ReproService(ServeConfig(shards=1)) as service:
                client = InProcessClient(service, wire="binary")
                x, y = _panel(100, seed=18), _panel(100, seed=19)
                await client.add_pairs("w", x, y)
                await client.add_squares("w2", x)
                return (
                    service.metrics.wire_frames["binary"],
                    service.metrics.wire_values["binary"],
                )

        frames, values = asyncio.run(go())
        assert frames == 2
        assert values == 300  # 100 pairs (x+y) + 100 squares


# ---------------------------------------------------------------------------
# cluster plane: scatter/gather, WAL replay, fresh-node recovery


class TestClusterReduction:
    def test_scatter_gather_matches_references(self):
        from repro.cluster import LocalCluster

        x, y = _panel(seed=20), _panel(seed=22)

        async def run():
            async with LocalCluster(nodes=3, kernel="running") as lc:
                co = lc.coordinator
                await co.scatter_reduce("d", "pairs", x, y, chunk=97)
                await co.scatter_reduce("n", "squares", x, chunk=101)
                await co.scatter_reduce("m", "observations", x, chunk=103)
                return (
                    (await co.gather_value("d"))["value"],
                    (await co.gather_norm2("n"))["value"],
                    await co.gather_moments("m", ddof=1),
                )

        dot, norm, moments = asyncio.run(run())
        assert same_float(dot, round_fraction(exact_dot_fraction(x, y)))
        assert same_float(norm, exact_norm2(x))
        assert same_float(moments["mean"], exact_mean(x))
        assert same_float(moments["variance"], exact_variance(x, ddof=1))

    def test_domain_rejection_never_poisons_the_wal(self, tmp_path):
        """A ReductionRangeError batch must not enter the WAL: replay
        on a fresh node after the rejection must succeed."""
        from repro.cluster.node import ClusterNode
        from repro.serve.service import ServeConfig

        x = _panel(100, seed=23)
        wal = tmp_path / "n.wal"

        async def run():
            async with ClusterNode("n", wal_path=wal) as node:
                from repro.serve import InProcessClient

                client = InProcessClient(node.service)
                await client.add_squares("s", x)
                with pytest.raises(ReductionRangeError):
                    await client.add_squares("s", np.array([1e300]))
                await client.add_squares("s", x)
                live = await client.norm2("s")
            # crash-recover on a FRESH node over the same WAL
            async with ClusterNode("n2", wal_path=wal) as fresh:
                client = InProcessClient(fresh.service)
                return live, await client.norm2("s")

        live, recovered = asyncio.run(run())
        both = np.concatenate([x, x])
        assert same_float(live, exact_norm2(both))
        assert same_float(recovered, live)

    def test_fresh_node_recovery_replays_all_ops(self, tmp_path):
        from repro.cluster.node import ClusterNode
        from repro.serve import InProcessClient

        x, y = _panel(150, seed=24), _panel(150, seed=25)
        wal = tmp_path / "ops.wal"

        async def run():
            async with ClusterNode("a", wal_path=wal) as node:
                client = InProcessClient(node.service)
                await client.add_pairs("d", x, y)
                await client.add_observations("m", x)
                live_dot = await client.dot("d")
                live_var = (await client.moments("m", ddof=1))["variance"]
            async with ClusterNode("b", wal_path=wal) as fresh:
                client = InProcessClient(fresh.service)
                return (
                    live_dot,
                    live_var,
                    await client.dot("d"),
                    (await client.moments("m", ddof=1))["variance"],
                )

        live_dot, live_var, rec_dot, rec_var = asyncio.run(run())
        assert same_float(rec_dot, live_dot)
        assert same_float(rec_var, live_var)
        assert same_float(live_dot, round_fraction(exact_dot_fraction(x, y)))
        assert same_float(live_var, exact_variance(x, ddof=1))

    def test_failover_replay_restores_reduction_reads(self, tmp_path):
        from repro.cluster import LocalCluster

        x = _panel(400, seed=26)

        async def run():
            async with LocalCluster(
                nodes=3, kernel="sparse", base_dir=tmp_path
            ) as lc:
                co = lc.coordinator
                await co.scatter_reduce("n", "squares", x, chunk=57)
                await co.scatter_reduce("m", "observations", x, chunk=61)
                before_norm = (await co.gather_norm2("n"))["value"]
                before = await co.gather_moments("m", ddof=1)
                lc.kill("node-1")
                await co.failover("node-1")
                await co.replay_wal_onto(
                    lc.wal_path("node-1"), include_unsequenced=True
                )
                after_norm = (await co.gather_norm2("n"))["value"]
                after = await co.gather_moments("m", ddof=1)
                return before_norm, before, after_norm, after

        before_norm, before, after_norm, after = asyncio.run(run())
        assert same_float(before_norm, exact_norm2(x))
        assert same_float(after_norm, before_norm)
        assert after["count"] == before["count"] == x.size
        assert same_float(after["variance"], before["variance"])
        assert same_float(after["mean"], exact_mean(x))

    def test_sequenced_reduce_dedup(self):
        """The same seq-stamped reduce batch applied twice folds once."""
        from repro.cluster.node import ClusterNode
        from repro.serve import InProcessClient

        x = _panel(50, seed=27)

        async def run():
            async with ClusterNode("d") as node:
                client = InProcessClient(node.service)
                first = await client.add_squares("s", x, seq=7)
                second = await client.add_squares("s", x, seq=7)
                return first, second, await client.norm2("s")

        first, second, norm = asyncio.run(run())
        assert first == x.size
        assert second == 0  # duplicate acked without re-folding
        assert same_float(norm, exact_norm2(x))

    def test_scatter_reduce_validation(self):
        from repro.cluster import LocalCluster

        async def run():
            async with LocalCluster(nodes=2) as lc:
                co = lc.coordinator
                with pytest.raises(ValueError):
                    await co.scatter_reduce("s", "squares", [1.0], [2.0])
                with pytest.raises(ValueError):
                    await co.scatter_reduce("s", "pairs", [1.0, 2.0], [3.0])
                assert await co.scatter_reduce("s", "squares", []) == 0

        asyncio.run(run())
