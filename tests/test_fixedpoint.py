"""Unit tests for the §2 fixed-point register baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.fixedpoint import FixedPointRegister, register_width
from repro.core.fpinfo import BINARY32, BINARY64
from repro.errors import RepresentationError
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum


class TestRegisterWidth:
    def test_binary32_ballpark(self):
        # the paper's "256-bit" figure for single precision (our
        # accounting keeps every subnormal bit, landing slightly above)
        w = register_width(BINARY32, log_n=2)
        assert 250 <= w <= 350

    def test_binary64(self):
        assert register_width(BINARY64) > 2000


class TestExactness:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        reg = FixedPointRegister()
        reg.add_array(case)
        assert reg.to_float() == ref_sum(case)

    def test_random(self, rng):
        for _ in range(10):
            x = random_hard_array(rng, int(rng.integers(1, 300)))
            reg = FixedPointRegister()
            reg.add_array(x)
            assert reg.to_float() == ref_sum(x)

    def test_agrees_with_superaccumulator(self, rng):
        from repro.core import SparseSuperaccumulator

        x = random_hard_array(rng, 500)
        reg = FixedPointRegister()
        reg.add_array(x)
        acc = SparseSuperaccumulator.from_floats(x)
        v1, s1 = reg.to_scaled_int()
        assert acc.to_fraction() == __import__("fractions").Fraction(v1) * (
            __import__("fractions").Fraction(2) ** s1
        )

    def test_overflow_detected(self):
        # a binary32-sized register cannot hold a binary64-scale value
        reg = FixedPointRegister(BINARY32, log_n=2)
        with pytest.raises(RepresentationError):
            reg.add_float(1.7e308)


class TestCarryAccounting:
    def test_no_ripple_on_disjoint_adds(self):
        reg = FixedPointRegister()
        reg.add_float(1.0)
        rep = reg.add_float(2.0**200)  # far above: no interaction
        assert rep.carry_bits == 0

    def test_long_ripple_constructed(self):
        # the §2 worst case: (2**k - ulp) + ulp flips a k-bit chain
        reg = FixedPointRegister()
        almost = float(np.nextafter(2.0**60, 0.0))  # 2**60 - ulp
        reg.add_float(almost)
        rep = reg.add_float(math.ulp(almost))
        assert rep.carry_bits >= 50  # a ~53-bit ripple
        assert reg.max_carry_chain >= 50
        assert reg.to_float() == 2.0**60

    def test_superaccumulator_has_no_such_ripple(self):
        # contrast: the carry-free representation absorbs the same pair
        # with carries traveling at most one digit position
        from repro.core import SparseSuperaccumulator

        almost = float(np.nextafter(2.0**60, 0.0))
        a = SparseSuperaccumulator.from_float(almost)
        b = SparseSuperaccumulator.from_float(math.ulp(almost))
        c = a.add(b)
        assert c.to_float() == 2.0**60  # same exact answer, no chain

    def test_ripple_grows_with_adversarial_stream(self, rng):
        # repeated near-carry patterns keep the worst chain long
        reg = FixedPointRegister()
        vals = []
        for k in range(20, 45):
            vals.append(float(np.nextafter(2.0**k, 0.0)))
            vals.append(math.ulp(2.0 ** (k - 1)))
        reg.add_array(vals)
        assert reg.max_carry_chain >= 40
