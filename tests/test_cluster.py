"""Cluster plane: placement, WAL replay, replication, failover (PR 7).

The acceptance invariant tested throughout: killing any single node
mid-ingest and replaying its WAL on a replica yields a final rounded
sum bit-identical (``same_float``) to the uninterrupted single-node
serve path. Exact merges make this a theorem — these tests pin the
machinery that is supposed to inherit it.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import numpy as np
import pytest

from repro import codec
from repro.cluster import (
    ClusterCoordinator,
    HashRing,
    LocalCluster,
    LocalNodeHandle,
    ReplicationManager,
    WalService,
    WalWriter,
    WriteAheadLog,
    read_wal,
    stable_hash,
)
from repro.cluster.node import ClusterNode
from repro.core.exact import exact_sum
from repro.errors import CodecError, NodeDownError, ServiceError
from repro.plan import run_plane
from repro.serve import InProcessClient, ReproService, ServeConfig
from repro.util.bits import same_float


def _panel(n=4000, seed=11):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(n) * 10.0 ** rng.integers(-25, 25, n)
    ).astype(np.float64)


def _batches(data, size=250):
    return [data[i : i + size] for i in range(0, data.size, size)]


async def _serve_reference(batches):
    """The uninterrupted single-node serve path (the acceptance oracle)."""
    async with ReproService(ServeConfig(shards=2)) as service:
        client = InProcessClient(service)
        for batch in batches:
            await client.add_array("ref", [float(v) for v in batch])
        resp = await client.request("value", stream="ref")
        return float(resp["value"]), int(resp["count"])


# ----------------------------------------------------------------------
# placement ring
# ----------------------------------------------------------------------


class TestHashRing:
    def test_stable_hash_is_interpreter_independent(self):
        # pinned value: blake2b is stable by construction, unlike hash()
        assert stable_hash("node-0") == stable_hash("node-0")
        assert stable_hash("node-0") != stable_hash("node-1")

    def test_placement_distinct_nodes_in_ring_order(self):
        ring = HashRing(("a", "b", "c"))
        members = ring.placement("stream-1", 2)
        assert len(members) == 2
        assert len(set(members)) == 2
        assert all(m in ("a", "b", "c") for m in members)

    def test_placement_is_deterministic(self):
        r1 = HashRing(("a", "b", "c"))
        r2 = HashRing(("a", "b", "c"))
        for key in ("x", "y", "orders", "payments"):
            assert r1.placement(key, 2) == r2.placement(key, 2)

    def test_epoch_bumps_on_membership_change(self):
        ring = HashRing(("a", "b"))
        v0 = ring.version
        ring.add("c")
        assert ring.version == v0 + 1
        ring.remove("a")
        assert ring.version == v0 + 2

    def test_remove_moves_only_the_dead_nodes_streams(self):
        ring = HashRing(("a", "b", "c", "d"))
        keys = [f"stream-{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("c")
        for k in keys:
            if before[k] != "c":
                assert ring.owner(k) == before[k]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(("a", "b", "c"))
        counts = ring.spread([f"k{i}" for i in range(3000)])
        assert all(count > 500 for count in counts.values()), counts

    def test_degraded_placement_when_ring_smaller_than_k(self):
        ring = HashRing(("only",))
        assert ring.placement("s", 3) == ("only",)

    def test_errors(self):
        ring = HashRing(("a",))
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            ring.placement("s", 0)
        with pytest.raises(ValueError):
            HashRing(()).placement("s", 1)


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------


class TestWal:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "node.wal")
        a = np.array([1.5, -2.0, 3e300])
        b = np.array([5e-324])
        wal.append(0, "orders", a)
        wal.append(1, "orders", b)
        wal.append(codec.WAL_UNSEQUENCED, "scatter", a)
        records, truncated = wal.replay()
        assert not truncated
        assert [(r.seq, r.stream) for r in records] == [
            (0, "orders"), (1, "orders"), (codec.WAL_UNSEQUENCED, "scatter")
        ]
        assert records[0].values.tobytes() == a.astype("<f8").tobytes()
        assert records[0].sequenced and not records[2].sequenced

    def test_missing_file_is_empty_log(self, tmp_path):
        records, truncated = read_wal(tmp_path / "never-written.wal")
        assert records == [] and truncated is False

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "node.wal"
        wal = WriteAheadLog(path)
        wal.append(0, "s", np.array([1.0, 2.0]))
        wal.append(1, "s", np.array([3.0]))
        blob = path.read_bytes()
        # tear the file at every point inside the *last* record
        first_len = codec.wal_record_size(blob[: codec.WAL_HEADER_SIZE])
        for cut in range(first_len + 1, len(blob)):
            path.write_bytes(blob[:cut])
            records, truncated = read_wal(path)
            assert truncated is True
            assert len(records) == 1 and records[0].seq == 0

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "node.wal"
        wal = WriteAheadLog(path)
        wal.append(0, "s", np.array([1.0, 2.0]))
        wal.append(1, "s", np.array([3.0]))
        blob = bytearray(path.read_bytes())
        blob[codec.WAL_HEADER_SIZE] ^= 0xFF  # body of record 0
        path.write_bytes(bytes(blob))
        with pytest.raises(CodecError):
            read_wal(path)

    def test_wal_writer_group_commit(self, tmp_path):
        async def run():
            writer = WalWriter(tmp_path / "node.wal", max_batch=64)
            writer.start()
            await asyncio.gather(
                *(writer.append(i, "s", np.array([float(i)])) for i in range(32))
            )
            await writer.stop()
            return writer

        writer = asyncio.run(run())
        assert writer.records_written == 32
        # concurrency must have produced at least one multi-record batch
        assert writer.batches_written < 32
        records, truncated = read_wal(tmp_path / "node.wal")
        assert not truncated
        assert sorted(r.seq for r in records) == list(range(32))


# ----------------------------------------------------------------------
# WAL-backed node service
# ----------------------------------------------------------------------


class TestWalService:
    def test_sequenced_ingest_is_idempotent(self, tmp_path):
        async def run():
            service = WalService(
                ServeConfig(shards=2), wal_path=tmp_path / "n.wal"
            )
            async with service:
                client = InProcessClient(service)
                r1 = await client.request(
                    "add_array", stream="s", values=[1.0, 2.0], seq=0
                )
                r2 = await client.request(
                    "add_array", stream="s", values=[1.0, 2.0], seq=0
                )
                r3 = await client.request(
                    "add_array", stream="s", values=[4.0], seq=1
                )
                value = await client.request("value", stream="s")
                info = await client.request("cluster_info")
            return r1, r2, r3, value, info

        r1, r2, r3, value, info = asyncio.run(run())
        assert r1["added"] == 2 and "duplicate" not in r1
        assert r2["added"] == 0 and r2["duplicate"] is True
        assert r3["added"] == 1
        assert value["value"] == 7.0 and value["count"] == 3
        assert info["applied"] == {"s": 1}
        assert info["wal"]["records_written"] == 2

    def test_recovery_reconstructs_bit_identical_state(self, tmp_path):
        data = _panel(2000, seed=5)
        ref = exact_sum(data)

        async def ingest():
            node = ClusterNode("n0", wal_path=tmp_path / "n0.wal")
            async with node:
                client = InProcessClient(node.service)
                for i, batch in enumerate(_batches(data)):
                    await client.request(
                        "add_array", stream="s",
                        values=[float(v) for v in batch], seq=i,
                    )
                resp = await client.request("value", stream="s")
            return float(resp["value"])

        async def recover():
            node = ClusterNode("n0", wal_path=tmp_path / "n0.wal")
            async with node:  # start() replays the WAL
                client = InProcessClient(node.service)
                resp = await client.request("value", stream="s")
                info = await client.request("cluster_info")
            return float(resp["value"]), int(resp["count"]), info

        live = asyncio.run(ingest())
        recovered, count, info = asyncio.run(recover())
        assert same_float(live, ref)
        assert same_float(recovered, ref)
        assert count == data.size
        # seq high-water marks survive recovery (dedup stays correct)
        assert info["applied"]["s"] == len(_batches(data)) - 1

    def test_restore_with_seq_sets_highwater(self, tmp_path):
        async def run():
            donor = WalService(ServeConfig(shards=1))
            target = WalService(ServeConfig(shards=1))
            async with donor, target:
                dc, tc = InProcessClient(donor), InProcessClient(target)
                await dc.request("add_array", stream="s", values=[1.0, 2.0])
                snap = (await dc.request("snapshot", stream="s"))["snapshot"]
                await tc.request("restore", stream="s", snapshot=snap, seq=4)
                dup = await tc.request(
                    "add_array", stream="s", values=[9.0], seq=3
                )
                fresh = await tc.request(
                    "add_array", stream="s", values=[9.0], seq=5
                )
                value = await tc.request("value", stream="s")
            return dup, fresh, value

        dup, fresh, value = asyncio.run(run())
        assert dup["duplicate"] is True
        assert fresh["added"] == 1
        assert value["value"] == 12.0 and value["count"] == 3

    def test_add_block_refused_on_wal_nodes(self, tmp_path):
        async def run():
            service = WalService(
                ServeConfig(shards=1), wal_path=tmp_path / "n.wal"
            )
            async with service:
                return await service.handle(
                    {"op": "add_block", "stream": "s", "block": {}}
                )

        resp = asyncio.run(run())
        assert resp["ok"] is False
        assert "add_block" in resp["error"]

    def test_bad_seq_rejected(self):
        async def run():
            service = WalService(ServeConfig(shards=1))
            async with service:
                return await service.handle(
                    {"op": "add_array", "stream": "s", "values": [1.0], "seq": -1}
                )

        resp = asyncio.run(run())
        assert resp["ok"] is False and "seq" in resp["error"]


# ----------------------------------------------------------------------
# coordinator: replication, scatter/gather, failover
# ----------------------------------------------------------------------


class TestCoordinator:
    def test_placed_ingest_matches_single_node_serve(self):
        data = _panel()
        batches = _batches(data)

        async def run():
            ref_value, ref_count = await _serve_reference(batches)
            async with LocalCluster(nodes=3, replication=2) as lc:
                for batch in batches:
                    await lc.coordinator.append("orders", batch)
                got = await lc.coordinator.value("orders")
            return ref_value, ref_count, got

        ref_value, ref_count, got = asyncio.run(run())
        assert same_float(got["value"], ref_value)
        assert got["count"] == ref_count == data.size

    def test_scatter_gather_matches_single_node_serve(self):
        data = _panel(seed=23)

        async def run():
            ref_value, ref_count = await _serve_reference(_batches(data))
            async with LocalCluster(nodes=3) as lc:
                await lc.coordinator.scatter("stripe", data, chunk=333)
                got = await lc.coordinator.gather_value("stripe")
            return ref_value, ref_count, got

        ref_value, ref_count, got = asyncio.run(run())
        assert same_float(got["value"], ref_value)
        assert got["count"] == ref_count
        assert got["nodes"] == 3

    @pytest.mark.parametrize("victim_index", [0, 1])
    def test_kill_mid_ingest_and_wal_replay_bit_identical(
        self, victim_index, tmp_path
    ):
        """THE acceptance case: kill a placement member mid-ingest,
        fail over, replay its WAL on the survivors — the final rounded
        sum is bit-identical to the uninterrupted single-node path."""
        data = _panel()
        batches = _batches(data)
        half = len(batches) // 2

        async def run():
            ref_value, ref_count = await _serve_reference(batches)
            async with LocalCluster(
                nodes=3, replication=2, base_dir=tmp_path
            ) as lc:
                co = lc.coordinator
                for batch in batches[:half]:
                    await co.append("orders", batch)
                # kill one member of the stream's placement group
                victim = co._placement("orders").members[victim_index]
                lc.kill(victim)
                # ingest continues through failover + retry
                for batch in batches[half:]:
                    await co.append("orders", batch)
                # replay the dead node's WAL on the surviving placement
                replay = await co.replay_wal_onto(lc.wal_path(victim))
                got = await co.value("orders")
                return ref_value, ref_count, got, replay, co.failovers

        ref_value, ref_count, got, replay, failovers = asyncio.run(run())
        assert failovers == 1
        assert got["count"] == ref_count == data.size
        assert same_float(got["value"], ref_value)
        # replay never double-applies: every record either deduped
        # against a survivor or healed a gap
        assert replay["records"] == replay["applied"] + replay["duplicates"]

    def test_whole_group_loss_recovered_from_wal_alone(self, tmp_path):
        """replication=1: the dead node was the only holder. The WAL
        file is then the *only* copy — replay must fully rebuild."""
        data = _panel(1500, seed=3)
        batches = _batches(data)

        async def run():
            ref_value, ref_count = await _serve_reference(batches)
            async with LocalCluster(
                nodes=3, replication=1, base_dir=tmp_path
            ) as lc:
                co = lc.coordinator
                for batch in batches:
                    await co.append("orders", batch)
                victim = co._placement("orders").primary
                lc.kill(victim)
                await co.failover(victim)
                replay = await co.replay_wal_onto(lc.wal_path(victim))
                got = await co.value("orders")
                return ref_value, ref_count, got, replay

        ref_value, ref_count, got, replay = asyncio.run(run())
        assert replay["applied"] == replay["records"] == len(batches)
        assert got["count"] == ref_count
        assert same_float(got["value"], ref_value)

    def test_binary_wal_passthrough_byte_equality(self, tmp_path):
        """WAL record bytes ARE the wire bytes: every logged payload is
        byte-identical to a contiguous slice of the ingested array."""
        data = _panel(3000, seed=21)
        batches = _batches(data, size=500)

        async def run():
            async with LocalCluster(
                nodes=3, replication=2, base_dir=tmp_path
            ) as lc:
                co = lc.coordinator
                # every in-process handle negotiated the binary wire
                for handle in co._handles.values():
                    assert handle._client.wire == "binary"
                for batch in batches:
                    await co.append("orders", batch)
                wals = {
                    n: read_wal(lc.wal_path(n))[0]
                    for n in lc.nodes
                    if lc.wal_path(n).exists()
                }
                return wals

        wals = asyncio.run(run())
        source = data.tobytes()
        logged = 0
        for records in wals.values():
            for rec in records:
                assert rec.values.tobytes() in source
                logged += 1
        assert logged > 0

    def test_json_and_binary_ingest_write_identical_wal(self, tmp_path):
        """The durability contract behind 'bit-identity is provable':
        the same batches produce byte-identical WAL files whether they
        arrived boxed in JSON text or as raw BBAT frame bodies."""
        data = _panel(2000, seed=5)
        batches = _batches(data, size=250)

        async def run():
            for wire, path in (("json", tmp_path / "j.wal"), ("binary", tmp_path / "b.wal")):
                service = WalService(ServeConfig(shards=2), wal_path=path)
                await service.start()
                client = InProcessClient(service, wire=wire)
                for seq, batch in enumerate(batches):
                    await client.request_batch("orders", batch, seq=seq)
                await service.close()

        asyncio.run(run())
        assert (tmp_path / "j.wal").read_bytes() == (tmp_path / "b.wal").read_bytes()
        records, truncated = read_wal(tmp_path / "b.wal")
        assert not truncated and len(records) == len(batches)

    def test_read_fails_over_to_replica(self):
        data = _panel(1000, seed=9)

        async def run():
            async with LocalCluster(nodes=3, replication=2) as lc:
                co = lc.coordinator
                await co.append("orders", data)
                primary = co._placement("orders").primary
                lc.kill(primary)
                got = await co.value("orders")
                return got, primary

        got, primary = asyncio.run(run())
        assert got["node"] != primary
        assert got["count"] == data.size
        assert same_float(got["value"], exact_sum(data))

    def test_health_check_fails_over_dead_nodes(self):
        async def run():
            async with LocalCluster(nodes=3, replication=2) as lc:
                co = lc.coordinator
                await co.append("orders", [1.0, 2.0])
                lc.kill("node-1")
                health = await co.check_health()
                status = await co.status()
                return health, status

        health, status = asyncio.run(run())
        assert health["node-1"] is False
        assert status["nodes"]["node-1"]["on_ring"] is False
        assert status["failovers"] == 1

    def test_all_nodes_down_raises_node_down(self):
        async def run():
            async with LocalCluster(nodes=2, replication=2) as lc:
                co = lc.coordinator
                await co.append("orders", [1.0])
                lc.kill("node-0")
                lc.kill("node-1")
                with pytest.raises(NodeDownError):
                    await co.value("orders")
                with pytest.raises(NodeDownError):
                    await co.scatter("s", [1.0])

        asyncio.run(run())

    def test_duplicate_node_ids_rejected(self):
        service = WalService(ServeConfig(shards=1))
        handles = [
            LocalNodeHandle("same", service),
            LocalNodeHandle("same", service),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            ClusterCoordinator(handles)

    def test_epoch_reported_and_bumped_by_failover(self):
        async def run():
            async with LocalCluster(nodes=3, replication=2) as lc:
                co = lc.coordinator
                r1 = await co.append("orders", [1.0])
                epoch0 = r1["epoch"]
                lc.kill(co._placement("orders").primary)
                r2 = await co.append("orders", [2.0])
                return epoch0, r2["epoch"]

        epoch0, epoch1 = asyncio.run(run())
        assert epoch1 > epoch0


# ----------------------------------------------------------------------
# plane + planner integration
# ----------------------------------------------------------------------


class TestClusterPlane:
    def test_run_plane_cluster_bit_identical_to_serial(self):
        data = _panel(3000, seed=17)
        serial = run_plane("serial", "sparse", data)
        clustered = run_plane(
            "cluster", "sparse", data, workers=3, block_items=512
        )
        assert same_float(clustered, serial)

    def test_cluster_plane_registered(self):
        from repro.plan import PLANES

        assert "cluster" in PLANES


# ----------------------------------------------------------------------
# CLI (in-process parser wiring; process spawning is covered by the
# benchmark and the CI smoke job)
# ----------------------------------------------------------------------


class TestClusterCli:
    def test_cluster_subcommands_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["cluster", "node", "--id", "n0", "--wal", "/tmp/x.wal"]
        )
        assert args.cluster_command == "node" and args.id == "n0"
        args = parser.parse_args(["cluster", "spawn", "--dir", "d", "-n", "5"])
        assert args.nodes == 5
        args = parser.parse_args(["cluster", "status", "--dir", "d"])
        assert args.cluster_command == "status"
        args = parser.parse_args(["cluster", "kill-node", "--dir", "d", "--id", "n1"])
        assert args.id == "n1"

    def test_kill_node_unknown_id_exits_2(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cluster import NodeSpec, save_spec

        save_spec(tmp_path, [NodeSpec("n0", "127.0.0.1", 1, "w", pid=None)])
        rc = main(["cluster", "kill-node", "--dir", str(tmp_path), "--id", "nx"])
        assert rc == 2

    def test_spec_roundtrip(self, tmp_path):
        from repro.cluster import NodeSpec, load_spec, save_spec

        specs = [
            NodeSpec("n0", "127.0.0.1", 1234, "a.wal", pid=42),
            NodeSpec("n1", "127.0.0.1", 1235, "b.wal", pid=None),
        ]
        save_spec(tmp_path, specs, kernel="running")
        assert load_spec(tmp_path) == specs
        doc = json.loads((tmp_path / "cluster.json").read_text())
        assert doc["format"] == "repro-cluster-spec-v1"

    def test_load_spec_rejects_unknown_format(self, tmp_path):
        (tmp_path / "cluster.json").write_text(json.dumps({"format": "nope"}))
        from repro.cluster import load_spec

        with pytest.raises(ValueError, match="unrecognized"):
            load_spec(tmp_path)


# ----------------------------------------------------------------------
# atomic snapshots (PR 7 satellite: serve save_state hardening)
# ----------------------------------------------------------------------


class TestAtomicSnapshot:
    def test_save_state_leaves_no_tmp_file(self, tmp_path):
        target = tmp_path / "state.json"

        async def run():
            async with ReproService(ServeConfig(shards=2)) as service:
                client = InProcessClient(service)
                await client.add_array("s", [1.0, 2.5])
                return await service.save_state(target)

        assert asyncio.run(run()) == 1
        assert target.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_truncated_snapshot_detected_not_silently_loaded(self, tmp_path):
        """A torn snapshot body must fail through the codec's typed
        truncation errors, not restore a wrong (partial) state."""
        target = tmp_path / "state.json"

        async def save():
            async with ReproService(ServeConfig(shards=2)) as service:
                client = InProcessClient(service)
                await client.add_array("s", [1.0, 2.5, -7e300])
                await service.save_state(target)

        asyncio.run(save())
        doc = json.loads(target.read_text())
        # simulate the crash torn-write this satellite forbids: chop the
        # snapshot frame mid-body (valid base64, truncated codec frame)
        import base64

        raw = base64.b64decode(doc["streams"]["s"])
        doc["streams"]["s"] = base64.b64encode(raw[: len(raw) // 2]).decode()
        torn = tmp_path / "torn.json"
        torn.write_text(json.dumps(doc))

        async def load():
            async with ReproService(ServeConfig(shards=2)) as service:
                with pytest.raises(ServiceError, match="corrupt snapshot"):
                    await service.load_state(torn)
                # and nothing was partially restored
                resp = await service.handle({"op": "value", "stream": "s"})
                return resp

        resp = asyncio.run(load())
        assert resp["ok"] is True and resp["count"] == 0
