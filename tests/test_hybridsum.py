"""Unit tests for the HybridSum baseline (exponent bucketing)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.hybridsum import HybridAccumulator, hybrid_sum
from repro.errors import NonFiniteInputError
from tests.conftest import ADVERSARIAL_CASES, random_hard_array, ref_sum


class TestHybridSum:
    def test_empty_and_single(self):
        assert hybrid_sum([]) == 0.0
        assert hybrid_sum([7.5]) == 7.5

    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        assert hybrid_sum(case) == ref_sum(case)

    def test_random_wide_range(self, rng):
        for _ in range(40):
            n = int(rng.integers(1, 600))
            x = random_hard_array(rng, n)
            assert hybrid_sum(x) == ref_sum(x)

    def test_matches_fsum_bulk(self, rng):
        x = random_hard_array(rng, 50_000, emin=-200, emax=200)
        assert hybrid_sum(x) == math.fsum(x)

    def test_sum_zero(self, rng):
        x = rng.random(1000)
        data = np.concatenate([x, -x])
        rng.shuffle(data)
        assert hybrid_sum(data) == 0.0

    def test_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            hybrid_sum([math.inf])


class TestStreamingAccumulator:
    def test_incremental_equals_oneshot(self, rng):
        x = random_hard_array(rng, 3000)
        acc = HybridAccumulator()
        for start in range(0, x.size, 757):
            acc.add_array(x[start : start + 757])
        assert acc.result() == hybrid_sum(x)

    def test_result_nondestructive(self, rng):
        x = random_hard_array(rng, 500)
        acc = HybridAccumulator()
        acc.add_array(x)
        first = acc.result()
        assert acc.result() == first
        acc.add_array(np.array([0.0]))
        assert acc.result() == first

    def test_flush_preserves_value(self, rng):
        x = random_hard_array(rng, 2000)
        acc = HybridAccumulator()
        acc.add_array(x)
        before = acc.result()
        acc._flush()
        assert acc.result() == before
        # post-flush buckets are within the canonical range
        assert (np.abs(acc._hi) <= 1 << 25).all()
        assert (np.abs(acc._lo) <= 1 << 25).all()

    def test_subnormal_buckets(self, rng):
        x = (rng.integers(-1000, 1000, 300)).astype(np.float64) * 2.0**-1074
        assert hybrid_sum(x) == ref_sum(x)

    def test_exact_integer_fallback_near_overflow(self):
        # bucket totals beyond the float range: aggregated magnitude
        # tops 2**1024 but the true sum is finite
        data = [1e308] * 64 + [-1e308] * 64 + [1.5]
        assert hybrid_sum(data) == 1.5

    def test_overflowing_total(self):
        assert hybrid_sum([1e308] * 4) == math.inf
