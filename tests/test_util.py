"""Unit tests for shared utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import NonFiniteInputError
from repro.util.bits import bit_length, floor_div, floor_mod, trailing_zeros
from repro.util.timing import Timer
from repro.util.validation import (
    check_finite_array,
    check_positive_int,
    ensure_float64_array,
)


class TestBits:
    def test_bit_length(self):
        assert bit_length(0) == 0
        assert bit_length(1) == 1
        assert bit_length(-8) == 4
        assert bit_length(255) == 8

    def test_floor_semantics_match_numpy(self):
        for a in (-7, -1, 0, 5, 13):
            for b in (3, -3, 2):
                assert floor_div(a, b) == np.int64(a) // np.int64(b)
                assert floor_mod(a, b) == np.int64(a) % np.int64(b)

    def test_trailing_zeros(self):
        assert trailing_zeros(1) == 0
        assert trailing_zeros(8) == 3
        assert trailing_zeros(-12) == 2
        assert trailing_zeros(3 << 20) == 20

    def test_trailing_zeros_of_zero(self):
        with pytest.raises(ValueError):
            trailing_zeros(0)


class TestValidation:
    def test_ensure_float64(self):
        out = ensure_float64_array([1, 2, 3])
        assert out.dtype == np.float64 and out.shape == (3,)
        # 2-D flattens
        assert ensure_float64_array(np.ones((2, 2))).shape == (4,)
        # existing float64 1-D passes through without copy
        x = np.zeros(4)
        assert ensure_float64_array(x) is x or (ensure_float64_array(x) == x).all()

    def test_check_finite(self):
        check_finite_array(np.array([1.0, -0.0, 1e308]))
        with pytest.raises(NonFiniteInputError, match="index 1"):
            check_finite_array(np.array([0.0, np.nan]))
        check_finite_array(np.empty(0))  # empty is fine

    def test_check_positive_int(self):
        assert check_positive_int(5, name="n") == 5
        assert check_positive_int(3.0, name="n") == 3
        with pytest.raises(ValueError, match="workers"):
            check_positive_int(0, name="workers")
        with pytest.raises(ValueError):
            check_positive_int(-1, name="n")


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        assert first >= 0.009
        with t:
            time.sleep(0.01)
        assert t.elapsed > first

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
