"""Smoke tests: every example script runs to completion.

The examples double as end-to-end acceptance tests (each contains its
own assertions); here they execute in-process with reduced sizes where
the script allows it.
"""

from __future__ import annotations

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    # deliverable (b): at least a quickstart plus two domain scenarios
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
