"""Unit tests for the MapReduce engine, executors and block store."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.mapreduce.hdfs import Block, BlockStore
from repro.mapreduce.partitioner import RandomPartitioner, RoundRobinPartitioner
from repro.mapreduce.runtime import (
    MapReduceJob,
    MultiprocessExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
    run_job,
)


class CountJob(MapReduceJob):
    """Counts elements — a trivially checkable job."""

    def combine(self, block: np.ndarray) -> bytes:
        return struct.pack("<q", block.size)

    def reduce(self, values) -> bytes:
        return struct.pack("<q", sum(struct.unpack("<q", v)[0] for v in values))

    def postprocess(self, values) -> float:
        return float(sum(struct.unpack("<q", v)[0] for v in values))


class TestBlockStore:
    def test_block_partitioning(self, rng):
        store = BlockStore(nodes=3, block_items=10)
        blocks = store.put("d", rng.random(25))
        assert [b.data.size for b in blocks] == [10, 10, 5]
        assert [b.node for b in blocks] == [0, 1, 2]

    def test_locality_view(self, rng):
        store = BlockStore(nodes=2, block_items=4)
        store.put("d", rng.random(12))
        on0 = store.blocks_on_node("d", 0)
        on1 = store.blocks_on_node("d", 1)
        assert len(on0) + len(on1) == 3
        assert all(b.node == 0 for b in on0)

    def test_empty_dataset_single_block(self):
        store = BlockStore()
        blocks = store.put("d", [])
        assert len(blocks) == 1 and blocks[0].data.size == 0

    def test_duplicate_name_rejected(self, rng):
        store = BlockStore()
        store.put("d", rng.random(3))
        with pytest.raises(ValueError):
            store.put("d", rng.random(3))

    def test_delete_and_contains(self, rng):
        store = BlockStore()
        store.put("d", rng.random(3))
        assert "d" in store
        store.delete("d")
        assert "d" not in store


class TestPartitioners:
    def test_round_robin(self):
        p = RoundRobinPartitioner()
        assert [p.assign(i, 3) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_random_in_range_and_seeded(self):
        a = [RandomPartitioner(7).assign(i, 5) for i in range(50)]
        b = [RandomPartitioner(7).assign(i, 5) for i in range(50)]
        assert a == b
        assert all(0 <= v < 5 for v in a)


class TestRunJob:
    def blocks(self, rng, n=100, bs=16):
        store = BlockStore(block_items=bs)
        store.put("d", rng.random(n))
        return [b.data for b in store.blocks("d")]

    def test_count_job(self, rng):
        res = run_job(CountJob(), self.blocks(rng, 100), reducers=3)
        assert res.value == 100.0
        assert res.blocks == 7
        assert res.reducers == 3

    def test_phase_timings_present(self, rng):
        res = run_job(CountJob(), self.blocks(rng), reducers=2)
        assert set(res.phase_seconds) == {"combine", "shuffle", "reduce", "postprocess"}
        assert res.total_seconds >= 0

    def test_shuffle_bytes_counted(self, rng):
        res = run_job(CountJob(), self.blocks(rng, 64, 16), reducers=2)
        assert res.shuffle_bytes == 8 * 4  # four 8-byte payloads

    def test_more_reducers_than_blocks(self, rng):
        res = run_job(CountJob(), self.blocks(rng, 32, 16), reducers=50)
        assert res.value == 32.0

    def test_random_partitioner(self, rng):
        res = run_job(
            CountJob(),
            self.blocks(rng, 200, 8),
            reducers=4,
            partitioner=RandomPartitioner(3),
        )
        assert res.value == 200.0


class FlakyCountJob(CountJob):
    """Fails the first ``fail_times`` combine calls, then succeeds."""

    def __init__(self, fail_times: int) -> None:
        self.remaining = fail_times

    def combine(self, block: np.ndarray) -> bytes:
        if self.remaining > 0:
            self.remaining -= 1
            raise OSError("transient worker failure")
        return super().combine(block)


class TestFaultTolerance:
    def test_retry_recovers(self, rng):
        blocks = [rng.random(10) for _ in range(5)]
        job = FlakyCountJob(fail_times=2)
        res = run_job(job, blocks, reducers=2, max_retries=3)
        assert res.value == 50.0

    def test_fail_fast_without_retries(self, rng):
        blocks = [rng.random(10) for _ in range(5)]
        job = FlakyCountJob(fail_times=1)
        with pytest.raises(OSError):
            run_job(job, blocks, reducers=2)

    def test_budget_exhaustion_raises(self, rng):
        blocks = [rng.random(10) for _ in range(2)]
        job = FlakyCountJob(fail_times=100)
        with pytest.raises(OSError):
            run_job(job, blocks, reducers=1, max_retries=2)

    def test_retry_result_is_still_exact(self, rng):
        from repro.mapreduce.sum_job import SparseSuperaccumulatorJob
        from tests.conftest import ref_sum

        x = rng.random(200)

        class FlakySum(SparseSuperaccumulatorJob):
            def __init__(self):
                super().__init__()
                self.first = True

            def combine(self, block):
                if self.first:
                    self.first = False
                    raise OSError("boom")
                return super().combine(block)

        blocks = [x[:100], x[100:]]
        res = run_job(FlakySum(), blocks, reducers=2, max_retries=1)
        assert res.value == ref_sum(x)


class TestExecutors:
    def test_serial(self):
        assert SerialExecutor().map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_multiprocess_matches_serial(self, rng):
        blocks = [rng.random(50) for _ in range(6)]
        serial = run_job(CountJob(), blocks, reducers=2)
        with MultiprocessExecutor(2) as exe:
            parallel = run_job(CountJob(), blocks, reducers=2, executor=exe)
        assert serial.value == parallel.value

    def test_multiprocess_empty(self):
        with MultiprocessExecutor(2) as exe:
            assert exe.map(lambda x: x, []) == []

    def test_simulated_cluster_makespan_shrinks(self, rng):
        blocks = [rng.random(5000) for _ in range(8)]
        times = []
        for w in (1, 4):
            exe = SimulatedClusterExecutor(w)
            res = run_job(CountJob(), blocks, reducers=1, executor=exe)
            times.append(res.phase_seconds["combine"])
        # 4 simulated workers must be meaningfully faster than 1
        assert times[1] <= times[0]

    def test_simulated_makespan_lpt(self):
        exe = SimulatedClusterExecutor(2)
        assert abs(exe._makespan([4.0, 3.0, 2.0, 1.0]) - 5.0) < 1e-12
        assert exe._makespan([]) == 0.0
