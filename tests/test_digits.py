"""Unit tests for the radix/GSD digit machinery (Lemma 1 core)."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.digits import (
    DEFAULT_RADIX,
    RadixConfig,
    accumulate_digits,
    check_regularized,
    digits_to_int,
    normalize_digit_array,
    regularize_pair_vec,
    split_float,
    split_floats_vec,
)
from repro.errors import RepresentationError
from tests.conftest import random_hard_array


def digits_value(pairs, radix=DEFAULT_RADIX) -> Fraction:
    return sum(
        Fraction(d) * Fraction(2) ** (radix.w * j) for j, d in pairs
    ) if pairs else Fraction(0)


class TestRadixConfig:
    def test_defaults(self):
        assert DEFAULT_RADIX.w == 30
        assert DEFAULT_RADIX.R == 1 << 30
        assert DEFAULT_RADIX.alpha == DEFAULT_RADIX.beta == (1 << 30) - 1
        assert DEFAULT_RADIX.supports_vectorized

    def test_paper_radix_supported_scalar_only(self):
        r51 = RadixConfig(w=51)  # the paper's R = 2**(t-1) for binary64
        assert not r51.supports_vectorized
        assert r51.R == 1 << 51

    @pytest.mark.parametrize("w", [0, 1, 62, 100])
    def test_rejects_bad_width(self, w):
        with pytest.raises(ValueError):
            RadixConfig(w=w)

    @pytest.mark.parametrize("w,expected", [(30, 3), (26, 3), (16, 5), (8, 8)])
    def test_digits_per_double(self, w, expected):
        assert RadixConfig(w=w).digits_per_double == expected


class TestSplitFloat:
    @pytest.mark.parametrize("w", [4, 8, 16, 26, 30, 31, 51])
    def test_value_preserved(self, w):
        radix = RadixConfig(w=w)
        for x in (1.0, -3.75, 1e308, 2.0**-1074, -1e-300, 0.1, 12345.678):
            pairs = split_float(x, radix)
            assert digits_value(pairs, radix) == Fraction(x)

    def test_digits_share_sign_and_regularized(self):
        for x in (-math_pi_ish() , 7.25e100):
            pairs = split_float(x)
            signs = {1 if d > 0 else -1 for _, d in pairs}
            assert len(signs) == 1
            for _, d in pairs:
                assert -DEFAULT_RADIX.alpha <= d <= DEFAULT_RADIX.beta

    def test_zero_splits_empty(self):
        assert split_float(0.0) == []
        assert split_float(-0.0) == []

    def test_component_count_bounded(self):
        for x in (1e308, 2.0**-1074, 1.0):
            assert len(split_float(x)) <= DEFAULT_RADIX.digits_per_double


def math_pi_ish() -> float:
    return 3.141592653589793


class TestSplitFloatsVec:
    @pytest.mark.parametrize("w", [8, 16, 26, 30, 31])
    def test_matches_scalar(self, w, rng):
        radix = RadixConfig(w=w)
        x = random_hard_array(rng, 300)
        idx, dig = split_floats_vec(x, radix)
        total = sum(
            Fraction(int(d)) * Fraction(2) ** (w * int(j))
            for j, d in zip(idx, dig)
        )
        assert total == sum(Fraction(float(v)) for v in x)

    def test_rejects_wide_radix(self, rng):
        with pytest.raises(ValueError):
            split_floats_vec(rng.random(4), RadixConfig(w=40))

    def test_no_zero_digits_emitted(self, rng):
        idx, dig = split_floats_vec(random_hard_array(rng, 200))
        assert (dig != 0).all()

    def test_subnormals(self):
        x = np.array([2.0**-1074, 3 * 2.0**-1074, -(2.0**-1060)])
        idx, dig = split_floats_vec(x)
        total = sum(
            Fraction(int(d)) * Fraction(2) ** (30 * int(j))
            for j, d in zip(idx, dig)
        )
        assert total == sum(Fraction(float(v)) for v in x)


class TestRegularizePair:
    def test_lemma1_ranges(self, rng):
        R = DEFAULT_RADIX.R
        # P in the full pairwise range [-(2R-2), 2R-2]
        P = rng.integers(-(2 * R - 2), 2 * R - 1, size=5000).astype(np.int64)
        S = regularize_pair_vec(P)
        check_regularized(S)  # no exception
        # value preserved
        vp = digits_to_int(P, 0)
        vs = digits_to_int(S, 0)
        assert vp == vs

    def test_boundary_values(self):
        R = DEFAULT_RADIX.R
        for p in (-(2 * R - 2), -(R - 1), -(R - 2), 0, R - 2, R - 1, 2 * R - 2):
            S = regularize_pair_vec(np.array([p], dtype=np.int64))
            check_regularized(S)
            assert digits_to_int(S, 0)[0] == p

    def test_carry_moves_one_position_only(self):
        R = DEFAULT_RADIX.R
        # max positive everywhere: all carries fire, none propagates past
        P = np.full(20, 2 * R - 2, dtype=np.int64)
        S = regularize_pair_vec(P)
        check_regularized(S)
        assert digits_to_int(S, 0)[0] == digits_to_int(P, 0)[0]


class TestNormalizeDigitArray:
    def test_random_raw_values(self, rng):
        raw = rng.integers(-(1 << 60), 1 << 60, size=50).astype(np.int64)
        out = normalize_digit_array(raw)
        check_regularized(out)
        assert digits_to_int(out, 0)[0] == digits_to_int(raw, 0)[0]

    def test_negative_total_no_ripple_explosion(self):
        raw = np.zeros(8, dtype=np.int64)
        raw[0] = -1
        out = normalize_digit_array(raw)
        check_regularized(out)
        assert digits_to_int(out, 0)[0] == -1

    def test_empty(self):
        out = normalize_digit_array(np.zeros(0, dtype=np.int64))
        assert digits_to_int(out, 0)[0] == 0


class TestAccumulateDigits:
    def test_exact_scatter_sum(self, rng):
        n = 20000
        idx = rng.integers(0, 64, size=n).astype(np.int64)
        dig = rng.integers(-(1 << 30), 1 << 30, size=n).astype(np.int64)
        out = accumulate_digits(idx, dig, base_index=0, length=64)
        ref = np.zeros(64, dtype=np.int64)
        np.add.at(ref, idx, dig)
        assert (out == ref).all()

    def test_offset_base(self):
        idx = np.array([-5, -5, -3], dtype=np.int64)
        dig = np.array([7, 8, -2], dtype=np.int64)
        out = accumulate_digits(idx, dig, base_index=-5, length=3)
        assert (out == np.array([15, 0, -2])).all()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            accumulate_digits(
                np.array([5], dtype=np.int64),
                np.array([1], dtype=np.int64),
                base_index=0,
                length=3,
            )

    def test_empty(self):
        out = accumulate_digits(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            base_index=0, length=4,
        )
        assert (out == 0).all()


class TestCheckRegularized:
    def test_raises_with_position(self):
        bad = np.array([0, DEFAULT_RADIX.beta + 1], dtype=np.int64)
        with pytest.raises(RepresentationError, match="offset 1"):
            check_regularized(bad)
