"""Service-layer semantics, in process (no sockets).

Covers routing/exactness across shards, microbatch coalescing,
backpressure under both policies, snapshot/restore/drain/merge, the
stats endpoint, and error-response mapping.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import exact_sum
from repro.errors import BackpressureError, EmptyStreamError
from repro.serve import (
    AccumulatorShard,
    InProcessClient,
    ReproService,
    ServeConfig,
)
from repro.stats import exact_mean
from tests.conftest import random_hard_array, ref_sum


def run(coro):
    return asyncio.run(coro)


async def make_service(**kwargs) -> ReproService:
    service = ReproService(ServeConfig(**kwargs))
    await service.start()
    return service


class TestIngestExactness:
    def test_add_and_value(self, rng):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 300)
            for v in x[:50]:
                await client.add("s", float(v))
            await client.add_array("s", x[50:])
            assert await client.value("s") == ref_sum(x)
            assert await client.count("s") == 300
            await service.close()

        run(main())

    def test_scatter_across_shards_bit_identical(self, rng):
        # array large enough to stripe across every shard
        async def main():
            service = await make_service(shards=4, scatter_chunk=64)
            client = InProcessClient(service)
            x = random_hard_array(rng, 5000)
            await client.add_array("s", x)
            assert await client.value("s") == ref_sum(x)
            assert await client.count("s") == 5000
            await service.close()

        run(main())

    def test_interleaved_producers_match_serial(self, rng):
        async def main():
            service = await make_service(shards=4)
            x = random_hard_array(rng, 4096)
            parts = np.array_split(x, 8)

            async def producer(chunk):
                client = InProcessClient(service)
                for piece in np.array_split(chunk, 16):
                    await client.add_array("s", piece)

            await asyncio.gather(*(producer(p) for p in parts))
            client = InProcessClient(service)
            assert await client.value("s") == ref_sum(x)
            assert await client.count("s") == x.size
            await service.close()

        run(main())

    def test_pathological_cancellation(self):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            drift = [1e16, 1.0, -1e16] * 200
            await client.add_array("s", drift)
            assert await client.value("s") == ref_sum(drift)  # == 200.0
            await service.close()

        run(main())

    def test_empty_and_unknown_streams(self):
        async def main():
            service = await make_service(shards=2)
            client = InProcessClient(service)
            assert await client.value("nope") == 0.0
            assert await client.count("nope") == 0
            with pytest.raises(EmptyStreamError):
                await client.mean("nope")
            assert await client.add_array("s", []) == 0
            await service.close()

        run(main())

    def test_mean_exact(self, rng):
        async def main():
            service = await make_service(shards=3)
            client = InProcessClient(service)
            x = random_hard_array(rng, 500, emin=-30, emax=30)
            await client.add_array("m", x)
            assert await client.mean("m") == exact_mean(x)
            await service.close()

        run(main())

    def test_non_finite_rejected_cleanly(self):
        async def main():
            service = await make_service(shards=2)
            client = InProcessClient(service)
            resp = await service.handle(
                {"op": "add_array", "stream": "s", "values": [1.0, float("inf")]}
            )
            assert resp["ok"] is False and resp["code"] == "non-finite"
            # nothing was folded
            assert await client.count("s") == 0
            await service.close()

        run(main())


class TestMicrobatching:
    def test_concurrent_adds_coalesce(self):
        async def main():
            service = await make_service(shards=1, queue_depth=512)
            client = InProcessClient(service)
            await asyncio.gather(
                *(client.add("s", float(i)) for i in range(200))
            )
            assert await client.value("s") == ref_sum(
                [float(i) for i in range(200)]
            )
            stats = await client.stats()
            # far fewer folds than adds proves coalescing happened
            assert stats["batches_folded"] < 200
            assert stats["max_coalesced_ops"] > 1
            assert stats["values_ingested"] == 200
            await service.close()

        run(main())

    def test_flush_barrier(self, rng):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 256)
            await client.add_array("s", x)
            await client.flush()
            assert all(s.queue_depth == 0 for s in service.shards)
            await service.close()

        run(main())


class TestBackpressure:
    def test_reject_policy_raises(self):
        async def main():
            # shard never started: queue fills and must reject
            shard = AccumulatorShard(0, queue_depth=2, policy="reject")
            arr = np.array([1.0])
            first = asyncio.ensure_future(shard.fold("s", arr))
            second = asyncio.ensure_future(shard.fold("s", arr))
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(BackpressureError) as exc:
                await shard.fold("s", arr)
            assert exc.value.retry_after > 0
            assert shard.metrics.queue_rejections == 1
            # drain: start the writer, everything completes
            shard.start()
            assert await first == 1 and await second == 1
            await shard.stop()

        run(main())

    def test_reject_maps_to_busy_response(self):
        async def main():
            service = await make_service(shards=1, queue_depth=1, policy="reject")
            # stop the writer so the queue cannot drain, then fill it
            await service.close()
            service.shards[0]._queue.put_nowait(object())
            resp = await service.handle(
                {"op": "add", "stream": "s", "value": 1.0, "id": 9}
            )
            assert resp["ok"] is False
            assert resp["code"] == "busy"
            assert resp["retry_after"] > 0
            assert resp["id"] == 9

        run(main())

    def test_block_policy_waits_and_completes(self, rng):
        async def main():
            service = await make_service(shards=1, queue_depth=4, policy="block")
            client = InProcessClient(service)
            x = random_hard_array(rng, 512)
            await asyncio.gather(
                *(client.add_array("s", chunk) for chunk in np.array_split(x, 64))
            )
            assert await client.value("s") == ref_sum(x)
            stats = await client.stats()
            assert stats["queue_rejections"] == 0
            await service.close()

        run(main())


class TestStateManipulation:
    def test_snapshot_restore_roundtrip(self, rng):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 600)
            await client.add_array("a", x)
            blob = await client.snapshot("a")
            restored = await client.restore("b", blob)
            assert restored == 600
            assert await client.value("b") == await client.value("a")
            assert await client.count("b") == 600
            await service.close()

        run(main())

    def test_merge_moves_and_deletes(self, rng):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 400)
            await client.add_array("a", x[:150])
            await client.add_array("b", x[150:])
            moved = await client.merge("b", "a")
            assert moved == 250
            assert await client.value("a") == ref_sum(x)
            assert "b" not in await client.streams()
            await service.close()

        run(main())

    def test_drain_removes_stream(self, rng):
        async def main():
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 300)
            await client.add_array("d", x)
            value, count, blob = await client.drain("d")
            assert value == ref_sum(x) and count == 300
            assert await client.count("d") == 0
            # the drained snapshot restores elsewhere, exactly
            await client.restore("d2", blob)
            assert await client.value("d2") == ref_sum(x)
            await service.close()

        run(main())

    def test_save_load_state_file(self, rng, tmp_path):
        async def main():
            path = tmp_path / "state.json"
            service = await make_service(shards=4)
            client = InProcessClient(service)
            x = random_hard_array(rng, 200)
            await client.add_array("alpha", x[:80])
            await client.add_array("beta", x[80:])
            assert await service.save_state(path) == 2
            await service.close()

            fresh = await make_service(shards=2)  # different shard count is fine
            assert await fresh.load_state(path) == 2
            fc = InProcessClient(fresh)
            assert await fc.value("alpha") == ref_sum(x[:80])
            assert await fc.value("beta") == ref_sum(x[80:])
            assert await fc.count("alpha") == 80
            await fresh.close()

        run(main())

    def test_restore_corrupt_snapshot(self):
        async def main():
            service = await make_service(shards=1)
            resp = await service.handle(
                {"op": "restore", "stream": "s", "snapshot": "Z2FyYmFnZQ=="}
            )
            assert resp["ok"] is False and resp["code"] == "service"
            await service.close()

        run(main())


class TestDispatchErrors:
    @pytest.mark.parametrize(
        "request_,code",
        [
            ({"op": "warp"}, "unknown-op"),
            ({"noop": 1}, "service"),
            ({"op": "add", "stream": "s"}, "service"),
            ({"op": "add", "stream": "s", "value": "x"}, "service"),
            ({"op": "add", "stream": "s", "value": True}, "service"),
            ({"op": "add", "value": 1.0}, "service"),
            ({"op": "add_array", "stream": "s"}, "service"),
            ({"op": "merge", "src": "a", "dst": "a"}, "service"),
            ({"op": "value", "stream": "s", "mode": "sideways"}, "bad-request"),
            ({"op": "add_block", "stream": "s", "block": "nope"}, "service"),
            (
                {
                    "op": "add_block",
                    "stream": "s",
                    "block": {"kind": "warp", "segment": "x", "length": 1},
                },
                "service",
            ),
        ],
    )
    def test_bad_requests_map_to_error_responses(self, request_, code):
        async def main():
            service = await make_service(shards=1)
            resp = await service.handle(request_)
            assert resp["ok"] is False
            assert resp["code"] == code
            await service.close()

        run(main())

    def test_id_echoed_on_success_and_failure(self):
        async def main():
            service = await make_service(shards=1)
            ok = await service.handle({"op": "ping", "id": "abc"})
            bad = await service.handle({"op": "warp", "id": 17})
            assert ok["id"] == "abc" and ok["ok"] is True
            assert bad["id"] == 17 and bad["ok"] is False
            await service.close()

        run(main())

    def test_metrics_track_requests_and_errors(self):
        async def main():
            service = await make_service(shards=1)
            client = InProcessClient(service)
            await client.ping()
            await service.handle({"op": "warp"})
            stats = await client.stats()
            # the in-flight stats request records itself only after the
            # snapshot is taken, so it sees the two earlier requests
            assert stats["requests_total"] >= 2
            assert stats["errors_total"] == 1
            assert stats["requests_by_op"]["ping"] == 1
            assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] >= 0
            assert stats["shards"] == 1 and stats["policy"] == "block"
            await service.close()

        run(main())


class TestAddBlock:
    def test_zero_copy_dataset_ingest(self, rng, tmp_path):
        from repro.data import write_dataset
        from repro.mapreduce.dataplane import dataset_payload_offset

        async def main():
            x = random_hard_array(rng, 2048)
            path = tmp_path / "d.f64"
            write_dataset(path, x)
            service = await make_service(shards=4, scatter_chunk=256)
            client = InProcessClient(service)
            added = await client.add_block(
                "blk",
                {
                    "kind": "mmap",
                    "segment": str(path),
                    "offset": dataset_payload_offset(),
                    "length": int(x.size),
                },
            )
            assert added == 2048
            assert await client.value("blk") == ref_sum(x)
            await service.close()

        run(main())

    def test_missing_file_is_clean_error(self):
        async def main():
            service = await make_service(shards=1)
            resp = await service.handle(
                {
                    "op": "add_block",
                    "stream": "s",
                    "block": {"kind": "mmap", "segment": "/nope/x.f64", "length": 4},
                }
            )
            assert resp["ok"] is False and resp["code"] == "service"
            await service.close()

        run(main())


def test_exact_sum_agrees_with_core(rng):
    # anchor: the service's ground truth really is core.exact_sum
    x = random_hard_array(rng, 1000)
    assert ref_sum(x) == exact_sum(x)


class TestTieringTelemetry:
    """The adaptive tier ladder's counters must move with real traffic."""

    def test_stateless_sum_bumps_tier0(self, rng):
        async def main():
            service = await make_service(shards=2)
            client = InProcessClient(service)
            before = (await client.stats())["tiering"]["tier0_hits"]
            x = rng.random(4096) + 1.0
            resp = await client.sum_values(x)
            assert resp["value"] == ref_sum(x)
            assert resp["tier"] == 0
            # None encodes an infinite margin (exact capture, beta == 0)
            assert resp["margin_bits"] is None or resp["margin_bits"] > 0
            after = (await client.stats())["tiering"]["tier0_hits"]
            assert after == before + 1
            await service.close()

        run(main())

    def test_adversarial_sum_counts_escalation(self, rng):
        async def main():
            service = await make_service(shards=2)
            client = InProcessClient(service)
            x = rng.random(2048)
            y = np.concatenate([x * 2.0**90, -(x * 2.0**90), rng.random(64)])
            rng.shuffle(y)
            resp = await client.sum_values(y)
            assert resp["value"] == ref_sum(y)
            assert resp["tier"] > 0
            snap = (await client.stats())["tiering"]
            assert snap["escalations"] >= 1
            await service.close()

        run(main())

    def test_stream_folds_count_tier2(self, rng):
        async def main():
            service = await make_service(shards=2)
            client = InProcessClient(service)
            x = random_hard_array(rng, 3000)
            await client.add_array("t", x)
            assert await client.value("t") == ref_sum(x)
            snap = (await client.stats())["tiering"]
            assert snap["tier2_folds"] >= 1
            await service.close()

        run(main())
