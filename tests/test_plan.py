"""Backend planner: decisions, descriptors, and executable plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import exact_sum
from repro.data import write_dataset
from repro.kernels import kernel_names
from repro.plan import (
    DEFAULT_BLOCK_ITEMS,
    DataDescriptor,
    PLANES,
    plan_sum,
    run_plane,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(21)
    return (rng.random(2500) - 0.5) * 10.0 ** rng.integers(-60, 60, 2500)


class TestDescriptor:
    def test_describe_array_captures_size_and_data(self, data):
        desc = DataDescriptor.describe_array(data, workers=3)
        assert desc.n == data.size
        assert desc.layout == "memory"
        assert desc.workers == 3
        assert desc.values is not None

    def test_describe_file_reads_header_only(self, tmp_path, data):
        path = tmp_path / "d.f64"
        write_dataset(path, data)
        desc = DataDescriptor.describe_file(path, workers=2)
        assert desc.n == data.size
        assert desc.layout == "file"
        assert desc.path == str(path)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=-1),
            dict(n=10, layout="tape"),
            dict(n=10, workers=0),
            dict(n=10, layout="file"),  # no path
        ],
    )
    def test_invalid_descriptors_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DataDescriptor(**kwargs)


class TestPlannerDecisions:
    def test_small_memory_input_stays_serial(self):
        plan = plan_sum(DataDescriptor(n=1000, layout="memory", workers=1))
        assert plan.plane == "serial"
        assert plan.kernel == "adaptive"
        assert plan.tier == "speculative"

    def test_small_input_with_workers_still_serial(self):
        plan = plan_sum(DataDescriptor(n=1000, layout="memory", workers=8))
        assert plan.plane == "serial"
        assert plan.workers == 1
        assert "spin-up" in plan.reason

    def test_large_memory_input_with_workers_goes_mapreduce(self):
        plan = plan_sum(
            DataDescriptor(n=4 * DEFAULT_BLOCK_ITEMS, layout="memory", workers=4)
        )
        assert plan.plane == "mapreduce"
        assert plan.workers == 4

    def test_file_single_worker_streams(self, tmp_path, data):
        path = tmp_path / "d.f64"
        write_dataset(path, data)
        plan = plan_sum(DataDescriptor.describe_file(path))
        assert plan.plane == "streaming"

    def test_file_with_workers_goes_mapreduce(self, tmp_path, data):
        path = tmp_path / "d.f64"
        write_dataset(path, data)
        plan = plan_sum(DataDescriptor.describe_file(path, workers=4))
        assert plan.plane == "mapreduce"

    def test_directed_mode_selects_exact_tier(self):
        plan = plan_sum(DataDescriptor(n=1000, layout="memory"), mode="down")
        # Fastest *available* exact kernel: the binned exponent fold
        # (binned_jit outranks it only when numba is installed).
        assert plan.kernel in ("binned", "binned_jit")
        assert plan.kernel in kernel_names()
        assert plan.tier == "exact"
        forced = plan_sum(
            DataDescriptor(n=1000, layout="memory"), kernel="adaptive", mode="up"
        )
        assert forced.tier == "exact"  # certificates only prove nearest

    def test_explicit_kernel_is_honored(self):
        plan = plan_sum(DataDescriptor(n=1000, layout="memory"), kernel="small")
        assert plan.kernel == "small"
        assert plan.tier == "exact"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            plan_sum(DataDescriptor(n=10, layout="memory"), kernel="quantum")

    def test_describe_is_json_flat(self):
        info = plan_sum(DataDescriptor(n=10, layout="memory")).describe()
        assert set(info) == {
            "plane", "kernel", "tier", "workers", "block_items",
            "n", "layout", "reason", "op",
        }


class TestKernelCandidates:
    def test_table_lists_unavailable_backends_with_reasons(self):
        from repro.plan import kernel_candidates
        from repro.util.capabilities import has_numba

        cands = {c.name: c for c in kernel_candidates()}
        assert "binned_jit" in cands
        assert cands["binned_jit"].accepted == has_numba()
        if not has_numba():
            assert "numba" in cands["binned_jit"].reason
        assert all(c.reason for c in cands.values())

    def test_planner_never_selects_unavailable_backend(self):
        for mode in ("nearest", "down", "up"):
            plan = plan_sum(DataDescriptor(n=1 << 22, layout="memory"), mode=mode)
            assert plan.kernel in kernel_names()

    def test_forcing_missing_optional_kernel_names_the_capability(self):
        from repro.util.capabilities import has_numba

        if has_numba():
            pytest.skip("numba installed: binned_jit is a real kernel here")
        with pytest.raises(ValueError, match="requires numba"):
            plan_sum(DataDescriptor(n=10, layout="memory"), kernel="binned_jit")

    def test_wide_radix_rejects_vectorized_bin_fold(self):
        from repro.core.digits import RadixConfig
        from repro.plan import kernel_candidates

        wide = RadixConfig(w=40)
        cands = {c.name: c for c in kernel_candidates(mode="down", radix=wide)}
        assert not cands["binned"].accepted
        assert "w=40" in cands["binned"].reason
        plan = plan_sum(
            DataDescriptor(n=100, layout="memory"), mode="down", radix=wide
        )
        assert plan.kernel not in ("binned", "binned_jit")

    def test_plan_carries_its_candidate_table(self):
        plan = plan_sum(DataDescriptor(n=100, layout="memory"))
        accepted = [c for c in plan.candidates if c.accepted]
        assert accepted and accepted[0].name == plan.kernel
        # sorted fastest-first by the measured-rate table
        rates = [c.rate for c in plan.candidates if c.rate is not None]
        assert rates == sorted(rates, reverse=True)


class TestExecution:
    def test_memory_plan_executes_bit_identical(self, data):
        ref = exact_sum(data, method="sparse")
        plan = plan_sum(DataDescriptor.describe_array(data))
        assert plan.execute() == ref

    def test_file_plan_reads_its_dataset(self, tmp_path, data):
        ref = exact_sum(data, method="sparse")
        path = tmp_path / "d.f64"
        write_dataset(path, data)
        plan = plan_sum(DataDescriptor.describe_file(path))
        assert plan.execute() == ref

    def test_size_only_plan_needs_values(self):
        plan = plan_sum(DataDescriptor(n=16, layout="memory"))
        with pytest.raises(ValueError, match="no data"):
            plan.execute()
        assert plan.execute(values=np.ones(16)) == 16.0

    def test_mode_override_at_execute_time(self, data):
        plan = plan_sum(DataDescriptor.describe_array(data))
        down = exact_sum(data, method="sparse", mode="down")
        up = exact_sum(data, method="sparse", mode="up")
        assert plan.execute(mode="down") == down
        assert plan.execute(mode="up") == up
        assert down != up  # the dataset is not exactly representable

    def test_every_planner_reason_is_nonempty(self):
        for desc in (
            DataDescriptor(n=100, layout="memory"),
            DataDescriptor(n=1 << 21, layout="memory", workers=4),
        ):
            assert plan_sum(desc).reason


class TestRunPlane:
    def test_unknown_plane_and_kernel_rejected(self, data):
        with pytest.raises(ValueError, match="unknown plane"):
            run_plane("quantum", "sparse", data)
        with pytest.raises(ValueError, match="unknown kernel"):
            run_plane("serial", "quantum", data)

    def test_empty_input_sums_to_zero_on_every_plane(self):
        empty = np.array([], dtype=np.float64)
        for plane in PLANES:
            if plane == "bsp":
                continue  # allreduce needs at least one rank's block
            assert run_plane(plane, "sparse", empty) == 0.0

    @pytest.mark.parametrize("kernel", sorted(kernel_names()))
    def test_serial_plane_matches_reference_for_all_kernels(self, data, kernel):
        ref = exact_sum(data, method="sparse")
        assert run_plane("serial", kernel, data, block_items=500) == ref
