"""Unit tests for the exact geometry package."""

from __future__ import annotations

import itertools
import math
from fractions import Fraction

import numpy as np
import pytest

from repro.geometry import (
    centroid_times_area,
    convex_hull,
    exact_det,
    exact_det_sign,
    incircle,
    is_convex,
    orient2d,
    orient2d_fast,
    orient3d,
    polygon_contains,
    product_expansion,
    signed_area,
)
from tests.conftest import fraction_to_float


def frac_det(m):
    n = len(m)
    tot = Fraction(0)
    for p in itertools.permutations(range(n)):
        inv = sum(1 for i in range(n) for j in range(i + 1, n) if p[i] > p[j])
        term = Fraction((-1) ** inv)
        for i in range(n):
            term *= Fraction(float(m[i][p[i]]))
        tot += term
    return tot


class TestProductExpansion:
    def test_exact(self, rng):
        for _ in range(200):
            k = int(rng.integers(1, 5))
            fs = ((rng.random(k) - 0.5) * 10.0 ** rng.integers(-40, 40)).tolist()
            exp = product_expansion(fs)
            want = Fraction(1)
            for f in fs:
                want *= Fraction(float(f))
            assert sum((Fraction(t) for t in exp), Fraction(0)) == want

    def test_zero_factor(self):
        assert sum(product_expansion([3.0, 0.0, 7.0])) == 0.0

    def test_single(self):
        assert product_expansion([2.5]) == [2.5]


class TestExactDet:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_against_fraction(self, n, rng):
        for _ in range(30):
            m = (rng.random((n, n)) - 0.5) * 10.0 ** rng.integers(-8, 8)
            assert exact_det(m) == fraction_to_float(frac_det(m))

    def test_singular_is_exact_zero(self):
        m = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.1, 0.2, 0.7]]
        assert exact_det(m) == 0.0
        assert exact_det_sign(m) == 0

    def test_identity(self):
        assert exact_det(np.eye(4)) == 1.0
        assert exact_det([]) == 1.0

    def test_rejects_nonsquare_and_big(self):
        with pytest.raises(ValueError):
            exact_det([[1.0, 2.0]])
        with pytest.raises(ValueError):
            exact_det(np.eye(6))


class TestOrient2D:
    def test_basic_signs(self):
        assert orient2d(0, 0, 1, 0, 0, 1) == 1
        assert orient2d(0, 0, 0, 1, 1, 0) == -1
        assert orient2d(0, 0, 1, 1, 2, 2) == 0

    def test_classroom_grid_float_fails_exact_does_not(self):
        # Kettner et al.'s classroom example: the float predicate gives
        # wrong signs on an ulp grid; the exact one never does.
        mismatches = 0
        for i in range(12):
            for j in range(12):
                ax = 0.5 + i * 2.0**-53
                ay = 0.5 + j * 2.0**-53
                det = (ax - 24.0) * (12.0 - 24.0) - (ay - 24.0) * (12.0 - 24.0)
                float_sign = (det > 0) - (det < 0)
                e = orient2d(ax, ay, 12.0, 12.0, 24.0, 24.0)
                f = orient2d_fast(ax, ay, 12.0, 12.0, 24.0, 24.0)
                assert e == f  # adaptive must agree with exact
                if float_sign != e:
                    mismatches += 1
        assert mismatches > 0  # the float version does fail on this grid

    def test_antisymmetry(self, rng):
        for _ in range(50):
            ax, ay, bx, by, cx, cy = (rng.random(6) * 100).tolist()
            assert orient2d(ax, ay, bx, by, cx, cy) == -orient2d(
                bx, by, ax, ay, cx, cy
            )

    def test_fast_matches_exact_random(self, rng):
        for _ in range(200):
            pts = ((rng.random(6) - 0.5) * 10.0 ** float(rng.integers(-4, 6))).tolist()
            assert orient2d(*pts) == orient2d_fast(*pts)


class TestOrient3DIncircle:
    def test_orient3d_basic(self):
        assert orient3d((0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)) != 0
        assert orient3d((0, 0, 0), (1, 0, 0), (0, 1, 0), (3, 4, 0)) == 0
        up = orient3d((0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1))
        dn = orient3d((0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, -1))
        assert up == -dn != 0

    def test_incircle_unit_circle(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)  # ccw on the unit circle
        assert incircle(a, b, c, (0, 0)) == 1
        assert incircle(a, b, c, (2, 0)) == -1
        assert incircle(a, b, c, (0, -1)) == 0  # exactly on the circle

    def test_incircle_near_cocircular(self):
        # point displaced one ulp off the circle: exact sign resolves it
        a, b, c = (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)
        eps = 2.0**-52
        assert incircle(a, b, c, (0.0, -1.0 + eps)) == 1
        assert incircle(a, b, c, (0.0, -1.0 - eps)) == -1

    def test_incircle_orientation_flip(self):
        # clockwise triangle flips the sign convention
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert incircle(c, b, a, (0, 0)) == -1


class TestPolygon:
    def test_signed_area_square(self):
        assert signed_area([(0, 0), (2, 0), (2, 2), (0, 2)]) == 4.0
        assert signed_area([(0, 0), (0, 2), (2, 2), (2, 0)]) == -4.0

    def test_translation_invariance_dyadic(self):
        base = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 2.0**-30]])
        a0 = signed_area(base)
        assert a0 == 2.0**-31
        for shift in (2.0**15, 2.0**22):
            assert signed_area(base + shift) == a0

    def test_area_against_fraction(self, rng):
        for _ in range(20):
            n = int(rng.integers(3, 10))
            pts = (rng.random((n, 2)) - 0.5) * 1000
            x, y = pts[:, 0], pts[:, 1]
            want = Fraction(0)
            for i in range(n):
                j = (i + 1) % n
                want += Fraction(float(x[i])) * Fraction(float(y[j]))
                want -= Fraction(float(x[j])) * Fraction(float(y[i]))
            want /= 2
            from repro.stats import round_fraction

            assert signed_area(pts) == round_fraction(want)

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            signed_area([(0, 0), (1, 1)])

    def test_is_convex(self):
        assert is_convex([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert not is_convex([(0, 0), (2, 0), (1, 0.1), (2, 2), (0, 2)])
        # collinear vertex still convex
        assert is_convex([(0, 0), (1, 0), (2, 0), (2, 2), (0, 2)])

    def test_contains(self):
        sq = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert polygon_contains(sq, (0.5, 0.5))
        assert polygon_contains(sq, (0.0, 0.5))  # boundary
        assert polygon_contains(sq, (1.0, 1.0))  # corner
        assert not polygon_contains(sq, (1.5, 0.5))
        assert not polygon_contains(sq, (-0.1, 0.5))

    def test_centroid_times_area(self):
        # unit square: centroid (.5, .5), A = 1 -> (6A*Cx, 6A*Cy) = (3, 3)
        cx6a, cy6a = centroid_times_area([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert (cx6a, cy6a) == (3.0, 3.0)


class TestConvexHull:
    def test_square_with_interior(self, rng):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4)] + [
            tuple(p) for p in rng.random((50, 2)) * 3 + 0.5
        ]
        hull = convex_hull(pts)
        assert sorted(hull) == [(0.0, 0.0), (0.0, 4.0), (4.0, 0.0), (4.0, 4.0)]

    def test_ccw_and_convex(self, rng):
        pts = rng.random((300, 2)) * 10
        hull = convex_hull(pts)
        assert signed_area(hull) > 0
        assert is_convex(hull)
        for p in pts[:60]:
            assert polygon_contains(hull, p)

    def test_collinear_input(self):
        assert convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)]) == [
            (0.0, 0.0),
            (3.0, 3.0),
        ]

    def test_duplicates_and_tiny(self):
        assert convex_hull([(1, 1), (1, 1)]) == [(1.0, 1.0)]
        assert convex_hull([(0, 1)]) == [(0.0, 1.0)]
        assert convex_hull([]) == []

    def test_nearly_collinear_robustness(self):
        # points on y = x with sub-ulp perturbations: a float hull can
        # emit a non-convex chain; the exact hull cannot
        pts = [(float(i), float(i)) for i in range(10)]
        pts += [(0.5 + 3 * 2.0**-53, 0.5 + 2.0**-53), (2.5, 2.5 - 2.0**-51)]
        hull = convex_hull(pts)
        assert is_convex(hull)
        assert signed_area(hull) >= 0
