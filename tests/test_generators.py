"""Unit tests for the four experimental input distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import condition_number, exact_sum
from repro.core.fpinfo import exponent_span
from repro.data.generators import (
    DISTRIBUTIONS,
    PANEL_NAMES,
    exponent_window,
    generate,
    generate_anderson,
    generate_sum_zero,
    generate_well_conditioned,
)


class TestCommon:
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_size_finite_deterministic(self, dist):
        a = generate(dist, 1000, delta=300, seed=5)
        b = generate(dist, 1000, delta=300, seed=5)
        c = generate(dist, 1000, delta=300, seed=6)
        assert a.size == 1000 and np.isfinite(a).all()
        assert (a == b).all()
        assert not (a == c).all()

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_delta_controls_spread(self, dist):
        narrow = generate(dist, 5000, delta=10, seed=1)
        wide = generate(dist, 5000, delta=1000, seed=1)
        if dist == "anderson":
            # mean subtraction collapses the range regardless of delta
            assert exponent_span(wide) < 80
        elif dist == "tie":
            # the half-ulp tie term sits ~53+depth bits below the anchor
            assert exponent_span(narrow) >= 53
            assert exponent_span(wide) > 500
        else:
            assert exponent_span(narrow) <= 12
            assert exponent_span(wide) > 500

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate("cauchy", 10)

    def test_panel_names_cover_all(self):
        assert set(PANEL_NAMES) == set(DISTRIBUTIONS)


class TestExponentWindow:
    def test_width(self):
        lo, hi = exponent_window(100)
        assert hi - lo + 1 == 100

    def test_clipped_at_max_delta(self):
        lo, hi = exponent_window(5000)
        assert hi <= 969 and lo >= -1077

    def test_delta_one(self):
        lo, hi = exponent_window(1)
        assert lo == hi


class TestDistributionProperties:
    def test_well_conditioned_is_positive_cond_one(self):
        x = generate_well_conditioned(2000, delta=100, seed=2)
        assert (x > 0).all()
        assert condition_number(x) == 1.0

    def test_random_has_both_signs(self):
        x = generate("random", 2000, delta=100, seed=2)
        assert (x > 0).any() and (x < 0).any()

    def test_anderson_is_ill_conditioned(self):
        x = generate_anderson(5000, delta=30, seed=3)
        # heavy cancellation: C(X) far above 1
        assert condition_number(x) > 100.0

    def test_sum_zero_exact(self):
        for n in (2, 100, 1001):
            x = generate_sum_zero(n, delta=200, seed=4)
            assert x.size == n
            assert exact_sum(x) == 0.0

    def test_sum_zero_condition_infinite(self):
        x = generate_sum_zero(100, delta=50, seed=1)
        assert condition_number(x) == math.inf

    def test_large_delta_stays_finite_in_big_sums(self):
        # the generator's exponent cap: a billion-scale positive sum of
        # delta=2000 data must not overflow
        x = generate_well_conditioned(10_000, delta=2000, seed=0)
        assert math.isfinite(exact_sum(x))
