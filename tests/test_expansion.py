"""Unit tests for Shewchuk expansion arithmetic."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.baselines.expansion import (
    compress,
    expansion_from_values,
    expansion_approx,
    expansion_sum,
    expansion_sum_value,
    grow_expansion,
)
from tests.conftest import exact_fraction, random_hard_array, ref_sum


def expansion_fraction(e) -> Fraction:
    return sum((Fraction(v) for v in e), Fraction(0))


def is_nonoverlapping(e) -> bool:
    # components in increasing magnitude; each pair non-overlapping:
    # |smaller| < ulp(larger) * 2**52 boundary check via exponents
    for a, b in zip(e, e[1:]):
        if a == 0.0 or b == 0.0:
            return False
        ea = math.frexp(a)[1]
        mb, eb = math.frexp(b)
        # lsb exponent of b must be >= msb exponent of a
        lsb_b = eb - 53
        while mb * 2 == int(mb * 2):  # crude trailing-zero scan
            mb *= 2
            lsb_b += 1
            if mb == 0:
                break
        if lsb_b < ea:
            return False
    return True


class TestGrowExpansion:
    def test_exactness(self, rng):
        e = []
        total = Fraction(0)
        for v in random_hard_array(rng, 50):
            e = grow_expansion(e, float(v))
            total += Fraction(float(v))
            assert expansion_fraction(e) == total

    def test_no_zero_components(self, rng):
        e = expansion_from_values(random_hard_array(rng, 100))
        assert all(v != 0.0 for v in e)

    def test_cancel_to_empty(self):
        e = grow_expansion([1.5], -1.5)
        assert e == []


class TestExpansionSum:
    def test_exact(self, rng):
        a = expansion_from_values(random_hard_array(rng, 30))
        b = expansion_from_values(random_hard_array(rng, 30))
        c = expansion_sum(a, b)
        assert expansion_fraction(c) == expansion_fraction(a) + expansion_fraction(b)


class TestCompress:
    def test_value_preserved(self, rng):
        for _ in range(30):
            e = expansion_from_values(random_hard_array(rng, 40))
            c = compress(e)
            assert expansion_fraction(c) == expansion_fraction(e)

    def test_never_longer(self, rng):
        e = expansion_from_values(random_hard_array(rng, 60))
        assert len(compress(e)) <= max(len(e), 1)

    def test_empty(self):
        assert compress([]) == []
        assert compress([0.0, 0.0]) == []

    def test_largest_component_approximates(self, rng):
        e = compress(expansion_from_values(random_hard_array(rng, 40)))
        if e:
            total = float(expansion_fraction(e)) if abs(expansion_fraction(e)) < Fraction(10) ** 300 else None
            if total is not None:
                assert abs(e[-1] - total) <= math.ulp(e[-1]) * 2


class TestExpansionSumValue:
    def test_faithful(self, rng):
        for _ in range(20):
            x = random_hard_array(rng, int(rng.integers(1, 200)))
            got = expansion_sum_value(x)
            exact = exact_fraction(x)
            nearest = ref_sum(x)
            # faithful: within one ulp bracket of the exact value
            lo = min(nearest, math.nextafter(nearest, -math.inf))
            hi = max(nearest, math.nextafter(nearest, math.inf))
            assert Fraction(lo) <= Fraction(got) <= Fraction(hi) or got == nearest

    def test_cancellation(self):
        assert expansion_sum_value([1e16, 1.0, -1e16]) == 1.0

    def test_empty(self):
        assert expansion_sum_value([]) == 0.0
