"""Unit tests for correctly rounded statistical reductions."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import numpy as np
import pytest

from repro.stats import (
    exact_dot_fraction,
    exact_mean,
    exact_norm2,
    exact_variance,
    round_fraction,
)
from tests.conftest import exact_fraction, random_hard_array


class TestRoundFraction:
    def test_matches_cpython_float(self):
        rnd = random.Random(11)
        for _ in range(3000):
            num = rnd.getrandbits(rnd.randint(1, 180)) - rnd.getrandbits(
                rnd.randint(1, 180)
            )
            den = rnd.getrandbits(rnd.randint(1, 180)) + 1
            f = Fraction(num, den)
            try:
                want = float(f)
            except OverflowError:
                want = math.inf if f > 0 else -math.inf
            assert round_fraction(f) == want

    def test_dyadic_path(self):
        assert round_fraction(Fraction(3, 8)) == 0.375
        assert round_fraction(Fraction(0)) == 0.0

    def test_thirds(self):
        assert round_fraction(Fraction(1, 3)) == 1 / 3
        assert round_fraction(Fraction(-2, 3)) == -2 / 3

    def test_directed(self):
        f = Fraction(1, 3)
        lo = round_fraction(f, "down")
        hi = round_fraction(f, "up")
        assert Fraction(lo) < f < Fraction(hi)
        assert hi == math.nextafter(lo, math.inf)


class TestMean:
    def test_simple(self):
        assert exact_mean([1.0, 2.0, 3.0]) == 2.0

    def test_correctly_rounded(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 200))
            x = random_hard_array(rng, n, emin=-40, emax=40)
            want = round_fraction(exact_fraction(x) / n)
            assert exact_mean(x) == want

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_mean([])

    def test_defeats_naive_mean(self):
        x = np.array([1e16, 1.0, 1.0, -1e16])
        assert exact_mean(x) == 0.5
        assert float(np.mean(x)) != 0.5


class TestVariance:
    def test_known(self):
        assert exact_variance([1.0, 2.0, 3.0, 4.0]) == 1.25
        assert exact_variance([1.0, 2.0, 3.0, 4.0], ddof=1) == pytest.approx(
            5.0 / 3.0, abs=0
        ) or exact_variance([1.0, 2.0, 3.0, 4.0], ddof=1) == round_fraction(
            Fraction(5, 3)
        )

    def test_shifted_data_cancellation(self):
        # the classic one-pass float failure
        x = np.array([1e8 + 1, 1e8 + 2, 1e8 + 3, 1e8 + 4])
        assert exact_variance(x) == 1.25
        naive = float(np.mean(x * x) - np.mean(x) ** 2)
        assert naive != 1.25  # numpy's naive formula would be wrong

    def test_against_fraction(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 120))
            x = random_hard_array(rng, n, emin=-20, emax=20)
            s = exact_fraction(x)
            ss = sum((Fraction(float(v)) ** 2 for v in x), Fraction(0))
            want = round_fraction((ss - s * s / n) / n)
            assert exact_variance(x) == want

    def test_zero_variance(self):
        assert exact_variance([7.5] * 10) == 0.0

    def test_ddof_bounds(self):
        with pytest.raises(ValueError):
            exact_variance([1.0], ddof=1)


class TestNorm:
    def test_pythagorean(self):
        assert exact_norm2([3.0, 4.0]) == 5.0
        assert exact_norm2([0.0, 0.0]) == 0.0

    def test_correct_rounding_against_fraction(self, rng):
        for _ in range(100):
            n = int(rng.integers(1, 40))
            x = random_hard_array(rng, n, emin=-30, emax=30)
            got = exact_norm2(x)
            ss = sum((Fraction(float(v)) ** 2 for v in x), Fraction(0))
            # verify `got` is the nearest float to sqrt(ss) by midpoint
            # comparisons in exact arithmetic
            lo = math.nextafter(got, 0.0)
            hi = math.nextafter(got, math.inf)
            mid_lo = (Fraction(lo) + Fraction(got)) / 2
            mid_hi = (Fraction(got) + Fraction(hi)) / 2
            assert mid_lo * mid_lo <= ss <= mid_hi * mid_hi

    def test_avoids_spurious_overflow(self):
        # the naive sqrt(sum(x^2)) overflows to inf; the exact norm is a
        # perfectly representable ~1.58e154 (cross-check: math.hypot,
        # which also avoids the spurious overflow)
        x = np.array([1.3e154, 0.9e154])
        got = exact_norm2(x)
        assert math.isfinite(got)
        assert got == pytest.approx(math.hypot(1.3e154, 0.9e154), rel=1e-15)

    def test_overflow_boundary(self):
        assert exact_norm2([1.7e308]) == 1.7e308
        assert exact_norm2([1.7e308, 1.7e308]) == math.inf

    def test_deep_subnormal(self):
        assert exact_norm2([2.0**-1074]) == 2.0**-1074
        got = exact_norm2([2.0**-600, 2.0**-600])
        want = math.sqrt(2.0) * 2.0**-600
        assert got == pytest.approx(want, rel=1e-15)


class TestDotFraction:
    def test_exact(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 60))
            x = random_hard_array(rng, n, emin=-40, emax=40)
            y = random_hard_array(rng, n, emin=-40, emax=40)
            want = sum(
                (Fraction(float(a)) * Fraction(float(b)) for a, b in zip(x, y)),
                Fraction(0),
            )
            assert exact_dot_fraction(x, y) == want

    def test_mismatch(self):
        with pytest.raises(ValueError):
            exact_dot_fraction([1.0], [1.0, 2.0])
