"""Unit tests for PRAM primitives: scan, reduce, merge, sort."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.pram.machine import PRAM
from repro.pram.primitives import (
    parallel_compact,
    parallel_merge,
    parallel_merge_sort,
    parallel_prefix,
    parallel_reduce,
)


class TestParallelPrefix:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 100, 1023])
    def test_inclusive_matches_cumsum(self, n, rng):
        a = rng.integers(-50, 50, n)
        got = parallel_prefix(PRAM(check_erew=True), a)
        assert (got == np.cumsum(a)).all()

    @pytest.mark.parametrize("n", [1, 5, 64, 257])
    def test_exclusive(self, n, rng):
        a = rng.integers(0, 9, n)
        got = parallel_prefix(PRAM(), a, inclusive=False)
        assert (got == np.cumsum(a) - a).all()

    def test_logarithmic_rounds(self, rng):
        m = PRAM()
        parallel_prefix(m, rng.integers(0, 5, 1024))
        # Blelloch: 2 log n sweeps + final combine
        assert m.stats.rounds <= 2 * 10 + 2

    def test_linear_work(self, rng):
        m = PRAM()
        n = 4096
        parallel_prefix(m, rng.integers(0, 5, n))
        assert m.stats.work <= 4 * n  # O(n), small constant

    def test_empty(self):
        out = parallel_prefix(PRAM(), np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_custom_op_requires_identity(self):
        with pytest.raises(ValueError):
            parallel_prefix(PRAM(), np.arange(4), op=np.maximum)


class TestParallelReduce:
    def test_matches_sum(self, rng):
        a = rng.integers(-100, 100, 333)
        assert parallel_reduce(PRAM(), a) == a.sum()

    def test_single(self):
        assert parallel_reduce(PRAM(), np.array([42])) == 42

    def test_log_rounds(self, rng):
        m = PRAM()
        parallel_reduce(m, rng.integers(0, 5, 1 << 12))
        assert m.stats.rounds <= 13


class TestParallelCompact:
    def test_matches_boolean_indexing(self, rng):
        a = rng.integers(0, 100, 200)
        keep = a % 3 == 0
        got = parallel_compact(PRAM(check_erew=True), a, keep)
        assert (got == a[keep]).all()

    def test_all_and_none(self, rng):
        a = rng.integers(0, 10, 50)
        assert (parallel_compact(PRAM(), a, np.ones(50, bool)) == a).all()
        assert parallel_compact(PRAM(), a, np.zeros(50, bool)).size == 0


class TestParallelMerge:
    def test_merges_sorted(self, rng):
        for _ in range(20):
            a = np.sort(rng.random(int(rng.integers(0, 40))))
            b = np.sort(rng.random(int(rng.integers(1, 40))))
            merged, pos_a, pos_b = parallel_merge(PRAM(check_erew=True), a, b)
            assert (merged == np.sort(np.concatenate([a, b]))).all()
            # cross-links point at the right slots
            assert (merged[pos_a] == a).all()
            assert (merged[pos_b] == b).all()

    def test_duplicates_stable(self):
        a = np.array([1.0, 2.0, 2.0])
        b = np.array([2.0, 3.0])
        merged, pos_a, pos_b = parallel_merge(PRAM(check_erew=True), a, b)
        assert (merged == np.array([1.0, 2.0, 2.0, 2.0, 3.0])).all()
        # positions are unique (EREW-safe scatter)
        allpos = np.concatenate([pos_a, pos_b])
        assert np.unique(allpos).size == allpos.size


class TestParallelMergeSort:
    @pytest.mark.parametrize("n", [0, 1, 2, 10, 64, 100, 255])
    def test_sorts(self, n, rng):
        keys = rng.random(n)
        got = parallel_merge_sort(PRAM(), keys)
        assert (got == np.sort(keys)).all()

    def test_round_bound_log_squared(self, rng):
        n = 1024
        m = PRAM()
        parallel_merge_sort(m, rng.random(n))
        logn = math.ceil(math.log2(n))
        assert m.stats.rounds <= 3 * logn * logn

    def test_work_bound_n_log_n(self, rng):
        n = 2048
        m = PRAM()
        parallel_merge_sort(m, rng.random(n))
        logn = math.ceil(math.log2(n))
        assert m.stats.work <= 4 * n * logn * logn  # merge charges m*log m per level
