"""Unit tests for arbitrary-precision floats (paper's generality claim)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.core.apfloat import (
    APFloat,
    accumulate_apfloats,
    exact_sum_apfloat,
    round_apfloat_sum_to_float,
    split_apfloat,
)
from repro.core.digits import RadixConfig
from repro.errors import NonFiniteInputError


class TestAPFloatBasics:
    def test_canonical_form(self):
        a = APFloat(12, 0)  # 12 = 3 * 2^2
        assert a.mantissa == 3 and a.exponent == 2
        assert APFloat(0, 999) == APFloat(0, 0)

    def test_immutable(self):
        a = APFloat(1, 0)
        with pytest.raises(AttributeError):
            a.mantissa = 2

    def test_from_float_exact(self):
        for x in (1.5, -math.pi, 2.0**-1074, 1e308):
            assert APFloat.from_float(x).to_fraction() == Fraction(x)

    def test_from_float_rejects_nonfinite(self):
        with pytest.raises(NonFiniteInputError):
            APFloat.from_float(math.inf)
        with pytest.raises(NonFiniteInputError):
            APFloat.from_float(math.nan)

    def test_from_fraction(self):
        assert APFloat.from_fraction(Fraction(3, 8)).to_fraction() == Fraction(3, 8)
        with pytest.raises(ValueError):
            APFloat.from_fraction(Fraction(1, 3))

    def test_to_float_correctly_rounded(self):
        # 2**53 + 1 is a tie -> even
        a = APFloat((1 << 53) + 1, 0)
        assert a.to_float() == float(1 << 53)

    def test_beyond_double_range(self):
        huge = APFloat(1, 2000)
        assert huge.to_float() == math.inf
        tiny = APFloat(1, -2000)
        assert tiny.to_float() == 0.0
        assert tiny.to_fraction() == Fraction(2) ** -2000

    def test_precision_property(self):
        assert APFloat(0, 0).precision == 0
        assert APFloat(7, 5).precision == 3
        assert APFloat((1 << 200) + 1, 0).precision == 201


class TestArithmetic:
    def test_add_exact(self):
        a = APFloat(1, 1_000)
        b = APFloat(1, -1_000)
        s = a + b
        assert s.to_fraction() == Fraction(2) ** 1000 + Fraction(2) ** -1000
        assert s.precision == 2001

    def test_sub_and_neg(self):
        a = APFloat(5, 2)
        assert (a - a).is_zero()
        assert (-a).to_fraction() == -20

    def test_ordering(self):
        assert APFloat(1, 0) < APFloat(3, 0)
        assert APFloat(-1, 100) < APFloat(1, -100)
        assert APFloat(1, 1) <= APFloat(2, 0)

    def test_eq_with_floats(self):
        assert APFloat(3, -1) == 1.5
        assert APFloat(1, 3000) != 1.5

    def test_mul_exact(self):
        a = APFloat(3, 100)
        b = APFloat(-5, -300)
        assert (a * b).to_fraction() == Fraction(-15) * Fraction(2) ** -200
        assert (a * APFloat(0)).is_zero()

    def test_abs(self):
        assert abs(APFloat(-7, 3)) == APFloat(7, 3)

    def test_mul_precision_grows(self):
        big = APFloat((1 << 100) + 1, 0)
        sq = big * big
        assert sq.to_fraction() == (Fraction(2) ** 100 + 1) ** 2


class TestRoundToPrecision:
    def test_no_op_when_short(self):
        a = APFloat(5, 0)
        assert a.round_to_precision(10) is a

    def test_ties_to_even(self):
        # 0b11..1|1 exactly half: round to even
        a = APFloat((1 << 10) + 1, 0)  # 1025, 11 bits
        r = a.round_to_precision(10)
        assert r.to_fraction() == 1024
        b = APFloat((1 << 10) + 3, 0)  # 1027 -> 1028 at 10 bits
        assert b.round_to_precision(10).to_fraction() == 1028

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            APFloat(1, 0).round_to_precision(0)

    def test_quad_precision_target(self):
        # t = 113 (binary128 significand): sum of widely spread values
        vals = [APFloat(1, 0), APFloat(1, -100), APFloat(1, -300)]
        r = round_apfloat_sum_to_float(vals, target_precision=113)
        exact = sum((v.to_fraction() for v in vals), Fraction(0))
        # the 2**-300 crumb is beyond 113 bits; the 2**-100 one is not
        assert r.to_fraction() == Fraction(1) + Fraction(2) ** -100


class TestSplitAndSum:
    @pytest.mark.parametrize("w", [8, 30, 51])
    def test_split_exact(self, w):
        radix = RadixConfig(w)
        vals = [
            APFloat(1, 10**5),
            APFloat(-(1 << 300) + 7, -(10**5)),
            APFloat(12345, 17),
        ]
        for v in vals:
            pairs = split_apfloat(v, radix)
            total = sum(
                (Fraction(d) * Fraction(2) ** (w * j) for j, d in pairs),
                Fraction(0),
            )
            assert total == v.to_fraction()
            for _, d in pairs:
                assert -radix.alpha <= d <= radix.beta

    def test_exact_sum_mixed_inputs(self):
        vals = [APFloat(1, 500_000), 1.5, APFloat(-1, 500_000), 2.0**-700]
        s = exact_sum_apfloat(vals)
        assert s.to_fraction() == Fraction(3, 2) + Fraction(2) ** -700

    def test_sparse_accumulator_handles_huge_gaps(self):
        # exponent gap of a million bits: only the sparse representation
        # is feasible (a dense accumulator would need ~33k limbs)
        acc = accumulate_apfloats([APFloat(1, 1_000_000), APFloat(1, -1_000_000)])
        assert acc.active_count <= 4
        v = exact_sum_apfloat([APFloat(1, 1_000_000), APFloat(1, -1_000_000)])
        assert v.to_fraction() == Fraction(2) ** 1_000_000 + Fraction(2) ** -1_000_000

    def test_cancellation_across_precisions(self):
        big = APFloat((1 << 400) + 1, -200)
        s = exact_sum_apfloat([big, -APFloat(1 << 400, -200)])
        assert s.to_fraction() == Fraction(2) ** -200
