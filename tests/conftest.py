"""Shared fixtures and exact reference arithmetic for the test suite."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

import numpy as np
import pytest

from repro.core.rounding import round_scaled_int


def exact_fraction(values: Iterable[float]) -> Fraction:
    """Ground-truth exact sum as a Fraction (independent of repro code
    except for float->Fraction, which is exact by construction)."""
    total = Fraction(0)
    for v in values:
        total += Fraction(float(v))
    return total


def fraction_to_float(x: Fraction) -> float:
    """Correctly rounded float of a dyadic Fraction, overflow-aware."""
    if x == 0:
        return 0.0
    num, den = x.numerator, x.denominator
    # Denominators of float-derived fractions are powers of two.
    shift = -(den.bit_length() - 1)
    assert den == 1 << (-shift), "non-dyadic fraction in reference path"
    return round_scaled_int(num, shift)


def ref_sum(values: Iterable[float]) -> float:
    """Correctly rounded reference sum; robust to intermediate overflow
    (unlike math.fsum) and to huge exponent ranges."""
    return fraction_to_float(exact_fraction(values))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(20160518)  # the paper's arXiv date


def random_hard_array(
    rng: np.random.Generator, n: int, *, emin: int = -250, emax: int = 250
) -> np.ndarray:
    """Mixed-sign values spanning a wide exponent range."""
    mags = np.ldexp(
        1.0 + rng.random(n), rng.integers(emin, emax, size=n).astype(np.int32)
    )
    return mags * rng.choice(np.array([-1.0, 1.0]), size=n)


# Adversarial fixed cases reused by several modules: half-ulp ties,
# cancellation, subnormals, overflow-adjacent values.
ADVERSARIAL_CASES = [
    [0.0],
    [-0.0, 0.0],
    [1.0, 2.0**-53],                      # exact round-to-even tie
    [1.0, 2.0**-53, 2.0**-105, -(2.0**-105)],
    [1.0, 2.0**-53, 2.0**-110],           # tie broken by a crumb
    [1.0, -(2.0**-53), -(2.0**-110)],
    [1e16, 1.0, -1e16],
    [1e308, 1e308, -1e308],               # prefix overflow, finite sum
    [1e308, 1e308, -1e308, -1e308],
    [2.0**-1074] * 3,                     # subnormal accumulation
    [2.0**-1074, -(2.0**-1074)],
    [2.0**-1074, 2.0**-1022, -(2.0**-1022)],
    [math.ldexp(1, 1023), math.ldexp(-1, 970)],
    [4.9e-324, 4.9e-324, -1e-320, 1e-320],
    [1.5, -0.5, -1.0],                    # exact zero from normals
    [0.1] * 10,                           # classic decimal drift
    [1e-300] * 7 + [-7e-300],
]
