"""Unit tests for the simulated block device and blocked arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelViolationError
from repro.extmem.device import BlockDevice
from repro.extmem.ext_array import ExtArray


class TestDevice:
    def test_requires_three_blocks_of_memory(self):
        with pytest.raises(ValueError):
            BlockDevice(block_size=64, memory=100)

    def test_file_namespace(self):
        dev = BlockDevice(block_size=4, memory=64)
        dev.create("a")
        assert dev.exists("a") and not dev.exists("b")
        with pytest.raises(ValueError):
            dev.create("a")
        dev.rename("a", "b")
        assert dev.exists("b") and not dev.exists("a")
        dev.delete("b")
        assert not dev.exists("b")

    def test_io_counting(self):
        dev = BlockDevice(block_size=4, memory=64)
        dev.create("f")
        dev.append_block("f", np.arange(4))
        dev.append_block("f", np.arange(2))
        assert dev.stats.writes == 2
        dev.read_block("f", 0)
        dev.read_block("f", 1)
        dev.read_block("f", 0)
        assert dev.stats.reads == 3
        assert dev.stats.total == 5

    def test_oversized_block_rejected(self):
        dev = BlockDevice(block_size=4, memory=64)
        dev.create("f")
        with pytest.raises(ValueError):
            dev.append_block("f", np.arange(5))

    def test_empty_block_free(self):
        dev = BlockDevice(block_size=4, memory=64)
        dev.create("f")
        dev.append_block("f", np.empty(0))
        assert dev.stats.writes == 0

    def test_memory_budget(self):
        dev = BlockDevice(block_size=4, memory=16)
        with dev.allocate(10):
            with pytest.raises(ModelViolationError):
                with dev.allocate(10):
                    pass
        # released on exit
        with dev.allocate(16):
            pass

    def test_memory_enforcement_off(self):
        dev = BlockDevice(block_size=4, memory=16, enforce_memory=False)
        with dev.allocate(1000):
            pass


class TestExtArray:
    def test_roundtrip(self, rng):
        dev = BlockDevice(block_size=16, memory=256)
        x = rng.random(100)
        arr = ExtArray.from_numpy(dev, "x", x)
        assert len(arr) == 100
        assert arr.num_blocks == 7
        assert (arr.to_numpy() == x).all()

    def test_scan_costs_reads(self, rng):
        dev = BlockDevice(block_size=8, memory=256)
        arr = ExtArray.from_numpy(dev, "x", rng.random(64))
        before = dev.stats.reads
        list(arr.scan())
        assert dev.stats.reads - before == 8

    def test_reverse_scan(self, rng):
        dev = BlockDevice(block_size=8, memory=256)
        x = rng.random(20)
        arr = ExtArray.from_numpy(dev, "x", x)
        rev = np.concatenate(list(arr.scan(reverse=True)))
        assert (rev[:4] == x[16:]).all()

    def test_writer_blocks_and_tail(self, rng):
        dev = BlockDevice(block_size=8, memory=256)
        out = ExtArray(dev, "o")
        with out.writer() as w:
            w.write(rng.random(3))
            w.write(rng.random(9))
            w.write(rng.random(1))
        assert len(out) == 13
        assert out.num_blocks == 2  # 8 + 5

    def test_writer_no_partial_flush_on_error(self, rng):
        dev = BlockDevice(block_size=8, memory=256)
        out = ExtArray(dev, "o")
        try:
            with out.writer() as w:
                w.write(rng.random(3))
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(out) == 0  # partial data not committed

    def test_structured_records(self):
        dev = BlockDevice(block_size=4, memory=64)
        dt = np.dtype([("idx", "<i8"), ("dig", "<i8")])
        rec = np.zeros(6, dtype=dt)
        rec["idx"] = np.arange(6)
        arr = ExtArray.from_numpy(dev, "r", rec)
        back = arr.to_numpy()
        assert (back["idx"] == np.arange(6)).all()
