"""Failure-injection tests: corrupted data, model misuse, bad states.

A production library must fail loudly and precisely, not corrupt a sum
silently. These tests feed each subsystem malformed inputs and verify
the advertised exception (never a wrong float) comes out.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator
from repro.errors import (
    ModelViolationError,
    NonFiniteInputError,
    RepresentationError,
)


class TestCorruptedSerialization:
    def test_truncated_sparse_payload(self, rng):
        from tests.conftest import random_hard_array

        good = SparseSuperaccumulator.from_floats(random_hard_array(rng, 50)).to_bytes()
        for cut in (0, 3, len(good) // 2, len(good) - 1):
            with pytest.raises((ValueError, struct_error_types())):
                SparseSuperaccumulator.from_bytes(good[:cut])

    def test_bitflipped_magic(self, rng):
        good = SparseSuperaccumulator.from_float(1.5).to_bytes()
        bad = b"X" + good[1:]
        with pytest.raises(ValueError):
            SparseSuperaccumulator.from_bytes(bad)

    def test_digit_corruption_detected_or_value_changed(self, rng):
        # flipping digit bytes either trips validation or changes the
        # value — it must never silently produce the original sum
        acc = SparseSuperaccumulator.from_float(math.pi)
        payload = bytearray(acc.to_bytes())
        payload[-1] ^= 0xFF
        try:
            back = SparseSuperaccumulator.from_bytes(bytes(payload))
        except RepresentationError:
            return
        assert back.to_fraction() != acc.to_fraction()

    def test_dense_wrong_magic(self):
        with pytest.raises(ValueError):
            DenseSuperaccumulator.from_bytes(b"NOPE" + b"\0" * 40)


def struct_error_types():
    import struct

    return struct.error


class TestInvariantEnforcement:
    def test_unsorted_indices_rejected(self):
        with pytest.raises(RepresentationError):
            SparseSuperaccumulator(
                indices=np.array([5, 5], dtype=np.int64),
                digits=np.array([1, 1], dtype=np.int64),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RepresentationError):
            SparseSuperaccumulator(
                indices=np.array([1, 2], dtype=np.int64),
                digits=np.array([1], dtype=np.int64),
            )

    def test_dense_out_of_range_position(self):
        acc = DenseSuperaccumulator()
        with pytest.raises(RepresentationError):
            # beyond any binary64 digit position: direct misuse
            acc.limbs[0] = 0  # fine
            from repro.core.digits import split_float

            # construct an impossible position by adding to a tiny acc
            tiny = DenseSuperaccumulator(base_index=0, nlimbs=1)
            tiny.add_float(1e300)


class TestNonFinitePropagation:
    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_every_entrypoint_rejects(self, bad):
        from repro.baselines import hybrid_sum, ifastsum
        from repro.core import exact_sum
        from repro.mapreduce import parallel_sum
        from repro.stats import exact_mean, exact_norm2

        data = [1.0, bad, 2.0]
        for fn in (exact_sum, ifastsum, hybrid_sum, exact_norm2):
            with pytest.raises(NonFiniteInputError):
                fn(data)
        with pytest.raises(NonFiniteInputError):
            parallel_sum(data)
        with pytest.raises(NonFiniteInputError):
            exact_mean(data)

    def test_error_message_names_position(self):
        from repro.core import exact_sum

        with pytest.raises(NonFiniteInputError, match="index 2"):
            exact_sum([0.0, 1.0, math.nan])


class TestModelMisuse:
    def test_extmem_double_create(self):
        from repro.extmem import BlockDevice

        dev = BlockDevice(block_size=4, memory=16)
        dev.create("f")
        with pytest.raises(ValueError):
            dev.create("f")

    def test_extmem_allocation_leak_safe(self):
        from repro.extmem import BlockDevice

        dev = BlockDevice(block_size=4, memory=16)
        with pytest.raises(RuntimeError):
            with dev.allocate(10):
                raise RuntimeError("boom")
        # allocation released despite the exception
        with dev.allocate(16):
            pass

    def test_pram_erew_violation_in_primitive(self):
        from repro.pram import PRAM

        m = PRAM(check_erew=True)
        with pytest.raises(ModelViolationError):
            m.access(writes=np.zeros(4, dtype=np.int64))

    def test_mapreduce_corrupt_shuffle_payload(self, rng):
        from repro.mapreduce import NoCombinerSumJob

        job = NoCombinerSumJob()
        with pytest.raises(ValueError):
            job.reduce([b"JUNKxxxxxxxx"])

    def test_cole_cover_bound_zero_trips(self, rng):
        from repro.pram import PRAM
        from repro.pram.cole import cole_merge_sort

        with pytest.raises(ModelViolationError):
            cole_merge_sort(PRAM(), rng.random(64), cover_bound=0)


class TestWriterDiscipline:
    def test_oversized_direct_block(self):
        from repro.extmem import BlockDevice

        dev = BlockDevice(block_size=4, memory=16)
        dev.create("f")
        with pytest.raises(ValueError):
            dev.append_block("f", np.arange(9))

    def test_hdfs_duplicate_dataset(self, rng):
        from repro.mapreduce import BlockStore

        store = BlockStore()
        store.put("d", rng.random(4))
        with pytest.raises(ValueError):
            store.put("d", rng.random(4))
