"""Unit tests for the condition-number-sensitive algorithm (§4, Thm 4)."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.truncated import (
    TruncatedSparseSuperaccumulator,
    stopping_condition_addtwo,
    stopping_condition_exponent,
)
from repro.pram.condition_sensitive import condition_sensitive_sum
from tests.conftest import exact_fraction, random_hard_array, ref_sum


def assert_faithful(value: float, data) -> None:
    """The §4 guarantee: value is RD(S) or RU(S)."""
    exact = exact_fraction(data)
    nearest = ref_sum(data)
    lo = min(nearest, math.nextafter(nearest, -math.inf))
    hi = max(nearest, math.nextafter(nearest, math.inf))
    assert Fraction(lo) <= exact <= Fraction(hi) or nearest == value
    assert Fraction(min(value, nearest)) <= exact <= Fraction(max(value, nearest)) or value == nearest


class TestTruncatedAccumulator:
    def test_no_truncation_small(self):
        t = TruncatedSparseSuperaccumulator.from_float(1.5, gamma=8)
        assert not t.truncated
        assert t.to_float() == 1.5

    def test_truncation_flag(self):
        # values far apart: more components than gamma
        t = TruncatedSparseSuperaccumulator.from_floats(
            [1e300, 1e-300], gamma=2
        )
        assert t.truncated

    def test_dropping_zero_components_is_lossless(self):
        t = TruncatedSparseSuperaccumulator.from_floats([1.0, -1.0, 2.0], gamma=2)
        # cancelled active-zero components may be dropped silently
        assert t.to_float() == 2.0

    def test_add_merges_flags(self):
        a = TruncatedSparseSuperaccumulator.from_floats([1e300, 1e-300], gamma=2)
        b = TruncatedSparseSuperaccumulator.from_float(1.0, gamma=2)
        assert a.add(b).truncated

    def test_gamma_mismatch(self):
        a = TruncatedSparseSuperaccumulator.from_float(1.0, gamma=2)
        b = TruncatedSparseSuperaccumulator.from_float(1.0, gamma=4)
        with pytest.raises(ValueError):
            a.add(b)

    def test_least_retained_exponent(self):
        t = TruncatedSparseSuperaccumulator.from_float(1.0, gamma=4)
        assert t.least_retained_exponent <= 0


class TestStoppingConditions:
    def test_addtwo_obviously_safe(self):
        # truncated mass ~ n * 2**-2000 cannot move 1.0
        assert stopping_condition_addtwo(1.0, 1000, -2000)

    def test_addtwo_obviously_unsafe(self):
        # truncated mass ~ n * 2**-10 can easily move 1.0
        assert not stopping_condition_addtwo(1.0, 1000, -10)

    def test_exponent_form_is_stricter(self, rng):
        for _ in range(200):
            y = float(np.ldexp(rng.random() + 1, int(rng.integers(-100, 100))))
            n = int(rng.integers(1, 10**6))
            e = int(rng.integers(-300, 300))
            if stopping_condition_exponent(y, n, e):
                assert stopping_condition_addtwo(y, n, e)

    def test_zero_y_never_stops_exponent(self):
        assert not stopping_condition_exponent(0.0, 10, -500)

    def test_empty_input_stops(self):
        assert stopping_condition_addtwo(1.0, 0, 0)
        assert stopping_condition_exponent(1.0, 0, 0)


class TestConditionSensitiveSum:
    @pytest.mark.parametrize("condition", ["addtwo", "exponent"])
    def test_faithful_on_random(self, condition, rng):
        for _ in range(10):
            x = random_hard_array(rng, int(rng.integers(2, 200)))
            res = condition_sensitive_sum(x, condition=condition)
            assert_faithful(res.value, x)

    def test_well_conditioned_stops_early(self, rng):
        # C(X) = 1: should stop at tiny r
        x = np.ldexp(rng.random(500) + 1.0, rng.integers(-3, 4, 500).astype(np.int32))
        res = condition_sensitive_sum(x)
        assert len(res.iterations) <= 2
        assert res.value == ref_sum(x)

    def test_ill_conditioned_iterates(self):
        # huge cancellation forces r to grow
        x = np.array([1e300, -1e300, 1.0, 1e-280])
        res = condition_sensitive_sum(x)
        assert len(res.iterations) >= 2
        assert res.value == ref_sum(x)
        rs = [t.r for t in res.iterations]
        assert rs == sorted(rs) and all(b == a * a for a, b in zip(rs, rs[1:]))

    def test_final_iteration_untruncated_is_exact(self):
        x = np.array([1e300, -1e300, 1e-300])
        res = condition_sensitive_sum(x)
        assert res.value == 1e-300
        assert not res.iterations[-1].truncated

    def test_work_grows_with_condition_number(self, rng):
        mild = rng.random(256)
        harsh = np.concatenate([rng.random(128) * 1e250, np.array([1e-250])])
        harsh = np.concatenate([harsh, -harsh[:-1]])  # cancel the big mass
        res_mild = condition_sensitive_sum(mild)
        res_harsh = condition_sensitive_sum(harsh)
        assert res_harsh.stats.work // max(res_mild.stats.work, 1) >= 1
        assert len(res_harsh.iterations) >= len(res_mild.iterations)

    def test_empty(self):
        assert condition_sensitive_sum([]).value == 0.0

    def test_bad_condition_name(self):
        with pytest.raises(ValueError):
            condition_sensitive_sum([1.0], condition="vibes")

    def test_sum_zero_terminates(self, rng):
        x = rng.random(100)
        data = np.concatenate([x, -x])
        rng.shuffle(data)
        res = condition_sensitive_sum(data)
        assert res.value == 0.0
