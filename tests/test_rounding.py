"""Unit tests for carry propagation and float conversion."""

from __future__ import annotations

import math
import random
from fractions import Fraction

import numpy as np
import pytest

from repro.core.digits import DEFAULT_RADIX, RadixConfig, digits_to_int
from repro.core.rounding import (
    MAX_FINITE,
    canonicalize_sign,
    round_digits,
    round_scaled_int,
    round_windowed,
    to_nonoverlapping,
    window_size,
)
from tests.conftest import fraction_to_float


def ref_round(v: int, s: int) -> float:
    try:
        return float(Fraction(v) * Fraction(2) ** s)
    except OverflowError:
        return math.inf if v > 0 else -math.inf


class TestRoundScaledInt:
    def test_random_against_fraction(self):
        rnd = random.Random(42)
        for _ in range(4000):
            bits = rnd.randint(1, 220)
            v = rnd.getrandbits(bits) - rnd.getrandbits(rnd.randint(1, 220))
            s = rnd.randint(-1200, 1100)
            assert round_scaled_int(v, s) == ref_round(v, s), (v, s)

    def test_exact_values(self):
        assert round_scaled_int(3, 0) == 3.0
        assert round_scaled_int(1, -1074) == 2.0**-1074
        assert round_scaled_int(-5, 100) == -5.0 * 2.0**100
        assert round_scaled_int(0, 12345) == 0.0

    def test_ties_to_even(self):
        # 2**53 + 1 is a tie between 2**53 and 2**53 + 2 -> even wins
        assert round_scaled_int((1 << 53) + 1, 0) == float(1 << 53)
        assert round_scaled_int((1 << 53) + 3, 0) == float((1 << 53) + 4)
        assert round_scaled_int(-((1 << 53) + 1), 0) == -float(1 << 53)

    def test_subnormal_boundary(self):
        # Exactly half the smallest subnormal rounds to zero (tie, even)
        assert round_scaled_int(1, -1075) == 0.0
        # Just above half rounds up to the smallest subnormal
        assert round_scaled_int(3, -1076) == 2.0**-1074
        # Deep underflow
        assert round_scaled_int(1, -3000) == 0.0
        assert round_scaled_int(-1, -3000) == -0.0

    def test_overflow_nearest(self):
        assert round_scaled_int(1, 1024) == math.inf
        assert round_scaled_int(-1, 1024) == -math.inf
        # a value just below the overflow tie still rounds to MAX_FINITE
        below = (1 << 55) - 3  # = 2**1024 - 3*2**969 < 2**1024 - 2**970
        assert round_scaled_int(below, 969) == MAX_FINITE

    def test_overflow_tie_goes_to_inf(self):
        # 2**1024 - 2**970 is the round-to-nearest overflow threshold
        v = (1 << 54) - 1  # = 2**1024 - 2**970 at shift 970... (tie)
        tie = (1 << 1024) - (1 << 970)
        assert round_scaled_int(tie, 0) == math.inf

    def test_directed_modes_bracket(self):
        rnd = random.Random(7)
        for _ in range(500):
            v = rnd.getrandbits(120) - rnd.getrandbits(120)
            s = rnd.randint(-400, 300)
            lo = round_scaled_int(v, s, "down")
            hi = round_scaled_int(v, s, "up")
            near = round_scaled_int(v, s, "nearest")
            exact = Fraction(v) * Fraction(2) ** s
            assert Fraction(lo) <= exact <= Fraction(hi)
            assert near in (lo, hi)
            tz = round_scaled_int(v, s, "zero")
            assert abs(Fraction(tz)) <= abs(exact)

    def test_directed_overflow_saturation(self):
        assert round_scaled_int(1, 2000, "zero") == MAX_FINITE
        assert round_scaled_int(1, 2000, "down") == MAX_FINITE
        assert round_scaled_int(1, 2000, "up") == math.inf
        assert round_scaled_int(-1, 2000, "down") == -math.inf
        assert round_scaled_int(-1, 2000, "up") == -MAX_FINITE

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            round_scaled_int(1, 0, "sideways")


class TestToNonoverlapping:
    def test_value_preserved_balanced_range(self, rng):
        R = DEFAULT_RADIX.R
        for _ in range(50):
            d = rng.integers(-(R - 1), R, size=int(rng.integers(1, 30))).astype(
                np.int64
            )
            out = to_nonoverlapping(d)
            assert (out[:-1] >= -(R // 2)).all() and (out[:-1] < R // 2).all()
            assert digits_to_int(out, 0)[0] == digits_to_int(d, 0)[0]

    def test_leading_digit_gives_sign(self, rng):
        R = DEFAULT_RADIX.R
        for _ in range(100):
            d = rng.integers(-(R - 1), R, size=10).astype(np.int64)
            out = to_nonoverlapping(d)
            v = digits_to_int(out, 0)[0]
            nz = np.flatnonzero(out)
            if v != 0:
                assert (v > 0) == (out[nz[-1]] > 0)
            else:
                assert nz.size == 0


class TestCanonicalizeSign:
    def test_nonnegative_digits(self, rng):
        R = DEFAULT_RADIX.R
        for _ in range(60):
            d = rng.integers(-(R - 1), R, size=12).astype(np.int64)
            sign, mag = canonicalize_sign(d)
            assert (mag >= 0).all() and (mag < R).all()
            v = digits_to_int(d, 0)[0]
            vm = digits_to_int(mag, 0)[0]
            assert sign * vm == v
            assert sign in (-1, 0, 1)
            assert (sign == 0) == (v == 0)

    def test_zero(self):
        sign, mag = canonicalize_sign(np.zeros(5, dtype=np.int64))
        assert sign == 0


class TestRoundDigits:
    @pytest.mark.parametrize("w", [8, 16, 30])
    def test_against_big_int(self, w, rng):
        radix = RadixConfig(w=w)
        for _ in range(100):
            size = int(rng.integers(1, 20))
            d = rng.integers(-radix.alpha, radix.beta + 1, size=size).astype(np.int64)
            base = int(rng.integers(-30, 10))
            got = round_digits(d, base, radix)
            v, s = digits_to_int(d, base, radix)
            assert got == round_scaled_int(v, s)

    def test_sticky_cases(self):
        # Construct: big digit + a crumb far below the 53-bit window;
        # without the sticky it would tie to even incorrectly.
        radix = DEFAULT_RADIX
        d = np.zeros(6, dtype=np.int64)
        d[5] = 1          # leading: 2**150
        d[3] = 1 << 7     # 2**97 = exactly half ulp of 2**150's mantissa? -> craft tie
        # exact tie: value = 2**150 + 2**97 (97 = 150 - 53)
        got = round_digits(d, 0, radix)
        v, s = digits_to_int(d, 0, radix)
        assert got == round_scaled_int(v, s)
        # now add a crumb below: tie broken upward
        d[0] = 1
        got2 = round_digits(d, 0, radix)
        v2, s2 = digits_to_int(d, 0, radix)
        assert got2 == round_scaled_int(v2, s2)
        assert got2 != got  # the crumb must matter

    def test_directed_modes(self, rng):
        radix = DEFAULT_RADIX
        for _ in range(40):
            d = rng.integers(-radix.alpha, radix.beta + 1, size=8).astype(np.int64)
            v, s = digits_to_int(d, -4, radix)
            for mode in ("down", "up", "zero"):
                assert round_digits(d, -4, radix, mode) == round_scaled_int(v, s, mode)


class TestRoundWindowed:
    def test_zero_tail_matches_full(self, rng):
        radix = DEFAULT_RADIX
        K = window_size(radix)
        d = rng.integers(-radix.alpha, radix.beta + 1, size=K).astype(np.int64)
        assert round_windowed(d, 3, 0, radix) == round_digits(d, 3, radix)

    def test_tail_sign_decides_like_true_tail(self, rng):
        radix = DEFAULT_RADIX
        K = window_size(radix)
        for sign in (-1, 1):
            for _ in range(40):
                win = rng.integers(
                    -(radix.R // 2), radix.R // 2, size=K
                ).astype(np.int64)
                win[-1] = max(win[-1], 1)  # ensure a leading digit
                base = int(rng.integers(-10, 10))
                # true value: window + a tiny tail of the given sign
                v, s = digits_to_int(win, base, radix)
                tail = sign  # one unit at position base-3 (well below R**base)
                v_true = (v << (3 * radix.w)) + tail
                s_true = s - 3 * radix.w
                assert round_windowed(win, base, sign, radix) == round_scaled_int(
                    v_true, s_true
                )

    def test_short_window_with_tail_rejected(self):
        from repro.errors import RepresentationError

        with pytest.raises(RepresentationError):
            round_windowed([1], 0, 1)

    def test_bad_tail_sign(self):
        with pytest.raises(ValueError):
            round_windowed([1, 2, 3, 4, 5], 0, 2)
