"""reprolint: per-rule fixtures, suppression handling, repo cleanliness.

Each rule family gets positive fixtures (a planted violation the rule
must catch) and negative fixtures (idiomatic code it must not flag) —
precision over recall is the engine's contract, so both directions are
load-bearing. The suppression grammar is exercised end to end:
justified comments silence, unjustified ones surface as SUPP001 while
the original finding survives, malformed and useless comments are
reported. The closing test asserts the installed tree itself lints
clean under every rule, which is what keeps CI's gate meaningful.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintResult,
    ProjectContext,
    lint_paths,
    lint_source,
    render_json,
    render_sarif,
    render_text,
    rule_catalogue,
)
from repro.analysis.core import module_parts

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def rules_of(result: LintResult):
    return [f.rule for f in result.sorted_findings()]


def lint(source: str, filename: str = "repro/somewhere/mod.py", **kw) -> LintResult:
    return lint_source(source, filename, **kw)


# ----------------------------------------------------------------------
# registry & catalogue
# ----------------------------------------------------------------------


def test_catalogue_has_all_rule_families():
    ids = {cls.id for cls in rule_catalogue()}
    expected = {
        "FP001", "FP002", "FP003", "FP004", "FP005", "FP100",
        "ARCH001", "ARCH002", "ARCH003", "ARCH004", "ARCH005",
        "CC001", "CC002", "CC003", "CC004", "CC100", "CC101",
    }
    assert expected <= ids


def test_every_rule_carries_metadata():
    for cls in rule_catalogue():
        assert cls.id and cls.title, cls
        assert cls.severity in ("error", "warning"), cls.id
        assert cls.rationale, cls.id


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        lint("x = 1\n", select=["NOPE999"])


def test_module_parts_resolution():
    assert module_parts("src/repro/serve/shards.py") == ("repro", "serve", "shards")
    assert module_parts("repro/codec.py") == ("repro", "codec")
    assert module_parts("repro/kernels/__init__.py") == ("repro", "kernels")
    assert module_parts("elsewhere/thing.py") == ()


# ----------------------------------------------------------------------
# FP family
# ----------------------------------------------------------------------


def test_fp001_flags_builtin_sum_over_floats():
    result = lint("def f(xs):\n    return sum(float(x) for x in xs)\n")
    assert "FP001" in rules_of(result)


def test_fp001_flags_loop_accumulation():
    src = (
        "def f(xs):\n"
        "    total = 0.0\n"
        "    for x in xs:\n"
        "        total += x\n"
        "    return total\n"
    )
    assert "FP001" in rules_of(lint(src))


def test_fp001_ignores_integer_accumulation():
    src = (
        "def f(xs):\n"
        "    count = 0\n"
        "    for x in xs:\n"
        "        count += 1\n"
        "    return count + sum(len(x) for x in xs)\n"
    )
    assert rules_of(lint(src, select=["FP001"])) == []


def test_fp001_exempts_baselines():
    src = "def f(xs):\n    return sum(float(x) for x in xs)\n"
    assert rules_of(lint(src, filename="repro/baselines/naive.py")) == []


def test_fp002_flags_float_equality():
    assert "FP002" in rules_of(lint("def f(a):\n    return a == 0.5\n"))
    assert "FP002" in rules_of(lint("def f(a):\n    return float(a) != a\n"))


def test_fp002_ignores_unknown_and_integer_compares():
    src = "def f(a, b):\n    return a == b and len(a) != 0\n"
    assert rules_of(lint(src, select=["FP002"])) == []


def test_fp003_flags_kernel_bypass():
    src = "import math\nimport numpy as np\n\ndef f(xs):\n    return math.fsum(xs) + np.sum(xs)\n"
    assert rules_of(lint(src, select=["FP003"])) == ["FP003", "FP003"]


def test_fp003_ignores_boolean_method_sum():
    # ndarray.sum() on a boolean mask is integer counting, not folding.
    src = "def f(mask):\n    return (mask != 0).sum()\n"
    assert rules_of(lint(src, select=["FP003"])) == []


def test_fp004_flags_unguarded_fraction_narrowing():
    src = (
        "from fractions import Fraction\n"
        "def f(x):\n"
        "    return float(Fraction(x) / 3)\n"
    )
    assert "FP004" in rules_of(lint(src))


def test_fp004_ignores_plain_float_casts():
    assert rules_of(lint("def f(x):\n    return float(x)\n", select=["FP004"])) == []


# ----------------------------------------------------------------------
# ARCH family
# ----------------------------------------------------------------------


def test_arch001_flags_struct_outside_codec():
    src = "import struct\n\ndef f(v):\n    return struct.pack('<d', v)\n"
    assert "ARCH001" in rules_of(lint(src, filename="repro/mapreduce/x.py"))
    assert "ARCH001" in rules_of(
        lint("from struct import pack\n", filename="repro/serve/x.py")
    )


def test_arch001_allows_codec_itself():
    src = "import struct\nHEADER = struct.Struct('<4sq')\n"
    assert rules_of(lint(src, filename="repro/codec.py")) == []


KERNEL_FIXTURE = """
class BrokenKernel:
    name = "broken"

    def zero(self):
        return None

    def fold(self, block):
        return None

BrokenKernel = register_kernel(BrokenKernel)
"""


def test_arch002_flags_incomplete_kernel():
    src = (
        "@register_kernel\n"
        "class BrokenKernel:\n"
        "    name = 'broken'\n"
        "    def zero(self):\n"
        "        return None\n"
        "    def fold(self, block):\n"
        "        return None\n"
    )
    result = lint(src, select=["ARCH002"])
    assert rules_of(result) == ["ARCH002"]
    assert "combine" in result.findings[0].message


def test_arch002_flags_missing_registry_name():
    src = (
        "@register_kernel\n"
        "class Anon:\n"
        "    def zero(self): ...\n"
        "    def fold(self, b): ...\n"
        "    def combine(self, a, b): ...\n"
        "    def round(self, p, mode='nearest'): ...\n"
        "    def to_wire(self, p): ...\n"
        "    def from_wire(self, payload): ...\n"
    )
    result = lint(src, select=["ARCH002"])
    assert rules_of(result) == ["ARCH002"]
    assert "name" in result.findings[0].message


def test_arch002_accepts_inheritance_chain():
    src = (
        "class Base:\n"
        "    def zero(self): ...\n"
        "    def fold(self, b): ...\n"
        "    def combine(self, a, b): ...\n"
        "    def round(self, p, mode='nearest'): ...\n"
        "    def to_wire(self, p): ...\n"
        "    def from_wire(self, payload): ...\n"
        "@register_kernel\n"
        "class Derived(Base):\n"
        "    name = 'derived'\n"
    )
    assert rules_of(lint(src, select=["ARCH002"])) == []


def test_arch002_unregistered_classes_unchecked():
    assert rules_of(lint("class NotAKernel:\n    pass\n", select=["ARCH002"])) == []


def test_arch003_flags_unregistered_encoder_and_adhoc_magic():
    ctx = ProjectContext(codec_encoders={"encode_sparse"})
    src = (
        "class K:\n"
        "    def to_wire(self, p):\n"
        "        return encode_mystery(p) + b'XXXX'\n"
    )
    result = lint_source(src, "repro/kernels/k.py", select=["ARCH003"], context=ctx)
    messages = " / ".join(f.message for f in result.findings)
    assert len(result.findings) == 2
    assert "encode_mystery" in messages and "XXXX" in messages


def test_arch003_accepts_registered_encoder():
    ctx = ProjectContext(codec_encoders={"encode_sparse"})
    src = (
        "class K:\n"
        "    def to_wire(self, p):\n"
        "        return encode_sparse(p)\n"
    )
    result = lint_source(src, "repro/kernels/k.py", select=["ARCH003"], context=ctx)
    assert rules_of(result) == []


def test_arch003_real_codec_table_is_parsed():
    ctx = ProjectContext(root=REPO_SRC.parent)
    assert ctx.codec_encoders is not None
    assert "encode_sparse" in ctx.codec_encoders
    assert "encode_float" in ctx.codec_encoders


def test_arch004_flags_cross_plane_import():
    src = "from repro.bsp import allreduce_sum\n"
    result = lint(src, filename="repro/pram/tree.py", select=["ARCH004"])
    assert rules_of(result) == ["ARCH004"]
    assert "'pram'" in result.findings[0].message


def test_arch004_allows_shared_layers_and_own_plane():
    src = (
        "from repro.kernels import get_kernel\n"
        "from repro import codec\n"
        "from repro.pram.tree import tree_sum\n"
    )
    assert rules_of(lint(src, filename="repro/pram/scan.py", select=["ARCH004"])) == []


def test_arch004_does_not_apply_outside_planes():
    src = "from repro.mapreduce import parallel_sum\n"
    assert rules_of(lint(src, filename="repro/cli.py", select=["ARCH004"])) == []


def test_arch005_flags_boxed_values_kwarg():
    src = (
        "async def send(self, stream, arr):\n"
        "    return await self.request(\n"
        "        'add_array', stream=stream, values=[float(v) for v in arr]\n"
        "    )\n"
    )
    result = lint(src, filename="repro/cluster/coordinator.py", select=["ARCH005"])
    assert rules_of(result) == ["ARCH005"]
    assert "values" in result.findings[0].message


def test_arch005_flags_boxed_values_dict_key_and_json_dumps():
    src = (
        "import json\n"
        "def build(arr):\n"
        "    fields = {'stream': 's', 'values': [float(v) for v in arr]}\n"
        "    return json.dumps([float(v) for v in arr])\n"
    )
    result = lint(src, filename="repro/serve/client.py", select=["ARCH005"])
    assert rules_of(result) == ["ARCH005", "ARCH005"]


def test_arch005_ignores_non_wire_packages_and_non_float_payloads():
    boxed = "def f(self, arr):\n    return self.request(values=[float(v) for v in arr])\n"
    # same code outside serve/cluster: out of scope
    assert rules_of(lint(boxed, filename="repro/mapreduce/runtime.py", select=["ARCH005"])) == []
    # names/ints under a values key are not float batches
    ok = (
        "def f(self, names):\n"
        "    return self.request(values=[str(n) for n in names])\n"
    )
    assert rules_of(lint(ok, filename="repro/serve/client.py", select=["ARCH005"])) == []


def test_arch005_suppression_with_justification():
    src = (
        "async def fallback(self, stream, arr):\n"
        "    return await self.request(\n"
        "        'add_array',\n"
        "        stream=stream,\n"
        "        # reprolint: disable-next-line=ARCH005 -- JSON-lines fallback wire\n"
        "        values=[float(v) for v in arr],\n"
        "    )\n"
    )
    assert rules_of(lint(src, filename="repro/serve/client.py", select=["ARCH005"])) == []


# ----------------------------------------------------------------------
# CC family
# ----------------------------------------------------------------------


def test_cc001_flags_blocking_io_in_async():
    src = (
        "import time\n"
        "async def handler(path):\n"
        "    time.sleep(1)\n"
        "    return open(path).read()\n"
    )
    result = lint(src, filename="repro/serve/service.py", select=["CC001"])
    assert rules_of(result) == ["CC001", "CC001"]


def test_cc001_ignores_sync_functions_and_other_packages():
    src = "import time\n\ndef handler(path):\n    time.sleep(1)\n"
    assert rules_of(lint(src, filename="repro/serve/x.py", select=["CC001"])) == []
    async_src = "import time\nasync def f():\n    time.sleep(1)\n"
    assert rules_of(lint(async_src, filename="repro/extmem/x.py", select=["CC001"])) == []


def test_cc002_flags_state_access_outside_owner():
    src = (
        "def peek(shard):\n"
        "    return shard._streams\n"
    )
    result = lint(src, filename="repro/serve/service.py", select=["CC002"])
    assert rules_of(result) == ["CC002"]


def test_cc002_allows_owner_methods():
    src = (
        "class AccumulatorShard:\n"
        "    def fold(self, name, value):\n"
        "        self._streams[name] = value\n"
    )
    assert rules_of(lint(src, filename="repro/serve/shards.py", select=["CC002"])) == []


def test_cc003_flags_write_into_published_view():
    src = (
        "def poke(ref, registry):\n"
        "    view = resolve_block(ref, registry)\n"
        "    view[0] = 1.0\n"
    )
    result = lint(src, filename="repro/mapreduce/x.py", select=["CC003"])
    assert rules_of(result) == ["CC003"]


def test_cc003_allows_copies_and_plane_internals():
    src = (
        "def safe(ref, registry, np):\n"
        "    block = np.array(resolve_block(ref, registry))\n"
        "    block[0] = 1.0\n"
        "    return block\n"
    )
    assert rules_of(lint(src, filename="repro/mapreduce/x.py", select=["CC003"])) == []
    owner = (
        "class ShmDataPlane:\n"
        "    def place(self, np, seg, arr):\n"
        "        view = np.frombuffer(seg.buf, dtype='<f8')\n"
        "        view[: arr.size] = arr\n"
    )
    assert rules_of(lint(owner, filename="repro/mapreduce/dataplane.py", select=["CC003"])) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

VIOLATION = "def f(a):\n    return a == 0.5{comment}\n"


def test_justified_suppression_silences():
    src = VIOLATION.format(
        comment="  # reprolint: disable=FP002 -- exact-zero test by design"
    )
    result = lint(src, select=["FP002"])
    assert result.ok and result.suppressed == 1


def test_disable_next_line_variant():
    src = (
        "def f(a):\n"
        "    # reprolint: disable-next-line=FP002 -- bit identity on purpose\n"
        "    return a == 0.5\n"
    )
    result = lint(src, select=["FP002"])
    assert result.ok and result.suppressed == 1


def test_unjustified_suppression_keeps_finding_and_adds_supp001():
    src = VIOLATION.format(comment="  # reprolint: disable=FP002")
    result = lint(src, select=["FP002"])
    assert sorted(rules_of(result)) == ["FP002", "SUPP001"]
    assert result.suppressed == 0


def test_malformed_comment_reported():
    src = "x = 1  # reprolint: disable FP002 oops\n"
    result = lint(src)
    assert rules_of(result) == ["SUPP001"]
    assert "malformed" in result.findings[0].message


def test_useless_suppression_reported():
    src = "x = 1  # reprolint: disable=FP002 -- nothing here to silence\n"
    result = lint(src, select=["FP002"])
    assert rules_of(result) == ["SUPP001"]
    assert "useless" in result.findings[0].message


def test_useless_check_respects_selection():
    # A suppression for a rule outside the run's selection is not noise.
    src = "x = 1  # reprolint: disable=FP002 -- covered elsewhere\n"
    assert rules_of(lint(src, select=["FP001"])) == []


def test_suppression_in_docstring_is_inert():
    src = '"""Example: x = y  # reprolint: disable=FP002 -- demo"""\nx = 1\n'
    result = lint(src)
    assert result.ok and result.suppressed == 0


def test_wrong_rule_suppression_does_not_silence():
    src = VIOLATION.format(comment="  # reprolint: disable=FP001 -- wrong rule")
    result = lint(src, select=["FP001", "FP002"])
    assert "FP002" in rules_of(result)


# ----------------------------------------------------------------------
# reporters & CLI
# ----------------------------------------------------------------------


def test_text_reporter_shape():
    result = lint(VIOLATION.format(comment=""), select=["FP002"])
    text = render_text(result)
    assert "FP002" in text and "1 finding" in text


def test_json_reporter_is_versioned_and_parsable():
    result = lint(VIOLATION.format(comment=""), select=["FP002"])
    doc = json.loads(render_json(result))
    assert doc["version"] == 1
    assert doc["summary"]["ok"] is False
    assert doc["findings"][0]["rule"] == "FP002"


def test_syntax_error_becomes_finding():
    result = lint("def broken(:\n")
    assert rules_of(result) == ["E999"]


def test_cli_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import math\n\ndef f(xs):\n    return math.fsum(xs)\n")
    env_src = str(REPO_SRC)
    base = [sys.executable, "-m", "repro", "lint"]

    def run(*extra):
        return subprocess.run(
            [*base, *extra],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )

    dirty = run(str(bad))
    assert dirty.returncode == 1
    assert "FP003" in dirty.stdout

    clean = run(str(bad), "--ignore", "FP003")
    assert clean.returncode == 0

    usage = run(str(bad), "--select", "BOGUS1")
    assert usage.returncode == 2

    as_json = run(str(bad), "--format", "json")
    assert as_json.returncode == 1
    assert json.loads(as_json.stdout)["summary"]["findings"] >= 1


# ----------------------------------------------------------------------
# the tree itself
# ----------------------------------------------------------------------


def test_repo_tree_is_clean_under_every_rule():
    result = lint_paths([str(REPO_SRC / "repro")])
    assert result.files_checked > 50
    offenders = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in result.sorted_findings()
    )
    assert result.ok, f"tree is not lint-clean:\n{offenders}"
    # The sweep left justified suppressions behind; they must stay used.
    assert result.suppressed > 0


def test_arch001_selection_matches_ci_gate():
    # The CI job runs exactly this: ARCH001 over src/ as JSON.
    result = lint_paths([str(REPO_SRC)], select=["ARCH001"])
    assert result.ok


MYPY_AVAILABLE = shutil.which("mypy") is not None


@pytest.mark.skipif(not MYPY_AVAILABLE, reason="mypy not installed (CI-only tool)")
def test_mypy_strict_surface_is_clean():
    proc = subprocess.run(
        [shutil.which("mypy"), "--config-file", str(REPO_SRC.parent / "pyproject.toml")],
        capture_output=True,
        text=True,
        cwd=REPO_SRC.parent,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

# ----------------------------------------------------------------------
# decorated-definition suppressions (the decorator-line grammar gap)
# ----------------------------------------------------------------------

DECORATED_KERNEL = """\
@register_kernel{comment}
class Incomplete:
    name = "incomplete"
"""


def test_suppression_on_decorator_line_covers_the_definition():
    # ARCH002 anchors at the `class` line, but the decorated statement
    # *starts* at the decorator — where a trailing comment naturally
    # lands. The suppression must silence the finding anyway.
    src = DECORATED_KERNEL.format(
        comment="  # reprolint: disable=ARCH002 -- registry stub for a wire test"
    )
    result = lint(src, "repro/kernels/k.py", select=["ARCH002"])
    assert result.ok and result.suppressed == 1


def test_decorator_suppression_on_async_def_shares_one_object():
    # The extension must also cover decorated (async) defs, and the
    # def-line bucket must hold the SAME Suppression object so
    # used/useless accounting stays single.
    from repro.analysis.core import ModuleUnit, ProjectContext

    src = (
        "@deco  # reprolint: disable=CC001 -- fixture\n"
        "async def f():\n"
        "    pass\n"
    )
    unit = ModuleUnit(src, "repro/serve/m.py", ProjectContext())
    assert unit.suppressions[1] and unit.suppressions[2]
    assert unit.suppressions[1][0] is unit.suppressions[2][0]


def test_useless_decorator_suppression_reported_once():
    src = DECORATED_KERNEL.format(
        comment="  # reprolint: disable=FP002 -- nothing here rounds"
    )
    result = lint(src, "repro/kernels/k.py", select=["FP002"])
    assert rules_of(result) == ["SUPP001"]  # exactly one, not per-line


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------


def test_sarif_reporter_is_valid_and_indexed():
    result = lint(VIOLATION.format(comment=""), select=["FP002"])
    doc = json.loads(render_sarif(result))
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)  # deterministic catalogue order
    assert "FP002" in rule_ids and "FP100" in rule_ids
    (res,) = run["results"]
    assert res["ruleId"] == "FP002"
    assert rule_ids[res["ruleIndex"]] == "FP002"
    assert res["level"] == "error"
    loc = res["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert loc["region"]["startLine"] == result.findings[0].line


def test_sarif_rules_carry_metadata():
    result = lint("x = 1\n")
    doc = json.loads(render_sarif(result))
    by_id = {r["id"]: r for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    for rid in ("FP001", "CC100", "CC101", "FP100"):
        assert by_id[rid]["shortDescription"]["text"]
        assert by_id[rid]["fullDescription"]["text"]
        assert by_id[rid]["defaultConfiguration"]["level"] == "error"


# ----------------------------------------------------------------------
# parallel runner determinism
# ----------------------------------------------------------------------


def test_jobs_parallel_findings_identical_to_serial(tmp_path):
    # Same findings, same order, same suppression accounting for every
    # jobs value — the contract the CI --jobs 4 invocation rides on.
    (tmp_path / "a.py").write_text(
        "def f(xs):\n    return sum(float(x) for x in xs)\n"
    )
    (tmp_path / "b.py").write_text("def g(a):\n    return a == 0.5\n")
    (tmp_path / "c.py").write_text("x = 1\n")
    serial = lint_paths([str(tmp_path)], jobs=1)
    parallel = lint_paths([str(tmp_path)], jobs=2)
    assert parallel.files_checked == serial.files_checked == 3
    assert parallel.suppressed == serial.suppressed
    assert [
        (f.path, f.line, f.col, f.rule, f.message)
        for f in parallel.sorted_findings()
    ] == [
        (f.path, f.line, f.col, f.rule, f.message)
        for f in serial.sorted_findings()
    ]
    assert any(f.rule == "FP001" for f in serial.findings)


def test_cli_jobs_flag(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import math\n\ndef f(xs):\n    return math.fsum(xs)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad), "--jobs", "2"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "FP003" in proc.stdout
    assert "jobs=2" in proc.stderr  # the CI-grepped timing line

    usage = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad), "--jobs", "-1"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert usage.returncode == 2
