"""Unit tests for dataset file I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import dataset_len, iter_blocks, read_dataset, write_dataset


class TestRoundtrip:
    def test_basic(self, tmp_path, rng):
        p = tmp_path / "d.f64"
        x = rng.random(1234)
        assert write_dataset(p, x) == 1234
        assert dataset_len(p) == 1234
        assert (read_dataset(p) == x).all()

    def test_preserves_bit_patterns(self, tmp_path):
        p = tmp_path / "d.f64"
        x = np.array([0.0, -0.0, 2.0**-1074, 1e308, -1.5])
        write_dataset(p, x)
        back = read_dataset(p)
        assert (np.signbit(back) == np.signbit(x)).all()
        assert (back == x).all()

    def test_empty(self, tmp_path):
        p = tmp_path / "d.f64"
        write_dataset(p, [])
        assert dataset_len(p) == 0
        assert read_dataset(p).size == 0

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "junk.f64"
        p.write_bytes(b"NOPE" + b"\0" * 16)
        with pytest.raises(ValueError):
            read_dataset(p)


class TestBlockIteration:
    def test_blocks_cover_exactly(self, tmp_path, rng):
        p = tmp_path / "d.f64"
        x = rng.random(1000)
        write_dataset(p, x)
        blocks = list(iter_blocks(p, 333))
        assert [b.size for b in blocks] == [333, 333, 333, 1]
        assert (np.concatenate(blocks) == x).all()

    def test_block_larger_than_file(self, tmp_path, rng):
        p = tmp_path / "d.f64"
        x = rng.random(10)
        write_dataset(p, x)
        blocks = list(iter_blocks(p, 1 << 20))
        assert len(blocks) == 1 and (blocks[0] == x).all()

    def test_bad_block_size(self, tmp_path, rng):
        p = tmp_path / "d.f64"
        write_dataset(p, rng.random(4))
        with pytest.raises(ValueError):
            list(iter_blocks(p, 0))

    def test_streaming_sum_matches(self, tmp_path, rng):
        from repro.baselines.hybridsum import HybridAccumulator
        from tests.conftest import ref_sum

        p = tmp_path / "d.f64"
        x = (rng.random(5000) - 0.5) * 10.0 ** rng.integers(-50, 50, 5000)
        write_dataset(p, x)
        acc = HybridAccumulator()
        for block in iter_blocks(p, 777):
            acc.add_array(block)
        assert acc.result() == ref_sum(x)
