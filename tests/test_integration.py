"""Cross-module integration tests.

Every parallel algorithm in the repository must produce the identical
correctly rounded float for the same input — across the PRAM tree, the
external-memory pipelines, the MapReduce jobs, the sequential
superaccumulators, and the sequential baselines — on all four
experimental distributions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import hybrid_sum, ifastsum
from repro.core import SmallSuperaccumulator, exact_sum
from repro.data import generate
from repro.extmem import BlockDevice, ExtArray, extmem_sum_scan, extmem_sum_sorted
from repro.mapreduce import parallel_sum
from repro.pram import condition_sensitive_sum, pram_exact_sum
from tests.conftest import ref_sum


ALL_DISTS = ["well", "random", "anderson", "sumzero"]


def all_algorithm_results(x: np.ndarray) -> dict:
    dev, src = _load(x)
    dev2, src2 = _load(x)
    return {
        "exact_sum.sparse": exact_sum(x, method="sparse"),
        "exact_sum.small": exact_sum(x, method="small"),
        "exact_sum.dense": exact_sum(x, method="dense"),
        "ifastsum": ifastsum(x),
        "hybrid_sum": hybrid_sum(x),
        "pram": pram_exact_sum(x).value,
        "extmem.sorted": extmem_sum_sorted(dev, src).value,
        "extmem.scan": extmem_sum_scan(dev2, src2).value,
        "mapreduce.sparse": parallel_sum(x, method="sparse", block_items=257),
        "mapreduce.small": parallel_sum(x, method="small", block_items=257),
    }


def _load(x):
    dev = BlockDevice(block_size=128, memory=128 * 16)
    return dev, ExtArray.from_numpy(dev, "input", np.asarray(x, dtype=np.float64))


class TestAllAlgorithmsAgree:
    @pytest.mark.parametrize("dist", ALL_DISTS)
    @pytest.mark.parametrize("delta", [10, 400])
    def test_on_paper_distributions(self, dist, delta):
        x = generate(dist, 1500, delta=delta, seed=99)
        results = all_algorithm_results(x)
        want = ref_sum(x)
        for name, got in results.items():
            assert got == want, f"{name}: {got!r} != {want!r}"

    def test_on_wide_random(self, rng):
        x = (rng.random(2000) - 0.5) * 10.0 ** rng.integers(-250, 250, 2000)
        results = all_algorithm_results(x)
        want = ref_sum(x)
        for name, got in results.items():
            assert got == want, name

    def test_sumzero_all_return_exact_zero(self):
        x = generate("sumzero", 2000, delta=800, seed=1)
        for name, got in all_algorithm_results(x).items():
            assert got == 0.0, name


class TestConditionSensitiveIsFaithful:
    @pytest.mark.parametrize("dist", ALL_DISTS)
    def test_faithful_on_distributions(self, dist):
        from fractions import Fraction

        from tests.conftest import exact_fraction

        x = generate(dist, 800, delta=200, seed=7)
        res = condition_sensitive_sum(x)
        exact = exact_fraction(x)
        nearest = ref_sum(x)
        lo = min(res.value, nearest)
        hi = max(res.value, nearest)
        assert Fraction(lo) <= exact <= Fraction(hi) or res.value == nearest


class TestStreamingPipeline:
    def test_file_to_every_backend(self, tmp_path, rng):
        """Dataset file -> extmem device AND mapreduce blocks -> same sum."""
        from repro.data import iter_blocks, write_dataset

        x = generate("random", 3000, delta=150, seed=3)
        path = tmp_path / "ds.f64"
        write_dataset(path, x)

        # MapReduce over file blocks
        from repro.mapreduce import SparseSuperaccumulatorJob, run_job

        blocks = list(iter_blocks(path, 500))
        mr = run_job(SparseSuperaccumulatorJob(), blocks, reducers=3).value

        # Sequential streaming over the same blocks
        small = SmallSuperaccumulator()
        for b in iter_blocks(path, 500):
            small.add_array(b)

        assert mr == small.to_float() == ref_sum(x)

    def test_huge_magnitude_spread_pipeline(self):
        # one value at each extreme of the format plus noise
        x = np.concatenate(
            [
                np.array([1e308, -1e308, 2.0**-1074, 1.5e-300]),
                np.linspace(-1.0, 1.0, 101),
            ]
        )
        results = all_algorithm_results(x)
        want = ref_sum(x)
        for name, got in results.items():
            assert got == want, name
