"""Unit tests for the inexact ordering baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.naive import (
    pairwise_sum,
    recursive_sum,
    sorted_sum,
    worst_case_error_bound,
)
from tests.conftest import exact_fraction, random_hard_array


class TestRecursiveSum:
    def test_matches_builtin(self, rng):
        x = rng.random(500)
        assert recursive_sum(x) == float(sum(x.tolist()))

    def test_empty(self):
        assert recursive_sum([]) == 0.0

    def test_loses_small_addend(self):
        # the motivating failure: 1.0 vanishes into 1e16
        assert recursive_sum([1e16, 1.0, -1e16]) == 0.0


class TestPairwiseSum:
    def test_exact_when_exactly_representable(self):
        assert pairwise_sum([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_within_tree_bound(self, rng):
        x = rng.random(3000)
        err = abs(exact_fraction(x) - exact_fraction([pairwise_sum(x)]))
        assert float(err) <= worst_case_error_bound(x, tree_depth=True)

    def test_better_than_recursive_on_average(self, rng):
        # not guaranteed per-instance, so compare aggregate error
        total_rec = 0.0
        total_pair = 0.0
        for _ in range(20):
            x = rng.random(2000) * 1e8
            exact = exact_fraction(x)
            total_rec += abs(float(exact_fraction([recursive_sum(x)]) - exact))
            total_pair += abs(float(exact_fraction([pairwise_sum(x)]) - exact))
        assert total_pair <= total_rec

    def test_odd_sizes_and_blocks(self, rng):
        for n in (1, 2, 3, 127, 128, 129, 255):
            x = rng.random(n)
            got = pairwise_sum(x, block=16)
            assert math.isfinite(got)
            assert abs(got - math.fsum(x)) <= worst_case_error_bound(x)

    def test_empty(self):
        assert pairwise_sum([]) == 0.0


class TestSortedSum:
    def test_orders(self, rng):
        x = random_hard_array(rng, 200)
        for order in ("increasing_magnitude", "decreasing_magnitude", "ascending"):
            got = sorted_sum(x, order=order)
            assert math.isfinite(got)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            sorted_sum([1.0], order="sideways")

    def test_demmel_hida_accuracy(self, rng):
        # decreasing-magnitude order is highly accurate relative to the
        # magnitude sum (Demmel-Hida), though not faithfully rounded --
        # exactly the caveat the paper cites.
        x = np.concatenate([rng.random(500), -rng.random(500)])
        got = sorted_sum(x, order="decreasing_magnitude")
        exact = float(exact_fraction(x))
        mag = float(np.sum(np.abs(x)))
        assert abs(got - exact) <= 8 * math.ulp(mag)


class TestErrorBound:
    def test_zero_for_tiny_inputs(self):
        assert worst_case_error_bound([]) == 0.0
        assert worst_case_error_bound([5.0]) == 0.0

    def test_monotone_in_n(self, rng):
        x = rng.random(100)
        assert worst_case_error_bound(x) >= worst_case_error_bound(x[:50])

    def test_naive_errors_within_bound(self, rng):
        for _ in range(10):
            x = rng.random(int(rng.integers(2, 2000)))
            err = abs(recursive_sum(x) - float(exact_fraction(x)))
            assert err <= worst_case_error_bound(x)
