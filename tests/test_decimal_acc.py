"""Unit tests for base-10 superaccumulators (footnote 1)."""

from __future__ import annotations

import random
from decimal import Decimal, getcontext, localcontext
from fractions import Fraction

import pytest

from repro.core.decimal_acc import (
    DecimalRadix,
    DecimalSuperaccumulator,
    exact_decimal_sum,
)
from repro.errors import NonFiniteInputError


def rand_decimals(seed, n, mag=20, exp=30):
    rnd = random.Random(seed)
    return [
        Decimal(rnd.randint(-(10**mag), 10**mag)).scaleb(rnd.randint(-exp, exp))
        for _ in range(n)
    ]


class TestRadix:
    def test_default(self):
        r = DecimalRadix()
        assert r.R == 10**9
        assert r.alpha == r.beta == 10**9 - 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DecimalRadix(0)


class TestConversion:
    def test_from_decimal_exact(self):
        for text in ("1", "-0.1", "1e100", "-3.14159", "7e-200", "0"):
            acc = DecimalSuperaccumulator.from_decimal(Decimal(text))
            assert acc.to_fraction() == Fraction(Decimal(text))

    def test_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            DecimalSuperaccumulator.from_decimal(Decimal("NaN"))
        with pytest.raises(NonFiniteInputError):
            DecimalSuperaccumulator.from_decimal(Decimal("Infinity"))

    @pytest.mark.parametrize("k", [1, 2, 5, 9, 18])
    def test_any_radix_width(self, k):
        vals = rand_decimals(k, 60)
        acc = DecimalSuperaccumulator(DecimalRadix(k))
        for v in vals:
            acc = acc.add_decimal(v)
        assert acc.to_fraction() == sum((Fraction(v) for v in vals), Fraction(0))


class TestCarryFreeAdd:
    def test_exact(self):
        a_vals = rand_decimals(1, 40)
        b_vals = rand_decimals(2, 40)
        a = DecimalSuperaccumulator()
        for v in a_vals:
            a = a.add_decimal(v)
        b = DecimalSuperaccumulator()
        for v in b_vals:
            b = b.add_decimal(v)
        c = a.add(b)
        assert c.to_fraction() == a.to_fraction() + b.to_fraction()

    def test_lemma1_regularization_boundary(self):
        # two maximal digits at one position: the Lemma 1 case in base 10
        R = DecimalRadix().R
        big = Decimal(R - 1)
        acc = DecimalSuperaccumulator.from_decimal(big).add_decimal(big)
        assert acc.to_fraction() == 2 * (R - 1)
        # carry reached the adjacent position, digits stayed regularized
        assert acc.active_count >= 2

    def test_cancellation_keeps_active_zero(self):
        acc = DecimalSuperaccumulator.from_decimal(Decimal(5)).add_decimal(
            Decimal(-5)
        )
        assert acc.is_zero()
        assert acc.active_count >= 1

    def test_radix_mismatch(self):
        a = DecimalSuperaccumulator(DecimalRadix(3))
        b = DecimalSuperaccumulator(DecimalRadix(9))
        with pytest.raises(ValueError):
            a.add(b)


class TestRounding:
    def test_to_decimal_half_even(self):
        # exact value 1.5 * 10**0 at precision 1 -> 2? no: half-even on
        # significant digits: 15 -> '2E+1'? use a clean case instead:
        acc = DecimalSuperaccumulator.from_decimal(Decimal("125"))
        assert acc.to_decimal(precision=2) == Decimal("1.2E+2")  # half-even
        acc2 = DecimalSuperaccumulator.from_decimal(Decimal("135"))
        assert acc2.to_decimal(precision=2) == Decimal("1.4E+2")

    def test_exact_decimal_sum_cancellation(self):
        vals = [Decimal("1e30"), Decimal("1"), Decimal("-1e30")]
        assert exact_decimal_sum(vals) == Decimal(1)

    def test_beats_context_limited_sum(self):
        vals = [Decimal("1e30"), Decimal("1"), Decimal("-1e30")]
        with localcontext() as ctx:
            ctx.prec = 10
            naive = Decimal(0)
            for v in vals:
                naive += v
        assert naive != Decimal(1)
        assert exact_decimal_sum(vals, precision=10) == Decimal(1)

    def test_random_against_fraction(self):
        vals = rand_decimals(7, 200)
        got = exact_decimal_sum(vals, precision=40)
        ref = sum((Fraction(v) for v in vals), Fraction(0))
        # 40 significant digits comfortably exceed the inputs' 21 digits
        # only when no cancellation; compare exactly via Fraction of got
        err = abs(Fraction(got) - ref)
        assert err <= abs(ref) * Fraction(10) ** -39 or err == 0

    def test_zero(self):
        assert exact_decimal_sum([]) == Decimal(0)
        assert exact_decimal_sum([Decimal("1"), Decimal("-1")]) == Decimal(0)


class TestHousekeeping:
    def test_copy_independent(self):
        a = DecimalSuperaccumulator.from_decimal(Decimal(1))
        b = a.copy()
        b2 = b.add_decimal(Decimal(1))
        assert a.to_fraction() == 1 and b2.to_fraction() == 2

    def test_equality_by_value(self):
        a = DecimalSuperaccumulator.from_decimal(Decimal("10"))
        b = DecimalSuperaccumulator.from_decimal(Decimal("1e1"))
        assert a == b and hash(a) == hash(b)

    def test_repr(self):
        assert "DecimalSuperaccumulator" in repr(DecimalSuperaccumulator())
