"""The condition-adaptive tiered engine: certificates, tiers, wiring.

The engine's one contract is brutal: whatever tier serves a request,
the result is bit-identical to the sparse superaccumulator's correctly
rounded sum. These tests attack that contract from every angle —
property-based soundness of the Tier-0 certificate (a certified value
must match the exact Fraction reference, including inputs parked one
quantum either side of a rounding-cell midpoint), tier-decision
behaviour across the experimental distributions, the Tier-1 truncated
path, escalation, counters, and the MapReduce certificate shipping with
its certification-failure fallback.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveFolder,
    TierCounters,
    adaptive_sum,
    adaptive_sum_detail,
    certified_cascade_sum,
)
from repro.adaptive.cascade import _cascade
from repro.core import exact_sum
from repro.core.truncated import TruncatedSparseSuperaccumulator
from repro.data.generators import generate
from repro.errors import CertificationError, NonFiniteInputError
from tests.conftest import exact_fraction, ref_sum

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)
float_lists = st.lists(finite_floats, min_size=0, max_size=60)


def _bits_equal(a: float, b: float) -> bool:
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


class TestCascadeTransformation:
    def test_empty_and_singleton(self):
        c = certified_cascade_sum(np.zeros(0))
        assert c.certified and c.value == 0.0 and c.error_bound == 0.0
        c = certified_cascade_sum(np.array([3.5]))
        assert c.certified and c.value == 3.5

    @given(values=float_lists)
    def test_error_free_transformation(self, values):
        arr = np.asarray(values, dtype=np.float64)
        if arr.size < 2:
            return
        buf = np.empty(arr.size)
        with np.errstate(over="ignore", invalid="ignore"):
            root, count = _cascade(arr, buf)
        if not math.isfinite(root) or not np.isfinite(buf[:count]).all():
            return  # overflow poisons the tree; certificate fails closed
        got = Fraction(root) + sum(Fraction(float(v)) for v in buf[:count])
        assert got == exact_fraction(arr)

    @given(values=float_lists)
    def test_certified_means_correctly_rounded(self, values):
        arr = np.asarray(values, dtype=np.float64)
        cert = certified_cascade_sum(arr)
        if cert.certified:
            assert _bits_equal(cert.value, ref_sum(arr))

    def test_negative_zero_normalized(self):
        cert = certified_cascade_sum(np.array([-0.0, -0.0]))
        assert math.copysign(1.0, cert.value) == 1.0

    def test_intermediate_overflow_fails_closed(self):
        cert = certified_cascade_sum(np.array([1e308, 1e308]))
        assert not cert.certified

    def test_exact_tie_certifies_via_hardware(self):
        # 1 + 2^-53 is the exact midpoint of 1.0's upper cell: the
        # cascade captures it exactly (beta == 0), so the hardware's
        # nearest-even decision *is* the correct rounding.
        cert = certified_cascade_sum(np.array([1.0, 2.0**-53]))
        assert cert.certified and cert.value == 1.0
        assert cert.margin_bits == math.inf

    def test_benign_margin_is_wide(self):
        x = generate("well", 4096, delta=100, seed=1)
        cert = certified_cascade_sum(x)
        assert cert.certified and cert.margin_bits > 20

    def test_remainder_refines_value(self):
        x = generate("well", 4096, delta=800, seed=2)
        cert = certified_cascade_sum(x)
        refined = exact_fraction([cert.value, cert.remainder])
        assert abs(exact_fraction(x) - refined) <= Fraction(cert.residual_bound)


class TestTierMarginBoundary:
    """Inputs straddling the Tier-0 acceptance boundary, bit-for-bit."""

    @pytest.mark.parametrize("offset", [54, 55, 60, 80, 105, 106, 107])
    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_midpoint_epsilon_sweep(self, offset, sign):
        # True sum = 1 + 2^-53 +/- 2^-offset: one quantum either side
        # of the midpoint, down into (and past) the subnormal-precision
        # tail. Whatever the engine decides, bits must match sparse.
        x = np.array([1.0, 2.0**-53, sign * 2.0**-offset])
        assert _bits_equal(adaptive_sum(x), exact_sum(x, method="sparse"))

    @pytest.mark.parametrize("seed", range(12))
    def test_tie_distribution_bitwise(self, seed):
        x = generate("tie", 257, delta=45, seed=seed)
        detail = adaptive_sum_detail(x)
        assert _bits_equal(detail.value, exact_sum(x, method="sparse"))
        if detail.tier == 0:
            # a certified tie decision must also be *soundly* certified
            exact = exact_fraction(x)
            lo = Fraction(math.nextafter(detail.value, -math.inf))
            hi = Fraction(math.nextafter(detail.value, math.inf))
            v = Fraction(detail.value)
            assert (v + lo) / 2 <= exact <= (v + hi) / 2

    def test_just_inside_and_outside_cascade_bound(self):
        # Build an input whose uncaptured mass is nonzero, then verify
        # the reported bound really contains the exact sum.
        x = generate("random", 2048, delta=900, seed=5)
        cert = certified_cascade_sum(x)
        assert cert.residual_bound >= 0.0
        exact = exact_fraction(x)
        interval = Fraction(cert.value) + Fraction(cert.remainder)
        assert abs(exact - interval) <= Fraction(max(cert.residual_bound, 0.0))


class TestTierDecisions:
    @pytest.mark.parametrize("dist", ["well", "random", "anderson", "sumzero", "cancel", "tie"])
    @pytest.mark.parametrize("n", [1, 2, 100, 4097])
    def test_bitwise_identity_all_distributions(self, dist, n):
        x = generate(dist, n, delta=700, seed=n)
        assert _bits_equal(adaptive_sum(x), exact_sum(x, method="sparse"))

    @pytest.mark.parametrize("mode", ["nearest", "down", "up", "zero"])
    def test_rounding_modes(self, mode):
        x = generate("random", 999, delta=400, seed=8)
        assert adaptive_sum(x, mode=mode) == exact_sum(x, method="sparse", mode=mode)

    def test_well_conditioned_serves_from_tier0(self):
        x = generate("well", 8192, delta=200, seed=3)
        detail = adaptive_sum_detail(x)
        assert detail.tier == 0 and detail.escalations == 0

    def test_massive_cancellation_escalates(self):
        x = generate("cancel", 8192, delta=900, seed=3)
        detail = adaptive_sum_detail(x)
        assert detail.tier > 0
        assert _bits_equal(detail.value, exact_sum(x, method="sparse"))

    def test_tier0_disabled_skips_certificate(self):
        x = generate("well", 1024, delta=100, seed=4)
        cfg = AdaptiveConfig(enable_tier0=False)
        detail = adaptive_sum_detail(x, config=cfg)
        assert detail.tier > 0
        assert detail.value == exact_sum(x, method="sparse")

    def test_tier1_multiblock_truncated_path(self):
        cfg = AdaptiveConfig(block_items=1 << 10, enable_tier0=False)
        x = generate("well", 5000, delta=300, seed=5)
        detail = adaptive_sum_detail(x, config=cfg)
        assert detail.tier == 1 and detail.r_used is not None
        assert detail.value == exact_sum(x, method="sparse")

    def test_tier1_disabled_by_negative_doublings(self):
        cfg = AdaptiveConfig(block_items=1 << 10, enable_tier0=False, r_doublings=-1)
        x = generate("well", 5000, delta=300, seed=5)
        detail = adaptive_sum_detail(x, config=cfg)
        assert detail.tier == 2
        assert detail.value == exact_sum(x, method="sparse")

    def test_non_nearest_goes_exact(self):
        x = generate("well", 4096, delta=100, seed=6)
        detail = adaptive_sum_detail(x, mode="down")
        assert detail.tier == 2
        assert detail.value == exact_sum(x, method="sparse", mode="down")

    def test_rejects_non_finite(self):
        with pytest.raises(NonFiniteInputError):
            adaptive_sum(np.array([1.0, math.inf]))

    @given(values=float_lists)
    @settings(max_examples=60)
    def test_property_bitwise_identity(self, values):
        arr = np.asarray(values, dtype=np.float64)
        if not np.isfinite(arr).all():
            return
        assert _bits_equal(adaptive_sum(arr), exact_sum(arr, method="sparse"))


class TestExactSumWiring:
    def test_adaptive_method(self):
        x = generate("random", 3000, delta=600, seed=9)
        assert exact_sum(x, method="adaptive") == exact_sum(x, method="sparse")

    def test_auto_routes_through_adaptive(self):
        x = generate("well", 3000, delta=100, seed=9)
        assert exact_sum(x, method="auto") == exact_sum(x, method="sparse")

    def test_auto_non_nearest_still_exact(self):
        x = generate("random", 500, delta=300, seed=2)
        for mode in ("down", "up", "zero"):
            assert exact_sum(x, method="auto", mode=mode) == exact_sum(
                x, method="sparse", mode=mode
            )


class TestCounters:
    def test_counters_record_tiers_and_margins(self):
        tc = TierCounters()
        folder = AdaptiveFolder(counters=tc)
        folder.sum(generate("well", 2048, delta=100, seed=0))
        folder.sum(generate("cancel", 2048, delta=800, seed=1))
        snap = tc.as_dict()
        assert snap["tier0_hits"] == 1
        assert snap["tier0_hits"] + snap["tier1_hits"] + snap["escalations"] >= 2 or (
            snap["escalations"] >= 1
        )
        assert snap["certificate_margin_last_bits"] is not None

    def test_counters_unseen_margin_is_none(self):
        snap = TierCounters().as_dict()
        assert snap["certificate_margin_min_bits"] is None
        assert snap["certificate_margin_last_bits"] is None

    def test_folder_fold_into_counts_bulk_folds(self):
        from repro.streaming import ExactRunningSum

        tc = TierCounters()
        folder = AdaptiveFolder(counters=tc)
        rs = ExactRunningSum()
        x = generate("random", 1000, delta=200, seed=3)
        folder.fold_into(rs, x)
        assert rs.value() == exact_sum(x, method="sparse")
        assert tc.as_dict()["tier2_folds"] == 1


class TestTruncatedDropAccounting:
    def test_drop_accounting_bounds_mass(self):
        x = generate("well", 3000, delta=600, seed=7)
        from repro.core.sparse import SparseSuperaccumulator

        full = SparseSuperaccumulator.from_floats(x)
        t = TruncatedSparseSuperaccumulator(4, acc=full)
        if t.truncated:
            dropped = full.to_fraction() - t.acc.to_fraction()
            assert abs(dropped) <= t.truncation_mass_bound()

    def test_untruncated_bound_is_zero(self):
        t = TruncatedSparseSuperaccumulator.from_floats([1.0, 2.0, 4.0], 64)
        assert not t.truncated
        assert t.truncation_mass_bound() == 0


class TestMapReduceAdaptive:
    def test_parallel_sum_adaptive_bitwise(self):
        from repro.mapreduce import parallel_sum

        x = generate("random", 1 << 15, delta=500, seed=11)
        r = parallel_sum(x, workers=2, method="adaptive", executor="simulated",
                        report=True)
        assert r.value == exact_sum(x, method="sparse")
        assert r.tier_counts is not None
        assert r.tier_counts["tier0_hits"] + r.tier_counts["escalations"] > 0

    def test_adversarial_blocks_ship_exact(self):
        from repro.mapreduce import parallel_sum

        x = generate("cancel", 1 << 14, delta=900, seed=12)
        r = parallel_sum(x, workers=2, method="adaptive", executor="simulated",
                        report=True)
        assert r.value == exact_sum(x, method="sparse")
        assert r.tier_counts["escalations"] >= 1

    def test_certification_failure_falls_back_to_exact(self, monkeypatch):
        from repro.mapreduce import parallel_sum
        from repro.mapreduce.sum_job import AdaptiveSumJob

        def boom(self, values):
            raise CertificationError("forced for the fallback test")

        monkeypatch.setattr(AdaptiveSumJob, "postprocess", boom)
        x = generate("random", 1 << 13, delta=400, seed=13)
        r = parallel_sum(x, workers=2, method="adaptive", executor="simulated",
                        report=True)
        assert r.value == exact_sum(x, method="sparse")
        assert r.tier_counts["certification_fallback"] == 1

    def test_global_certify_raises_on_straddle(self):
        from repro.core.sparse import SparseSuperaccumulator
        from repro.mapreduce.sum_job import AdaptiveSumJob

        # retained sum exactly 1.0, but a bound of a full ulp straddles
        # both midpoints: the proof must refuse.
        acc = SparseSuperaccumulator.from_floats(np.array([1.0]))
        with pytest.raises(CertificationError):
            AdaptiveSumJob._certify(acc, 1.0, math.ulp(1.0))

    def test_global_certify_zero_bound_is_exact(self):
        from repro.core.sparse import SparseSuperaccumulator
        from repro.mapreduce.sum_job import AdaptiveSumJob

        acc = SparseSuperaccumulator.from_floats(np.array([1.0]))
        assert AdaptiveSumJob._certify(acc, 1.0, 0.0) == math.inf
