"""Unit tests for the PRAM cost accountant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelViolationError
from repro.pram.machine import PRAM, PRAMStats


class TestCharging:
    def test_accumulates(self):
        m = PRAM()
        m.charge(rounds=2, work=10, processors=5)
        m.charge(rounds=1, work=3, processors=2)
        assert m.stats.rounds == 3
        assert m.stats.work == 13
        assert m.stats.max_processors == 5

    def test_charge_parallel(self):
        m = PRAM()
        m.charge_parallel(100)
        assert m.stats == PRAMStats(rounds=1, work=100, max_processors=100)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PRAM().charge(rounds=-1)


class TestEREWChecking:
    def test_disabled_by_default(self):
        m = PRAM()
        m.access(reads=np.array([1, 1, 1]))  # no error when disabled

    def test_duplicate_read_detected(self):
        m = PRAM(check_erew=True)
        with pytest.raises(ModelViolationError, match="read"):
            m.access(reads=np.array([3, 5, 3]))

    def test_duplicate_write_detected(self):
        m = PRAM(check_erew=True)
        with pytest.raises(ModelViolationError, match="write"):
            m.access(writes=np.array([0, 0]))

    def test_exclusive_ok(self):
        m = PRAM(check_erew=True)
        m.access(reads=np.arange(100), writes=np.arange(100, 200))


class TestForkJoin:
    def test_sequential_composition(self):
        m = PRAM()
        child = m.fork()
        child.charge(rounds=5, work=50, processors=10)
        m.join(child)
        assert m.stats.rounds == 5 and m.stats.work == 50

    def test_fork_inherits_checking(self):
        m = PRAM(check_erew=True)
        assert m.fork().check_erew

    def test_stats_merge_takes_processor_max(self):
        a = PRAMStats(rounds=1, work=2, max_processors=10)
        b = PRAMStats(rounds=3, work=4, max_processors=7)
        a.merge(b)
        assert a == PRAMStats(rounds=4, work=6, max_processors=10)
