"""Unit tests for float-format introspection and decomposition."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.fpinfo import (
    BINARY32,
    BINARY64,
    FloatFormat,
    compose,
    decompose,
    decompose_vec,
    exponent_of,
    exponent_span,
    ulp,
)
from repro.errors import NonFiniteInputError


class TestFloatFormat:
    def test_binary64_constants(self):
        assert BINARY64.t == 52 and BINARY64.l == 11
        assert BINARY64.precision == 53
        assert BINARY64.bias == 1023
        assert BINARY64.e_min == -1022 and BINARY64.e_max == 1023
        assert BINARY64.min_subnormal_exponent == -1074
        assert BINARY64.delta_max == 2046

    def test_binary32_constants(self):
        assert BINARY32.precision == 24
        assert BINARY32.bias == 127
        assert BINARY32.min_subnormal_exponent == -149

    def test_custom_format(self):
        quad = FloatFormat(t=112, l=15)
        assert quad.bias == 16383

    def test_index_of_exponent_vs_format(self):
        # digit index mapping floors correctly for negative exponents
        from repro.core.digits import RadixConfig

        r = RadixConfig(w=30)
        j, s = r.index_of_exponent(-1074)
        assert j * 30 + s == -1074 and 0 <= s < 30


class TestDecompose:
    @pytest.mark.parametrize(
        "x",
        [1.0, -1.0, 0.5, math.pi, 1e308, -1e-308, 2.0**-1074, -(2.0**-1074),
         5e-324, 1.7976931348623157e308],
    )
    def test_roundtrip(self, x):
        m, e = decompose(x)
        assert m * (2.0**e) == x or math.ldexp(float(m), e) == x
        assert abs(m) < 1 << 53
        assert compose(m, e) == x

    def test_zero(self):
        assert decompose(0.0) == (0, 0)
        assert compose(0, 0) == 0.0

    def test_nonfinite_rejected(self):
        with pytest.raises(NonFiniteInputError):
            decompose(math.inf)
        with pytest.raises(NonFiniteInputError):
            decompose(math.nan)

    def test_compose_rounds_large_mantissa(self):
        # 54-bit mantissa must round, not truncate
        m = (1 << 53) + 1  # odd: ties-to-even drops the low bit
        assert compose(m, 0) == float(1 << 53)
        m = (1 << 53) + 3
        assert compose(m, 0) == float((1 << 53) + 4)


class TestDecomposeVec:
    def test_matches_scalar(self, rng):
        x = np.concatenate(
            [
                (rng.random(500) - 0.5) * 10.0 ** rng.integers(-300, 300, 500),
                np.array([0.0, -0.0, 2.0**-1074, -(2.0**-1074), 1e308]),
            ]
        )
        m, e = decompose_vec(x)
        for i in range(x.size):
            ms, es = decompose(float(x[i]))
            # exponents may differ only for zeros (both canonical)
            assert (ms, es) == (int(m[i]), int(e[i])) or (
                x[i] == 0 and m[i] == 0
            )

    def test_reconstruction(self, rng):
        x = (rng.random(1000) - 0.5) * 10.0 ** rng.integers(-100, 100, 1000)
        m, e = decompose_vec(x)
        back = np.ldexp(m.astype(np.float64), e.astype(np.int32))
        assert (back == x).all()

    def test_empty(self):
        m, e = decompose_vec(np.empty(0))
        assert m.size == 0 and e.size == 0


class TestExponents:
    def test_exponent_of(self):
        assert exponent_of(1.0) == 0
        assert exponent_of(1.5) == 0
        assert exponent_of(2.0) == 1
        assert exponent_of(0.75) == -1
        assert exponent_of(2.0**-1074) == -1074

    def test_exponent_of_rejects(self):
        with pytest.raises(ValueError):
            exponent_of(0.0)
        with pytest.raises(ValueError):
            exponent_of(math.inf)

    def test_ulp_matches_math(self):
        for x in (1.0, 1e300, 2.0**-1000, 3.14):
            assert ulp(x) == math.ulp(x)

    def test_exponent_span(self):
        vals = np.array([1.0, 4.0, 0.0, 2.0**20])
        assert exponent_span(vals) == 20
        assert exponent_span(np.zeros(5)) == 0
        assert exponent_span(np.array([3.0])) == 0
