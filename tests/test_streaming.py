"""Unit tests for streaming exact aggregation."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.errors import EmptyStreamError, ReproError
from repro.stats import round_fraction
from repro.streaming import (
    ExactRunningSum,
    RunningStats,
    SlidingWindowSum,
    exact_cumsum,
)
from tests.conftest import exact_fraction, random_hard_array, ref_sum


class TestExactRunningSum:
    def test_mixed_updates(self, rng):
        x = random_hard_array(rng, 500)
        rs = ExactRunningSum()
        for v in x[:100]:
            rs.add(float(v))
        rs.add_array(x[100:])
        assert rs.value() == ref_sum(x)
        assert rs.count == 500

    def test_merge_matches_serial(self, rng):
        x = random_hard_array(rng, 400)
        a = ExactRunningSum()
        a.add_array(x[:250])
        b = ExactRunningSum()
        b.add_array(x[250:])
        a.merge(b)
        assert a.value() == ref_sum(x)
        assert a.count == 400

    def test_checkpoint_roundtrip(self, rng):
        from repro.core.sparse import SparseSuperaccumulator

        x = random_hard_array(rng, 100)
        rs = ExactRunningSum()
        rs.add_array(x)
        state = rs.exact_state().to_bytes()
        back = SparseSuperaccumulator.from_bytes(state)
        assert back.to_float() == rs.value()

    def test_wire_roundtrip_includes_count(self, rng):
        x = random_hard_array(rng, 257)
        rs = ExactRunningSum()
        rs.add_array(x)
        back = ExactRunningSum.from_bytes(rs.to_bytes())
        assert back.value() == rs.value()
        assert back.count == 257
        # restored streams keep accumulating exactly
        back.add_array(x)
        rs.add_array(x)
        assert back.value() == rs.value() and back.count == rs.count

    def test_wire_roundtrip_empty(self):
        back = ExactRunningSum.from_bytes(ExactRunningSum().to_bytes())
        assert back.value() == 0.0 and back.count == 0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b[:4],  # truncated header
            lambda b: b"XXXX" + b[4:],  # wrong magic
            lambda b: b[:4] + (-1).to_bytes(8, "little", signed=True) + b[12:],
            lambda b: b[:-3],  # truncated accumulator body
            lambda b: b + b"\x00" * 8,  # oversized body
        ],
    )
    def test_wire_corruption_is_clean_valueerror(self, rng, mutate):
        rs = ExactRunningSum()
        rs.add_array(random_hard_array(rng, 20))
        with pytest.raises(ValueError):
            ExactRunningSum.from_bytes(mutate(rs.to_bytes()))

    def test_empty_value_and_mean(self):
        rs = ExactRunningSum()
        assert rs.value() == 0.0 and rs.count == 0
        with pytest.raises(EmptyStreamError):
            rs.mean()

    def test_mean_exact(self, rng):
        from repro.stats import exact_mean

        x = random_hard_array(rng, 300, emin=-30, emax=30)
        rs = ExactRunningSum()
        rs.add_array(x)
        assert rs.mean() == exact_mean(x)


class TestSlidingWindow:
    def test_window_matches_brute_force(self, rng):
        x = random_hard_array(rng, 300, emin=-40, emax=40)
        win = SlidingWindowSum(17)
        for i, v in enumerate(x):
            got = win.push(float(v))
            lo = max(0, i - 16)
            assert got == ref_sum(x[lo : i + 1]), i

    def test_no_drift_after_many_updates(self, rng):
        # the float ring-buffer failure: repeated add/subtract drifts
        win = SlidingWindowSum(4)
        drift_values = [1e16, 1.0, -1e16, 2.0] * 500
        for v in drift_values:
            win.push(v)
        assert win.value() == ref_sum(drift_values[-4:])

    def test_partial_window(self):
        win = SlidingWindowSum(10)
        win.push(1.5)
        win.push(2.5)
        assert win.value() == 4.0 and len(win) == 2

    def test_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowSum(0)

    def test_empty_window_value_defined(self):
        # pinned: an untouched window reads as exactly 0.0, any mode
        win = SlidingWindowSum(5)
        assert len(win) == 0
        for mode in ("nearest", "down", "up", "zero"):
            assert win.value(mode) == 0.0


class TestRunningStats:
    def test_matches_batch_stats(self, rng):
        from repro.stats import exact_mean, exact_variance

        x = random_hard_array(rng, 300, emin=-20, emax=20)
        st = RunningStats()
        st.add_array(x[:120])
        st.add_array(x[120:])
        assert st.count == 300
        assert st.sum() == ref_sum(x)
        assert st.mean() == exact_mean(x)
        assert st.variance() == exact_variance(x)
        assert st.variance(ddof=1) == exact_variance(x, ddof=1)

    def test_merge_bit_identical_to_serial(self, rng):
        x = random_hard_array(rng, 400, emin=-20, emax=20)
        serial = RunningStats()
        serial.add_array(x)
        shards = [RunningStats() for _ in range(4)]
        for shard, chunk in zip(shards, np.array_split(x, 4)):
            shard.add_array(chunk)
        merged = shards[0]
        for s in shards[1:]:
            merged.merge(s)
        assert merged.mean() == serial.mean()
        assert merged.variance() == serial.variance()

    def test_offset_variance(self):
        st = RunningStats()
        st.add_array(np.array([1e8 + 1, 1e8 + 2, 1e8 + 3, 1e8 + 4]))
        assert st.variance() == 1.25

    def test_empty_guards(self):
        st = RunningStats()
        # pinned: empty-state queries are a clean ReproError (which is
        # also a ValueError, keeping pre-existing callers working)
        with pytest.raises(EmptyStreamError):
            st.mean()
        with pytest.raises(EmptyStreamError):
            st.variance()
        assert issubclass(EmptyStreamError, ReproError)
        assert issubclass(EmptyStreamError, ValueError)
        assert st.sum() == 0.0 and st.count == 0  # sums stay defined

    def test_variance_insufficient_ddof(self):
        st = RunningStats()
        st.add_array(np.array([1.0]))
        with pytest.raises(EmptyStreamError):
            st.variance(ddof=1)
        assert st.variance(ddof=0) == 0.0


class TestExactCumsum:
    def test_every_prefix_correct(self, rng):
        x = random_hard_array(rng, 120)
        out = exact_cumsum(x)
        for i in range(x.size):
            assert out[i] == ref_sum(x[: i + 1]), i

    def test_differs_from_numpy_on_hard_input(self):
        x = np.array([1e16, 1.0, -1e16, 1.0])
        ours = exact_cumsum(x)
        assert ours[3] == 2.0
        assert float(np.cumsum(x)[3]) != 2.0  # numpy lost the 1.0

    def test_empty(self):
        assert exact_cumsum([]).size == 0

    def test_directed(self, rng):
        x = random_hard_array(rng, 40)
        lo = exact_cumsum(x, mode="down")
        hi = exact_cumsum(x, mode="up")
        for i in range(x.size):
            exact = exact_fraction(x[: i + 1])
            assert Fraction(lo[i]) <= exact <= Fraction(hi[i])
