"""Wire-format registry robustness (PR 4 satellite).

Every decoder must reject truncated payloads and wrong-magic frames
with the typed :class:`~repro.errors.CodecError` (a ``ValueError``
subclass, so pre-codec call sites keep working) — never a bare
``struct.error`` escaping to the caller. The fuzz battery mutates
*valid* frames byte-by-byte and asserts decoding either succeeds or
fails with ``CodecError``.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import codec
from repro.core.digits import DEFAULT_RADIX
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator
from repro.errors import CodecError, RepresentationError, ReproError


def _sparse(values):
    return SparseSuperaccumulator.from_floats(
        np.asarray(values, dtype=np.float64), DEFAULT_RADIX
    )


def _valid_frames():
    """One representative valid frame per registered format."""
    acc = _sparse([1.0, 1e-30, -3e200])
    from repro.kernels import get_kernel

    dense = get_kernel("dense").fold(np.array([2.0, -1e16, 5e-9]))

    truncated_kernel = get_kernel("truncated")
    adaptive = get_kernel("adaptive")
    cert_part = adaptive.fold(np.ones(64))
    binned = get_kernel("binned")
    binned_part = binned.fold(np.array([1.0, 3e-290, -7e154, 5e-324]))
    return {
        codec.MAGIC_SPARSE: codec.encode_sparse(acc),
        codec.MAGIC_DENSE: codec.encode_dense(dense),
        codec.MAGIC_RUNNING: codec.encode_running(3, acc),
        codec.MAGIC_STREAM: codec.encode_stream(3, codec.encode_sparse(acc)),
        codec.MAGIC_TRUNCATED: truncated_kernel.to_wire(
            truncated_kernel.fold(np.array([1.0, 2.0, -4.0]))
        ),
        codec.MAGIC_BINNED: binned.to_wire(binned_part),
        codec.MAGIC_CERT: codec.encode_cert(64.0, 0.0, 1e-12),
        codec.MAGIC_COMPOSITE: adaptive.to_wire(
            adaptive.combine(cert_part, adaptive.fold_exact(np.array([1e-30])))
        ),
        codec.MAGIC_RAW_BLOCK: codec.encode_raw_block(np.array([1.5, -2.5])),
        codec.MAGIC_FLOAT: codec.encode_float(3.25),
        codec.MAGIC_DATASET: codec.encode_dataset_header(12345),
        codec.MAGIC_WAL: codec.encode_wal_record(
            7, "orders", np.array([1.5, -2.25, 1e308])
        ),
        codec.MAGIC_BATCH: codec.encode_batch(
            5, 11, "orders", np.array([0.5, -3e7, 2e-300])
        ),
        codec.MAGIC_REDUCE_BATCH: codec.encode_reduce_batch(
            5, 11, "orders", "pairs",
            np.array([0.5, -3e7]), np.array([2.0, -4.25]),
        ),
        codec.MAGIC_WAL_REDUCE: codec.encode_wal_reduce(
            7, "orders", "squares", np.array([1.5, -2.25, 3e7])
        ),
    }


FRAMES = _valid_frames()


def test_every_registered_format_has_a_fixture_frame():
    assert set(FRAMES) == set(codec.registered_formats())


@pytest.mark.parametrize("magic", sorted(FRAMES))
def test_roundtrip_through_generic_decode(magic):
    # decode() must dispatch by magic without raising
    codec.decode(FRAMES[magic])


@pytest.mark.parametrize("magic", sorted(FRAMES))
def test_truncation_at_every_cut_raises_codec_error(magic):
    frame = FRAMES[magic]
    for cut in range(len(frame)):
        if magic == codec.MAGIC_RAW_BLOCK and cut >= 4 and (cut - 4) % 8 == 0:
            # Raw blocks are magic + bare float64 bytes with no length
            # field: a cut on a float boundary *is* a (shorter) valid
            # block. Undetectable by design; the combiner-ablation job
            # that uses RAWB never re-frames untrusted bytes.
            continue
        with pytest.raises(CodecError):
            codec.decode(frame[:cut])


@pytest.mark.parametrize("magic", sorted(FRAMES))
def test_wrong_magic_raises_codec_error(magic):
    frame = b"ZZZZ" + FRAMES[magic][4:]
    with pytest.raises(CodecError):
        codec.decode(frame)
    # and the format-specific decoder rejects a *different valid* magic
    other = next(m for m in sorted(FRAMES) if m != magic)
    swapped = other + FRAMES[magic][4:]
    decoder = {
        codec.MAGIC_SPARSE: codec.decode_sparse,
        codec.MAGIC_DENSE: codec.decode_dense,
        codec.MAGIC_RUNNING: codec.decode_running,
        codec.MAGIC_STREAM: codec.decode_stream,
        codec.MAGIC_TRUNCATED: codec.decode_truncated,
        codec.MAGIC_BINNED: codec.decode_binned,
        codec.MAGIC_CERT: codec.decode_cert,
        codec.MAGIC_COMPOSITE: codec.decode_composite,
        codec.MAGIC_RAW_BLOCK: codec.decode_raw_block,
        codec.MAGIC_FLOAT: codec.decode_float,
        codec.MAGIC_DATASET: codec.decode_dataset_header,
        codec.MAGIC_WAL: codec.decode_wal_record,
        codec.MAGIC_BATCH: codec.decode_batch,
        codec.MAGIC_REDUCE_BATCH: codec.decode_reduce_batch,
        codec.MAGIC_WAL_REDUCE: codec.decode_wal_reduce,
    }[magic]
    with pytest.raises(CodecError):
        decoder(swapped)


@pytest.mark.parametrize("magic", sorted(FRAMES))
def test_fuzz_mutated_frames_never_leak_struct_error(magic):
    """Flip bytes in valid frames: decode or CodecError, nothing else.

    Mutations can produce *semantically* different but well-formed
    frames (that's fine — wire formats aren't MACs); the contract under
    test is that malformed ones fail typed.
    """
    frame = bytearray(FRAMES[magic])
    rng = np.random.default_rng(int.from_bytes(magic, "big"))
    for _ in range(300):
        mutated = bytearray(frame)
        for _ in range(int(rng.integers(1, 4))):
            pos = int(rng.integers(0, len(mutated)))
            mutated[pos] ^= int(rng.integers(1, 256))
        try:
            codec.decode(bytes(mutated))
        except CodecError:
            pass
        except RepresentationError:
            # Well-formed frame, invalid regularized body: the domain
            # validator's typed ValueError, kept distinct from framing
            # errors because corruption tests pin it.
            pass
        except struct.error as exc:  # pragma: no cover - the bug class
            pytest.fail(f"bare struct.error leaked: {exc}")
        except (OverflowError, MemoryError):
            # A mutated length field may ask for an absurd allocation;
            # numpy refuses before the decoder can length-check. Typed
            # refusal, acceptable.
            pass


def test_codec_error_is_value_error_and_repro_error():
    with pytest.raises(ValueError):
        codec.decode_sparse(b"XXXX")
    with pytest.raises(ReproError):
        codec.decode_sparse(b"XXXX")


def test_truncated_payload_messages_name_the_format():
    with pytest.raises(CodecError, match="(?i)sparse"):
        codec.decode_sparse(FRAMES[codec.MAGIC_SPARSE][:7])
    with pytest.raises(CodecError, match="dataset header truncated"):
        codec.decode_dataset_header(b"F6")


def test_raw_block_rejects_non_whole_float64_body():
    frame = codec.encode_raw_block(np.array([1.0, 2.0]))
    with pytest.raises(CodecError):
        codec.decode_raw_block(frame + b"\x01")


def test_unknown_magic_lists_no_decoder():
    with pytest.raises(CodecError, match="unknown frame magic"):
        codec.decode(b"NOPE" + b"\x00" * 16)


# ----------------------------------------------------------------------
# WALR — the cluster write-ahead-log record (PR 7 satellite)
# ----------------------------------------------------------------------


def test_wal_record_roundtrip_bit_exact():
    values = np.array([1.5, -0.0, 5e-324, -1e308, 2.0**-1074])
    seq, stream, out = codec.decode_wal_record(
        codec.encode_wal_record(42, "payments", values)
    )
    assert seq == 42
    assert stream == "payments"
    assert out.dtype == np.float64
    # bit-exact including the signed zero
    assert out.tobytes() == values.astype("<f8").tobytes()


def test_wal_record_unsequenced_and_empty_payload():
    blob = codec.encode_wal_record(
        codec.WAL_UNSEQUENCED, "scatter", np.array([], dtype=np.float64)
    )
    seq, stream, out = codec.decode_wal_record(blob)
    assert seq == codec.WAL_UNSEQUENCED
    assert stream == "scatter"
    assert out.size == 0


def test_wal_record_size_from_header_prefix():
    blob = codec.encode_wal_record(3, "s", np.array([1.0, 2.0]))
    assert codec.wal_record_size(blob[: codec.WAL_HEADER_SIZE]) == len(blob)


def test_wal_record_crc_corruption_detected():
    blob = bytearray(codec.encode_wal_record(9, "orders", np.array([3.0, -4.0])))
    # Flip one bit in every body byte position in turn: CRC must catch
    # each one (the header fields have their own structural checks).
    for pos in range(codec.WAL_HEADER_SIZE, len(blob)):
        corrupt = bytearray(blob)
        corrupt[pos] ^= 0x01
        with pytest.raises(CodecError, match="CRC mismatch"):
            codec.decode_wal_record(bytes(corrupt))


def test_wal_record_rejects_bad_seq_and_empty_stream():
    with pytest.raises(CodecError, match="non-empty stream"):
        codec.encode_wal_record(0, "", np.array([1.0]))
    with pytest.raises(CodecError, match="sequence"):
        codec.encode_wal_record(-2, "s", np.array([1.0]))
    blob = bytearray(codec.encode_wal_record(0, "s", np.array([1.0])))
    # forge seq = -3 in the header; the decoder must refuse before CRC
    blob[4:12] = (-3).to_bytes(8, "little", signed=True)
    with pytest.raises(CodecError, match="sequence"):
        codec.decode_wal_record(bytes(blob))


def test_wal_record_rejects_trailing_garbage():
    blob = codec.encode_wal_record(1, "s", np.array([1.0]))
    with pytest.raises(CodecError, match="length mismatch"):
        codec.decode_wal_record(blob + b"\x00")


def test_wal_record_bytes_payload_passthrough():
    """Raw f8 bytes encode byte-identically to the ndarray they came from."""
    values = np.array([1.5, -0.0, 5e-324, -1e308])
    via_array = codec.encode_wal_record(8, "s", values)
    via_bytes = codec.encode_wal_record(8, "s", values.astype("<f8").tobytes())
    assert via_array == via_bytes


def test_wal_record_rejects_misaligned_bytes_payload():
    with pytest.raises(CodecError, match="whole number of float64"):
        codec.encode_wal_record(0, "s", b"\x00" * 13)


# ----------------------------------------------------------------------
# BBAT — the binary-wire ingest batch frame (PR 8 tentpole)
# ----------------------------------------------------------------------


def test_batch_roundtrip_bit_exact():
    values = np.array([1.5, -0.0, 5e-324, -1e308, 2.0**-1074])
    rid, seq, stream, out = codec.decode_batch(
        codec.encode_batch(17, 4, "payments", values)
    )
    assert (rid, seq, stream) == (17, 4, "payments")
    assert out.dtype == np.float64
    assert out.tobytes() == values.astype("<f8").tobytes()


def test_batch_unsequenced_and_empty():
    blob = codec.encode_batch(1, codec.WAL_UNSEQUENCED, "s", np.array([]))
    rid, seq, stream, out = codec.decode_batch(blob)
    assert seq == codec.WAL_UNSEQUENCED
    assert out.size == 0


def test_batch_wire_body_is_the_wal_payload():
    """The frame's raw f8 body reproduces the WAL record byte-for-byte."""
    values = np.array([3.25, -1e200, 7e-290])
    frame = codec.encode_batch(2, 9, "orders", values)
    body = codec.batch_wire_body(frame)
    assert codec.encode_wal_record(9, "orders", body) == codec.encode_wal_record(
        9, "orders", values
    )


def test_batch_rejects_bad_fields():
    with pytest.raises(CodecError, match="request id"):
        codec.encode_batch(-1, 0, "s", np.array([1.0]))
    with pytest.raises(CodecError, match="non-empty stream"):
        codec.encode_batch(0, 0, "", np.array([1.0]))
    with pytest.raises(CodecError, match="sequence"):
        codec.encode_batch(0, -5, "s", np.array([1.0]))


def test_batch_rejects_trailing_garbage_and_nvalue_mismatch():
    frame = codec.encode_batch(1, -1, "s", np.array([1.0, 2.0]))
    with pytest.raises(CodecError, match="length mismatch"):
        codec.decode_batch(frame + b"\x00")
    # forge nvalues in the header: length check must refuse
    forged = bytearray(frame)
    forged[28:36] = (3).to_bytes(8, "little", signed=True)
    with pytest.raises(CodecError):
        codec.decode_batch(bytes(forged))
