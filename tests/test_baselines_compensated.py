"""Unit tests for compensated summation (Kahan / Neumaier / Klein)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.compensated import kahan_sum, klein_sum, neumaier_sum
from tests.conftest import exact_fraction, random_hard_array


ALL = [kahan_sum, neumaier_sum, klein_sum]


class TestBasics:
    @pytest.mark.parametrize("fn", ALL)
    def test_empty_and_single(self, fn):
        assert fn([]) == 0.0
        assert fn([42.5]) == 42.5

    @pytest.mark.parametrize("fn", ALL)
    def test_exact_on_representable(self, fn):
        assert fn([1.0, 2.0, 3.5]) == 6.5

    @pytest.mark.parametrize("fn", ALL)
    def test_handles_classic_drift(self, fn):
        # sum of 0.1 ten times: compensated methods nail the rounded sum
        got = fn([0.1] * 10)
        exact = exact_fraction([0.1] * 10)
        assert abs(exact_fraction([got]) - exact) <= exact_fraction([math.ulp(1.0)])


class TestAccuracyLadder:
    def test_kahan_known_failure_neumaier_fixes(self):
        # big addend arrives after the total: Kahan drops the correction
        data = [1.0, 1e100, 1.0, -1e100]
        assert kahan_sum(data) != 2.0  # Kahan loses it
        assert neumaier_sum(data) == 2.0
        assert klein_sum(data) == 2.0

    def test_neumaier_first_order_error(self, rng):
        for _ in range(10):
            x = rng.random(5000)
            exact = exact_fraction(x)
            err = abs(float(exact_fraction([neumaier_sum(x)]) - exact))
            # error independent of n (few ulps of the result)
            assert err <= 4 * math.ulp(float(exact))

    def test_klein_beats_neumaier_under_cancellation(self, rng):
        worse = 0
        trials = 15
        for _ in range(trials):
            x = random_hard_array(rng, 400, emin=-30, emax=30)
            exact = exact_fraction(x)
            en = abs(exact_fraction([neumaier_sum(x)]) - exact)
            ek = abs(exact_fraction([klein_sum(x)]) - exact)
            if ek > en:
                worse += 1
        assert worse <= trials // 3  # second-order rarely loses

    def test_all_defeated_by_extreme_condition(self):
        # condition number ~ 1/u**3: even Klein cannot be exact
        data = [1.0, 2.0**-53, 2.0**-106, 2.0**-159, -1.0]
        exact = float(exact_fraction(data))
        assert exact != 0.0
        assert kahan_sum(data) != exact or klein_sum(data) != exact


class TestAgainstRandomData:
    @pytest.mark.parametrize("fn", [neumaier_sum, klein_sum])
    def test_usually_correctly_rounded_on_mild_data(self, fn, rng):
        hits = 0
        for _ in range(20):
            x = rng.random(300)
            if fn(x) == math.fsum(x):
                hits += 1
        assert hits >= 15  # mild data: compensation nearly always exact
