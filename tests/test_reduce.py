"""Unit tests for the reduction layer: ops, engine, planner (PR 9).

The tentpole contract: every reduction is an error-free expansion
composed with a sum kernel, so its value is the correctly rounded true
mathematical quantity — bit-identical to the serial rational references
in :mod:`repro.stats`, on every plane, under every capable kernel.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro import reduce
from repro.core.exact import exact_sum_fraction
from repro.errors import EmptyStreamError, ReductionRangeError
from repro.kernels import get_kernel, kernel_names
from repro.reduce import (
    DotOp,
    VarOp,
    get_op,
    kernel_supports,
    op_names,
    register_op,
    run_reduction,
)
from repro.stats import (
    exact_dot_fraction,
    exact_mean,
    exact_norm2,
    exact_variance,
    round_fraction,
)


def _panel(n=800, seed=11, spread=40):
    rng = np.random.default_rng(seed)
    return np.ldexp(
        rng.standard_normal(n), rng.integers(-spread, spread, n)
    )


class TestRegistry:
    def test_all_five_ops_registered(self):
        assert set(op_names()) >= {"sum", "dot", "norm2", "mean", "var"}

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            get_op("median")

    def test_register_last_wins(self):
        # Same policy as the kernel registry: re-registration replaces.
        fresh = register_op(DotOp())
        assert get_op("dot") is fresh

    def test_kernel_supports_semantics(self):
        exact = get_kernel("sparse")
        for name in ("sum", "dot"):
            for kernel in kernel_names():
                assert kernel_supports(get_op(name), get_kernel(kernel))
        for name in ("norm2", "mean", "var"):
            assert kernel_supports(get_op(name), exact)
            assert not kernel_supports(get_op(name), get_kernel("adaptive"))
            assert not kernel_supports(get_op(name), get_kernel("truncated"))


class TestExpansionExactness:
    """expand()'s term streams sum exactly to the true quantity."""

    def test_dot_terms_sum_to_exact_inner_product(self):
        x, y = _panel(300, seed=1), _panel(300, seed=2)
        (terms,) = get_op("dot").expand(x, y)
        assert terms.size == 2 * x.size
        assert exact_sum_fraction(terms) == exact_dot_fraction(x, y)

    def test_norm2_terms_sum_to_exact_square_sum(self):
        x = _panel(300, seed=3)
        (terms,) = get_op("norm2").expand(x)
        total = exact_sum_fraction(terms)
        want = Fraction(0)
        for v in x:
            want += Fraction(float(v)) ** 2
        assert total == want

    def test_var_expands_two_streams(self):
        x = _panel(64, seed=4)
        values, squares = get_op("var").expand(x)
        assert np.array_equal(values, x)
        assert squares.size == 2 * x.size

    def test_dot_zero_pair_with_huge_partner_is_exact_zero(self):
        # A zero paired with a magnitude beyond the Dekker-split range
        # must expand to an exact 0.0 term, not NaN/overflow garbage.
        x = np.array([0.0, 2.0, -0.0])
        y = np.array([1e308, 3.0, -1e308])
        op = get_op("dot")
        op.check_domain(x, y)  # in domain: zero pairs are always safe
        (terms,) = op.expand(x, y)
        assert np.isfinite(terms).all()
        assert exact_sum_fraction(terms) == Fraction(6)


class TestDomainPolicing:
    def test_norm2_overflowing_square_rejected(self):
        with pytest.raises(ReductionRangeError):
            reduce.norm2([1.0, 1e200])

    def test_norm2_underflowing_square_rejected(self):
        with pytest.raises(ReductionRangeError):
            reduce.norm2([2.0**-530, 1.0])

    def test_dot_overflowing_product_rejected(self):
        with pytest.raises(ReductionRangeError):
            reduce.dot([1e200], [1e200])

    def test_dot_underflowing_product_rejected(self):
        with pytest.raises(ReductionRangeError):
            reduce.dot([1e-200], [1e-200])

    def test_var_out_of_band_square_rejected(self):
        with pytest.raises(ReductionRangeError):
            reduce.var([1e260, 1.0])

    def test_sum_and_mean_have_no_domain_limit(self):
        big = np.array([1e308, -1e308, 3.5])
        assert reduce.sum(big) == 3.5
        assert reduce.mean(big) == exact_mean(big)


class TestEmptyEdges:
    def test_empty_sum_dot_norm2_are_zero(self):
        assert reduce.sum([]) == 0.0
        assert reduce.dot([], []) == 0.0
        assert reduce.norm2([]) == 0.0

    def test_empty_mean_raises(self):
        with pytest.raises(EmptyStreamError):
            reduce.mean([])

    def test_var_needs_more_observations_than_ddof(self):
        with pytest.raises(EmptyStreamError):
            reduce.var([])
        with pytest.raises(EmptyStreamError):
            reduce.var([1.5], ddof=1)
        assert reduce.var([1.5]) == 0.0


class TestFinishSemantics:
    def test_matches_serial_references(self):
        x, y = _panel(), _panel(seed=12)
        assert reduce.dot(x, y) == round_fraction(exact_dot_fraction(x, y))
        assert reduce.norm2(x) == exact_norm2(x)
        assert reduce.mean(x) == exact_mean(x)
        assert reduce.var(x) == exact_variance(x)
        assert reduce.var(x, ddof=3) == exact_variance(x, ddof=3)

    def test_dot_honours_directed_modes(self):
        x, y = _panel(200, seed=5), _panel(200, seed=6)
        exact = exact_dot_fraction(x, y)
        for mode in ("down", "up", "zero"):
            got = reduce.dot(x, y, plane="serial", kernel="sparse", mode=mode)
            assert got == round_fraction(exact, mode)

    def test_norm2_rejects_directed_modes(self):
        with pytest.raises(ValueError):
            run_reduction("serial", "sparse", "norm2", [3.0, 4.0], mode="up")

    def test_trivial_pythagoras(self):
        assert reduce.norm2([3.0, 4.0]) == 5.0
        assert reduce.dot([1.0, 2.0], [3.0, 4.0]) == 11.0

    def test_var_ddof_carried_by_op_instance(self):
        x = _panel(100, seed=7)
        got = run_reduction("serial", "sparse", VarOp(ddof=2), x)
        assert got == exact_variance(x, ddof=2)


class TestEngineValidation:
    def test_unknown_plane_kernel_op(self):
        with pytest.raises(ValueError, match="plane"):
            run_reduction("gpu", "sparse", "sum", [1.0])
        with pytest.raises(ValueError, match="kernel"):
            run_reduction("serial", "nope", "sum", [1.0])
        with pytest.raises(ValueError, match="unknown"):
            run_reduction("serial", "sparse", "median", [1.0])

    def test_speculative_kernel_refused_for_exact_finish(self):
        with pytest.raises(ValueError, match="cannot host"):
            run_reduction("serial", "adaptive", "norm2", [1.0, 2.0])

    def test_dot_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            reduce.dot([1.0, 2.0], [3.0])

    def test_dot_requires_second_array(self):
        with pytest.raises(ValueError):
            run_reduction("serial", "sparse", "dot", [1.0])

    def test_single_array_op_rejects_second(self):
        with pytest.raises(ValueError):
            run_reduction("serial", "sparse", "norm2", [1.0], [2.0])


class TestOpAwarePlanner:
    def test_candidates_reject_speculative_for_exact_ops(self):
        from repro.plan import kernel_candidates

        rows = {c.name: c for c in kernel_candidates(op="var")}
        assert not rows["adaptive"].accepted
        assert not rows["truncated"].accepted
        assert rows["sparse"].accepted
        # rounded-sum ops keep the speculative cascade available
        rows = {c.name: c for c in kernel_candidates(op="dot")}
        assert rows["adaptive"].accepted

    def test_descriptor_validates_op(self):
        from repro.plan import DataDescriptor

        with pytest.raises(ValueError, match="unknown op"):
            DataDescriptor(n=4, op="median")

    def test_plan_executes_reductions(self):
        from repro.plan import DataDescriptor, plan_sum

        x, y = _panel(500, seed=8), _panel(500, seed=9)
        plan = plan_sum(DataDescriptor.describe_array(x, op="dot", values2=y))
        assert plan.describe()["op"] == "dot"
        assert plan.execute() == round_fraction(exact_dot_fraction(x, y))
        plan = plan_sum(DataDescriptor.describe_array(x, op="norm2"))
        assert plan.kernel not in ("adaptive", "truncated")
        assert plan.tier == "exact"
        assert plan.execute() == exact_norm2(x)

    def test_forced_incapable_kernel_raises(self):
        from repro.plan import DataDescriptor, plan_sum

        with pytest.raises(ValueError, match="cannot host"):
            plan_sum(
                DataDescriptor.describe_array([1.0], op="mean"),
                kernel="adaptive",
            )


class TestRunningStatsSharesExpansion:
    """streaming.RunningStats rides the same TwoSquare ingest."""

    def test_matches_exact_references_including_out_of_band(self):
        from repro.streaming import RunningStats

        x = np.concatenate(
            [_panel(400, seed=10), np.array([1e200, -2e-300, 2.0**-530])]
        )
        rs = RunningStats()
        rs.add_array(x[:100])
        rs.add_array(x[100:])
        assert rs.mean() == exact_mean(x)
        assert rs.variance(ddof=1) == exact_variance(x, ddof=1)

    def test_merge_matches_serial(self):
        from repro.streaming import RunningStats

        x = _panel(600, seed=13)
        a, b = RunningStats(), RunningStats()
        a.add_array(x[:251])
        b.add_array(x[251:])
        a.merge(b)
        assert a.variance() == exact_variance(x)
        assert a.count == x.size
