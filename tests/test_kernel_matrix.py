"""Cross-plane bit-identity matrix (PR 4 invariant).

Every registered kernel, on every execution plane, over adversarial
inputs, must produce the *bitwise identical* float the serial sparse
superaccumulator produces. This is the repo's central claim — exact
summation makes the answer independent of representation, schedule and
topology — stated as one parameterized test.

The process-executor leg honours ``REPRO_START_METHOD`` (``fork`` /
``spawn``) so CI runs the matrix under both worker bootstrap paths.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import exact_sum
from repro.data import generate
from repro.kernels import kernel_names
from repro.plan import PLANES, run_plane

#: Adversarial panels: massive cancellation (escalation pressure),
#: near-ulp rounding ties (certificate boundary pressure), Anderson's
#: zero-mean deviations (the paper's hard statistical panel).
DATASETS = {
    name: generate(name, 400, delta=300, seed=13)
    for name in ("cancel", "tie", "anderson")
}

REFERENCE = {
    name: exact_sum(data, method="sparse") for name, data in DATASETS.items()
}


def _start_method():
    return os.environ.get("REPRO_START_METHOD") or None


@pytest.mark.parametrize("kernel", sorted(kernel_names()))
@pytest.mark.parametrize("plane", sorted(PLANES))
@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_every_kernel_on_every_plane_matches_serial_sparse(
    plane, kernel, dataset
):
    data = DATASETS[dataset]
    value = run_plane(plane, kernel, data, workers=2, block_items=64)
    ref = REFERENCE[dataset]
    assert value == ref, (
        f"{kernel} on {plane} over {dataset}: {value!r} != {ref!r}"
    )


@pytest.mark.parametrize("kernel", sorted(kernel_names()))
def test_kernel_matrix_under_process_executor(kernel):
    """The mapreduce plane on a real worker pool, under the start
    method CI selects via REPRO_START_METHOD."""
    from repro.mapreduce.runtime import MultiprocessExecutor, run_job
    from repro.mapreduce.sum_job import KernelSumJob

    data = DATASETS["cancel"]
    blocks = [np.asarray(b) for b in np.array_split(data, 6)]
    job = KernelSumJob(kernel_name=kernel)
    with MultiprocessExecutor(2, start_method=_start_method()) as exe:
        try:
            result = run_job(job, blocks, reducers=2, executor=exe)
            value = result.value
        except Exception as exc:
            from repro.errors import CertificationError

            if not isinstance(exc, CertificationError):
                raise
            # Speculative kernels may fail the global certificate on
            # this panel; the driver's contract is an exact rerun.
            fallback = KernelSumJob(kernel_name="sparse")
            value = run_job(fallback, blocks, reducers=2, executor=exe).value
    assert value == REFERENCE["cancel"]


def test_planner_choices_are_in_the_matrix():
    """plan_sum can only schedule onto planes this matrix verifies."""
    from repro.plan import DataDescriptor, plan_sum

    for workers in (1, 4):
        for n in (100, 1 << 21):
            plan = plan_sum(DataDescriptor(n=n, layout="memory", workers=workers))
            assert plan.plane in PLANES
            assert plan.kernel in kernel_names()


# ---------------------------------------------------------------------------
# reduction-op rows (PR 9 invariant): every op x every capable kernel x
# every plane, bit-identical to the serial sparse reference — including
# the serve/cluster round-trips through op-tagged wire frames.

#: Expansion-domain-safe panel: magnitudes ~2^±60, so TwoSquare and
#: TwoProduct terms stay far inside the error-free band the ops police.
REDUCE_X = generate("cancel", 400, delta=120, seed=17)
REDUCE_Y = generate("tie", 400, delta=120, seed=29)

REDUCE_OPS = ("dot", "norm2", "mean", "var")


def _reduce_reference(op):
    from repro.reduce import run_reduction

    x = REDUCE_X
    y = REDUCE_Y if op == "dot" else None
    return run_reduction("serial", "sparse", op, x, y)


REDUCE_REFERENCE = {op: _reduce_reference(op) for op in REDUCE_OPS}


@pytest.mark.parametrize("kernel", sorted(kernel_names()))
@pytest.mark.parametrize("plane", sorted(PLANES))
@pytest.mark.parametrize("op", REDUCE_OPS)
def test_every_op_on_every_plane_matches_serial_sparse(plane, kernel, op):
    from repro.kernels import get_kernel
    from repro.reduce import get_op, kernel_supports, run_reduction

    if not kernel_supports(get_op(op), get_kernel(kernel)):
        # Exact-fraction finishes refuse speculative kernels up front,
        # on every plane — exactly as the planner's candidate table
        # rejects them.
        with pytest.raises(ValueError):
            run_reduction(
                plane, kernel, op, REDUCE_X,
                REDUCE_Y if op == "dot" else None,
                workers=2, block_items=64,
            )
        return
    value = run_reduction(
        plane, kernel, op, REDUCE_X,
        REDUCE_Y if op == "dot" else None,
        workers=2, block_items=64,
    )
    ref = REDUCE_REFERENCE[op]
    assert value == ref, (
        f"op {op} via {kernel} on {plane}: {value!r} != {ref!r}"
    )
