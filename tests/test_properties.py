"""Property-based tests (Hypothesis) on the core invariants.

These attack the exactness claims with adversarially generated floats:
full exponent range, subnormals, signed zeros, and weird mixtures the
unit tests wouldn't think of.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.baselines.hybridsum import hybrid_sum
from repro.baselines.ifastsum import ifastsum
from repro.core.digits import (
    DEFAULT_RADIX,
    RadixConfig,
    digits_to_int,
    normalize_digit_array,
    regularize_pair_vec,
    split_float,
)
from repro.core.eft import two_sum
from repro.core.rounding import round_scaled_int, to_nonoverlapping
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import SmallSuperaccumulator
from tests.conftest import exact_fraction, fraction_to_float

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)

float_lists = st.lists(finite_floats, min_size=0, max_size=60)

digit_widths = st.sampled_from([4, 8, 16, 26, 30, 31])


@given(x=finite_floats, y=finite_floats)
def test_two_sum_error_free(x, y):
    s, e = two_sum(x, y)
    assume(math.isfinite(s))  # past-overflow TwoSum is out of contract
    assert Fraction(s) + Fraction(e) == Fraction(x) + Fraction(y)


@given(x=finite_floats, w=digit_widths)
def test_split_float_exact(x, w):
    radix = RadixConfig(w)
    pairs = split_float(x, radix)
    total = sum(
        (Fraction(d) * Fraction(2) ** (w * j) for j, d in pairs), Fraction(0)
    )
    assert total == Fraction(x)
    for _, d in pairs:
        assert -radix.alpha <= d <= radix.beta and d != 0


@given(values=float_lists)
@settings(max_examples=150)
def test_sparse_superaccumulator_exact(values):
    acc = SparseSuperaccumulator.from_floats(np.array(values, dtype=np.float64))
    assert acc.to_fraction() == exact_fraction(values)


@given(values=float_lists)
@settings(max_examples=100)
def test_sparse_rounding_correct(values):
    acc = SparseSuperaccumulator.from_floats(np.array(values, dtype=np.float64))
    assert acc.to_float() == fraction_to_float(exact_fraction(values))


@given(values=float_lists)
@settings(max_examples=100)
def test_small_superaccumulator_matches_sparse(values):
    arr = np.array(values, dtype=np.float64)
    small = SmallSuperaccumulator()
    small.add_array(arr)
    sparse = SparseSuperaccumulator.from_floats(arr)
    assert small.to_fraction() == sparse.to_fraction()


@given(values=st.lists(finite_floats, min_size=0, max_size=25))
@settings(max_examples=80)
def test_ifastsum_correctly_rounded(values):
    # guard: distillation contract needs finite prefixes OR the exact
    # fallback, both of which must yield the correct rounding
    got = ifastsum(values)
    want = fraction_to_float(exact_fraction(values))
    assert got == want


@given(values=st.lists(finite_floats, min_size=0, max_size=40))
@settings(max_examples=80)
def test_hybrid_sum_correctly_rounded(values):
    assert hybrid_sum(values) == fraction_to_float(exact_fraction(values))


@given(
    a=float_lists,
    b=float_lists,
)
@settings(max_examples=100)
def test_carry_free_add_is_exact_and_regularized(a, b):
    x = SparseSuperaccumulator.from_floats(np.array(a, dtype=np.float64))
    y = SparseSuperaccumulator.from_floats(np.array(b, dtype=np.float64))
    z = x.add(y)
    assert z.to_fraction() == x.to_fraction() + y.to_fraction()
    assert (np.abs(z.digits) <= DEFAULT_RADIX.alpha).all()


@given(
    digits=st.lists(
        st.integers(min_value=-(2**35), max_value=2**35), min_size=1, max_size=30
    )
)
def test_normalize_preserves_value(digits):
    raw = np.array(digits, dtype=np.int64)
    out = normalize_digit_array(raw)
    assert digits_to_int(out, 0)[0] == digits_to_int(raw, 0)[0]
    assert (np.abs(out) <= DEFAULT_RADIX.alpha).all()


@given(
    pair_sums=st.lists(
        st.integers(
            min_value=-(2 * DEFAULT_RADIX.R - 2), max_value=2 * DEFAULT_RADIX.R - 2
        ),
        min_size=1,
        max_size=30,
    )
)
def test_lemma1_regularize(pair_sums):
    P = np.array(pair_sums, dtype=np.int64)
    S = regularize_pair_vec(P)
    assert digits_to_int(S, 0)[0] == digits_to_int(P, 0)[0]
    assert (np.abs(S) <= DEFAULT_RADIX.alpha).all()


@given(
    digits=st.lists(
        st.integers(min_value=-(DEFAULT_RADIX.R - 1), max_value=DEFAULT_RADIX.R - 1),
        min_size=1,
        max_size=25,
    )
)
def test_nonoverlapping_unique_balanced(digits):
    d = np.array(digits, dtype=np.int64)
    out = to_nonoverlapping(d)
    half = DEFAULT_RADIX.R // 2
    assert (out >= -half).all() and (out < half).all()
    assert digits_to_int(out, 0)[0] == digits_to_int(d, 0)[0]


@given(
    v=st.integers(min_value=-(2**220), max_value=2**220),
    s=st.integers(min_value=-1200, max_value=1100),
)
@settings(max_examples=300)
def test_round_scaled_int_vs_fraction(v, s):
    got = round_scaled_int(v, s)
    try:
        want = float(Fraction(v) * Fraction(2) ** s)
    except OverflowError:
        want = math.inf if v > 0 else -math.inf
    assert got == want


@given(values=float_lists, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60)
def test_order_independence(values, seed):
    arr = np.array(values, dtype=np.float64)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(arr.size)
    a = SparseSuperaccumulator.from_floats(arr)
    b = SparseSuperaccumulator.from_floats(arr[perm])
    assert a.to_fraction() == b.to_fraction()


@given(values=float_lists)
@settings(max_examples=60)
def test_serialization_roundtrip(values):
    a = SparseSuperaccumulator.from_floats(np.array(values, dtype=np.float64))
    b = SparseSuperaccumulator.from_bytes(a.to_bytes())
    assert a == b


@given(values=float_lists)
@settings(max_examples=60)
def test_faithful_bracket_directed(values):
    acc = SparseSuperaccumulator.from_floats(np.array(values, dtype=np.float64))
    lo, hi = acc.to_float("down"), acc.to_float("up")
    exact = exact_fraction(values)
    assert Fraction(lo) <= exact if math.isfinite(lo) else True
    assert exact <= Fraction(hi) if math.isfinite(hi) else True
    assert acc.to_float("nearest") in (lo, hi)
