"""Dataflow engine: call graph, races (CC100/CC101), taint (FP100).

The planted fixtures here are the acceptance contract for the v2
engine: a second-writer task mutation, a torn multi-step mutation
across an ``await``, and a rounded-before-fold ingest path must each
produce *exactly* the expected finding — no more, no less. The
negative fixtures pin the precision half of the contract: the repaired
shapes (staged publish, claim-before-await, sanitized fold) must stay
silent, because a noisy rule gets suppressed into irrelevance.

Call-graph resolution is tested directly on :class:`ProjectIndex`
because the dynamic-dispatch seams (kernel registry, ``partial``,
escalation chains) are exactly where a naive graph would go blind.
"""

from __future__ import annotations

import pytest

from repro.analysis import LintResult, ProjectContext, lint_source
from repro.analysis.core import ModuleUnit
from repro.analysis.dataflow.callgraph import ProjectIndex
from repro.analysis.dataflow.reaching import ReachingDefs

SERVE = "repro/serve/fixture.py"
CLUSTER = "repro/cluster/fixture.py"


def rules_of(result: LintResult):
    return [f.rule for f in result.sorted_findings()]


def lint(source: str, filename: str = SERVE, **kw) -> LintResult:
    return lint_source(source, filename, **kw)


def build_index(*named_sources: tuple) -> ProjectIndex:
    ctx = ProjectContext()
    units = [ModuleUnit(src, path, ctx) for path, src in named_sources]
    ctx.set_units(units)
    index = ctx.index
    assert index is not None
    return index


# ----------------------------------------------------------------------
# CC100: second writer for task-owned state
# ----------------------------------------------------------------------

CC100_PLANTED = """\
import asyncio

class ShardWriter:
    def __init__(self):
        self._state = 0
        self._task = None

    async def start(self):
        self._task = asyncio.create_task(self._run())

    async def _run(self):
        while True:
            self._advance()
            await asyncio.sleep(0)

    def _advance(self):
        self._state = self._state + 1

    def reset(self):
        self._state = 0
"""


def test_cc100_flags_exactly_the_second_writer():
    result = lint(CC100_PLANTED, select=["CC100"])
    assert rules_of(result) == ["CC100"]
    (finding,) = result.findings
    assert finding.line == 20  # the reset() write, not the task's own
    assert "_state" in finding.message
    assert "_run" in finding.message


def test_cc100_region_is_transitive_and_init_exempt():
    # Writes inside the task's self-call closure (_run -> _advance) and
    # in __init__ are ownership, not races: the planted finding above is
    # the only one. A class whose only writers live in the region is clean.
    clean = CC100_PLANTED.replace("    def reset(self):\n        self._state = 0\n", "")
    assert rules_of(lint(clean, select=["CC100"])) == []


def test_cc100_scoped_to_serve_and_cluster():
    assert rules_of(lint(CC100_PLANTED, "repro/core/fixture.py", select=["CC100"])) == []
    assert rules_of(lint(CC100_PLANTED, CLUSTER, select=["CC100"])) == ["CC100"]


# ----------------------------------------------------------------------
# CC101: torn multi-step mutation across an await
# ----------------------------------------------------------------------

CC101_PLANTED = """\
class Node:
    async def apply(self, seq, arr):
        self._applied = seq
        await self._fold(arr)
        self._count = self._count + 1
"""


def test_cc101_flags_exactly_the_torn_pair():
    result = lint(CC101_PLANTED, filename=CLUSTER, select=["CC101"])
    assert rules_of(result) == ["CC101"]
    (finding,) = result.findings
    assert finding.line == 5  # the second write is the anchor
    assert "line 3" in finding.message and "line 4" in finding.message


def test_cc101_loop_carried_pair_is_caught():
    # The WAL-replay shape: one write per iteration, awaits between
    # iterations. A single linear pass sees write -> await but never the
    # second write; the two-pass loop walk must.
    src = (
        "class Node:\n"
        "    async def replay(self, records):\n"
        "        for rec in records:\n"
        "            self._applied[rec.stream] = rec.seq\n"
        "            await self._fold(rec)\n"
    )
    result = lint(src, filename=CLUSTER, select=["CC101"])
    assert rules_of(result) == ["CC101"]
    assert result.findings[0].line == 4


def test_cc101_clean_shapes_stay_silent():
    # (a) staged publish: locals mutate freely, instance writes are
    # contiguous after the last await — the recover() fix shape;
    # (b) claim-before-await: a single write ahead of the await;
    # (c) self.x = await f(): the await orders before the store.
    staged = (
        "class Node:\n"
        "    async def replay(self, records):\n"
        "        marks = {}\n"
        "        for rec in records:\n"
        "            await self._fold(rec)\n"
        "            marks[rec.stream] = rec.seq\n"
        "        for stream, seq in marks.items():\n"
        "            self._applied[stream] = seq\n"
    )
    claim = (
        "class Node:\n"
        "    async def ingest(self, seq, arr):\n"
        "        self._applied = seq\n"
        "        return await self._fold(arr)\n"
    )
    fused = (
        "class Node:\n"
        "    async def refresh(self):\n"
        "        self._snapshot = await self._read()\n"
        "        self._fresh = True\n"
    )
    for src in (staged, claim, fused):
        assert rules_of(lint(src, filename=CLUSTER, select=["CC101"])) == []


# ----------------------------------------------------------------------
# FP100: exactness taint (rounded before fold)
# ----------------------------------------------------------------------

FP100_PLANTED = """\
import numpy as np

class Ingest:
    def handle(self, blob):
        arr = np.frombuffer(blob, dtype=np.float64)
        scaled = arr * 0.5
        self._shard.fold(scaled)
"""


def test_fp100_flags_exactly_the_rounding_binop():
    result = lint(FP100_PLANTED, select=["FP100"])
    assert rules_of(result) == ["FP100"]
    (finding,) = result.findings
    assert finding.line == 6
    assert "fold" not in finding.message or "before" in finding.message


def test_fp100_sanitized_fold_is_clean():
    clean = (
        "import numpy as np\n"
        "\n"
        "class Ingest:\n"
        "    def handle(self, blob):\n"
        "        arr = np.frombuffer(blob, dtype=np.float64)\n"
        "        self._shard.fold(np.ascontiguousarray(arr))\n"
    )
    assert rules_of(lint(clean, select=["FP100"])) == []


def test_fp100_flags_reduction_sinks():
    src = (
        "import numpy as np\n"
        "\n"
        "def total(blob):\n"
        "    arr = np.frombuffer(blob, dtype=np.float64)\n"
        "    return np.sum(arr)\n"
    )
    result = lint(src, select=["FP100"])
    assert rules_of(result) == ["FP100"]
    assert result.findings[0].line == 5


def test_fp100_interprocedural_rounding_helper():
    # The rounding hides one call away: the summary fixpoint must carry
    # "scale() rounds its first argument" back to the ingest site.
    src = (
        "import numpy as np\n"
        "\n"
        "def scale(arr):\n"
        "    return arr * 0.5\n"
        "\n"
        "def handle(blob):\n"
        "    arr = np.frombuffer(blob, dtype=np.float64)\n"
        "    return scale(arr)\n"
    )
    result = lint(src, select=["FP100"])
    assert rules_of(result) == ["FP100"]
    assert result.findings[0].line == 8  # the call site in the swept plane


def test_fp100_string_and_metadata_arithmetic_exempt():
    src = (
        "import numpy as np\n"
        "\n"
        "SUFFIX = '\\x00sq'\n"
        "\n"
        "def shadow(blob, stream):\n"
        "    arr = np.frombuffer(blob, dtype=np.float64)\n"
        "    key = stream + SUFFIX\n"
        "    pad = arr.size + 1\n"
        "    return key, pad, arr\n"
    )
    assert rules_of(lint(src, select=["FP100"])) == []


def test_fp100_scoped_to_ingest_planes():
    assert rules_of(lint(FP100_PLANTED, "repro/kernels/fixture.py", select=["FP100"])) == []


# ----------------------------------------------------------------------
# call graph: registry dispatch, partial, escalation chains
# ----------------------------------------------------------------------

KERNELS_SRC = """\
from repro.kernels.base import register_kernel

@register_kernel
class FastKernel:
    name = "fast"
    escalates_to = "exact"

    def fold(self, arr):
        return arr

@register_kernel
class ExactKernel:
    name = "exact"

    def fold(self, arr):
        return arr

@register_kernel
class TunedKernel(FastKernel):
    name = "tuned"
"""

CALLERS_SRC = """\
from functools import partial

from repro.kernels.fx import FastKernel
from repro.kernels.registry import get_kernel

def helper(x):
    return x

def direct():
    k = get_kernel("fast")
    return k.fold(None)

def dynamic(name):
    k = get_kernel(name)
    return k.fold(None)

def escalate():
    k = get_kernel("fast")
    e = k.exact_variant()
    return e.fold(None)

def inherited_escalation():
    k = get_kernel("tuned")
    return get_kernel(k.escalates_to)().fold(None)

def via_partial():
    f = partial(helper, 1)
    return f()

def via_partial_method():
    f = partial(FastKernel.fold, None)
    return f()
"""


@pytest.fixture(scope="module")
def index() -> ProjectIndex:
    return build_index(
        ("repro/kernels/fx.py", KERNELS_SRC),
        ("repro/serve/callers.py", CALLERS_SRC),
    )


def edges(index: ProjectIndex, qualname: str):
    return index.call_edges(index.functions[qualname])


def test_callgraph_indexes_kernels_by_registry_name(index):
    assert set(index.kernels) == {"fast", "exact", "tuned"}
    assert index.kernels["fast"].qualname == "repro.kernels.fx.FastKernel"


def test_callgraph_literal_registry_dispatch(index):
    out = edges(index, "repro.serve.callers.direct")
    assert "repro.kernels.fx.FastKernel.fold" in out
    assert "repro.kernels.fx.ExactKernel.fold" not in out


def test_callgraph_unknown_registry_key_is_may_alias(index):
    # get_kernel(<non-literal>) must resolve to every registered kernel
    # so downstream analyses stay conservative.
    out = edges(index, "repro.serve.callers.dynamic")
    assert "repro.kernels.fx.FastKernel.fold" in out
    assert "repro.kernels.fx.ExactKernel.fold" in out


def test_callgraph_escalation_chain(index):
    out = edges(index, "repro.serve.callers.escalate")
    # e = k.exact_variant() must land on the exact escalation target —
    # and only there (escalate() never calls the fast kernel's fold).
    assert "repro.kernels.fx.ExactKernel.fold" in out
    assert "repro.kernels.fx.FastKernel.fold" not in out


def test_callgraph_inherited_escalates_to(index):
    # TunedKernel inherits escalates_to="exact" from FastKernel; the
    # chain walk must resolve get_kernel(k.escalates_to) through bases.
    out = edges(index, "repro.serve.callers.inherited_escalation")
    assert "repro.kernels.fx.ExactKernel.fold" in out


def test_callgraph_partial_unwrapping(index):
    assert "repro.serve.callers.helper" in edges(index, "repro.serve.callers.via_partial")
    assert "repro.kernels.fx.FastKernel.fold" in edges(
        index, "repro.serve.callers.via_partial_method"
    )


def test_callgraph_method_resolution_walks_bases(index):
    tuned = index.classes["repro.kernels.fx.TunedKernel"]
    resolved = index.resolve_method(tuned, "fold")
    assert resolved is not None
    assert resolved.qualname == "repro.kernels.fx.FastKernel.fold"


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------


def reaching_for(src: str):
    import ast

    tree = ast.parse(src)
    fn = tree.body[0]
    return fn, ReachingDefs(fn)


def test_reaching_defs_branch_union():
    src = (
        "def f(flag):\n"
        "    x = 1\n"
        "    if flag:\n"
        "        x = 2\n"
        "    y = x\n"
    )
    fn, rd = reaching_for(src)
    last = fn.body[-1]
    values = {d.kind for d in rd.defs_of(last, "x")}
    assert values == {"assign"}
    assert len(rd.defs_of(last, "x")) == 2  # both arms reach the use


def test_reaching_defs_loop_carries_back_edge():
    src = (
        "def f(items):\n"
        "    acc = None\n"
        "    for item in items:\n"
        "        use = acc\n"
        "        acc = item\n"
        "    return acc\n"
    )
    fn, rd = reaching_for(src)
    use_stmt = fn.body[1].body[0]
    kinds = {d.kind for d in rd.defs_of(use_stmt, "acc")}
    # Both the init and the loop-carried redefinition reach the use.
    assert kinds == {"assign"}
    assert len(rd.defs_of(use_stmt, "acc")) == 2


def test_reaching_defs_params_and_opaque_aug():
    src = (
        "def f(n):\n"
        "    n += 1\n"
        "    return n\n"
    )
    fn, rd = reaching_for(src)
    ret = fn.body[-1]
    kinds = {d.kind for d in rd.defs_of(ret, "n")}
    assert "aug" in kinds
