"""Unit tests for the installation self-check."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.selftest import run_selftest


def test_selftest_passes_quietly():
    assert run_selftest(verbose=False) is True


def test_selftest_cli(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "selftest: PASS" in out
    assert "BSP allreduce" in out


def test_selftest_reports_failure(monkeypatch, capsys):
    import repro.selftest as st

    def broken():
        raise AssertionError("injected")

    monkeypatch.setattr(
        st, "_CHECKS", [("injected check", broken)] + list(st._CHECKS[:1])
    )
    assert run_selftest() is False
    out = capsys.readouterr().out
    assert "FAIL (injected)" in out
