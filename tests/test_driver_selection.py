"""Tests for ``parallel_sum``'s executor selection and overrides.

The ``"auto"`` policy (serial for one worker, a real process pool when
the host has enough cores, the simulated cluster otherwise) and the
``reducers``/``partitioner`` pass-throughs were previously untested;
:attr:`JobResult.executor_kind` makes the chosen branch observable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapreduce import parallel_sum, shutdown_shared_executors
from repro.mapreduce.driver import _select_executor_kind
from repro.mapreduce.partitioner import RandomPartitioner, RoundRobinPartitioner
from tests.conftest import random_hard_array, ref_sum


@pytest.fixture(autouse=True)
def _clean_shared_pools():
    yield
    shutdown_shared_executors()


class TestAutoSelection:
    def test_single_worker_is_serial(self, rng):
        x = random_hard_array(rng, 300)
        res = parallel_sum(x, workers=1, report=True, block_items=64)
        assert res.executor_kind == "serial"
        assert res.value == ref_sum(x)

    def test_no_workers_is_serial(self, rng):
        x = random_hard_array(rng, 300)
        res = parallel_sum(x, report=True, block_items=64)
        assert res.executor_kind == "serial"

    def test_enough_cores_picks_process(self, rng, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: 64)
        x = random_hard_array(rng, 500)
        res = parallel_sum(x, workers=2, report=True, block_items=128)
        assert res.executor_kind == "process"
        assert res.zero_copy  # auto-process defaults to the data plane
        assert res.value == ref_sum(x)

    def test_too_few_cores_picks_simulated(self, rng, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: 1)
        x = random_hard_array(rng, 500)
        res = parallel_sum(x, workers=8, report=True, block_items=128)
        assert res.executor_kind == "simulated"
        assert res.value == ref_sum(x)

    def test_cpu_count_unknown_counts_as_one(self, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: None)
        assert _select_executor_kind("auto", 4) == "simulated"

    def test_explicit_kinds_pass_through(self):
        for kind in ("serial", "process", "simulated"):
            assert _select_executor_kind(kind, 8) == kind

    def test_auto_boundary_exact_core_match(self, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: 4)
        assert _select_executor_kind("auto", 4) == "process"
        assert _select_executor_kind("auto", 5) == "simulated"

    def test_all_branches_bit_identical(self, rng, monkeypatch):
        # exactness is non-negotiable: every branch must agree with the
        # serial superaccumulator bit for bit
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: 64)
        x = random_hard_array(rng, 2000)
        expect = ref_sum(x)
        for kwargs in (
            {"workers": 1},
            {"workers": 2},                       # auto -> process
            {"workers": 2, "executor": "process"},
            {"workers": 2, "executor": "process", "zero_copy": False},
            {"workers": 2, "executor": "process", "reuse_pool": False},
            {"workers": 8, "executor": "simulated"},
            {"workers": 2, "executor": "serial"},
        ):
            assert parallel_sum(x, block_items=256, **kwargs) == expect, kwargs


class TestOverrides:
    def test_reducers_override(self, rng):
        x = random_hard_array(rng, 1000)
        expect = ref_sum(x)
        for p in (1, 3, 17):
            res = parallel_sum(x, workers=4, executor="simulated",
                               reducers=p, report=True, block_items=128)
            assert res.reducers == p
            assert res.value == expect

    def test_reducers_default_to_workers(self, rng):
        x = random_hard_array(rng, 500)
        res = parallel_sum(x, workers=6, executor="simulated",
                           report=True, block_items=128)
        assert res.reducers == 6

    def test_partitioner_override(self, rng):
        x = random_hard_array(rng, 1000)
        expect = ref_sum(x)
        for part in (RoundRobinPartitioner(), RandomPartitioner(7)):
            got = parallel_sum(x, workers=4, executor="simulated",
                               partitioner=part, block_items=128)
            assert got == expect

    def test_partitioner_on_process_path(self, rng, monkeypatch):
        monkeypatch.setattr("repro.mapreduce.driver.os.cpu_count", lambda: 64)
        x = random_hard_array(rng, 1000)
        got = parallel_sum(x, workers=2, reducers=3,
                           partitioner=RandomPartitioner(3), block_items=128)
        assert got == ref_sum(x)

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            parallel_sum([1.0], reducers=0)
