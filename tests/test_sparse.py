"""Unit tests for the sparse (alpha, beta)-regularized superaccumulator."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.errors import RepresentationError
from tests.conftest import ADVERSARIAL_CASES, exact_fraction, random_hard_array, ref_sum


class TestConstruction:
    def test_zero(self):
        z = SparseSuperaccumulator.zero()
        assert z.is_zero() and z.active_count == 0
        assert z.to_float() == 0.0

    def test_from_float_value(self):
        for x in (1.0, -0.1, 1e300, 2.0**-1074, 12345.6789):
            acc = SparseSuperaccumulator.from_float(x)
            assert acc.to_fraction() == Fraction(x)
            assert acc.to_float() == x

    def test_from_float_component_bound(self):
        # O(1) components per leaf (§3 step 2)
        for x in (1e308, -1e-308, math.pi):
            assert SparseSuperaccumulator.from_float(x).active_count <= 3

    def test_from_floats_bulk(self, rng):
        x = random_hard_array(rng, 2000)
        acc = SparseSuperaccumulator.from_floats(x)
        assert acc.to_fraction() == exact_fraction(x)

    def test_invariant_validation(self):
        with pytest.raises(RepresentationError):
            SparseSuperaccumulator(
                DEFAULT_RADIX,
                np.array([0], dtype=np.int64),
                np.array([DEFAULT_RADIX.R], dtype=np.int64),  # out of range
            )
        with pytest.raises(RepresentationError):
            SparseSuperaccumulator(
                DEFAULT_RADIX,
                np.array([3, 1], dtype=np.int64),  # not increasing
                np.array([1, 1], dtype=np.int64),
            )


class TestCarryFreeAdd:
    def test_add_is_exact(self, rng):
        for _ in range(50):
            x = random_hard_array(rng, 60)
            y = random_hard_array(rng, 60)
            a = SparseSuperaccumulator.from_floats(x)
            b = SparseSuperaccumulator.from_floats(y)
            c = a.add(b)
            assert c.to_fraction() == a.to_fraction() + b.to_fraction()

    def test_result_regularized(self, rng):
        # the post-add invariant check runs in the constructor; also
        # verify digits stay within [-alpha, beta] explicitly.
        x = random_hard_array(rng, 100)
        a = SparseSuperaccumulator.from_floats(x)
        b = SparseSuperaccumulator.from_floats(-x * 0.5)
        c = a.add(b)
        assert (np.abs(c.digits) <= DEFAULT_RADIX.alpha).all()

    def test_cancellation_keeps_active_zeros(self):
        a = SparseSuperaccumulator.from_float(1.0)
        b = SparseSuperaccumulator.from_float(-1.0)
        c = a.add(b)
        assert c.is_zero()
        # the position stays active even though its digit cancelled
        assert c.active_count >= 1

    def test_carry_activates_adjacent_gap(self):
        # two near-max digits at the same position force a carry into a
        # previously inactive position
        radix = DEFAULT_RADIX
        a = SparseSuperaccumulator(
            radix, np.array([0], dtype=np.int64),
            np.array([radix.beta], dtype=np.int64),
        )
        b = SparseSuperaccumulator(
            radix, np.array([0], dtype=np.int64),
            np.array([radix.beta], dtype=np.int64),
        )
        c = a.add(b)
        assert 1 in c.indices  # the carry target became active
        assert c.to_fraction() == 2 * Fraction(radix.beta)

    def test_add_identity(self, rng):
        x = random_hard_array(rng, 50)
        a = SparseSuperaccumulator.from_floats(x)
        z = SparseSuperaccumulator.zero()
        assert a.add(z) == a
        assert z.add(a) == a

    def test_add_commutative(self, rng):
        x = random_hard_array(rng, 40)
        y = random_hard_array(rng, 40)
        a = SparseSuperaccumulator.from_floats(x)
        b = SparseSuperaccumulator.from_floats(y)
        assert a.add(b) == b.add(a)

    def test_radix_mismatch_rejected(self):
        a = SparseSuperaccumulator.zero(RadixConfig(16))
        b = SparseSuperaccumulator.zero(RadixConfig(30))
        with pytest.raises(ValueError):
            a.add(b)

    def test_add_float_chain(self, rng):
        vals = random_hard_array(rng, 150)
        acc = SparseSuperaccumulator.zero()
        for v in vals:
            acc = acc.add_float(float(v))
        assert acc.to_float() == ref_sum(vals)

    def test_sum_many(self, rng):
        parts = [SparseSuperaccumulator.from_floats(random_hard_array(rng, 30))
                 for _ in range(11)]
        total = SparseSuperaccumulator.sum_many(parts)
        assert total.to_fraction() == sum(p.to_fraction() for p in parts)


class TestRounding:
    @pytest.mark.parametrize("case", ADVERSARIAL_CASES)
    def test_adversarial(self, case):
        acc = SparseSuperaccumulator.from_floats(np.array(case))
        assert acc.to_float() == ref_sum(case)

    def test_faithful_bracket(self, rng):
        x = random_hard_array(rng, 200)
        acc = SparseSuperaccumulator.from_floats(x)
        lo, hi = acc.to_float("down"), acc.to_float("up")
        exact = exact_fraction(x)
        assert Fraction(lo) <= exact <= Fraction(hi)
        assert acc.to_float() in (lo, hi)

    def test_matches_fsum(self, rng):
        for _ in range(30):
            x = random_hard_array(rng, int(rng.integers(1, 400)))
            assert SparseSuperaccumulator.from_floats(x).to_float() == math.fsum(x)


class TestSparsity:
    def test_active_count_tracks_exponent_spread(self, rng):
        narrow = rng.random(1000)  # exponents within ~1 binade
        wide = random_hard_array(rng, 1000, emin=-400, emax=400)
        a = SparseSuperaccumulator.from_floats(narrow)
        b = SparseSuperaccumulator.from_floats(wide)
        assert a.active_count < b.active_count

    def test_dense_digits_roundtrip(self, rng):
        x = random_hard_array(rng, 100)
        acc = SparseSuperaccumulator.from_floats(x)
        dense, base = acc.to_dense_digits()
        from repro.core.digits import digits_to_int

        v, s = digits_to_int(dense, base)
        assert Fraction(v) * Fraction(2) ** s == acc.to_fraction()


class TestSerialization:
    def test_roundtrip(self, rng):
        x = random_hard_array(rng, 300)
        a = SparseSuperaccumulator.from_floats(x)
        b = SparseSuperaccumulator.from_bytes(a.to_bytes())
        assert a == b
        assert (a.indices == b.indices).all()
        assert (a.digits == b.digits).all()

    def test_zero_roundtrip(self):
        z = SparseSuperaccumulator.zero()
        assert SparseSuperaccumulator.from_bytes(z.to_bytes()).is_zero()

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            SparseSuperaccumulator.from_bytes(b"ZZZZ" + b"\0" * 9)


class TestAlternateRadix:
    @pytest.mark.parametrize("w", [8, 16, 26, 31])
    def test_exactness_across_radices(self, w, rng):
        radix = RadixConfig(w)
        x = random_hard_array(rng, 300)
        acc = SparseSuperaccumulator.from_floats(x, radix)
        assert acc.to_float() == ref_sum(x)

    def test_scalar_paper_radix(self):
        # the paper's R = 2**51: scalar path only
        radix = RadixConfig(51)
        acc = SparseSuperaccumulator.zero(radix)
        for v in [1e16, 1.0, -1e16, 0.5]:
            acc = acc.add_float(v)
        assert acc.to_float() == 1.5


class TestFromFloatVectorizedRouting:
    """Pin the leaf conversion to the vectorized single-element split."""

    @pytest.mark.parametrize(
        "x",
        [0.0, -0.0, 1.0, -1.0, 0.1, 2.0**-1074, -2.0**-1074, 1.7e308,
         math.pi * 2.0**300, -math.pi * 2.0**-300],
    )
    def test_vectorized_matches_scalar_split(self, x):
        fast = SparseSuperaccumulator.from_float(x)
        # w = 32 exceeds MAX_VECTOR_W, forcing the scalar big-int path
        slow = SparseSuperaccumulator.from_float(x, RadixConfig(32))
        assert fast.to_fraction() == slow.to_fraction() == Fraction(x)

    def test_vectorized_path_is_taken(self, monkeypatch):
        import repro.core.sparse as sparse_mod

        calls = []
        real = sparse_mod.split_floats_vec

        def spy(arr, radix):
            calls.append(arr.size)
            return real(arr, radix)

        monkeypatch.setattr(sparse_mod, "split_floats_vec", spy)
        acc = SparseSuperaccumulator.from_float(3.75)
        assert calls == [1]
        assert acc.to_fraction() == Fraction(3.75)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_non_finite_rejected(self, bad):
        from repro.errors import NonFiniteInputError

        with pytest.raises(NonFiniteInputError):
            SparseSuperaccumulator.from_float(bad)

    def test_random_floats_round_trip(self, rng):
        for x in random_hard_array(rng, 200):
            assert SparseSuperaccumulator.from_float(float(x)).to_float() == float(x)
