"""Hardening tests for the superaccumulator shuffle wire formats.

Shuffle payloads cross process boundaries, so ``from_bytes`` must treat
its input as untrusted: truncated, oversized, or bit-flipped payloads
raise a clean :class:`ValueError` (never a raw ``struct.error`` or a
silent mis-decode), and well-formed payloads round-trip exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digits import RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)


class TestSparseRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, max_size=40))
    def test_round_trip_exact(self, values):
        acc = SparseSuperaccumulator.from_floats(np.array(values, dtype=np.float64))
        back = SparseSuperaccumulator.from_bytes(acc.to_bytes())
        assert back.to_fraction() == acc.to_fraction()
        assert np.array_equal(back.indices, acc.indices)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, min_size=1, max_size=20), st.data())
    def test_truncation_raises_cleanly(self, values, data):
        payload = SparseSuperaccumulator.from_floats(
            np.array(values, dtype=np.float64)
        ).to_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(ValueError):
            SparseSuperaccumulator.from_bytes(payload[:cut])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, max_size=20), st.binary(min_size=1, max_size=64))
    def test_trailing_garbage_raises(self, values, junk):
        payload = SparseSuperaccumulator.from_floats(
            np.array(values, dtype=np.float64)
        ).to_bytes()
        with pytest.raises(ValueError):
            SparseSuperaccumulator.from_bytes(payload + junk)

    def test_bad_magic(self):
        payload = SparseSuperaccumulator.zero().to_bytes()
        with pytest.raises(ValueError, match="not a SparseSuperaccumulator"):
            SparseSuperaccumulator.from_bytes(b"XXXX" + payload[4:])

    def test_bad_width(self):
        payload = bytearray(SparseSuperaccumulator.zero().to_bytes())
        payload[4] = 255  # w field: out of [2, 61]
        with pytest.raises(ValueError, match="corrupt header"):
            SparseSuperaccumulator.from_bytes(bytes(payload))

    def test_unregularized_body_rejected(self):
        # a digit outside [-alpha, beta] would silently break exactness
        acc = SparseSuperaccumulator.from_floats(np.array([1.0, 2.0**-40]))
        payload = bytearray(acc.to_bytes())
        payload[-8:] = (int(acc.radix.R) + 5).to_bytes(8, "little", signed=True)
        with pytest.raises(ValueError):
            SparseSuperaccumulator.from_bytes(bytes(payload))

    def test_empty_payload(self):
        with pytest.raises(ValueError, match="truncated"):
            SparseSuperaccumulator.from_bytes(b"")


class TestDenseRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(finite_floats, max_size=40))
    def test_round_trip_exact(self, values):
        acc = SmallSuperaccumulator()
        acc.add_array(np.array(values, dtype=np.float64))
        back = DenseSuperaccumulator.from_bytes(acc.to_bytes())
        assert back.to_fraction() == acc.to_fraction()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, max_size=10), st.data())
    def test_truncation_raises_cleanly(self, values, data):
        acc = SmallSuperaccumulator()
        acc.add_array(np.array(values, dtype=np.float64))
        payload = acc.to_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        with pytest.raises(ValueError):
            DenseSuperaccumulator.from_bytes(payload[:cut])

    def test_oversized_raises(self):
        payload = SmallSuperaccumulator().to_bytes()
        with pytest.raises(ValueError, match="length mismatch"):
            DenseSuperaccumulator.from_bytes(payload + b"\x00" * 8)

    def test_bad_magic(self):
        payload = SmallSuperaccumulator().to_bytes()
        with pytest.raises(ValueError, match="not a DenseSuperaccumulator"):
            DenseSuperaccumulator.from_bytes(b"YYYY" + payload[4:])

    def test_bad_width(self):
        payload = bytearray(SmallSuperaccumulator().to_bytes())
        payload[4] = 0  # w field below the valid range
        with pytest.raises(ValueError, match="corrupt header"):
            DenseSuperaccumulator.from_bytes(bytes(payload))

    def test_negative_limb_count(self):
        import struct

        header = struct.pack("<4sBqqq", b"DSUP", 30, 0, -4, 1)
        with pytest.raises(ValueError, match="negative limb count"):
            DenseSuperaccumulator.from_bytes(header)

    def test_empty_payload(self):
        with pytest.raises(ValueError, match="truncated"):
            DenseSuperaccumulator.from_bytes(b"")
