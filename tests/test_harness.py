"""Unit tests for the figure harness (benchmarks/harness.py)."""

from __future__ import annotations

import pytest

from benchmarks import harness


class TestTableFormatting:
    def test_print_table(self, capsys):
        harness._print_table(
            "demo", ["a", "bb"], [(1, 0.5), (22, 0.25)]
        )
        out = capsys.readouterr().out
        assert "## demo" in out
        assert "0.5000" in out and "22" in out

    def test_fmt(self):
        assert harness._fmt(0.123456) == "0.1235"
        assert harness._fmt(7) == "7"
        assert harness._fmt("x") == "x"


class TestCommands:
    def test_main_requires_command(self):
        with pytest.raises(SystemExit):
            harness.main([])

    def test_main_unknown(self):
        with pytest.raises(SystemExit):
            harness.main(["fig9"])

    def test_thm2_quick(self, capsys):
        assert harness.main(["thm2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out and "rounds" in out

    def test_thm5_quick(self, capsys):
        assert harness.main(["thm5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "thm5 IOs" in out and "scan(n)" in out

    def test_thm4_quick(self, capsys):
        assert harness.main(["thm4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "condition-sensitive" in out
        assert "C=inf" in out


class TestSeriesShapes:
    """Light-weight shape checks on tiny sweeps (the full ones are in
    EXPERIMENTS.md); these guard the harness plumbing, not timing."""

    def test_fig2_quick_runs(self, capsys):
        assert harness.main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        for panel in ("C(X)=1", "Random", "Anderson's", "Sum=Zero"):
            assert f"Figure 2 panel: {panel}" in out

    def test_fig3_quick_runs(self, capsys):
        assert harness.main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "Figure 3 panel: Sum=Zero" in out
