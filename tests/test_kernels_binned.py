"""Differential suite: binned kernels vs the pure-Python sparse path.

The binned exponent fold (PR 6 tentpole) re-derives the exact sum from
raw bit fields — biased exponents, hidden bits, mantissa halves —
rather than from the digit split the sparse superaccumulator uses, so
the two implementations share no arithmetic. These tests pit them
against each other on the inputs where bit-field extraction goes wrong
first: subnormals (no hidden bit), signed zeros, values at the
overflow boundary, and folds engineered to exercise the deferred
bin-carry resolution. ±inf/NaN must be rejected with the same typed
error the rest of the package raises.

``binned_jit`` runs the identical battery when numba is importable and
is skipped cleanly otherwise (the CI optional-deps matrix covers both
sides).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import exact_sum
from repro.core.digits import DEFAULT_RADIX, RadixConfig, split_scaled_ints_vec
from repro.core.sparse import SparseSuperaccumulator
from repro.errors import CodecError, NonFiniteInputError
from repro.kernels import get_kernel, kernel_names, kernel_sum
from repro.kernels.binned import (
    BIN_COUNT,
    BIN_EXP_OFFSET,
    RESOLVE_CHUNKS,
    BinnedPartial,
)
from repro.util.capabilities import has_numba

KERNELS = ["binned"] + (["binned_jit"] if has_numba() else [])

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)
float_lists = st.lists(finite_floats, min_size=0, max_size=80)


def _ref(values) -> Fraction:
    return sum((Fraction(float(v)) for v in values), Fraction(0))


@pytest.fixture(params=KERNELS)
def kernel(request):
    return get_kernel(request.param)


# ---------------------------------------------------------------------------
# hypothesis differentials vs the sparse superaccumulator


@pytest.mark.parametrize("name", KERNELS)
@given(values=float_lists)
@settings(max_examples=150, deadline=None)
def test_fold_matches_sparse_exactly(name, values):
    arr = np.array(values, dtype=np.float64)
    k = get_kernel(name)
    part = k.fold(arr)
    assert k.exact_fraction(part) == _ref(arr)
    ref = SparseSuperaccumulator.from_floats(arr, DEFAULT_RADIX)
    for mode in ("nearest", "down", "up"):
        assert k.round(part, mode) == ref.to_float(mode)


@pytest.mark.parametrize("name", KERNELS)
@given(values=float_lists, splits=st.integers(min_value=1, max_value=7))
@settings(max_examples=100, deadline=None)
def test_split_fold_combine_is_exact(name, values, splits):
    arr = np.array(values, dtype=np.float64)
    k = get_kernel(name)
    assert kernel_sum(k, np.array_split(arr, splits)) == exact_sum(
        arr, method="sparse"
    )


@pytest.mark.parametrize("name", KERNELS)
@given(
    values=st.lists(
        st.floats(
            allow_nan=False,
            allow_infinity=False,
            allow_subnormal=True,
            width=64,
            min_value=-1e-300,
            max_value=1e-300,
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_subnormal_panels_match(name, values):
    """Bins without a hidden bit: the subnormal/bin-1 sharing path."""
    arr = np.array(values, dtype=np.float64)
    k = get_kernel(name)
    assert k.exact_fraction(k.fold(arr)) == _ref(arr)


@pytest.mark.parametrize("name", KERNELS)
@given(values=float_lists)
@settings(max_examples=80, deadline=None)
def test_wire_roundtrip_is_stable_and_exact(name, values):
    arr = np.array(values, dtype=np.float64)
    k = get_kernel(name)
    frame = k.to_wire(k.fold(arr))
    back = k.from_wire(frame)
    assert k.to_wire(back) == frame
    assert k.exact_fraction(back) == _ref(arr)


# ---------------------------------------------------------------------------
# directed edge panels


EDGE_PANELS = [
    np.array([5e-324, -5e-324]),  # smallest subnormals, exact cancel
    np.array([5e-324] * 33),
    np.array([-0.0, 0.0, -0.0]),
    np.array([-0.0]),
    np.array([2.0**-1074, 2.0**-1022, 2.0**-1021]),  # subnormal/normal seam
    np.array([1.7976931348623157e308, -1.7976931348623157e308, 1.0]),
    np.array([1e308, 1e308, -1e308, -1e308]),  # would overflow naively
    np.array([2.0**1023, 2.0**970]),  # top bin, ulp apart
    np.array([1.0, 2.0**-53]),  # the classic rounding tie
    np.array([]),
]


@pytest.mark.parametrize("panel", range(len(EDGE_PANELS)))
def test_edge_panels_match_sparse(kernel, panel):
    arr = EDGE_PANELS[panel].astype(np.float64)
    part = kernel.fold(arr)
    assert kernel.exact_fraction(part) == _ref(arr)
    assert kernel.round(part) == exact_sum(arr, method="sparse")


@pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan])
def test_nonfinite_rejected_with_typed_error(kernel, bad):
    with pytest.raises(NonFiniteInputError):
        kernel.fold(np.array([1.0, bad, 2.0]))
    with pytest.raises(NonFiniteInputError):
        kernel.fold_scalar(bad)
    # a later chunk must also be caught, not just the first
    arr = np.ones(3000)
    arr[-1] = bad
    with pytest.raises(NonFiniteInputError):
        kernel.fold(arr)


def test_signed_zero_folds_contribute_nothing(kernel):
    part = kernel.fold(np.array([-0.0, 0.0, -0.0, 0.0]))
    assert kernel.exact_fraction(part) == 0
    assert kernel.round(part) == 0.0


# ---------------------------------------------------------------------------
# deferred bin-carry resolution


def test_resolution_triggers_at_the_chunk_budget(monkeypatch):
    import repro.kernels.binned as binned_mod

    monkeypatch.setattr(binned_mod, "RESOLVE_CHUNKS", 3)
    monkeypatch.setattr(binned_mod, "DEPOSIT_CHUNK", 16)
    rng = np.random.default_rng(5)
    arr = (rng.random(400) - 0.5) * 10.0 ** rng.integers(-100, 100, 400)
    part = BinnedPartial(DEFAULT_RADIX)
    part.deposit(arr)
    # the budget forced at least one resolution into the spill
    assert part.spill.active_count > 0
    assert part.chunks <= 3
    assert part.to_fraction() == _ref(arr)


def test_merge_resolves_when_budgets_would_overflow(monkeypatch):
    import repro.kernels.binned as binned_mod

    monkeypatch.setattr(binned_mod, "RESOLVE_CHUNKS", 2)
    rng = np.random.default_rng(6)
    k = get_kernel("binned")
    arrs = [
        (rng.random(50) - 0.5) * 10.0 ** rng.integers(-50, 50, 50)
        for _ in range(6)
    ]
    total = k.zero()
    for a in arrs:
        total = k.combine(total, k.fold(a))
        assert total.chunks <= 2
    assert k.exact_fraction(total) == _ref(np.concatenate(arrs))


def test_near_overflow_bins_resolve_exactly():
    """Bins driven to the top of the per-chunk magnitude bound.

    Every element maxes the 52-bit mantissa in one bin: the low-half
    bin sum grows by ~2**32 per element, the high half by ~2**21 —
    after a full chunk of identical values the bins sit near the
    documented per-chunk bound, and resolution must still be exact.
    """
    x = float(np.nextafter(2.0, 1.0))  # mantissa all-ones, one bin
    for n in (1, 1000, 65536):
        arr = np.full(n, x)
        part = BinnedPartial(DEFAULT_RADIX)
        part.deposit(arr)
        assert part.to_fraction() == Fraction(x) * n
        part.resolve()
        assert part.chunks == 0
        assert part.to_fraction() == Fraction(x) * n


def test_mixed_sign_bin_cancellation_is_exact(kernel):
    rng = np.random.default_rng(7)
    base = (rng.random(500) + 1.0) * 2.0**300
    arr = np.concatenate([base, -base, [3.5e-320, -1.25]])
    rng.shuffle(arr)
    part = kernel.fold(arr)
    assert kernel.exact_fraction(part) == _ref(arr)
    assert kernel.round(part) == exact_sum(arr, method="sparse")


# ---------------------------------------------------------------------------
# the scaled-int split underneath resolution


@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.integers(min_value=BIN_EXP_OFFSET, max_value=BIN_COUNT + 32),
        ),
        min_size=0,
        max_size=40,
    ),
    w=st.sampled_from([4, 16, 30, 31]),
)
@settings(max_examples=150, deadline=None)
def test_split_scaled_ints_vec_is_exact(pairs, w):
    radix = RadixConfig(w)
    v = np.array([p[0] for p in pairs], dtype=np.int64)
    e = np.array([p[1] for p in pairs], dtype=np.int64)
    idx, dig = split_scaled_ints_vec(v, e, radix)
    got = sum(
        (Fraction(int(d)) * Fraction(2) ** (w * int(j)) for j, d in zip(idx, dig)),
        Fraction(0),
    )
    want = sum(
        (Fraction(int(vi)) * Fraction(2) ** int(ei) for vi, ei in zip(v, e)),
        Fraction(0),
    )
    assert got == want
    assert (dig != 0).all()
    assert (np.abs(dig) <= radix.mask).all()


def test_split_scaled_ints_vec_rejects_int64_min():
    with pytest.raises(ValueError, match="2\\*\\*63"):
        split_scaled_ints_vec(
            np.array([np.iinfo(np.int64).min]), np.array([0]), DEFAULT_RADIX
        )


# ---------------------------------------------------------------------------
# wire-format hostility specific to BSUP


def test_decode_rejects_bins_beyond_the_chunk_budget():
    from repro import codec

    k = get_kernel("binned")
    arr = np.array([1.0, 2.0**-300])
    frame = bytearray(k.to_wire(k.fold(arr)))
    # header: <4sqq> = magic, chunks, nbins; zero the chunk budget so
    # the (legitimately folded) bins exceed what 0 chunks can produce
    frame[4:12] = (0).to_bytes(8, "little")
    with pytest.raises(CodecError, match="chunk budget"):
        codec.decode_binned(bytes(frame))


def test_decode_rejects_unsorted_or_out_of_range_bins():
    from repro import codec
    from repro.core.sparse import SparseSuperaccumulator

    spill = SparseSuperaccumulator(DEFAULT_RADIX)
    good = codec.encode_binned(
        1,
        np.array([5, 4], dtype=np.int64),
        np.array([1, 1], dtype=np.int64),
        np.array([0, 0], dtype=np.int64),
        spill,
    )
    with pytest.raises(CodecError, match="strictly increasing"):
        codec.decode_binned(good)
    bad_range = codec.encode_binned(
        1,
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([0], dtype=np.int64),
        spill,
    )
    with pytest.raises(CodecError, match="biased-exponent range"):
        codec.decode_binned(bad_range)


# ---------------------------------------------------------------------------
# jit-specific plumbing


def test_binned_jit_registration_tracks_capability():
    assert ("binned_jit" in kernel_names()) == has_numba()


@pytest.mark.skipif(not has_numba(), reason="numba not installed")
def test_binned_jit_matches_binned_bitwise():
    rng = np.random.default_rng(9)
    arr = (rng.random(200_000) - 0.5) * 10.0 ** rng.integers(-250, 250, 200_000)
    kj = get_kernel("binned_jit")
    kb = get_kernel("binned")
    assert kj.round(kj.fold(arr)) == kb.round(kb.fold(arr))
    assert kj.exact_fraction(kj.fold(arr)) == _ref(arr)


def test_binned_jit_without_numba_falls_back_to_numpy_fold():
    """Direct instantiation with no numba still sums exactly."""
    if has_numba():
        pytest.skip("numba installed: the fallback path is not reachable")
    from repro.kernels.binned_jit import BinnedJitKernel

    k = BinnedJitKernel()
    rng = np.random.default_rng(10)
    arr = (rng.random(5000) - 0.5) * 10.0 ** rng.integers(-100, 100, 5000)
    assert k.round(k.fold(arr)) == exact_sum(arr, method="sparse")
