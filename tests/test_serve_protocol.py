"""Protocol unit and fuzz tests: framing, codec, malformed-byte safety.

The contract under test: any byte sequence fed to the decoder either
yields message objects or raises :class:`ProtocolError` — never a raw
``json``/``struct``/``UnicodeDecodeError`` — and payload-level errors
leave the decoder usable for subsequent frames.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np
import pytest

from repro import codec
from repro.errors import ProtocolError
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    LENGTH_PREFIX,
    decode_bytes_field,
    decode_payload,
    encode_bytes_field,
    encode_batch_frame,
    encode_frame,
    parse_payload,
    read_frame,
)
from tests.conftest import random_hard_array


def roundtrip(obj):
    frame = encode_frame(obj)
    (length,) = LENGTH_PREFIX.unpack(frame[:4])
    assert length == len(frame) - 4
    assert frame.endswith(b"\n")
    return decode_payload(frame[4:])


class TestFraming:
    def test_roundtrip_simple(self):
        obj = {"op": "add", "stream": "s", "value": 1.5, "id": 7}
        assert roundtrip(obj) == obj

    def test_floats_bit_exact(self, rng):
        values = random_hard_array(rng, 200).tolist()
        values += [5e-324, -5e-324, 1.7976931348623157e308, 0.0, -0.0, 2.0**-1074]
        back = roundtrip({"values": values})["values"]
        assert len(back) == len(values)
        for a, b in zip(values, back):
            assert (a == b and np.signbit(a) == np.signbit(b)) or a != a

    def test_unicode_stream_names(self):
        obj = {"op": "value", "stream": "温度/sensor-Δ7"}
        assert roundtrip(obj) == obj

    def test_frames_are_json_lines(self):
        frame = encode_frame({"a": 1})
        assert json.loads(frame[4:].decode()) == {"a": 1}

    def test_oversized_outgoing_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"values": [1.0] * 1000}, max_frame=64)

    def test_bytes_field_roundtrip(self):
        raw = bytes(range(256)) * 3
        assert decode_bytes_field(encode_bytes_field(raw)) == raw

    @pytest.mark.parametrize("bad", [None, 42, "not base64 !!!", "abc"])
    def test_bytes_field_rejects_garbage(self, bad):
        with pytest.raises(ProtocolError):
            decode_bytes_field(bad)


class TestDecoderIncremental:
    def test_byte_at_a_time(self):
        msgs = [{"op": "ping", "id": i} for i in range(5)]
        stream = b"".join(encode_frame(m) for m in msgs)
        dec = FrameDecoder()
        got = []
        for i in range(len(stream)):
            got.extend(dec.feed(stream[i : i + 1]))
        assert got == msgs
        assert dec.pending_bytes == 0

    def test_many_frames_one_feed(self):
        msgs = [{"i": i} for i in range(20)]
        stream = b"".join(encode_frame(m) for m in msgs)
        assert FrameDecoder().feed(stream) == msgs

    def test_oversized_length_prefix_fatal(self):
        dec = FrameDecoder(max_frame=1024)
        with pytest.raises(ProtocolError) as exc:
            dec.feed(LENGTH_PREFIX.pack(1 << 30) + b"x" * 16)
        assert exc.value.fatal
        # poisoned: framing is unrecoverable
        with pytest.raises(ProtocolError):
            dec.feed(encode_frame({"op": "ping"}))

    def test_zero_length_frame_fatal(self):
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(LENGTH_PREFIX.pack(0))

    def test_invalid_json_recoverable(self):
        bad = b"{not json]\n"
        frame = LENGTH_PREFIX.pack(len(bad)) + bad
        dec = FrameDecoder()
        with pytest.raises(ProtocolError) as exc:
            dec.feed(frame)
        assert not exc.value.fatal
        # the decoder consumed the bad frame and keeps working
        assert dec.feed(encode_frame({"op": "ping"})) == [{"op": "ping"}]

    def test_non_object_json_recoverable(self):
        body = b"[1,2,3]\n"
        with pytest.raises(ProtocolError) as exc:
            FrameDecoder().feed(LENGTH_PREFIX.pack(len(body)) + body)
        assert not exc.value.fatal

    def test_invalid_utf8_recoverable(self):
        body = b"\xff\xfe{}\n"
        with pytest.raises(ProtocolError) as exc:
            FrameDecoder().feed(LENGTH_PREFIX.pack(len(body)) + body)
        assert not exc.value.fatal


class TestFuzz:
    def test_random_bytes_never_leak_raw_errors(self, rng):
        for trial in range(200):
            blob = rng.integers(0, 256, size=int(rng.integers(1, 400))).astype(
                np.uint8
            ).tobytes()
            dec = FrameDecoder(max_frame=1 << 16)
            try:
                for m in dec.feed(blob):
                    assert isinstance(m, dict)
            except ProtocolError:
                pass  # the only permitted failure mode

    def test_truncation_fuzz(self, rng):
        frame = encode_frame({"op": "add_array", "values": [1.0, 2.0, 3.0]})
        for cut in range(len(frame)):
            dec = FrameDecoder()
            try:
                out = dec.feed(frame[:cut])
            except ProtocolError:
                continue
            assert out == []  # a prefix never yields a phantom message
            assert dec.pending_bytes == cut

    def test_bitflip_fuzz(self, rng):
        frame = bytearray(encode_frame({"op": "value", "stream": "s", "id": 3}))
        for trial in range(300):
            mutated = bytearray(frame)
            pos = int(rng.integers(0, len(mutated)))
            mutated[pos] ^= 1 << int(rng.integers(0, 8))
            dec = FrameDecoder(max_frame=1 << 20)
            try:
                msgs = dec.feed(bytes(mutated))
            except ProtocolError:
                continue
            for m in msgs:
                assert isinstance(m, dict)


class TestBinaryWire:
    """BBAT batch frames: parse shape, error taxonomy, fuzz safety.

    The taxonomy under test: *framing* violations (bad length prefix)
    stay fatal exactly as in JSON mode; every *payload*-level problem
    of a binary frame — wrong magic, truncation inside the payload,
    forged lengths, non-finite values — is recoverable, because the
    frame boundary itself was intact. A shard task must never die to a
    corrupt batch; the connection answers an error and lives on.
    """

    def batch_frame(self, values, *, rid=7, stream="s", seq=None):
        return encode_batch_frame(rid, stream, np.asarray(values, dtype=np.float64), seq=seq)

    def test_parse_yields_add_array_request_shape(self):
        frame = self.batch_frame([1.5, -2.5, 5e-324], rid=9, stream="temp")
        req = parse_payload(frame[4:], binary=True)
        assert req["op"] == "add_array"
        assert req["id"] == 9
        assert req["stream"] == "temp"
        assert req["wire"] == "binary"
        assert "seq" not in req
        assert isinstance(req["values"], np.ndarray)
        assert not req["values"].flags.writeable  # zero-copy read-only view
        assert req["values"].tobytes() == np.array([1.5, -2.5, 5e-324]).tobytes()
        assert req["payload_f64"] == req["values"].tobytes()

    def test_sequenced_frame_carries_seq(self):
        frame = self.batch_frame([1.0], seq=42)
        assert parse_payload(frame[4:], binary=True)["seq"] == 42

    def test_json_payload_still_parses_on_binary_connection(self):
        frame = encode_frame({"op": "ping", "id": 1})
        assert parse_payload(frame[4:], binary=True) == {"op": "ping", "id": 1}

    def test_binary_payload_on_json_connection_is_recoverable(self):
        frame = self.batch_frame([1.0, 2.0])
        with pytest.raises(ProtocolError) as exc:
            parse_payload(frame[4:], binary=False)
        assert not exc.value.fatal

    def test_wrong_magic_recoverable(self):
        payload = b"ZZZZ" + self.batch_frame([1.0])[8:]
        with pytest.raises(ProtocolError, match="magic") as exc:
            parse_payload(payload, binary=True)
        assert not exc.value.fatal

    def test_truncated_payload_at_every_cut_recoverable(self):
        payload = self.batch_frame([1.0, -0.0, 3e300])[4:]
        for cut in range(1, len(payload)):
            with pytest.raises(ProtocolError) as exc:
                parse_payload(payload[:cut], binary=True)
            assert not exc.value.fatal, f"cut={cut} raised fatal"

    def test_oversized_vs_forged_nvalues_recoverable(self):
        payload = bytearray(self.batch_frame([1.0, 2.0])[4:])
        # forge nvalues up and down: explicit count vs byte length must disagree
        for forged in (0, 1, 3, 1 << 40):
            mutated = bytearray(payload)
            mutated[28:36] = forged.to_bytes(8, "little", signed=True)
            with pytest.raises(ProtocolError) as exc:
                parse_payload(bytes(mutated), binary=True)
            assert not exc.value.fatal

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_values_recoverable(self, bad):
        arr = np.array([1.0, bad, 2.0])
        frame = codec.encode_batch(1, codec.WAL_UNSEQUENCED, "s", arr)
        with pytest.raises(ProtocolError, match="non-finite") as exc:
            parse_payload(frame, binary=True)
        assert not exc.value.fatal

    def test_decoder_survives_corrupt_batch_between_good_frames(self):
        dec = FrameDecoder(binary=True)
        good = self.batch_frame([4.0, 5.0])
        bad_payload = b"ZZZZ" + good[8:]
        bad = LENGTH_PREFIX.pack(len(bad_payload)) + bad_payload
        assert dec.feed(good)[0]["values"].size == 2
        with pytest.raises(ProtocolError) as exc:
            dec.feed(bad)
        assert not exc.value.fatal
        assert dec.feed(good)[0]["values"].size == 2  # connection lives on

    def test_oversized_binary_frame_still_fatal(self):
        dec = FrameDecoder(max_frame=64, binary=True)
        with pytest.raises(ProtocolError) as exc:
            dec.feed(LENGTH_PREFIX.pack(1 << 20))
        assert exc.value.fatal

    def test_bitflip_fuzz_binary_mode(self, rng):
        frame = bytearray(self.batch_frame(list(range(16)), seq=3))
        for trial in range(400):
            mutated = bytearray(frame)
            for _ in range(int(rng.integers(1, 4))):
                pos = int(rng.integers(0, len(mutated)))
                mutated[pos] ^= 1 << int(rng.integers(0, 8))
            dec = FrameDecoder(max_frame=1 << 20, binary=True)
            try:
                for m in dec.feed(bytes(mutated)):
                    assert isinstance(m, dict)
            except ProtocolError:
                pass  # the only permitted failure mode, fatal or not

    def test_random_bytes_fuzz_binary_mode(self, rng):
        for trial in range(200):
            blob = rng.integers(0, 256, size=int(rng.integers(1, 400))).astype(
                np.uint8
            ).tobytes()
            dec = FrameDecoder(max_frame=1 << 16, binary=True)
            try:
                for m in dec.feed(blob):
                    assert isinstance(m, dict)
            except ProtocolError:
                pass

    def test_encode_batch_frame_respects_max_frame(self):
        with pytest.raises(ProtocolError) as exc:
            encode_batch_frame(1, "s", np.ones(1000), max_frame=64)
        assert exc.value.fatal


class TestAsyncReadFrame:
    """read_frame against real StreamReaders (the server's read path)."""

    def run(self, data: bytes, **kwargs):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            out = []
            while True:
                msg = await read_frame(reader, **kwargs)
                if msg is None:
                    return out
                out.append(msg)

        return asyncio.run(main())

    def test_reads_stream_of_frames(self):
        msgs = [{"op": "ping", "id": i} for i in range(3)]
        data = b"".join(encode_frame(m) for m in msgs)
        assert self.run(data) == msgs

    def test_clean_eof_returns_none(self):
        assert self.run(b"") == []

    def test_truncated_prefix_fatal(self):
        with pytest.raises(ProtocolError):
            self.run(b"\x00\x00")

    def test_truncated_payload_fatal(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            self.run(frame[:-3])

    def test_oversized_prefix_fatal(self):
        data = struct.pack("!I", 1 << 31) + b"junk"
        with pytest.raises(ProtocolError) as exc:
            self.run(data, max_frame=1 << 20)
        assert exc.value.fatal
