"""Differential testing: every exact algorithm, every input family.

A structured grid: each *input family* below is designed to stress one
failure mode (cancellation depth, exponent spread, tie density,
subnormals, duplicates, sign patterns), and every exact implementation
in the repository must return the identical correctly rounded float on
every instance. A disagreement pinpoints the broken implementation and
the stressing family simultaneously.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np
import pytest

from repro.baselines import hybrid_sum, ifastsum
from repro.core import exact_sum
from repro.core.fixedpoint import FixedPointRegister
from repro.pram import pram_exact_sum
from tests.conftest import ref_sum


def _fixedpoint_sum(x) -> float:
    reg = FixedPointRegister()
    reg.add_array(np.asarray(x, dtype=np.float64))
    return reg.to_float()


def _extmem_sum(x) -> float:
    from repro.extmem import BlockDevice, ExtArray, extmem_sum_sorted

    dev = BlockDevice(block_size=32, memory=32 * 8)
    src = ExtArray.from_numpy(dev, "x", np.asarray(x, dtype=np.float64))
    return extmem_sum_sorted(dev, src).value


def _mapreduce_sum(x) -> float:
    from repro.mapreduce import parallel_sum

    return parallel_sum(np.asarray(x, dtype=np.float64), block_items=37)


def _allreduce_sum(x) -> float:
    from repro.bsp import exact_allreduce_sum

    arr = np.asarray(x, dtype=np.float64)
    return exact_allreduce_sum(np.array_split(arr, 3)).values[0]


ALGORITHMS: Dict[str, Callable] = {
    "sparse": lambda x: exact_sum(x, method="sparse"),
    "small": lambda x: exact_sum(x, method="small"),
    "dense": lambda x: exact_sum(x, method="dense"),
    "ifastsum": ifastsum,
    "hybrid": hybrid_sum,
    "fixedpoint": _fixedpoint_sum,
    "pram": lambda x: pram_exact_sum(x).value,
    "extmem": _extmem_sum,
    "mapreduce": _mapreduce_sum,
    "allreduce": _allreduce_sum,
}


def _rng(seed):
    return np.random.default_rng(seed)


def fam_cancellation_tower(seed: int) -> np.ndarray:
    """Nested cancellation: pairs at every scale, one survivor."""
    r = _rng(seed)
    parts = []
    for e in range(-300, 301, 30):
        v = float(np.ldexp(1.0 + r.random(), e))
        parts += [v, -v]
    parts.append(math.pi)
    out = np.array(parts)
    r.shuffle(out)
    return out


def fam_tie_dense(seed: int) -> np.ndarray:
    """Many half-ulp ties layered on a unit base."""
    r = _rng(seed)
    crumbs = [2.0**-53, -(2.0**-53), 2.0**-54, 2.0**-105, -(2.0**-105)]
    out = np.array([1.0] + [crumbs[i % len(crumbs)] for i in range(50)])
    r.shuffle(out)
    return out


def fam_subnormal_swarm(seed: int) -> np.ndarray:
    """Hundreds of subnormals plus one normal anchor."""
    r = _rng(seed)
    subs = r.integers(-(1 << 40), 1 << 40, 200).astype(np.float64) * 2.0**-1074
    return np.concatenate([subs, np.array([2.0**-1000])])


def fam_geometric_ladder(seed: int) -> np.ndarray:
    """One value per binade over the full range (maximal sigma)."""
    exps = np.arange(-1000, 1000, 13, dtype=np.int32)
    r = _rng(seed)
    mant = 1.0 + r.random(exps.size)
    signs = r.choice([-1.0, 1.0], exps.size)
    return np.ldexp(mant, exps) * signs


def fam_duplicates(seed: int) -> np.ndarray:
    """Few distinct values, many copies (reduceat/bincount stress)."""
    r = _rng(seed)
    pool = (r.random(7) - 0.5) * 10.0 ** r.integers(-10, 10, 7)
    return r.choice(pool, 400)


def fam_alternating_huge(seed: int) -> np.ndarray:
    """Overflow-adjacent alternation with a tiny survivor."""
    return np.array([1e308, -1e308] * 20 + [1e-8, 2.0**-1074])


def fam_uniform_mixed(seed: int) -> np.ndarray:
    r = _rng(seed)
    return (r.random(500) - 0.5) * 10.0 ** r.integers(-250, 250, 500)


FAMILIES = {
    "cancellation_tower": fam_cancellation_tower,
    "tie_dense": fam_tie_dense,
    "subnormal_swarm": fam_subnormal_swarm,
    "geometric_ladder": fam_geometric_ladder,
    "duplicates": fam_duplicates,
    "alternating_huge": fam_alternating_huge,
    "uniform_mixed": fam_uniform_mixed,
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_grid(family, algo, subtests=None):
    for seed in (0, 1, 2):
        x = FAMILIES[family](seed)
        want = ref_sum(x)
        got = ALGORITHMS[algo](x)
        assert got == want, (
            f"{algo} disagrees on {family}[seed={seed}]: {got!r} != {want!r}"
        )


def test_all_algorithms_pairwise_identical(rng):
    """One joint sweep: every algorithm, same instance, one voice."""
    for seed in range(3):
        x = fam_uniform_mixed(seed + 100)
        results = {name: fn(x) for name, fn in ALGORITHMS.items()}
        assert len(set(results.values())) == 1, results
