"""Unit tests for the reproducible binned summation baseline."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.baselines.binned import binned_sum
from tests.conftest import exact_fraction, random_hard_array, ref_sum


class TestReproducibility:
    def test_permutation_invariant(self, rng):
        x = random_hard_array(rng, 5000, emin=-40, emax=40)
        base = binned_sum(x).value
        for _ in range(5):
            perm = rng.permutation(x.size)
            assert binned_sum(x[perm]).value == base

    def test_blocking_invariant(self, rng):
        # the property parallel reductions need: split anywhere, same bits
        x = random_hard_array(rng, 4000, emin=-30, emax=30)
        whole = binned_sum(x)
        # recompute with the data rotated (different chunk boundaries)
        rolled = np.roll(x, 1234)
        assert binned_sum(rolled).value == whole.value

    def test_deterministic_across_calls(self, rng):
        x = random_hard_array(rng, 1000)
        assert binned_sum(x).value == binned_sum(x.copy()).value


class TestAccuracy:
    def test_within_error_bound(self, rng):
        for _ in range(10):
            x = random_hard_array(rng, int(rng.integers(10, 3000)), emin=-50, emax=50)
            res = binned_sum(x)
            err = abs(Fraction(res.value) - exact_fraction(x))
            assert err <= Fraction(res.error_bound)

    def test_more_folds_tighter(self, rng):
        x = random_hard_array(rng, 2000, emin=-100, emax=100)
        exact = exact_fraction(x)
        e1 = abs(Fraction(binned_sum(x, fold=1).value) - exact)
        e3 = abs(Fraction(binned_sum(x, fold=3).value) - exact)
        assert e3 <= e1

    def test_not_faithfully_rounded(self):
        # the contrast with the paper's algorithms: a crumb far below
        # the bins is dropped, producing a result that is NOT the
        # faithful rounding of the true sum
        x = np.array([1.0, 2.0**-53, 2.0**-54, 2.0**-54])
        res = binned_sum(x, fold=1, width=20)
        exact_rounded = ref_sum(x)  # 1 + 2**-52
        assert exact_rounded != 1.0
        assert res.value == 1.0  # binned sum loses the crumbs

    def test_exact_when_everything_fits(self, rng):
        # narrow data well inside one fold: result is the exact sum
        x = rng.integers(-1000, 1000, 500).astype(np.float64)
        res = binned_sum(x, fold=2, width=40)
        assert res.value == ref_sum(x)


class TestEdges:
    def test_empty_and_zero(self):
        assert binned_sum([]).value == 0.0
        assert binned_sum([0.0, -0.0]).value == 0.0

    def test_single(self):
        res = binned_sum([3.25])
        assert res.value == 3.25

    def test_subnormal_clamp(self):
        x = np.array([2.0**-1074, 2.0**-1070])
        res = binned_sum(x, fold=3, width=40)
        assert res.value == ref_sum(x)  # lattice clamps at 2**-1074

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            binned_sum([1.0], width=0)
        with pytest.raises(ValueError):
            binned_sum([1.0], width=51)
        with pytest.raises(ValueError):
            binned_sum([1.0], fold=0)

    def test_nonfinite_rejected(self):
        from repro.errors import NonFiniteInputError

        with pytest.raises(NonFiniteInputError):
            binned_sum([math.inf])
