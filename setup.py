"""Legacy shim so ``pip install -e .`` works without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
the ``--no-use-pep517`` editable-install path on offline machines whose
setuptools predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
