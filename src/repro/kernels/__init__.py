"""Sum kernels: one fold/combine/round/wire protocol for every plane.

Importing this package registers the built-in kernels::

    >>> from repro.kernels import get_kernel, kernel_sum
    >>> kernel = get_kernel("sparse")
    >>> kernel_sum(kernel, [[1e100, 1.0, -1e100]])
    1.0

See :mod:`repro.kernels.base` for the protocol and the registry, and
:mod:`repro.plan` for the planner that picks a plane x kernel x tier
for a described dataset.
"""

from repro.kernels.base import (
    KernelStream,
    SumKernel,
    get_kernel,
    kernel_names,
    kernel_sum,
    register_kernel,
)
from repro.kernels.accumulators import (
    DenseKernel,
    RunningSumKernel,
    SmallKernel,
    SparseKernel,
)
from repro.kernels.binned import BinnedKernel, BinnedPartial
from repro.kernels.binned_jit import BinnedJitKernel  # registers iff numba present
from repro.kernels.speculative import (
    AdaptiveCascadeKernel,
    AdaptivePartial,
    TruncatedKernel,
)

__all__ = [
    "SumKernel",
    "KernelStream",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "kernel_sum",
    "SparseKernel",
    "DenseKernel",
    "SmallKernel",
    "RunningSumKernel",
    "BinnedKernel",
    "BinnedPartial",
    "BinnedJitKernel",
    "AdaptiveCascadeKernel",
    "AdaptivePartial",
    "TruncatedKernel",
]
