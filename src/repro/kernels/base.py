"""The :class:`SumKernel` protocol — the unit of reuse across planes.

The paper's transferability argument (§3-§6) is that one intermediate
representation — the carry-free, associatively combinable sparse
superaccumulator — makes the *same* algorithm run on PRAM,
external-memory, and MapReduce machines. This module states that as an
interface: a kernel is a fold/combine/round/wire quadruple over an
opaque *partial*, and every execution plane (serial, streaming, serve,
MapReduce, extmem, BSP, PRAM) is a schedule of kernel calls.

Two kinds of kernel exist:

* **exact** kernels (``exact = True``): every partial holds the exact
  sum of everything folded into it; ``round`` never fails.
* **speculative** kernels (``exact = False``): ``fold`` may take a
  certified fast path whose partial carries an error *bound* instead of
  full exactness; ``round`` performs the certification and raises
  :class:`~repro.errors.CertificationError` when the proof fails.
  Callers escalate to :attr:`SumKernel.escalates_to` (the paper's
  "retry, never a wrong bit" discipline — see :func:`kernel_sum`), and
  *stateful* planes use :meth:`SumKernel.exact_variant`, which returns
  a kernel whose folds never speculate.

Partials may be combined **in place**: ``combine(a, b)`` may mutate and
return ``a`` (it must never corrupt ``b``'s value). Callers that need
``a`` afterwards must not reuse it.

Since PR 9 the values a kernel folds are interpreted as **terms of an
error-free expansion**, not necessarily user data: the reduction layer
(:mod:`repro.reduce`) expands ops like ``dot``/``norm2``/``var`` into
TwoProduct/TwoSquare term streams whose exact sum *is* the true
mathematical quantity, then folds those terms through any registered
kernel. Kernels need no changes for this — folding terms is folding
floats — but two consequences are part of the contract: (1) a kernel
must not assume the stream resembles a user distribution (expansion
error terms are systematically tiny and pair with large partners), and
(2) exact-fraction finishes (``norm2``, ``mean``, ``var``) are only
hosted by kernels with ``exact = True`` — a speculative kernel's
correctly rounded float is not the exact fraction those finishes
consume (:func:`repro.reduce.kernel_supports`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, TypeVar

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import CertificationError
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "SumKernel",
    "KernelStream",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "kernel_sum",
]


class SumKernel(ABC):
    """Fold / combine / round / wire over an opaque partial-sum type.

    Attributes:
        name: registry key (``get_kernel(name)``).
        exact: whether every partial is exact (see module docstring).
        escalates_to: kernel name callers fall back to after a
            :class:`~repro.errors.CertificationError`.
        radix: digit-width configuration shared by all partials.
        counters: optional :class:`~repro.adaptive.engine.TierCounters`
            receiving fold telemetry (shared with service metrics).
    """

    name: str = "?"
    exact: bool = True
    escalates_to: str = "sparse"

    def __init__(
        self,
        radix: RadixConfig = DEFAULT_RADIX,
        counters: Optional[Any] = None,
    ) -> None:
        self.radix = radix
        self.counters = counters

    # -- the protocol ---------------------------------------------------

    @abstractmethod
    def zero(self) -> Any:
        """Partial representing an empty sum."""

    @abstractmethod
    def fold(self, block: np.ndarray) -> Any:
        """One block of float64 values -> one partial (may speculate)."""

    def fold_exact(self, block: np.ndarray) -> Any:
        """Like :meth:`fold` but never speculative; partials from this
        path are exact regardless of :attr:`exact`. Default: ``fold``.
        """
        return self.fold(block)

    def fold_scalar(self, x: float) -> Any:
        """One value -> one partial (PRAM leaves). Default: 1-fold.

        Kernels with a cheaper or canonical single-value constructor
        (sparse's ``from_float``) override this.
        """
        return self.fold(np.array([x], dtype=np.float64))

    @abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Associative merge of two partials (may consume ``a``)."""

    @abstractmethod
    def round(self, partial: Any, mode: str = "nearest") -> float:
        """Rounded float value of a partial.

        Speculative kernels certify here and raise
        :class:`~repro.errors.CertificationError` if the partial's
        error bound cannot prove correct rounding.
        """

    @abstractmethod
    def to_wire(self, partial: Any) -> bytes:
        """Serialize a partial as a :mod:`repro.codec` frame."""

    @abstractmethod
    def from_wire(self, payload: bytes) -> Any:
        """Inverse of :meth:`to_wire`; raises
        :class:`~repro.errors.CodecError` on malformed frames."""

    def exact_fraction(self, partial: Any) -> Fraction:
        """Exact value of a partial as a :class:`fractions.Fraction`.

        Defined for exact kernels (it backs the serving plane's exact
        ``mean``); speculative kernels raise.
        """
        raise NotImplementedError(f"kernel {self.name!r} has no exact fraction")

    # -- generic helpers ------------------------------------------------

    def width(self, partial: Any) -> int:
        """Representation size (the paper's sigma) for cost models."""
        return 1

    def exact_variant(self) -> "SumKernel":
        """A kernel whose ``fold`` never speculates (self if exact).

        Stateful planes (streaming, serve shards) fold into long-lived
        state where a certified *rounded* value could never be
        un-folded; they construct their kernel through this.
        """
        if self.exact:
            return self
        return get_kernel(self.escalates_to, radix=self.radix, counters=self.counters)

    def new_stream(self) -> "KernelStream":
        """A stateful counted stream over this kernel (exact folds)."""
        return KernelStream(self.exact_variant())

    def stream_from_bytes(self, payload: bytes) -> "KernelStream":
        """Restore a stream snapshot produced by ``new_stream().to_bytes()``."""
        from repro import codec

        kernel = self.exact_variant()
        count, inner = codec.decode_stream(payload)
        return KernelStream(kernel, partial=kernel.from_wire(inner), count=count)

    def fold_into(self, stream: Any, values: Iterable[float]) -> int:
        """Exact bulk fold into a stateful stream (serve-shard path).

        Stateful streams must stay exact — a certified *rounded* float
        cannot be folded into an exact accumulator without breaking the
        bit-exactness guarantee — so this path is always an exact bulk
        add, counted as a Tier-2 fold in the shared telemetry.

        Returns the number of elements folded.
        """
        arr = ensure_float64_array(values)
        stream.add_array(arr)
        if self.counters is not None:
            self.counters.record_bulk_fold()
        return int(arr.size)

    def describe(self) -> Dict[str, Any]:
        """Registry card (CLI ``plan`` output, selftest)."""
        return {"name": self.name, "exact": self.exact, "w": self.radix.w}


class KernelStream:
    """Counted stateful stream over any kernel (ExactRunningSum-shaped).

    Provides the interface the serving plane holds per stream name —
    ``add_array`` / ``merge`` / ``value`` / ``mean`` / ``count`` /
    ``to_bytes`` — on top of an arbitrary exact kernel, so every
    registered kernel can back a shard. The running-sum kernel
    overrides :meth:`SumKernel.new_stream` to return the native
    :class:`~repro.streaming.ExactRunningSum` (which keeps its deferred
    pending buffer and its ``ERSM`` snapshot compatibility).
    """

    __slots__ = ("kernel", "partial", "count")

    def __init__(self, kernel: SumKernel, partial: Any = None, count: int = 0) -> None:
        self.kernel = kernel
        self.partial = partial if partial is not None else kernel.zero()
        self.count = int(count)

    def add_array(self, values: Iterable[float]) -> None:
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        if arr.size:
            self.partial = self.kernel.combine(
                self.partial, self.kernel.fold_exact(arr)
            )
            self.count += int(arr.size)

    def merge(self, other: "KernelStream") -> None:
        # combine may consume its first argument only, so the other
        # stream's partial is never corrupted by this.
        self.partial = self.kernel.combine(self.partial, other.partial)
        self.count += other.count

    def value(self, mode: str = "nearest") -> float:
        return self.kernel.round(self.partial, mode)

    def mean(self) -> float:
        from repro.errors import EmptyStreamError
        from repro.stats import round_fraction

        if self.count == 0:
            raise EmptyStreamError("mean of empty stream")
        return round_fraction(self.exact_fraction() / self.count)

    def exact_fraction(self) -> Fraction:
        return self.kernel.exact_fraction(self.partial)

    def to_bytes(self) -> bytes:
        from repro import codec

        return codec.encode_stream(self.count, self.kernel.to_wire(self.partial))


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., SumKernel]] = {}

_KernelClass = TypeVar("_KernelClass", bound=Callable[..., SumKernel])


def register_kernel(cls: _KernelClass) -> _KernelClass:
    """Class decorator: register a kernel under its ``name``."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "?":
        raise ValueError(f"kernel class {cls!r} needs a distinct 'name'")
    _REGISTRY[name] = cls
    return cls


def kernel_names() -> Sequence[str]:
    """Sorted names of every registered kernel."""
    return tuple(sorted(_REGISTRY))


def get_kernel(
    name: str,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    counters: Optional[Any] = None,
    **options: Any,
) -> SumKernel:
    """Instantiate a registered kernel by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {list(kernel_names())}"
        ) from None
    return cls(radix=radix, counters=counters, **options)


def kernel_sum(
    kernel: SumKernel,
    blocks: Sequence[np.ndarray],
    *,
    mode: str = "nearest",
) -> float:
    """Fold + combine + round a block sequence, escalating on failure.

    The generic batch schedule every plane's serial path reduces to: a
    left fold of per-block partials, one round. A speculative kernel
    whose certification fails is transparently re-run through its
    :attr:`~SumKernel.escalates_to` kernel over the *same* blocks — a
    retry, never a wrong bit — so this function is bit-identical to the
    exact sparse reference for every registered kernel.
    """
    if mode != "nearest" and not kernel.exact:
        # Certifying fast paths only prove nearest rounding.
        kernel = kernel.exact_variant()
    if not kernel.exact:
        # Escalation replays the same blocks; a one-shot iterator would
        # come back empty on the retry.
        blocks = [np.asarray(block, dtype=np.float64) for block in blocks]
    total: Any = None
    for block in blocks:
        part = kernel.fold(np.asarray(block, dtype=np.float64))
        total = part if total is None else kernel.combine(total, part)
    if total is None:
        total = kernel.zero()
    try:
        return kernel.round(total, mode)
    except CertificationError:
        fallback = get_kernel(
            kernel.escalates_to, radix=kernel.radix, counters=kernel.counters
        )
        return kernel_sum(fallback, blocks, mode=mode)
