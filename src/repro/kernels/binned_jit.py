"""Thread-parallel exponent-bin fold via numba (optional backend).

The jitted analogue of :mod:`repro.kernels.binned`: the same
per-exponent int64 bins, but deposited by an ``@njit(parallel=True)``
loop that gives each thread a private ``(threads, BIN_COUNT)`` bin
block and merges the blocks carry-free at the end — detfp's
``if64Sum`` shape (per-thread ``IFloat64`` bins, one no-carry merge,
carries computed once), expressed as a ``prange`` over elements. True
shared-memory parallelism: no process pool, no pickling, no GIL.

Everything else — the partial, the ``BSUP`` wire frame, resolution,
rounding — is inherited from :class:`~repro.kernels.binned.BinnedKernel`,
so the two backends are bit-interchangeable on every plane.

numba is strictly optional. This module always imports cleanly; the
kernel registers only when :func:`repro.util.capabilities.has_numba`
sees a numba distribution (a cheap ``find_spec``, no import), and the
actual numba import + JIT compilation happen lazily on the first fold.
If that first import fails despite the installed distribution (broken
LLVM, ABI drift), the fold degrades to the vectorized numpy deposit
with a one-time warning — slower, never wrong.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Optional

import numpy as np

from repro.core.sparse import SparseSuperaccumulator
from repro.errors import NonFiniteInputError
from repro.kernels.base import register_kernel
from repro.kernels.binned import (
    BIN_COUNT,
    DEPOSIT_CHUNK,
    RESOLVE_CHUNKS,
    BinnedKernel,
    BinnedPartial,
)
from repro.util.capabilities import has_numba, load_numba
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["BinnedJitKernel"]

#: Compiled fold, cached module-wide after the first successful build.
_FOLD_FN: Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], int]] = None

#: True once a compile attempt failed; suppresses retries and warnings.
_FOLD_BROKEN = False


def _jit_fold() -> Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], int]]:
    """Compile (once) and return the jitted deposit, or ``None``."""
    global _FOLD_FN, _FOLD_BROKEN
    if _FOLD_FN is not None or _FOLD_BROKEN:
        return _FOLD_FN
    numba = load_numba()
    if numba is None:
        _FOLD_BROKEN = True
        if has_numba():
            # A distribution exists but would not import — worth a
            # diagnostic. (Instantiating the class with no numba at
            # all is a deliberate fallback, not a surprise.)
            warnings.warn(
                "numba is installed but failed to import; binned_jit "
                "falls back to the vectorized numpy fold",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    try:
        _FOLD_FN = _compile(numba)
    except Exception as exc:  # jit compilation failure
        _FOLD_BROKEN = True
        warnings.warn(
            f"numba JIT compilation failed ({type(exc).__name__}: {exc}); "
            f"binned_jit falls back to the vectorized numpy fold",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return _FOLD_FN


def _compile(numba: Any) -> Callable[[np.ndarray, np.ndarray, np.ndarray], int]:
    """Build the parallel deposit kernel (detfp if64Sum shape)."""
    nbins = BIN_COUNT

    @numba.njit(parallel=True, cache=False)
    def deposit(bits, out_lo, out_hi):  # pragma: no cover - jitted
        nthreads = numba.get_num_threads()
        local_lo = np.zeros((nthreads, nbins), dtype=np.int64)
        local_hi = np.zeros((nthreads, nbins), dtype=np.int64)
        bad = 0
        for i in numba.prange(bits.shape[0]):
            t = numba.get_thread_id()
            v = bits[i]
            eb = (v >> 52) & 0x7FF
            if eb == 0x7FF:
                bad += 1
            else:
                m = v & 0xFFFFFFFFFFFFF
                b = eb
                if eb != 0:
                    m |= 1 << 52
                else:
                    b = 1
                lo = m & 0xFFFFFFFF
                hi = m >> 32
                if v < 0:
                    lo = -lo
                    hi = -hi
                # Per-thread private rows: race-free without atomics,
                # and pure int64 arithmetic — exact by the
                # deferred-carry budget, so no FP rules apply here.
                local_lo[t, b] += lo
                local_hi[t, b] += hi
        # Carry-free merge of the thread blocks (single-threaded tail).
        for t in range(nthreads):
            for b in range(nbins):
                out_lo[b] += local_lo[t, b]
                out_hi[b] += local_hi[t, b]
        return bad

    # Force compilation now so a broken toolchain surfaces here, inside
    # _jit_fold's try, rather than mid-fold.
    empty = np.empty(0, dtype=np.int64)
    deposit(empty, np.zeros(nbins, dtype=np.int64), np.zeros(nbins, dtype=np.int64))
    return deposit  # type: ignore[no-any-return]


class BinnedJitKernel(BinnedKernel):
    """Exponent-bin kernel with a numba thread-parallel deposit.

    Registered as ``binned_jit`` only when a numba distribution is
    present (see the module docstring); partials, merges, wire frames
    and rounding are exactly :class:`BinnedKernel`'s, so results are
    bit-identical to every other exact kernel on every plane.
    """

    name = "binned_jit"

    def fold(self, block: np.ndarray) -> BinnedPartial:
        arr = ensure_float64_array(block)
        part = BinnedPartial(self.radix)
        if arr.size == 0:
            return part
        if not self.radix.supports_vectorized:
            check_finite_array(arr)
            part.spill = SparseSuperaccumulator.from_floats(arr, self.radix)
            return part
        fold_fn = _jit_fold()
        if fold_fn is None:
            part.deposit(arr)
            return part
        bits = arr.view(np.int64)
        bins_lo, bins_hi = part.ensure_bins()
        for start in range(0, bits.size, DEPOSIT_CHUNK):
            if part.chunks >= RESOLVE_CHUNKS:
                part.resolve()
            chunk = bits[start : start + DEPOSIT_CHUNK]
            bad = fold_fn(chunk, bins_lo, bins_hi)
            if bad:
                # The jitted loop skips non-finite elements (counting
                # them) so the bins hold only finite deposits; locate
                # the first offender for the diagnostic and discard.
                check_finite_array(arr[start : start + DEPOSIT_CHUNK])
                raise NonFiniteInputError(
                    "input contains a non-finite value"
                )  # pragma: no cover - check_finite_array raises first
            part.chunks += 1
        return part


if has_numba():
    register_kernel(BinnedJitKernel)
