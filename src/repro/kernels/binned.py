"""Exponent-binned superaccumulator kernel (vectorized Neal-style fold).

The sparse superaccumulator's bulk fold pays for generality: every
float is split into radix digits, scatter-added, and renormalized.
Neal's *small superaccumulator* observation (arXiv:1505.05571) is that
binary64 only has 2046 distinct finite exponent values, so a fold can
instead deposit each mantissa into a per-exponent integer bin — no
digit split at all — and defer every carry until one bounded
resolution pass. detfp's ``if64Sum`` uses the same shape with
per-thread bins merged carry-free at the end.

This module is the fully vectorized form of that fold:

* the biased 11-bit exponent field and 52-bit mantissa are extracted
  with int64 view/bit ops (no frexp, no per-element Python);
* the mantissa (hidden bit restored for normals) is split into a low
  32-bit and a high 21-bit half, and both halves are scatter-added
  into int64 bins with ``np.bincount`` — float64 weights, which stay
  exact because each half's per-chunk per-bin sum is below ``2**53``
  (chunks of ``2**20`` elements: low sums < ``2**52``, high sums <
  ``2**41``);
* carries are *deferred*: bins absorb up to :data:`RESOLVE_CHUNKS`
  chunk deposits (``|bin| <= RESOLVE_CHUNKS * 2**52 = 2**62``, inside
  int64) before one vectorized resolution converts them into a sparse
  superaccumulator spill via
  :func:`~repro.core.digits.split_scaled_ints_vec`;
* rounding reuses the existing exact carry-propagate round of
  :class:`~repro.core.sparse.SparseSuperaccumulator`.

Bin ``b`` (the biased exponent, with subnormals and zeros sharing bin
1 — no hidden bit there) holds integer mantissa units worth
``2**(b + BIN_EXP_OFFSET)`` each: a finite float with biased exponent
``eb`` equals ``±m * 2**(eb - 1075)`` (``m`` including the hidden
bit), and a subnormal equals ``±m * 2**(1 - 1075)``.

The partial (:class:`BinnedPartial`) = bins + chunk budget + sparse
spill, merged carry-free (bins add componentwise, spills merge via the
paper's Lemma 1 add), so the kernel serves every execution plane like
any other registered kernel. The optional numba backend
(:mod:`repro.kernels.binned_jit`) shares this partial and wire frame
and replaces only the deposit loop.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple

import numpy as np

from repro import codec
from repro.core.digits import RadixConfig, split_scaled_ints_vec
from repro.core.sparse import SparseSuperaccumulator
from repro.errors import NonFiniteInputError
from repro.kernels.base import SumKernel, register_kernel
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "BIN_COUNT",
    "BIN_EXP_OFFSET",
    "RESOLVE_CHUNKS",
    "DEPOSIT_CHUNK",
    "BinnedPartial",
    "BinnedKernel",
]

#: Bin array length: biased exponents 0..2046 are finite (2047 is
#: inf/NaN); bin 0 is never used (subnormals share bin 1, where the
#: scale matches because they carry no hidden bit).
BIN_COUNT = 2047

#: Bin ``b`` holds mantissa units of ``2**(b + BIN_EXP_OFFSET)``:
#: a normal float is ``±m * 2**(eb - 1023 - 52)``.
BIN_EXP_OFFSET = -1075

#: Deferred-carry budget, counted in deposit chunks. One chunk adds at
#: most ``2**20 * (2**32 - 1) < 2**52`` to a low bin, so after
#: ``RESOLVE_CHUNKS = 2**10`` chunks ``|bin| <= 2**62`` — still inside
#: int64. The next deposit first resolves the bins into the sparse
#: spill (one vectorized pass) and restarts the budget.
RESOLVE_CHUNKS = 1 << 10

#: Elements per deposit chunk. Bounds the per-bin float64 bincount
#: sums: low halves < ``2**20 * 2**32 = 2**52``, high halves <
#: ``2**20 * 2**21 = 2**41`` — both exactly representable in float64.
DEPOSIT_CHUNK = 1 << 20

_EXP_MASK = np.int64(0x7FF)
_MANT_MASK = np.int64((1 << 52) - 1)
_HIDDEN_BIT = np.int64(1 << 52)
_LOW32_MASK = np.int64((1 << 32) - 1)


def _deposit_chunk(
    bits: np.ndarray, bins_lo: np.ndarray, bins_hi: np.ndarray
) -> None:
    """Scatter-add one chunk of float64 bit patterns into the bins.

    Rejects non-finite values *before* touching the bins, so a raising
    call leaves them unchanged (earlier chunks of the same fold may
    already be deposited; callers discard the partial on error).
    """
    eb = (bits >> np.int64(52)) & _EXP_MASK
    nonfinite = eb == _EXP_MASK
    if nonfinite.any():
        bad = int(np.flatnonzero(nonfinite)[0])
        value = float(bits.view(np.float64)[bad])
        raise NonFiniteInputError(
            f"input contains a non-finite value at chunk offset {bad}: {value!r}"
        )
    m = (bits & _MANT_MASK) | np.where(eb != 0, _HIDDEN_BIT, np.int64(0))
    sign = np.where(bits < 0, -1.0, 1.0)
    b = np.maximum(eb, np.int64(1))
    lo = (m & _LOW32_MASK).astype(np.float64) * sign
    hi = (m >> np.int64(32)).astype(np.float64) * sign
    # Float64 bincount weights are exact here: per-bin chunk sums stay
    # below 2**53 by the DEPOSIT_CHUNK bound, so the astype is lossless.
    bins_lo += np.bincount(b, weights=lo, minlength=BIN_COUNT).astype(np.int64)
    bins_hi += np.bincount(b, weights=hi, minlength=BIN_COUNT).astype(np.int64)


class BinnedPartial:
    """Exponent bins + deferred-carry budget + sparse spill.

    Attributes:
        radix: shared digit-width configuration (used by resolution).
        bins_lo: int64[BIN_COUNT] low-half mantissa-unit sums, or
            ``None`` while no bulk deposit has happened (scalar folds
            and empty partials stay bin-free: 32 KiB per partial would
            dominate PRAM leaves otherwise).
        bins_hi: matching high-half sums (allocated together).
        chunks: deposit chunks absorbed since the last resolution
            (``<= RESOLVE_CHUNKS``; the overflow-safety budget).
        spill: resolved remainder as a sparse superaccumulator — the
            carry-free representation merges and rounding run on.

    The represented exact value is ``spill + sum_b (bins_lo[b] +
    bins_hi[b] * 2**32) * 2**(b + BIN_EXP_OFFSET)``.
    """

    __slots__ = ("radix", "bins_lo", "bins_hi", "chunks", "spill")

    def __init__(
        self,
        radix: RadixConfig,
        bins_lo: Optional[np.ndarray] = None,
        bins_hi: Optional[np.ndarray] = None,
        chunks: int = 0,
        spill: Optional[SparseSuperaccumulator] = None,
    ) -> None:
        self.radix = radix
        self.bins_lo = bins_lo
        self.bins_hi = bins_hi
        self.chunks = int(chunks)
        self.spill = spill if spill is not None else SparseSuperaccumulator(radix)

    def ensure_bins(self) -> Tuple[np.ndarray, np.ndarray]:
        """Allocate the bin arrays on first bulk deposit."""
        if self.bins_lo is None or self.bins_hi is None:
            self.bins_lo = np.zeros(BIN_COUNT, dtype=np.int64)
            self.bins_hi = np.zeros(BIN_COUNT, dtype=np.int64)
        return self.bins_lo, self.bins_hi

    def deposit(self, arr: np.ndarray) -> None:
        """Fold a contiguous float64 array into the bins (vectorized).

        Raises :class:`~repro.errors.NonFiniteInputError` on NaN or
        infinities; the partial must then be discarded (chunks folded
        before the offending one are already deposited).
        """
        bins_lo, bins_hi = self.ensure_bins()
        bits = arr.view(np.int64)
        for start in range(0, bits.size, DEPOSIT_CHUNK):
            if self.chunks >= RESOLVE_CHUNKS:
                self.resolve()
            _deposit_chunk(bits[start : start + DEPOSIT_CHUNK], bins_lo, bins_hi)
            self.chunks += 1

    def _bins_to_sparse(self) -> Optional[SparseSuperaccumulator]:
        """Current bin contents as a sparse accumulator (None if empty)."""
        if self.bins_lo is None or self.bins_hi is None:
            return None
        nz_lo = np.flatnonzero(self.bins_lo)
        nz_hi = np.flatnonzero(self.bins_hi)
        if nz_lo.size == 0 and nz_hi.size == 0:
            return None
        values = np.concatenate([self.bins_lo[nz_lo], self.bins_hi[nz_hi]])
        exponents = np.concatenate(
            [nz_lo + BIN_EXP_OFFSET, nz_hi + (BIN_EXP_OFFSET + 32)]
        )
        idx, dig = split_scaled_ints_vec(values, exponents, self.radix)
        return SparseSuperaccumulator.from_digit_pairs(idx, dig, self.radix)

    def resolve(self) -> None:
        """Fold the bins into the spill and restart the carry budget."""
        resolved = self._bins_to_sparse()
        if resolved is not None:
            self.spill = self.spill.add(resolved)
            assert self.bins_lo is not None and self.bins_hi is not None
            self.bins_lo[:] = 0
            self.bins_hi[:] = 0
        self.chunks = 0

    def merge(self, other: "BinnedPartial") -> "BinnedPartial":
        """Carry-free merge (mutates and returns self; never ``other``).

        Bins add componentwise — the binned analogue of the paper's
        carry-free accumulator add — after resolving self when the
        combined chunk budgets would exceed the int64 safety bound.
        """
        if other.radix != self.radix:
            raise ValueError("cannot merge binned partials with different radix")
        if other.spill.active_count:
            self.spill = self.spill.add(other.spill)
        if other.bins_lo is not None and other.bins_hi is not None:
            if self.chunks + other.chunks > RESOLVE_CHUNKS:
                self.resolve()
            bins_lo, bins_hi = self.ensure_bins()
            bins_lo += other.bins_lo
            bins_hi += other.bins_hi
            self.chunks += other.chunks
        return self

    def to_sparse(self) -> SparseSuperaccumulator:
        """Total value as a sparse superaccumulator (non-mutating)."""
        resolved = self._bins_to_sparse()
        if resolved is None:
            return self.spill
        return self.spill.add(resolved)

    def to_float(self, mode: str = "nearest") -> float:
        """Correctly rounded value (exact resolution + exact round)."""
        return self.to_sparse().to_float(mode)

    def to_fraction(self) -> Fraction:
        """Exact value as a Fraction."""
        return self.to_sparse().to_fraction()

    @property
    def width(self) -> int:
        """Occupied components: non-zero bins + active spill positions."""
        bins = 0
        if self.bins_lo is not None and self.bins_hi is not None:
            bins = int(
                np.count_nonzero((self.bins_lo != 0) | (self.bins_hi != 0))
            )
        return bins + self.spill.active_count

    def __repr__(self) -> str:
        return (
            f"BinnedPartial(w={self.radix.w}, bins={self.width - self.spill.active_count}, "
            f"chunks={self.chunks}, spill_active={self.spill.active_count})"
        )


@register_kernel
class BinnedKernel(SumKernel):
    """Vectorized exponent-bin kernel (exact; Neal-style deferred carry).

    Partial type: :class:`BinnedPartial`. The fold is the fastest pure
    numpy exact path in the package (~5x the sparse bulk fold at
    ``n = 2**20`` on the reference host — see ``BENCH_native.json``);
    merges stay carry-free, so the kernel serves every plane.

    Radices too wide for the vectorized integer paths (``w > 31``)
    fall back to sparse folds inside the same partial (the spill), so
    exactness never depends on the radix.
    """

    name = "binned"

    def zero(self) -> BinnedPartial:
        return BinnedPartial(self.radix)

    def fold(self, block: np.ndarray) -> BinnedPartial:
        arr = ensure_float64_array(block)
        part = BinnedPartial(self.radix)
        if arr.size == 0:
            return part
        if not self.radix.supports_vectorized:
            check_finite_array(arr)
            part.spill = SparseSuperaccumulator.from_floats(arr, self.radix)
            return part
        part.deposit(arr)
        return part

    def fold_scalar(self, x: float) -> BinnedPartial:
        # PRAM leaves: one canonical spill component beats a 32 KiB bin
        # allocation per element (from_float also rejects non-finites).
        part = BinnedPartial(self.radix)
        part.spill = SparseSuperaccumulator.from_float(float(x), self.radix)
        return part

    def combine(self, a: BinnedPartial, b: BinnedPartial) -> BinnedPartial:
        return a.merge(b)

    def round(self, partial: BinnedPartial, mode: str = "nearest") -> float:
        return partial.to_float(mode)

    def to_wire(self, partial: BinnedPartial) -> bytes:
        return codec.encode_binned(partial.chunks, *_wire_bins(partial),
                                   partial.spill)

    def from_wire(self, payload: bytes) -> BinnedPartial:
        chunks, indices, lo, hi, spill = codec.decode_binned(payload)
        # The wire's digit width wins (mirrors the sparse kernel).
        part = BinnedPartial(spill.radix, chunks=chunks, spill=spill)
        if indices.size:
            bins_lo, bins_hi = part.ensure_bins()
            bins_lo[indices] = lo
            bins_hi[indices] = hi
        return part

    def width(self, partial: BinnedPartial) -> int:
        return partial.width

    def exact_fraction(self, partial: BinnedPartial) -> Fraction:
        return partial.to_fraction()


def _wire_bins(partial: BinnedPartial) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical (indices, lo, hi) of the non-zero bins for the wire."""
    if partial.bins_lo is None or partial.bins_hi is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    nz = np.flatnonzero((partial.bins_lo != 0) | (partial.bins_hi != 0))
    return nz.astype(np.int64), partial.bins_lo[nz], partial.bins_hi[nz]
