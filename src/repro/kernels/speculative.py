"""Speculative kernels: certified fast paths behind the same protocol.

Both kernels here trade full exactness in ``fold`` for speed, carry a
rigorous error *bound* through ``combine``, and prove correctness in
``round`` — raising :class:`~repro.errors.CertificationError` when the
proof fails so the caller escalates (see
:func:`~repro.kernels.base.kernel_sum`). Speculation can cost a retry,
never a wrong bit: any value these kernels return is bit-identical to
the exact sparse reference.

* :class:`AdaptiveCascadeKernel` — Tier 0 per block: the certified
  TwoSum cascade. A certified block's partial is a 24-byte
  ``(value, remainder, bound)`` certificate; escalated blocks carry the
  full sparse accumulator. The MapReduce adaptive job is one thin
  subclass of the generic kernel job over this kernel.
* :class:`TruncatedKernel` — Tier 1: gamma-truncated sparse partials
  (§4 of the paper) with O(gamma) combines and the exact
  truncation-mass stopping proof at round time.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro import codec
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.core.truncated import TruncatedSparseSuperaccumulator
from repro.errors import CertificationError
from repro.kernels.base import SumKernel, register_kernel
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "AdaptiveCascadeKernel",
    "AdaptivePartial",
    "TruncatedKernel",
    "sum_bounds_upper",
    "certify_rounding",
]


def sum_bounds_upper(bounds: Sequence[float]) -> float:
    """Float upper bound on the exact sum of non-negative floats.

    ``math.fsum`` is correctly rounded (error <= half an ulp), so one
    relative inflation plus a subnormal quantum strictly dominates the
    true sum — keeping every downstream certificate comparison sound.
    """
    # reprolint: disable-next-line=FP003 -- fsum feeds a bound, not the sum; inflated below
    total = math.fsum(bounds)
    if total == 0.0:  # reprolint: disable=FP002 -- all-zero bounds mean exact contributions
        return 0.0
    return total * (1.0 + 2.0**-50) + 5e-324


def certify_rounding(
    acc: SparseSuperaccumulator, y: float, bound_total: float
) -> float:
    """Global certificate: prove ``y`` is the correctly rounded sum.

    Returns the margin (doublings the bound could survive), raising
    :class:`CertificationError` when the proof fails. ``bound_total ==
    0`` means every contribution was exact — nothing to prove.
    """
    if bound_total == 0.0:  # reprolint: disable=FP002 -- zero bound means nothing was truncated
        return math.inf
    lo = math.nextafter(y, -math.inf)
    hi = math.nextafter(y, math.inf)
    if not (math.isfinite(y) and math.isfinite(lo) and math.isfinite(hi)):
        raise CertificationError(
            "certified sum at the edge of the float range; rerun exactly"
        )
    retained = acc.to_fraction()
    bound = Fraction(bound_total)
    yf = Fraction(y)
    gap_lo = (retained - bound) - (yf + Fraction(lo)) / 2
    gap_hi = (yf + Fraction(hi)) / 2 - (retained + bound)
    if gap_lo <= 0 or gap_hi <= 0:
        raise CertificationError(
            "certificate mass reaches a rounding-cell boundary; rerun exactly"
        )
    half_cell = Fraction(math.ulp(y)) / 2
    # reprolint: disable-next-line=FP004 -- margin telemetry only; log2 absorbs the rounding slack
    return math.log2(float(half_cell / bound)) if half_cell > bound else 0.0


class AdaptivePartial:
    """Partial of :class:`AdaptiveCascadeKernel`.

    Either a single certified block — ``cert = (value, remainder,
    bound)``, floats whose sum is within ``bound`` of the exact block
    sum — or a materialized exact accumulator plus the accumulated
    bound and block bookkeeping. ``certs``/``fulls`` count certified
    and escalated blocks folded in (the tier telemetry).
    """

    __slots__ = ("acc", "cert", "bound", "certs", "fulls")

    def __init__(
        self,
        *,
        acc: Optional[SparseSuperaccumulator] = None,
        cert: Optional[Tuple[float, float, float]] = None,
        bound: float = 0.0,
        certs: int = 0,
        fulls: int = 0,
    ) -> None:
        self.acc = acc
        self.cert = cert
        self.bound = float(bound)
        self.certs = int(certs)
        self.fulls = int(fulls)


@register_kernel
class AdaptiveCascadeKernel(SumKernel):
    """Tier-0 speculation per block with one global proof at round time.

    ``fold`` runs the certified cascade; certified blocks become
    certificates, the rest full sparse accumulators. ``combine`` folds
    certificate values/remainders *exactly* into a sparse accumulator
    (floats fold exactly; only the bounds carry uncertainty) and adds
    the bounds rigorously. ``round`` stands only if the total
    certificate mass provably cannot move the result across a
    rounding-cell boundary — else :class:`CertificationError` and the
    caller reruns with the exact sparse kernel.
    """

    name = "adaptive"
    exact = False

    def zero(self) -> AdaptivePartial:
        return AdaptivePartial(acc=SparseSuperaccumulator.zero(self.radix))

    def fold(self, block: np.ndarray) -> AdaptivePartial:
        from repro.adaptive import certified_cascade_sum

        arr = np.asarray(block, dtype=np.float64)
        cert = certified_cascade_sum(arr)
        if cert.certified:
            return AdaptivePartial(
                cert=(cert.value, cert.remainder, cert.residual_bound),
                bound=cert.residual_bound,
                certs=1,
            )
        return AdaptivePartial(
            acc=SparseSuperaccumulator.from_floats(arr, self.radix), fulls=1
        )

    def fold_exact(self, block: np.ndarray) -> AdaptivePartial:
        arr = ensure_float64_array(block)
        check_finite_array(arr)
        return AdaptivePartial(
            acc=SparseSuperaccumulator.from_floats(arr, self.radix), fulls=1
        )

    def _materialize(self, partial: AdaptivePartial) -> SparseSuperaccumulator:
        if partial.acc is not None:
            return partial.acc
        value, remainder, _ = partial.cert
        # reprolint: disable-next-line=FP002 -- exact-zero remainder carries no mass
        floats = [value, remainder] if remainder != 0.0 else [value]
        return SparseSuperaccumulator.from_floats(
            np.array(floats, dtype=np.float64), self.radix
        )

    def combine(self, a: AdaptivePartial, b: AdaptivePartial) -> AdaptivePartial:
        return AdaptivePartial(
            acc=self._materialize(a).add(self._materialize(b)),
            bound=sum_bounds_upper([a.bound, b.bound]),
            certs=a.certs + b.certs,
            fulls=a.fulls + b.fulls,
        )

    def round(self, partial: AdaptivePartial, mode: str = "nearest") -> float:
        return self.round_detail(partial, mode)[0]

    def round_detail(
        self, partial: AdaptivePartial, mode: str = "nearest"
    ) -> Tuple[float, dict]:
        """Rounded value plus the tier telemetry of this reduction."""
        # reprolint: disable-next-line=FP002 -- exact-zero bound gate, not a tolerance
        if partial.bound != 0.0 and mode != "nearest":
            raise CertificationError(
                "adaptive certificates only prove nearest rounding; rerun exactly"
            )
        acc = self._materialize(partial)
        y = acc.to_float(mode)
        margin = certify_rounding(acc, y, partial.bound)
        counts = {
            "tier0_hits": partial.certs,
            "escalations": partial.fulls,
            "tier2_folds": 1 if partial.fulls else 0,
            "certificate_margin_bits": margin,
        }
        return y, counts

    def to_wire(self, partial: AdaptivePartial) -> bytes:
        if partial.cert is not None:
            return codec.encode_cert(*partial.cert)
        return codec.encode_composite(
            partial.bound, partial.certs, partial.fulls, partial.acc
        )

    def from_wire(self, payload: bytes) -> AdaptivePartial:
        magic = codec.peek_magic(payload)
        if magic == codec.MAGIC_CERT:
            value, remainder, bound = codec.decode_cert(payload)
            return AdaptivePartial(
                cert=(value, remainder, bound), bound=bound, certs=1
            )
        if magic == codec.MAGIC_SPARSE:
            # An escalated block shipped as a bare accumulator.
            return AdaptivePartial(acc=codec.decode_sparse(payload), fulls=1)
        bound, certs, fulls, acc = codec.decode_composite(payload)
        return AdaptivePartial(acc=acc, bound=bound, certs=certs, fulls=fulls)

    def width(self, partial: AdaptivePartial) -> int:
        return partial.acc.active_count if partial.acc is not None else 1


@register_kernel
class TruncatedKernel(SumKernel):
    """Tier-1 kernel: gamma-truncated sparse partials with a mass proof.

    Combines cost O(gamma) regardless of exponent spread; everything
    ever dropped is accounted by the exact truncation-mass bound, and
    ``round`` accepts only when that bound proves the candidate sits
    strictly inside its rounding cell (the paper's §4 stopping
    condition strengthened to *correct* rounding).
    """

    name = "truncated"
    exact = False

    def __init__(
        self,
        radix: RadixConfig = DEFAULT_RADIX,
        counters: Optional[Any] = None,
        gamma: int = 64,
    ) -> None:
        super().__init__(radix, counters)
        self.gamma = int(gamma)

    def zero(self) -> TruncatedSparseSuperaccumulator:
        return TruncatedSparseSuperaccumulator(self.gamma, self.radix)

    def fold(self, block: np.ndarray) -> TruncatedSparseSuperaccumulator:
        return TruncatedSparseSuperaccumulator.from_floats(
            block, self.gamma, self.radix
        )

    def fold_exact(self, block: np.ndarray) -> TruncatedSparseSuperaccumulator:
        raise NotImplementedError(
            "a truncated fold cannot be exact; use exact_variant()"
        )

    def combine(
        self,
        a: TruncatedSparseSuperaccumulator,
        b: TruncatedSparseSuperaccumulator,
    ) -> TruncatedSparseSuperaccumulator:
        return a.add(b)

    def round(
        self, partial: TruncatedSparseSuperaccumulator, mode: str = "nearest"
    ) -> float:
        if not partial.truncated:
            return partial.acc.to_float(mode)
        if mode != "nearest":
            raise CertificationError(
                "truncation certificates only prove nearest rounding; rerun exactly"
            )
        from repro.adaptive.engine import _tier1_certify

        y = _tier1_certify(partial)
        if y is None:
            raise CertificationError(
                "truncated mass reaches a rounding-cell boundary; rerun exactly"
            )
        return y

    def to_wire(self, partial: TruncatedSparseSuperaccumulator) -> bytes:
        max_idx = partial.max_dropped_index
        return codec.encode_truncated(
            partial.gamma,
            partial.drop_count,
            partial.truncated,
            max_idx if max_idx is not None else 0,
            partial.acc,
        )

    def from_wire(self, payload: bytes) -> TruncatedSparseSuperaccumulator:
        gamma, drops, truncated, max_idx, acc = codec.decode_truncated(payload)
        return TruncatedSparseSuperaccumulator(
            gamma,
            acc.radix,
            acc=acc,
            truncated=truncated,
            drop_count=drops,
            max_dropped_index=max_idx if drops else None,
        )

    def width(self, partial: TruncatedSparseSuperaccumulator) -> int:
        return partial.acc.active_count
