"""Exact kernels: the sparse, dense, small, and running-sum wrappers.

Each kernel adapts one accumulator class from :mod:`repro.core` /
:mod:`repro.streaming` to the :class:`~repro.kernels.base.SumKernel`
protocol. All four are *exact*: partials hold the exact sum of
everything folded in, ``round`` cannot fail, and any combine order
yields the same bits — which is precisely why one kernel serves every
execution plane.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

import numpy as np

from repro import codec
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator
from repro.kernels.base import SumKernel, register_kernel
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["SparseKernel", "DenseKernel", "SmallKernel", "RunningSumKernel"]

#: Bulk folds at or above this many elements route through the
#: vectorized exponent-binned deposit instead of the scalar-ish sparse
#: ``from_floats`` build. Below it, bin allocation + resolution
#: overhead (~32 KiB of bins) outweighs the vectorization win.
BINNED_FOLD_THRESHOLD = 2048


@register_kernel
class SparseKernel(SumKernel):
    """The paper's kernel: (alpha, beta)-regularized sparse partials.

    Partial type: :class:`~repro.core.sparse.SparseSuperaccumulator`.
    Carry-free merges keep combine O(active) and order-independent;
    this kernel is the exact reference every other kernel must match
    bitwise, and the default escalation target.
    """

    name = "sparse"

    def zero(self) -> SparseSuperaccumulator:
        return SparseSuperaccumulator.zero(self.radix)

    def fold(self, block: np.ndarray) -> SparseSuperaccumulator:
        return SparseSuperaccumulator.from_floats(block, self.radix)

    def fold_scalar(self, x: float) -> SparseSuperaccumulator:
        return SparseSuperaccumulator.from_float(float(x), self.radix)

    def combine(
        self, a: SparseSuperaccumulator, b: SparseSuperaccumulator
    ) -> SparseSuperaccumulator:
        return a.add(b)

    def round(self, partial: SparseSuperaccumulator, mode: str = "nearest") -> float:
        return partial.to_float(mode)

    def to_wire(self, partial: SparseSuperaccumulator) -> bytes:
        return codec.encode_sparse(partial)

    def from_wire(self, payload: bytes) -> SparseSuperaccumulator:
        return codec.decode_sparse(payload)

    def width(self, partial: SparseSuperaccumulator) -> int:
        return partial.active_count

    def exact_fraction(self, partial: SparseSuperaccumulator) -> Fraction:
        return partial.to_fraction()


@register_kernel
class DenseKernel(SumKernel):
    """Full fixed-point kernel: dense limb arrays over the binary64 range.

    Partial type: :class:`~repro.core.superaccumulator.DenseSuperaccumulator`
    at its full default range, so any two partials combine limb-wise.
    ``combine`` adds in place into its first argument.
    """

    name = "dense"

    def zero(self) -> DenseSuperaccumulator:
        return DenseSuperaccumulator(self.radix)

    def fold(self, block: np.ndarray) -> DenseSuperaccumulator:
        return DenseSuperaccumulator.from_array(block, self.radix)

    def combine(
        self, a: DenseSuperaccumulator, b: DenseSuperaccumulator
    ) -> DenseSuperaccumulator:
        a.add_accumulator(b)
        return a

    def round(self, partial: DenseSuperaccumulator, mode: str = "nearest") -> float:
        return partial.to_float(mode)

    def to_wire(self, partial: DenseSuperaccumulator) -> bytes:
        partial.renormalize()
        return codec.encode_dense(partial)

    def from_wire(self, payload: bytes) -> DenseSuperaccumulator:
        return codec.decode_dense(payload)

    def width(self, partial: DenseSuperaccumulator) -> int:
        return int(np.count_nonzero(partial.limbs))

    def exact_fraction(self, partial: DenseSuperaccumulator) -> Fraction:
        return partial.to_fraction()


@register_kernel
class SmallKernel(DenseKernel):
    """Neal-style comparator kernel: fixed ~70-limb small superaccumulators.

    Same wire format and combine as :class:`DenseKernel` (a small
    superaccumulator *is* a full-range dense one); the fold constructs
    the :class:`~repro.core.superaccumulator.SmallSuperaccumulator`
    subclass so per-fold cost is delta-independent.
    """

    name = "small"

    def zero(self) -> SmallSuperaccumulator:
        return SmallSuperaccumulator(self.radix)

    def fold(self, block: np.ndarray) -> SmallSuperaccumulator:
        acc = SmallSuperaccumulator(self.radix)
        acc.add_array(block)
        return acc


@register_kernel
class RunningSumKernel(SumKernel):
    """Streaming kernel: counted running sums with deferred folding.

    Partial type: :class:`~repro.streaming.ExactRunningSum` — the
    serving plane's per-stream state. Its ``ERSM`` wire frame carries
    the observation count alongside the exact accumulator, so service
    snapshots round-trip through the same kernel interface as shuffle
    payloads.
    """

    name = "running"

    def zero(self) -> Any:
        from repro.streaming import ExactRunningSum

        return ExactRunningSum(self.radix)

    def fold(self, block: np.ndarray) -> Any:
        rs = self.zero()
        arr = ensure_float64_array(block)
        check_finite_array(arr)
        if arr.size:
            rs.add_array(arr)
        return rs

    def combine(self, a: Any, b: Any) -> Any:
        a.merge(b)
        return a

    def round(self, partial: Any, mode: str = "nearest") -> float:
        return partial.value(mode)

    def to_wire(self, partial: Any) -> bytes:
        return partial.to_bytes()

    def from_wire(self, payload: bytes) -> Any:
        from repro.streaming import ExactRunningSum

        return ExactRunningSum.from_bytes(payload, self.radix)

    def width(self, partial: Any) -> int:
        return partial.exact_state().active_count

    def exact_fraction(self, partial: Any) -> Fraction:
        return partial.exact_fraction()

    def new_stream(self) -> Any:
        # The native stream type *is* the partial: it keeps its deferred
        # pending buffer and the ERSM snapshot format the service's
        # save_state files already use.
        return self.zero()

    def stream_from_bytes(self, payload: bytes) -> Any:
        return self.from_wire(payload)

    def fold_into(self, stream: Any, values: Any) -> int:
        """Exact bulk fold; large batches take the binned fast path.

        Serve shards coalesce pending ingest into one contiguous array
        and land it here. At or above :data:`BINNED_FOLD_THRESHOLD`
        elements (and when the radix supports the vectorized integer
        paths) the array is deposited through
        :class:`~repro.kernels.binned.BinnedPartial`'s chunked
        exponent-bin scatter-add and absorbed as an already-exact
        sparse partial — the same kernel the native benchmarks measure
        at 4.5-7.8x the sparse bulk fold. Both routes are exact, so the
        stream's readable state is bit-identical either way.
        """
        from repro.streaming import ExactRunningSum

        arr = ensure_float64_array(values)
        if (
            arr.size >= BINNED_FOLD_THRESHOLD
            and isinstance(stream, ExactRunningSum)
            and self.radix.supports_vectorized
        ):
            check_finite_array(arr)
            from repro.kernels.binned import BinnedPartial

            part = BinnedPartial(self.radix)
            part.deposit(arr)
            stream.absorb_exact(part.to_sparse(), int(arr.size))
            if self.counters is not None:
                self.counters.record_bulk_fold()
            return int(arr.size)
        return super().fold_into(stream, arr)
