"""Single-round MapReduce engine (paper §6.1-6.2).

Phases, matching the paper's Spark implementation:

1. **combine** — every input block is reduced locally to one small
   value (here: a serialized superaccumulator). Embarrassingly
   parallel; this is where almost all the time goes and what Figure 3's
   core-scaling measures.
2. **shuffle** — each combined value is tagged with a reducer id by the
   partitioner and grouped. Volume is ``p`` superaccumulators, not
   ``n`` records — the entire point of combining.
3. **reduce** — each reducer folds its group into one value (parallel
   across reducers).
4. **post-process** — the driver folds the ``p`` reducer outputs into
   the final answer.

Executors: :class:`SerialExecutor` runs everything in-process (used by
tests and as the 1-worker baseline); :class:`MultiprocessExecutor` uses
a ``multiprocessing`` pool, standing in for the paper's 32-core Spark
workers. Values crossing the executor boundary are ``bytes`` (each
job's ``encode``/``decode``), mirroring real shuffle serialization.

Dispatch volume is what the zero-copy data plane
(:mod:`repro.mapreduce.dataplane`) minimizes: combine items may be
:class:`~repro.mapreduce.dataplane.BlockRef` descriptors instead of
ndarrays, the job is installed once per worker by the pool initializer,
and :class:`JobResult` accounts for the bytes that did — and did not —
cross the boundary.
"""

from __future__ import annotations

import atexit
import pickle
import secrets
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mapreduce.dataplane import (
    BlockRef,
    ResolvingCombine,
    resolve_block,
    run_phase_task,
    worker_initializer,
)
from repro.mapreduce.partitioner import Partitioner, RoundRobinPartitioner
from repro.util.validation import check_positive_int

__all__ = [
    "MapReduceJob",
    "JobResult",
    "SerialExecutor",
    "MultiprocessExecutor",
    "SimulatedClusterExecutor",
    "run_job",
    "pick_start_method",
    "shared_process_executor",
    "shutdown_shared_executors",
]


class MapReduceJob(ABC):
    """A single-round MapReduce job over float blocks.

    Subclasses must be defined at module top level (the multiprocess
    executor pickles them to workers) and values exchanged between
    phases are opaque ``bytes``.
    """

    @abstractmethod
    def combine(self, block: np.ndarray) -> bytes:
        """Reduce one input block to a serialized intermediate value."""

    @abstractmethod
    def reduce(self, values: Sequence[bytes]) -> bytes:
        """Fold one reducer's group of intermediates into one."""

    @abstractmethod
    def postprocess(self, values: Sequence[bytes]) -> float:
        """Driver-side final fold over all reducer outputs."""


@dataclass
class JobResult:
    """Outcome of :func:`run_job` with per-phase observability.

    Attributes:
        value: the job's final answer.
        phase_seconds: wall-clock per phase name ("combine", "shuffle",
            "reduce", "postprocess") — the series the figure harness
            reports.
        shuffle_bytes: total bytes crossing the shuffle.
        blocks: number of input blocks combined.
        reducers: reducer count ``p``.
        input_items: total items across all combined blocks.
        input_bytes: total payload bytes of the input blocks.
        dispatch_bytes: bytes pickled to workers to *dispatch* the
            combine phase (descriptors under the zero-copy plane, full
            block payloads on the legacy path, 0 in-process).
        copies_avoided_bytes: payload bytes that would have crossed the
            process boundary per task but did not, thanks to shared
            memory (0 when no boundary exists or nothing was saved).
        executor_kind: "serial", "process" or "simulated".
        zero_copy: whether combine consumed block descriptors.
        tier_counts: adaptive-engine tier telemetry (certified vs
            escalated block counts, final certificate margin) when the
            job reports it (``AdaptiveSumJob``); ``None`` otherwise.
    """

    value: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    shuffle_bytes: int = 0
    blocks: int = 0
    reducers: int = 0
    input_items: int = 0
    input_bytes: int = 0
    dispatch_bytes: int = 0
    copies_avoided_bytes: int = 0
    executor_kind: str = "serial"
    zero_copy: bool = False
    tier_counts: Optional[Dict[str, float]] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end job time."""
        return sum(self.phase_seconds.values())

    def phase_throughput(self, phase: str = "combine") -> float:
        """Items per second through a phase (0.0 if the phase is
        untimed or instantaneous). Combine consumes ``input_items``;
        reduce and postprocess consume the shuffled accumulators."""
        seconds = self.phase_seconds.get(phase, 0.0)
        if seconds <= 0.0:
            return 0.0
        items = self.input_items if phase == "combine" else self.blocks
        return items / seconds

    @property
    def combine_bytes_per_second(self) -> float:
        """Input bytes per second through the combine phase."""
        seconds = self.phase_seconds.get("combine", 0.0)
        return self.input_bytes / seconds if seconds > 0.0 else 0.0


class SerialExecutor:
    """In-process executor: plain ``map`` (the 1-core configuration)."""

    workers = 1

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        return [fn(item) for item in items]

    def close(self) -> None:  # symmetry with the pool executor
        """No resources to release."""


def _invoke(args):
    """Top-level trampoline so (fn, item) pairs pickle to pool workers."""
    fn, item = args
    return fn(item)


def _ensure_resource_tracker() -> None:
    """Start the POSIX resource tracker before the pool forks.

    Workers inherit the tracker connection that exists at fork time.
    If the pool forks first and a shared-memory segment is created
    later, every worker spawns a *private* tracker on attach; those
    trackers only ever see the attach-side register and warn about
    "leaked" segments at exit even though the owner unlinked them.
    Pre-starting the tracker keeps the whole pool tree on one tracker,
    whose set-based cache balances attach registers against the
    owner's single unlink.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # non-POSIX: no tracker, nothing to pre-start
        return
    resource_tracker.ensure_running()


def pick_start_method(preferred: Optional[str] = None) -> str:
    """Select a ``multiprocessing`` start method for the executor.

    ``fork`` when the platform offers it (cheapest: workers inherit the
    parent image, no re-import), otherwise ``spawn`` — viable for the
    engine because the initializer-based dispatch re-installs the job
    in freshly spawned interpreters. An explicit ``preferred`` must be
    one the platform supports.
    """
    available = get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} unavailable on this platform "
                f"(have {available})"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


class MultiprocessExecutor:
    """``multiprocessing`` pool executor (the paper's worker cluster).

    Two dispatch protocols:

    * legacy ``map(fn, items)`` — pickles ``(fn, item)`` per task;
      kept for arbitrary callables and as the retry fallback;
    * installed-job ``run_phase(phase, items)`` — the job is pickled
      **once per worker** by the pool initializer
      (:func:`~repro.mapreduce.dataplane.worker_initializer`); tasks
      carry only a phase name and an item, which for combine is a
      ~100-byte :class:`~repro.mapreduce.dataplane.BlockRef` resolved
      in-worker to a zero-copy view.

    Installing a job (re)builds the pool only when the job's pickled
    form differs from the currently installed one, so repeated runs of
    an equivalent job — the ``parallel_sum`` steady state — reuse both
    the worker processes and the installed job.

    Args:
        workers: pool size; plays the role of cluster cores in Fig. 3.
        chunksize: items per task handed to a worker.
        start_method: ``"fork"`` / ``"spawn"`` / ``"forkserver"``;
            default picks fork when available, spawn otherwise.
    """

    supports_job_install = True

    def __init__(
        self,
        workers: int,
        *,
        chunksize: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = check_positive_int(workers, name="workers")
        self._chunksize = check_positive_int(chunksize, name="chunksize")
        self.start_method = pick_start_method(start_method)
        self._ctx = get_context(self.start_method)
        self._pool = None  # created lazily: plain for map(), with the
        self._closed = False  # job initializer for run_phase()
        self._job_payload: Optional[bytes] = None
        self._job_token: Optional[str] = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")

    def install_job(self, job: "MapReduceJob") -> None:
        """Install ``job`` in every worker (no-op if already installed).

        A changed job rebuilds the pool so the initializer delivers the
        new payload exactly once per worker.
        """
        self._check_open()
        payload = pickle.dumps(job)
        if payload == self._job_payload and self._pool is not None:
            return
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
        self._job_payload = payload
        self._job_token = secrets.token_hex(8)
        _ensure_resource_tracker()
        self._pool = self._ctx.Pool(
            self.workers,
            initializer=worker_initializer,
            initargs=(payload, self._job_token),
        )

    def run_phase(self, phase: str, items: Sequence[Any]) -> List[bytes]:
        """Map one job phase over ``items`` via the installed job."""
        if self._job_token is None:
            raise RuntimeError("run_phase requires install_job first")
        if not items:
            return []
        tasks = [(self._job_token, phase, item) for item in items]
        return self._pool.map(run_phase_task, tasks, chunksize=self._chunksize)

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        self._check_open()
        if not items:
            return []
        if self._pool is None:
            _ensure_resource_tracker()
            self._pool = self._ctx.Pool(self.workers)
        return self._pool.map(
            _invoke, [(fn, item) for item in items], chunksize=self._chunksize
        )

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._closed = True
        self._job_payload = None
        self._job_token = None

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# persistent executors: amortize pool spin-up across driver calls
# ----------------------------------------------------------------------

_SHARED_EXECUTORS: Dict[Tuple[int, str], MultiprocessExecutor] = {}


def shared_process_executor(
    workers: int, *, start_method: Optional[str] = None
) -> MultiprocessExecutor:
    """A process-wide :class:`MultiprocessExecutor`, created on first use.

    Keyed by ``(workers, start_method)``; repeated ``parallel_sum``
    calls with the same worker count reuse the same pool (and, via
    :meth:`MultiprocessExecutor.install_job`, the same installed job),
    so pool spin-up and per-worker job delivery are one-time costs.
    Do **not** ``close()`` the returned executor — call
    :func:`shutdown_shared_executors` instead (also run at interpreter
    exit).
    """
    method = pick_start_method(start_method)
    key = (check_positive_int(workers, name="workers"), method)
    exe = _SHARED_EXECUTORS.get(key)
    if exe is None or exe._closed:
        exe = MultiprocessExecutor(workers, start_method=method)
        _SHARED_EXECUTORS[key] = exe
    return exe


def shutdown_shared_executors() -> None:
    """Close every pooled executor created by :func:`shared_process_executor`."""
    for exe in _SHARED_EXECUTORS.values():
        exe.close()
    _SHARED_EXECUTORS.clear()


atexit.register(shutdown_shared_executors)


class SimulatedClusterExecutor:
    """Serial execution with a simulated ``p``-worker makespan clock.

    On machines without multiple cores (or to model cluster sizes beyond
    the host), tasks run serially but each task's wall time is recorded
    and greedily scheduled (longest-processing-time-first) onto
    ``workers`` virtual machines; :attr:`last_makespan` is the simulated
    parallel phase time that :func:`run_job` reports. This is the
    substitution DESIGN.md §2 documents for the paper's 32-core cluster:
    the phase structure and per-task costs are measured, only the
    concurrency is modeled.
    """

    def __init__(self, workers: int) -> None:
        self.workers = check_positive_int(workers, name="workers")
        self.last_makespan = 0.0

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        durations: List[float] = []
        out: List[bytes] = []
        for item in items:
            t0 = time.perf_counter()
            out.append(fn(item))
            durations.append(time.perf_counter() - t0)
        self.last_makespan = self._makespan(durations)
        return out

    def _makespan(self, durations: List[float]) -> float:
        loads = [0.0] * self.workers
        for d in sorted(durations, reverse=True):
            loads[loads.index(min(loads))] += d
        return max(loads) if loads else 0.0

    def close(self) -> None:
        """No resources to release."""


class _RetryingMap:
    """Task-level fault tolerance: retry failed tasks a bounded number
    of times (real frameworks reschedule failed map/reduce tasks; the
    summation jobs are deterministic and side-effect free, so a retry
    is always safe).

    Retries run in-process (the failure already consumed the executor's
    attempt); exceeding the budget re-raises the last error. The
    installed-job protocol is passed through; its in-process retry path
    resolves block descriptors locally, so a worker-side failure never
    strands data in shared memory.
    """

    def __init__(self, exe, max_retries: int, job: Optional["MapReduceJob"] = None) -> None:
        self._exe = exe
        self._max_retries = max_retries
        self._job = job

    @property
    def supports_job_install(self) -> bool:
        return bool(getattr(self._exe, "supports_job_install", False))

    def install_job(self, job: "MapReduceJob") -> None:
        self._job = job
        self._exe.install_job(job)

    @property
    def last_makespan(self):
        """Pass through the wrapped executor's simulated makespan."""
        return getattr(self._exe, "last_makespan", None)

    def run_phase(self, phase: str, items: Sequence[Any]) -> List[bytes]:
        try:
            return self._exe.run_phase(phase, items)
        except Exception:
            if self._max_retries <= 0:
                raise
        fn = getattr(self._job, phase)
        if phase == "combine":
            return self._retry_each(lambda item: fn(resolve_block(item)), items)
        return self._retry_each(fn, items)

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        try:
            return self._exe.map(fn, items)
        except Exception:
            if self._max_retries <= 0:
                raise
        return self._retry_each(fn, items)

    def _retry_each(
        self, fn: Callable[[Any], bytes], items: Sequence[Any]
    ) -> List[bytes]:
        out: List[bytes] = []
        for item in items:
            attempt = 0
            while True:
                try:
                    out.append(fn(item))
                    break
                except Exception:
                    attempt += 1
                    if attempt > self._max_retries:
                        raise
        return out


def _executor_kind(exe) -> str:
    """Classify an executor for :attr:`JobResult.executor_kind`."""
    if isinstance(exe, MultiprocessExecutor):
        return "process"
    if isinstance(exe, SimulatedClusterExecutor):
        return "simulated"
    return "serial"


def _item_items(item) -> int:
    return item.length if isinstance(item, BlockRef) else int(np.asarray(item).size)


def _item_bytes(item) -> int:
    return item.nbytes if isinstance(item, BlockRef) else int(np.asarray(item).nbytes)


#: Estimated pickle overhead beyond the raw buffer when an ndarray
#: block is dispatched to a pool worker (frame, dtype, shape).
_NDARRAY_PICKLE_OVERHEAD = 160


def _dispatch_size(item) -> int:
    """Approximate bytes pickled to dispatch one combine task."""
    if isinstance(item, BlockRef):
        return len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
    return _item_bytes(item) + _NDARRAY_PICKLE_OVERHEAD


def run_job(
    job: MapReduceJob,
    blocks: Sequence[Any],
    *,
    reducers: int,
    executor: Optional[SerialExecutor] = None,
    partitioner: Optional[Partitioner] = None,
    max_retries: int = 0,
) -> JobResult:
    """Execute one single-round MapReduce job.

    Args:
        job: the job definition (combine/reduce/postprocess).
        blocks: input blocks — NumPy float arrays (typically
            ``[b.data for b in store.blocks(name)]``) and/or zero-copy
            :class:`~repro.mapreduce.dataplane.BlockRef` descriptors
            (``store.block_refs(name)`` on a shared-memory store).
        reducers: the ``p`` of the paper's analysis.
        executor: defaults to :class:`SerialExecutor`. Executors with
            ``supports_job_install`` receive the job once per worker
            and dispatch phases by name; others get per-task callables.
        partitioner: reducer assignment; defaults to round-robin.
        max_retries: per-task retry budget for transient failures (0 =
            fail fast). Deterministic jobs make retries exactly safe.
    """
    p = check_positive_int(reducers, name="reducers")
    base_exe = executor if executor is not None else SerialExecutor()
    exe = _RetryingMap(base_exe, max_retries, job) if max_retries else base_exe
    part = partitioner if partitioner is not None else RoundRobinPartitioner()
    items = list(blocks)

    result = JobResult(value=0.0, blocks=len(items), reducers=p)
    result.executor_kind = _executor_kind(base_exe)
    result.zero_copy = any(isinstance(it, BlockRef) for it in items)
    result.input_items = sum(_item_items(it) for it in items)
    result.input_bytes = sum(_item_bytes(it) for it in items)

    installed = bool(getattr(exe, "supports_job_install", False))
    if installed:
        exe.install_job(job)
    crosses_boundary = result.executor_kind == "process"
    if crosses_boundary:
        result.dispatch_bytes = sum(_dispatch_size(it) for it in items)
        result.copies_avoided_bytes = sum(
            it.nbytes for it in items if isinstance(it, BlockRef)
        )

    t0 = time.perf_counter()
    if installed:
        combined = exe.run_phase("combine", items)
    elif result.zero_copy:
        combined = exe.map(ResolvingCombine(job), items)
    else:
        combined = exe.map(job.combine, items)
    t1 = time.perf_counter()
    result.phase_seconds["combine"] = getattr(exe, "last_makespan", None) or (t1 - t0)

    groups: List[List[bytes]] = [[] for _ in range(p)]
    for ordinal, payload in enumerate(combined):
        groups[part.assign(ordinal, p)].append(payload)
        result.shuffle_bytes += len(payload)
    occupied = [g for g in groups if g]
    t2 = time.perf_counter()
    result.phase_seconds["shuffle"] = t2 - t1

    if installed:
        reduced = exe.run_phase("reduce", occupied)
    else:
        reduced = exe.map(job.reduce, occupied)
    t3 = time.perf_counter()
    result.phase_seconds["reduce"] = getattr(exe, "last_makespan", None) or (t3 - t2)

    result.value = job.postprocess(reduced)
    result.phase_seconds["postprocess"] = time.perf_counter() - t3
    # Postprocess runs driver-side, so tier telemetry survives even
    # when combine/reduce executed in worker processes: the shuffle
    # payloads themselves carry the tier decisions.
    counts = getattr(job, "tier_counts", None)
    if counts is not None:
        result.tier_counts = dict(counts)
    return result
