"""Single-round MapReduce engine (paper §6.1-6.2).

Phases, matching the paper's Spark implementation:

1. **combine** — every input block is reduced locally to one small
   value (here: a serialized superaccumulator). Embarrassingly
   parallel; this is where almost all the time goes and what Figure 3's
   core-scaling measures.
2. **shuffle** — each combined value is tagged with a reducer id by the
   partitioner and grouped. Volume is ``p`` superaccumulators, not
   ``n`` records — the entire point of combining.
3. **reduce** — each reducer folds its group into one value (parallel
   across reducers).
4. **post-process** — the driver folds the ``p`` reducer outputs into
   the final answer.

Executors: :class:`SerialExecutor` runs everything in-process (used by
tests and as the 1-worker baseline); :class:`MultiprocessExecutor` uses
a ``multiprocessing`` pool, standing in for the paper's 32-core Spark
workers. Values crossing the executor boundary are ``bytes`` (each
job's ``encode``/``decode``), mirroring real shuffle serialization.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.mapreduce.partitioner import Partitioner, RoundRobinPartitioner
from repro.util.validation import check_positive_int

__all__ = [
    "MapReduceJob",
    "JobResult",
    "SerialExecutor",
    "MultiprocessExecutor",
    "SimulatedClusterExecutor",
    "run_job",
]


class MapReduceJob(ABC):
    """A single-round MapReduce job over float blocks.

    Subclasses must be defined at module top level (the multiprocess
    executor pickles them to workers) and values exchanged between
    phases are opaque ``bytes``.
    """

    @abstractmethod
    def combine(self, block: np.ndarray) -> bytes:
        """Reduce one input block to a serialized intermediate value."""

    @abstractmethod
    def reduce(self, values: Sequence[bytes]) -> bytes:
        """Fold one reducer's group of intermediates into one."""

    @abstractmethod
    def postprocess(self, values: Sequence[bytes]) -> float:
        """Driver-side final fold over all reducer outputs."""


@dataclass
class JobResult:
    """Outcome of :func:`run_job` with per-phase observability.

    Attributes:
        value: the job's final answer.
        phase_seconds: wall-clock per phase name ("combine", "shuffle",
            "reduce", "postprocess") — the series the figure harness
            reports.
        shuffle_bytes: total bytes crossing the shuffle.
        blocks: number of input blocks combined.
        reducers: reducer count ``p``.
    """

    value: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    shuffle_bytes: int = 0
    blocks: int = 0
    reducers: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end job time."""
        return sum(self.phase_seconds.values())


class SerialExecutor:
    """In-process executor: plain ``map`` (the 1-core configuration)."""

    workers = 1

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        return [fn(item) for item in items]

    def close(self) -> None:  # symmetry with the pool executor
        """No resources to release."""


def _invoke(args):
    """Top-level trampoline so (fn, item) pairs pickle to pool workers."""
    fn, item = args
    return fn(item)


class MultiprocessExecutor:
    """``multiprocessing`` pool executor (the paper's worker cluster).

    Args:
        workers: pool size; plays the role of cluster cores in Fig. 3.
        chunksize: items per task handed to a worker.
    """

    def __init__(self, workers: int, *, chunksize: int = 1) -> None:
        self.workers = check_positive_int(workers, name="workers")
        self._chunksize = check_positive_int(chunksize, name="chunksize")
        self._pool = get_context("fork").Pool(self.workers)

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        if not items:
            return []
        return self._pool.map(
            _invoke, [(fn, item) for item in items], chunksize=self._chunksize
        )

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "MultiprocessExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SimulatedClusterExecutor:
    """Serial execution with a simulated ``p``-worker makespan clock.

    On machines without multiple cores (or to model cluster sizes beyond
    the host), tasks run serially but each task's wall time is recorded
    and greedily scheduled (longest-processing-time-first) onto
    ``workers`` virtual machines; :attr:`last_makespan` is the simulated
    parallel phase time that :func:`run_job` reports. This is the
    substitution DESIGN.md §2 documents for the paper's 32-core cluster:
    the phase structure and per-task costs are measured, only the
    concurrency is modeled.
    """

    def __init__(self, workers: int) -> None:
        self.workers = check_positive_int(workers, name="workers")
        self.last_makespan = 0.0

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        durations: List[float] = []
        out: List[bytes] = []
        for item in items:
            t0 = time.perf_counter()
            out.append(fn(item))
            durations.append(time.perf_counter() - t0)
        self.last_makespan = self._makespan(durations)
        return out

    def _makespan(self, durations: List[float]) -> float:
        loads = [0.0] * self.workers
        for d in sorted(durations, reverse=True):
            loads[loads.index(min(loads))] += d
        return max(loads) if loads else 0.0

    def close(self) -> None:
        """No resources to release."""


class _RetryingMap:
    """Task-level fault tolerance: retry failed tasks a bounded number
    of times (real frameworks reschedule failed map/reduce tasks; the
    summation jobs are deterministic and side-effect free, so a retry
    is always safe).

    Retries run in-process (the failure already consumed the executor's
    attempt); exceeding the budget re-raises the last error.
    """

    def __init__(self, exe, max_retries: int) -> None:
        self._exe = exe
        self._max_retries = max_retries

    @property
    def last_makespan(self):
        """Pass through the wrapped executor's simulated makespan."""
        return getattr(self._exe, "last_makespan", None)

    def map(self, fn: Callable[[Any], bytes], items: Sequence[Any]) -> List[bytes]:
        try:
            return self._exe.map(fn, items)
        except Exception:
            if self._max_retries <= 0:
                raise
        out: List[bytes] = []
        for item in items:
            attempt = 0
            while True:
                try:
                    out.append(fn(item))
                    break
                except Exception:
                    attempt += 1
                    if attempt > self._max_retries:
                        raise
        return out


def run_job(
    job: MapReduceJob,
    blocks: Sequence[np.ndarray],
    *,
    reducers: int,
    executor: Optional[SerialExecutor] = None,
    partitioner: Optional[Partitioner] = None,
    max_retries: int = 0,
) -> JobResult:
    """Execute one single-round MapReduce job.

    Args:
        job: the job definition (combine/reduce/postprocess).
        blocks: input blocks (NumPy float arrays; typically
            ``[b.data for b in store.blocks(name)]``).
        reducers: the ``p`` of the paper's analysis.
        executor: defaults to :class:`SerialExecutor`.
        partitioner: reducer assignment; defaults to round-robin.
        max_retries: per-task retry budget for transient failures (0 =
            fail fast). Deterministic jobs make retries exactly safe.
    """
    p = check_positive_int(reducers, name="reducers")
    base_exe = executor if executor is not None else SerialExecutor()
    exe = _RetryingMap(base_exe, max_retries) if max_retries else base_exe
    part = partitioner if partitioner is not None else RoundRobinPartitioner()
    result = JobResult(value=0.0, blocks=len(blocks), reducers=p)

    t0 = time.perf_counter()
    combined = exe.map(job.combine, list(blocks))
    t1 = time.perf_counter()
    result.phase_seconds["combine"] = getattr(exe, "last_makespan", None) or (t1 - t0)

    groups: List[List[bytes]] = [[] for _ in range(p)]
    for ordinal, payload in enumerate(combined):
        groups[part.assign(ordinal, p)].append(payload)
        result.shuffle_bytes += len(payload)
    occupied = [g for g in groups if g]
    t2 = time.perf_counter()
    result.phase_seconds["shuffle"] = t2 - t1

    reduced = exe.map(job.reduce, occupied)
    t3 = time.perf_counter()
    result.phase_seconds["reduce"] = getattr(exe, "last_makespan", None) or (t3 - t2)

    result.value = job.postprocess(reduced)
    result.phase_seconds["postprocess"] = time.perf_counter() - t3
    return result
