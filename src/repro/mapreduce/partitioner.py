"""Reducer assignment functions ``r(x) -> [0, p)`` (paper §6.1).

The paper's map phase tags each record (after combining: each combined
superaccumulator) with a reducer id, "simply ... a random function r,
which assigns each input record to a randomly chosen reducer", with a
note that domain knowledge can balance load better. Both options are
here; the round-robin partitioner is the deterministic load-balanced
choice the experiments effectively enjoy after the combine step (one
value per block).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["Partitioner", "RandomPartitioner", "RoundRobinPartitioner"]


class Partitioner(Protocol):
    """Maps a combined value's ordinal to a reducer in ``[0, p)``."""

    def assign(self, ordinal: int, p: int) -> int:
        """Reducer id for the ``ordinal``-th value among ``p`` reducers."""
        ...


class RandomPartitioner:
    """The paper's random ``r``: uniform over reducers, seeded."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def assign(self, ordinal: int, p: int) -> int:
        check_positive_int(p, name="p")
        return int(self._rng.integers(0, p))


class RoundRobinPartitioner:
    """Deterministic balanced assignment: ``ordinal mod p``."""

    def assign(self, ordinal: int, p: int) -> int:
        check_positive_int(p, name="p")
        return ordinal % p
