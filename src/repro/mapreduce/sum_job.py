"""Summation jobs for the MapReduce runtime (paper §6).

Every exact job here is the *same* job — :class:`KernelSumJob`, a
generic schedule of :class:`~repro.kernels.base.SumKernel` calls
(``combine`` = fold + to_wire, ``reduce`` = from_wire + combine,
``postprocess`` = combine + round) — parameterized by kernel name:

* :class:`SparseSuperaccumulatorJob` — the paper's algorithm over the
  ``"sparse"`` kernel: per-block (alpha, beta)-regularized
  superaccumulators, carry-free merges, one final round. Per-block
  cost grows mildly with the exponent spread delta, visible in
  Figure 2.
* :class:`SmallSuperaccumulatorJob` — the Neal-style comparator over
  the ``"small"`` kernel: dense fixed-size accumulators,
  delta-independent cost.
* :class:`AdaptiveSumJob` — the ``"adaptive"`` kernel: certified
  Tier-0 cascade per block, certificates on the shuffle, one global
  certification at round time (speculation can cost a retry, never a
  wrong bit).

Plus two controls that intentionally bypass kernels:
:class:`NaiveSumJob` (plain ``np.sum`` everywhere, inexact by design)
and :class:`NoCombinerSumJob` (raw blocks over the shuffle, measuring
what the combine step saves).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro import codec
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.kernels import SumKernel, get_kernel
from repro.mapreduce.runtime import MapReduceJob

__all__ = [
    "KernelSumJob",
    "KernelReduceJob",
    "AdaptiveSumJob",
    "SparseSuperaccumulatorJob",
    "SmallSuperaccumulatorJob",
    "NaiveSumJob",
    "NoCombinerSumJob",
]


class KernelSumJob(MapReduceJob):
    """Exact sum as a MapReduce schedule over any registered kernel.

    The three phases are direct transcriptions of the kernel protocol,
    so adding a kernel to the registry *is* adding a MapReduce job:

    * ``combine``: block -> ``to_wire(fold(block))`` (the §6.2 combine
      step; kernels decide what crosses the shuffle — accumulators,
      certificates, ...).
    * ``reduce``: left-fold of ``from_wire`` payloads through the
      kernel's associative ``combine``.
    * ``postprocess``: one more fold over the reducer outputs, then a
      single ``round``. Speculative kernels certify here and raise
      :class:`~repro.errors.CertificationError` when the proof fails;
      the driver (``parallel_sum``) transparently reruns exactly.

    Any rounding mode other than ``"nearest"`` swaps in the kernel's
    exact variant up front, since certified fast paths only prove
    nearest rounding.

    After a successful run, :attr:`tier_counts` holds the kernel's tier
    telemetry (when it produces any) for
    :func:`~repro.mapreduce.runtime.run_job` to copy onto the
    :class:`~repro.mapreduce.runtime.JobResult`.
    """

    #: registry name of the kernel this job schedules
    kernel_name = "sparse"

    def __init__(
        self,
        radix: RadixConfig = DEFAULT_RADIX,
        mode: str = "nearest",
        kernel_name: Optional[str] = None,
    ) -> None:
        self.radix = radix
        self.mode = mode
        if kernel_name is not None:
            self.kernel_name = kernel_name
        self.tier_counts: Optional[Dict[str, float]] = None
        self._kernel: Optional[SumKernel] = None

    @property
    def kernel(self) -> SumKernel:
        """The kernel instance (built lazily; never pickled)."""
        if self._kernel is None:
            kernel = get_kernel(self.kernel_name, radix=self.radix)
            if self.mode != "nearest":
                kernel = kernel.exact_variant()
            self._kernel = kernel
        return self._kernel

    def __getstate__(self) -> dict:
        # Jobs are pickled per worker dispatch and the multiprocess
        # executor caches installs by payload bytes — the lazily built
        # kernel must not make two pickles of the same job differ.
        state = dict(self.__dict__)
        state["_kernel"] = None
        return state

    def _fold_payloads(self, values: Sequence[bytes]):
        kernel = self.kernel
        total = None
        for payload in values:
            part = kernel.from_wire(payload)
            total = part if total is None else kernel.combine(total, part)
        return total if total is not None else kernel.zero()

    def combine(self, block: np.ndarray) -> bytes:
        """Block -> one wire-framed partial (the §6.2 combine step)."""
        kernel = self.kernel
        return kernel.to_wire(kernel.fold(np.asarray(block, dtype=np.float64)))

    def reduce(self, values: Sequence[bytes]) -> bytes:
        """Associative merge of this reducer's partials."""
        return self.kernel.to_wire(self._fold_payloads(values))

    def postprocess(self, values: Sequence[bytes]) -> float:
        """Driver: merge the p reducer outputs, then round once."""
        total = self._fold_payloads(values)
        round_detail = getattr(self.kernel, "round_detail", None)
        if round_detail is not None:
            y, self.tier_counts = round_detail(total, self.mode)
            return y
        return self.kernel.round(total, self.mode)


class KernelReduceJob(KernelSumJob):
    """Kernel sum job that also publishes the merged partial's wire frame.

    The reduction engine (:mod:`repro.reduce`) folds EFT term streams
    through this job and needs the *exact* term sum back — not just the
    rounded float — for exact-fraction finishes (norm, moments).
    ``postprocess`` runs driver-side (see
    :func:`~repro.mapreduce.runtime.run_job`), so stashing the final
    accumulator's wire bytes on the job instance survives any executor,
    including process pools: workers only ever see the pickled job,
    the driver keeps this one.
    """

    #: wire frame of the merged final accumulator (set by postprocess)
    partial_wire: Optional[bytes] = None

    def postprocess(self, values: Sequence[bytes]) -> float:
        total = self._fold_payloads(values)
        self.partial_wire = self.kernel.to_wire(total)
        round_detail = getattr(self.kernel, "round_detail", None)
        if round_detail is not None:
            y, self.tier_counts = round_detail(total, self.mode)
            return y
        return self.kernel.round(total, self.mode)


class SparseSuperaccumulatorJob(KernelSumJob):
    """Exact sum via sparse superaccumulators (the paper's algorithm)."""

    kernel_name = "sparse"


class SmallSuperaccumulatorJob(KernelSumJob):
    """Exact sum via Neal-style dense small superaccumulators."""

    kernel_name = "small"


class AdaptiveSumJob(KernelSumJob):
    """Exact sum whose combine phase ships *certificates* when it can.

    The ``"adaptive"`` kernel's fold runs the Tier-0 certified cascade
    on each block. A certified block ships a 28-byte ``(value,
    remainder, bound)`` payload — ``value + remainder`` within
    ``bound`` of the exact block sum, both floats known exactly —
    instead of a serialized superaccumulator; escalated blocks ship the
    full exact accumulator as usual. Reducers fold certificate values
    and remainders *exactly* into a sparse accumulator (floats fold
    exactly; only the second-order bounds carry uncertainty) and add up
    the bounds rigorously.

    The driver-side postprocess then performs one **global**
    certification: the final rounded value stands only if the total
    certificate mass provably cannot move it across a rounding-cell
    boundary. If that proof fails,
    :class:`~repro.errors.CertificationError` is raised and the caller
    (``parallel_sum``) transparently reruns the fully exact job —
    speculation can cost a retry, never a wrong bit.

    Only ``mode="nearest"`` speculates; any other rounding mode makes
    this job behave exactly like :class:`SparseSuperaccumulatorJob`.

    After a successful run, :attr:`tier_counts` holds the tiering
    telemetry (certified vs escalated block counts, final margin) that
    :func:`~repro.mapreduce.runtime.run_job` copies onto the
    :class:`~repro.mapreduce.runtime.JobResult`.
    """

    kernel_name = "adaptive"

    @staticmethod
    def _certify(acc, y: float, bound_total: float) -> float:
        """Margin (in bits) by which the global certificate holds.

        The proof itself lives with the adaptive kernel
        (:func:`repro.kernels.speculative.certify_rounding`); kept here
        because it is this job's postprocess contract.
        """
        from repro.kernels.speculative import certify_rounding

        return certify_rounding(acc, y, bound_total)


class NoCombinerSumJob(MapReduceJob):
    """Ablation: the exact job *without* the local combine step.

    The paper's implementation note (§6.2) says "the goal of the
    combine step is to reduce the size of the data that need to be
    shuffled between mappers and reducers". This job skips it — raw
    blocks cross the shuffle and reducers do all the accumulation — so
    benches can measure the shuffle-volume and reduce-skew cost the
    combine step removes. Results are still exact.
    """

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        """No combining: ship the raw block bytes."""
        return codec.encode_raw_block(block)

    def reduce(self, values: Sequence[bytes]) -> bytes:
        acc = SparseSuperaccumulator.zero(self.radix)
        for payload in values:
            if codec.peek_magic(payload) != codec.MAGIC_RAW_BLOCK:
                raise ValueError("unexpected shuffle payload")
            block = codec.decode_raw_block(payload)
            acc = acc.add(SparseSuperaccumulator.from_floats(block, self.radix))
        return codec.encode_sparse(acc)

    def postprocess(self, values: Sequence[bytes]) -> float:
        acc = SparseSuperaccumulator.sum_many(
            (codec.decode_sparse(v) for v in values), self.radix
        )
        return acc.to_float(self.mode)


class NaiveSumJob(MapReduceJob):
    """Inexact control: ordinary float summation in every phase."""

    def combine(self, block: np.ndarray) -> bytes:
        # reprolint: disable-next-line=FP003 -- naive is the measured control, not a sum path
        return codec.encode_float(float(np.sum(block)))

    def reduce(self, values: Sequence[bytes]) -> bytes:
        total = 0.0
        for payload in values:
            total += codec.decode_float(payload)  # reprolint: disable=FP001 -- naive control path
        return codec.encode_float(total)

    def postprocess(self, values: Sequence[bytes]) -> float:
        total = 0.0
        for payload in values:
            total += codec.decode_float(payload)  # reprolint: disable=FP001 -- naive control path
        return total
