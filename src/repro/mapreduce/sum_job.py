"""Summation jobs for the MapReduce runtime (paper §6).

Two exact variants — the two MapReduce series of Figures 1-3:

* :class:`SparseSuperaccumulatorJob` — the paper's algorithm: combine
  each block into a sparse (alpha, beta)-regularized superaccumulator,
  shuffle the ~p accumulators, reduce with carry-free merges, round in
  the post-process. Per-block cost grows mildly with the exponent
  spread delta (more active indices), visible in Figure 2.
* :class:`SmallSuperaccumulatorJob` — the Neal-style comparator: same
  shape, dense fixed-size accumulators, delta-independent cost.

Plus :class:`NaiveSumJob`, an intentionally inexact control (plain
``np.sum`` everywhere) used by tests to show the harness would detect
a non-faithful algorithm.
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator
from repro.mapreduce.runtime import MapReduceJob

__all__ = [
    "SparseSuperaccumulatorJob",
    "SmallSuperaccumulatorJob",
    "NaiveSumJob",
    "NoCombinerSumJob",
]


class SparseSuperaccumulatorJob(MapReduceJob):
    """Exact sum via sparse superaccumulators (the paper's algorithm)."""

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        """Block -> one sparse superaccumulator (the §6.2 combine step)."""
        return SparseSuperaccumulator.from_floats(block, self.radix).to_bytes()

    def reduce(self, values: Sequence[bytes]) -> bytes:
        """Carry-free merge of this reducer's accumulators."""
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        """Driver: merge the p reducer outputs, then round once."""
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_float(self.mode)


class SmallSuperaccumulatorJob(MapReduceJob):
    """Exact sum via Neal-style dense small superaccumulators."""

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        acc = SmallSuperaccumulator(self.radix)
        acc.add_array(block)
        return acc.to_bytes()

    def _merge(self, values: Sequence[bytes]) -> DenseSuperaccumulator:
        total = SmallSuperaccumulator(self.radix)
        for payload in values:
            total.add_accumulator(DenseSuperaccumulator.from_bytes(payload))
        return total

    def reduce(self, values: Sequence[bytes]) -> bytes:
        return self._merge(values).to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        return self._merge(values).to_float(self.mode)


class NoCombinerSumJob(MapReduceJob):
    """Ablation: the exact job *without* the local combine step.

    The paper's implementation note (§6.2) says "the goal of the
    combine step is to reduce the size of the data that need to be
    shuffled between mappers and reducers". This job skips it — raw
    blocks cross the shuffle and reducers do all the accumulation — so
    benches can measure the shuffle-volume and reduce-skew cost the
    combine step removes. Results are still exact.
    """

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        """No combining: ship the raw block bytes."""
        return b"RAWB" + np.ascontiguousarray(block, dtype="<f8").tobytes()

    def reduce(self, values: Sequence[bytes]) -> bytes:
        acc = SparseSuperaccumulator.zero(self.radix)
        for payload in values:
            if payload[:4] != b"RAWB":
                raise ValueError("unexpected shuffle payload")
            block = np.frombuffer(payload, dtype="<f8", offset=4)
            acc = acc.add(SparseSuperaccumulator.from_floats(block, self.radix))
        return acc.to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_float(self.mode)


class NaiveSumJob(MapReduceJob):
    """Inexact control: ordinary float summation in every phase."""

    def combine(self, block: np.ndarray) -> bytes:
        return struct.pack("<d", float(np.sum(block)))

    def reduce(self, values: Sequence[bytes]) -> bytes:
        total = 0.0
        for payload in values:
            (v,) = struct.unpack("<d", payload)
            total += v
        return struct.pack("<d", total)

    def postprocess(self, values: Sequence[bytes]) -> float:
        total = 0.0
        for payload in values:
            (v,) = struct.unpack("<d", payload)
            total += v
        return total
