"""Summation jobs for the MapReduce runtime (paper §6).

Two exact variants — the two MapReduce series of Figures 1-3:

* :class:`SparseSuperaccumulatorJob` — the paper's algorithm: combine
  each block into a sparse (alpha, beta)-regularized superaccumulator,
  shuffle the ~p accumulators, reduce with carry-free merges, round in
  the post-process. Per-block cost grows mildly with the exponent
  spread delta (more active indices), visible in Figure 2.
* :class:`SmallSuperaccumulatorJob` — the Neal-style comparator: same
  shape, dense fixed-size accumulators, delta-independent cost.

Plus :class:`NaiveSumJob`, an intentionally inexact control (plain
``np.sum`` everywhere) used by tests to show the harness would detect
a non-faithful algorithm.
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator
from repro.errors import CertificationError
from repro.mapreduce.runtime import MapReduceJob

__all__ = [
    "AdaptiveSumJob",
    "SparseSuperaccumulatorJob",
    "SmallSuperaccumulatorJob",
    "NaiveSumJob",
    "NoCombinerSumJob",
]


#: Combine payload of a Tier-0-certified block: magic + (value,
#: remainder, bound). Value and remainder are exact floats the reducer
#: folds losslessly; only ``bound`` carries uncertainty.
_CERT = struct.Struct("<4sddd")
_CERT_MAGIC = b"ACRT"
#: Reduce payload: magic + (bound_total, cert_blocks, full_blocks),
#: followed by the merged sparse accumulator bytes.
_COMPOSITE = struct.Struct("<4sdqq")
_COMPOSITE_MAGIC = b"ACMP"


def _sum_bounds_upper(bounds: Sequence[float]) -> float:
    """Float upper bound on the exact sum of non-negative floats.

    ``math.fsum`` is correctly rounded (error <= half an ulp), so one
    relative inflation plus a subnormal quantum strictly dominates the
    true sum — keeping every downstream certificate comparison sound.
    """
    total = math.fsum(bounds)
    if total == 0.0:
        return 0.0
    return total * (1.0 + 2.0**-50) + 5e-324


class AdaptiveSumJob(MapReduceJob):
    """Exact sum whose combine phase ships *certificates* when it can.

    The combine step runs the Tier-0 certified cascade on each block.
    A certified block ships a 28-byte ``(value, remainder, bound)``
    payload — ``value + remainder`` within ``bound`` of the exact block
    sum, both floats known exactly — instead of a serialized
    superaccumulator; escalated blocks ship the full exact accumulator
    as usual. Reducers fold certificate values and remainders *exactly*
    into a sparse accumulator (floats fold exactly; only the
    second-order bounds carry uncertainty) and add up the bounds
    rigorously.

    The driver-side postprocess then performs one **global**
    certification: the final rounded value stands only if the total
    certificate mass provably cannot move it across a rounding-cell
    boundary. If that proof fails, :class:`CertificationError` is
    raised and the caller (``parallel_sum``) transparently reruns the
    fully exact job — speculation can cost a retry, never a wrong bit.

    Only ``mode="nearest"`` speculates; any other rounding mode makes
    this job behave exactly like :class:`SparseSuperaccumulatorJob`.

    After a successful run, :attr:`tier_counts` holds the tiering
    telemetry (certified vs escalated block counts, final margin) that
    :func:`~repro.mapreduce.runtime.run_job` copies onto the
    :class:`~repro.mapreduce.runtime.JobResult`.
    """

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode
        self.tier_counts: Optional[Dict[str, float]] = None

    def combine(self, block: np.ndarray) -> bytes:
        if self.mode == "nearest":
            from repro.adaptive import certified_cascade_sum

            cert = certified_cascade_sum(np.asarray(block, dtype=np.float64))
            if cert.certified:
                return _CERT.pack(
                    _CERT_MAGIC, cert.value, cert.remainder, cert.residual_bound
                )
        return SparseSuperaccumulator.from_floats(block, self.radix).to_bytes()

    def _split_payloads(
        self, values: Sequence[bytes]
    ) -> Tuple[SparseSuperaccumulator, float, int, int]:
        """Fold mixed payloads: (merged acc, bound total, certs, fulls)."""
        cert_values = []
        bounds = []
        fulls = []
        n_certs = 0
        for payload in values:
            if payload[:4] == _CERT_MAGIC:
                _, value, remainder, bound = _CERT.unpack(payload)
                cert_values.append(value)
                if remainder != 0.0:
                    cert_values.append(remainder)
                bounds.append(bound)
                n_certs += 1
            else:
                fulls.append(SparseSuperaccumulator.from_bytes(payload))
        acc = SparseSuperaccumulator.from_floats(
            np.array(cert_values, dtype=np.float64), self.radix
        )
        if fulls:
            acc = acc.add(SparseSuperaccumulator.sum_many(fulls, self.radix))
        return acc, _sum_bounds_upper(bounds), n_certs, len(fulls)

    def reduce(self, values: Sequence[bytes]) -> bytes:
        acc, bound, certs, fulls = self._split_payloads(values)
        header = _COMPOSITE.pack(_COMPOSITE_MAGIC, bound, certs, fulls)
        return header + acc.to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        accs = []
        bounds = []
        certs = 0
        fulls = 0
        for payload in values:
            if payload[:4] != _COMPOSITE_MAGIC:
                raise ValueError("unexpected adaptive reduce payload")
            _, bound, c, f = _COMPOSITE.unpack_from(payload, 0)
            bounds.append(bound)
            certs += int(c)
            fulls += int(f)
            accs.append(SparseSuperaccumulator.from_bytes(payload[_COMPOSITE.size :]))
        acc = SparseSuperaccumulator.sum_many(accs, self.radix)
        bound_total = _sum_bounds_upper(bounds)
        y = acc.to_float(self.mode)
        margin = self._certify(acc, y, bound_total)
        self.tier_counts = {
            "tier0_hits": certs,
            "escalations": fulls,
            "tier2_folds": 1 if fulls else 0,
            "certificate_margin_bits": margin,
        }
        return y

    @staticmethod
    def _certify(acc: SparseSuperaccumulator, y: float, bound_total: float) -> float:
        """Global certificate: prove ``y`` is the correctly rounded sum.

        Returns the margin (doublings the bound could survive), raising
        :class:`CertificationError` when the proof fails. ``bound_total
        == 0`` means every payload was exact — nothing to prove.
        """
        if bound_total == 0.0:
            return math.inf
        lo = math.nextafter(y, -math.inf)
        hi = math.nextafter(y, math.inf)
        if not (math.isfinite(y) and math.isfinite(lo) and math.isfinite(hi)):
            raise CertificationError(
                "certified sum at the edge of the float range; rerun exactly"
            )
        retained = acc.to_fraction()
        bound = Fraction(bound_total)
        yf = Fraction(y)
        gap_lo = (retained - bound) - (yf + Fraction(lo)) / 2
        gap_hi = (yf + Fraction(hi)) / 2 - (retained + bound)
        if gap_lo <= 0 or gap_hi <= 0:
            raise CertificationError(
                "certificate mass reaches a rounding-cell boundary; rerun exactly"
            )
        half_cell = Fraction(math.ulp(y)) / 2
        return math.log2(float(half_cell / bound)) if half_cell > bound else 0.0


class SparseSuperaccumulatorJob(MapReduceJob):
    """Exact sum via sparse superaccumulators (the paper's algorithm)."""

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        """Block -> one sparse superaccumulator (the §6.2 combine step)."""
        return SparseSuperaccumulator.from_floats(block, self.radix).to_bytes()

    def reduce(self, values: Sequence[bytes]) -> bytes:
        """Carry-free merge of this reducer's accumulators."""
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        """Driver: merge the p reducer outputs, then round once."""
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_float(self.mode)


class SmallSuperaccumulatorJob(MapReduceJob):
    """Exact sum via Neal-style dense small superaccumulators."""

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        acc = SmallSuperaccumulator(self.radix)
        acc.add_array(block)
        return acc.to_bytes()

    def _merge(self, values: Sequence[bytes]) -> DenseSuperaccumulator:
        total = SmallSuperaccumulator(self.radix)
        for payload in values:
            total.add_accumulator(DenseSuperaccumulator.from_bytes(payload))
        return total

    def reduce(self, values: Sequence[bytes]) -> bytes:
        return self._merge(values).to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        return self._merge(values).to_float(self.mode)


class NoCombinerSumJob(MapReduceJob):
    """Ablation: the exact job *without* the local combine step.

    The paper's implementation note (§6.2) says "the goal of the
    combine step is to reduce the size of the data that need to be
    shuffled between mappers and reducers". This job skips it — raw
    blocks cross the shuffle and reducers do all the accumulation — so
    benches can measure the shuffle-volume and reduce-skew cost the
    combine step removes. Results are still exact.
    """

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX, mode: str = "nearest") -> None:
        self.radix = radix
        self.mode = mode

    def combine(self, block: np.ndarray) -> bytes:
        """No combining: ship the raw block bytes."""
        return b"RAWB" + np.ascontiguousarray(block, dtype="<f8").tobytes()

    def reduce(self, values: Sequence[bytes]) -> bytes:
        acc = SparseSuperaccumulator.zero(self.radix)
        for payload in values:
            if payload[:4] != b"RAWB":
                raise ValueError("unexpected shuffle payload")
            block = np.frombuffer(payload, dtype="<f8", offset=4)
            acc = acc.add(SparseSuperaccumulator.from_floats(block, self.radix))
        return acc.to_bytes()

    def postprocess(self, values: Sequence[bytes]) -> float:
        acc = SparseSuperaccumulator.sum_many(
            (SparseSuperaccumulator.from_bytes(v) for v in values), self.radix
        )
        return acc.to_float(self.mode)


class NaiveSumJob(MapReduceJob):
    """Inexact control: ordinary float summation in every phase."""

    def combine(self, block: np.ndarray) -> bytes:
        return struct.pack("<d", float(np.sum(block)))

    def reduce(self, values: Sequence[bytes]) -> bytes:
        total = 0.0
        for payload in values:
            (v,) = struct.unpack("<d", payload)
            total += v
        return struct.pack("<d", total)

    def postprocess(self, values: Sequence[bytes]) -> float:
        total = 0.0
        for payload in values:
            (v,) = struct.unpack("<d", payload)
            total += v
        return total
