"""High-level driver: ``parallel_sum`` in one call (paper §6.2's job).

Wraps block placement (simulated HDFS), executor selection, job choice
and the run into the API a downstream user reaches for::

    from repro.mapreduce import parallel_sum
    total = parallel_sum(values, workers=8)

Returns either the float or, with ``report=True``, a
:class:`~repro.mapreduce.runtime.JobResult` carrying per-phase timings,
shuffle volume and data-plane accounting (dispatch bytes, copies
avoided) — the observables the figure harness plots.

On the ``"process"`` executor the driver defaults to the zero-copy data
plane: input blocks live in shared memory, workers receive ~100-byte
descriptors, the job is installed once per worker, and the pool itself
persists across calls (``reuse_pool=True``) so spin-up is amortized.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.mapreduce.hdfs import BlockStore
from repro.mapreduce.partitioner import Partitioner
import os

from repro.mapreduce.runtime import (
    JobResult,
    MultiprocessExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
    run_job,
    shared_process_executor,
)
from repro.errors import CertificationError
from repro.kernels import kernel_names
from repro.mapreduce.sum_job import (
    AdaptiveSumJob,
    KernelSumJob,
    NaiveSumJob,
    SmallSuperaccumulatorJob,
    SparseSuperaccumulatorJob,
)
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["parallel_sum"]

_JOBS = {
    "adaptive": AdaptiveSumJob,
    "sparse": SparseSuperaccumulatorJob,
    "small": SmallSuperaccumulatorJob,
    "naive": NaiveSumJob,
}

#: Default items per simulated HDFS block for laptop-scale runs. Small
#: enough to give every worker several blocks at bench sizes, large
#: enough that combine dominates scheduling overhead.
DEFAULT_BLOCK_ITEMS = 1 << 17


def _select_executor_kind(executor: str, workers: int) -> str:
    """Resolve ``"auto"`` to a concrete executor kind.

    Process pools pay off only when the host can actually run the
    requested workers concurrently; otherwise the simulated cluster
    (measured per-task costs, modeled concurrency) is the honest
    substitute — see DESIGN.md §2.
    """
    if executor != "auto":
        return executor
    if workers <= 1:
        return "serial"
    if (os.cpu_count() or 1) >= workers:
        return "process"
    return "simulated"


def parallel_sum(
    values,
    *,
    workers: Optional[int] = None,
    method: str = "sparse",
    block_items: int = DEFAULT_BLOCK_ITEMS,
    reducers: Optional[int] = None,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    partitioner: Optional[Partitioner] = None,
    executor: str = "auto",
    report: bool = False,
    zero_copy: bool = True,
    reuse_pool: bool = True,
    job: Optional[KernelSumJob] = None,
) -> Union[float, JobResult]:
    """Faithfully rounded sum via the single-round MapReduce algorithm.

    Args:
        values: finite float64 array-like.
        workers: worker count; ``None`` or 1 runs serially in-process.
        method: ``"adaptive"`` (certificate-shipping combine with an
            exact fallback on certification failure), ``"sparse"``
            (paper), ``"small"`` (Neal comparator), ``"naive"``
            (inexact control — for demonstrations only), or any other
            registered kernel name (``repro.kernels.kernel_names()``),
            which runs the generic
            :class:`~repro.mapreduce.sum_job.KernelSumJob` over that
            kernel.
        block_items: simulated HDFS block size in items.
        reducers: the ``p`` of §6.1; defaults to the worker count.
        radix: superaccumulator digit configuration.
        mode: final rounding direction.
        partitioner: reducer assignment (default round-robin).
        executor: ``"process"`` (multiprocessing pool), ``"simulated"``
            (serial run with a simulated p-worker makespan clock — for
            single-core hosts or modeling cluster sizes beyond the
            host), ``"serial"``, or ``"auto"`` (process when the host
            has at least ``workers`` cores, simulated otherwise).
        report: return the full :class:`JobResult` instead of the float.
        zero_copy: on the process executor, place blocks in shared
            memory and dispatch descriptors instead of pickled payloads
            (no effect on in-process executors, which already share the
            address space).
        reuse_pool: on the process executor, run on the persistent
            process-wide pool so repeated calls skip pool spin-up; see
            :func:`~repro.mapreduce.runtime.shutdown_shared_executors`.
        job: a pre-built job instance to run instead of constructing
            one from ``method`` — how the reduction engine schedules a
            :class:`~repro.mapreduce.sum_job.KernelReduceJob` whose
            driver-side state (the merged partial) it reads afterwards.
    """
    if job is None and method not in _JOBS and method not in kernel_names():
        raise ValueError(
            f"method must be one of {sorted(set(_JOBS) | set(kernel_names()))}"
        )
    if executor not in ("auto", "process", "simulated", "serial"):
        raise ValueError(f"unknown executor {executor!r}")
    arr = ensure_float64_array(values)
    if method != "naive":
        check_finite_array(arr)

    if job is not None:
        pass
    elif method == "naive":
        job = NaiveSumJob()  # type: ignore[assignment]
    elif method in _JOBS:
        job = _JOBS[method](radix=radix, mode=mode)
    else:
        # Any registered kernel runs through the generic kernel job.
        job = KernelSumJob(radix=radix, mode=mode, kernel_name=method)

    nodes = max(1, workers or 1)
    w = workers or 1
    kind = _select_executor_kind(executor, w)
    p = reducers if reducers is not None else nodes
    use_plane = kind == "process" and w > 1 and zero_copy

    with BlockStore(nodes=nodes, block_items=block_items, shared=use_plane) as store:
        store.put("input", arr)
        if use_plane:
            items = store.block_refs("input")
        else:
            items = [b.data for b in store.blocks("input")]

        def execute(the_job) -> JobResult:
            if kind == "process" and w > 1:
                if reuse_pool:
                    exe = shared_process_executor(w)
                    return run_job(
                        the_job, items, reducers=p, executor=exe,
                        partitioner=partitioner,
                    )
                with MultiprocessExecutor(w) as exe:
                    return run_job(
                        the_job, items, reducers=p, executor=exe,
                        partitioner=partitioner,
                    )
            if kind == "simulated":
                return run_job(
                    the_job,
                    items,
                    reducers=p,
                    executor=SimulatedClusterExecutor(w),
                    partitioner=partitioner,
                )
            return run_job(
                the_job,
                items,
                reducers=p,
                executor=SerialExecutor(),
                partitioner=partitioner,
            )

        try:
            result = execute(job)
        except CertificationError:
            # The adaptive job's global certificate failed: the blocks
            # are still in the store, so transparently redo the run
            # with the fully exact job — a retry, never a wrong bit.
            fallback = SparseSuperaccumulatorJob(radix=radix, mode=mode)
            result = execute(fallback)
            result.tier_counts = {
                "tier0_hits": 0,
                "escalations": result.blocks,
                "tier2_folds": 1,
                "certification_fallback": 1,
            }
    return result if report else result.value
