"""High-level driver: ``parallel_sum`` in one call (paper §6.2's job).

Wraps block placement (simulated HDFS), executor selection, job choice
and the run into the API a downstream user reaches for::

    from repro.mapreduce import parallel_sum
    total = parallel_sum(values, workers=8)

Returns either the float or, with ``report=True``, a
:class:`~repro.mapreduce.runtime.JobResult` carrying per-phase timings
and shuffle volume — the observables the figure harness plots.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.mapreduce.hdfs import BlockStore
from repro.mapreduce.partitioner import Partitioner
import os

from repro.mapreduce.runtime import (
    JobResult,
    MultiprocessExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
    run_job,
)
from repro.mapreduce.sum_job import (
    NaiveSumJob,
    SmallSuperaccumulatorJob,
    SparseSuperaccumulatorJob,
)
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["parallel_sum"]

_JOBS = {
    "sparse": SparseSuperaccumulatorJob,
    "small": SmallSuperaccumulatorJob,
    "naive": NaiveSumJob,
}

#: Default items per simulated HDFS block for laptop-scale runs. Small
#: enough to give every worker several blocks at bench sizes, large
#: enough that combine dominates scheduling overhead.
DEFAULT_BLOCK_ITEMS = 1 << 17


def parallel_sum(
    values,
    *,
    workers: Optional[int] = None,
    method: str = "sparse",
    block_items: int = DEFAULT_BLOCK_ITEMS,
    reducers: Optional[int] = None,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    partitioner: Optional[Partitioner] = None,
    executor: str = "auto",
    report: bool = False,
) -> Union[float, JobResult]:
    """Faithfully rounded sum via the single-round MapReduce algorithm.

    Args:
        values: finite float64 array-like.
        workers: worker count; ``None`` or 1 runs serially in-process.
        method: ``"sparse"`` (paper), ``"small"`` (Neal comparator) or
            ``"naive"`` (inexact control — for demonstrations only).
        block_items: simulated HDFS block size in items.
        reducers: the ``p`` of §6.1; defaults to the worker count.
        radix: superaccumulator digit configuration.
        mode: final rounding direction.
        partitioner: reducer assignment (default round-robin).
        executor: ``"process"`` (multiprocessing pool), ``"simulated"``
            (serial run with a simulated p-worker makespan clock — for
            single-core hosts or modeling cluster sizes beyond the
            host), ``"serial"``, or ``"auto"`` (process when the host
            has at least ``workers`` cores, simulated otherwise).
        report: return the full :class:`JobResult` instead of the float.
    """
    if method not in _JOBS:
        raise ValueError(f"method must be one of {sorted(_JOBS)}")
    arr = ensure_float64_array(values)
    if method != "naive":
        check_finite_array(arr)

    nodes = max(1, workers or 1)
    store = BlockStore(nodes=nodes, block_items=block_items)
    store.put("input", arr)
    blocks = [b.data for b in store.blocks("input")]

    job_cls = _JOBS[method]
    job = job_cls() if method == "naive" else job_cls(radix=radix, mode=mode)
    p = reducers if reducers is not None else nodes

    if executor not in ("auto", "process", "simulated", "serial"):
        raise ValueError(f"unknown executor {executor!r}")
    w = workers or 1
    kind = executor
    if kind == "auto":
        if w <= 1:
            kind = "serial"
        elif (os.cpu_count() or 1) >= w:
            kind = "process"
        else:
            kind = "simulated"

    if kind == "process" and w > 1:
        with MultiprocessExecutor(w) as exe:
            result = run_job(
                job, blocks, reducers=p, executor=exe, partitioner=partitioner
            )
    elif kind == "simulated":
        result = run_job(
            job,
            blocks,
            reducers=p,
            executor=SimulatedClusterExecutor(w),
            partitioner=partitioner,
        )
    else:
        result = run_job(
            job, blocks, reducers=p, executor=SerialExecutor(), partitioner=partitioner
        )
    return result if report else result.value
