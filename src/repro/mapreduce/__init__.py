"""MapReduce substrate and the paper's Section 6 summation jobs.

* :class:`BlockStore` — simulated HDFS block placement;
* :func:`run_job` + executors — the single-round engine;
* :class:`BlockRef` / :class:`ShmDataPlane` — the zero-copy
  shared-memory data plane blocks travel on;
* :class:`SparseSuperaccumulatorJob` / :class:`SmallSuperaccumulatorJob`
  — the two exact jobs of Figures 1-3 (:class:`NaiveSumJob` is the
  inexact control);
* :func:`parallel_sum` — the one-call driver.
"""

from repro.mapreduce.dataplane import BlockRef, ShmDataPlane, resolve_block
from repro.mapreduce.driver import parallel_sum
from repro.mapreduce.hdfs import Block, BlockStore
from repro.mapreduce.partitioner import (
    Partitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)
from repro.mapreduce.runtime import (
    JobResult,
    MapReduceJob,
    MultiprocessExecutor,
    SerialExecutor,
    SimulatedClusterExecutor,
    pick_start_method,
    run_job,
    shared_process_executor,
    shutdown_shared_executors,
)
from repro.mapreduce.sum_job import (
    AdaptiveSumJob,
    NaiveSumJob,
    NoCombinerSumJob,
    SmallSuperaccumulatorJob,
    SparseSuperaccumulatorJob,
)

__all__ = [
    "parallel_sum",
    "Block",
    "BlockStore",
    "BlockRef",
    "ShmDataPlane",
    "resolve_block",
    "SimulatedClusterExecutor",
    "pick_start_method",
    "shared_process_executor",
    "shutdown_shared_executors",
    "Partitioner",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "JobResult",
    "MapReduceJob",
    "MultiprocessExecutor",
    "SerialExecutor",
    "run_job",
    "AdaptiveSumJob",
    "NaiveSumJob",
    "NoCombinerSumJob",
    "SmallSuperaccumulatorJob",
    "SparseSuperaccumulatorJob",
]
