"""Simulated HDFS-style block store.

The paper's experimental setup assumes "the input is already loaded in
a Hadoop Distributed File System (HDFS) where the input is partitioned
into 128 MB blocks which are stored on the local disks of cluster
nodes", and its Spark job begins with "each machine loads the HDFS
blocks that are physically stored on its local disk".

:class:`BlockStore` models exactly that: a dataset is split into
fixed-size blocks assigned round-robin to node ids; the MapReduce
runtime schedules each block's combine step on its home node (data
locality), which is what makes the combine phase embarrassingly
parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.util.validation import check_positive_int, ensure_float64_array

__all__ = ["Block", "BlockStore"]

#: Default items per block: 128 MB of float64, matching the paper's HDFS
#: block size. Scaled down in tests/benches via the constructor.
DEFAULT_BLOCK_ITEMS = (128 * 1024 * 1024) // 8


@dataclass(frozen=True)
class Block:
    """One stored block: payload plus placement metadata."""

    dataset: str
    index: int
    node: int
    data: np.ndarray


class BlockStore:
    """In-memory stand-in for HDFS: named datasets in placed blocks.

    Args:
        nodes: number of storage nodes blocks are spread across.
        block_items: items per block (default: the 128 MB equivalent).
    """

    def __init__(self, nodes: int = 1, block_items: int = DEFAULT_BLOCK_ITEMS) -> None:
        self.nodes = check_positive_int(nodes, name="nodes")
        self.block_items = check_positive_int(block_items, name="block_items")
        self._datasets: Dict[str, List[Block]] = {}

    def put(self, name: str, values) -> List[Block]:
        """Load a dataset: split into blocks, place round-robin."""
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already stored")
        arr = ensure_float64_array(values)
        blocks: List[Block] = []
        for i, start in enumerate(range(0, max(arr.size, 1), self.block_items)):
            chunk = arr[start : start + self.block_items]
            if chunk.size == 0 and i > 0:
                break
            blocks.append(
                Block(dataset=name, index=i, node=i % self.nodes, data=chunk)
            )
        self._datasets[name] = blocks
        return blocks

    def blocks(self, name: str) -> List[Block]:
        """All blocks of a dataset, in index order."""
        return list(self._datasets[name])

    def blocks_on_node(self, name: str, node: int) -> List[Block]:
        """The locality view: blocks whose home is ``node``."""
        return [b for b in self._datasets[name] if b.node == node]

    def delete(self, name: str) -> None:
        """Drop a dataset."""
        self._datasets.pop(name)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets
