"""Simulated HDFS-style block store.

The paper's experimental setup assumes "the input is already loaded in
a Hadoop Distributed File System (HDFS) where the input is partitioned
into 128 MB blocks which are stored on the local disks of cluster
nodes", and its Spark job begins with "each machine loads the HDFS
blocks that are physically stored on its local disk".

:class:`BlockStore` models exactly that: a dataset is split into
fixed-size blocks assigned round-robin to node ids; the MapReduce
runtime schedules each block's combine step on its home node (data
locality), which is what makes the combine phase embarrassingly
parallel.

With ``shared=True`` the store is the placement side of the zero-copy
data plane: ``put`` copies the dataset into a shared-memory segment
**once**, every :class:`Block`'s ``data`` is a view into it, and
:meth:`BlockStore.block_refs` hands out the lightweight
:class:`~repro.mapreduce.dataplane.BlockRef` descriptors pool workers
resolve in place — the analogue of workers reading their local HDFS
blocks instead of receiving them over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mapreduce.dataplane import BlockRef, ShmDataPlane, resolve_block
from repro.util.validation import check_positive_int, ensure_float64_array

__all__ = ["Block", "BlockStore"]

#: Default items per block: 128 MB of float64, matching the paper's HDFS
#: block size. Scaled down in tests/benches via the constructor.
DEFAULT_BLOCK_ITEMS = (128 * 1024 * 1024) // 8


@dataclass(frozen=True)
class Block:
    """One stored block: payload plus placement metadata.

    ``ref`` is set on shared-memory stores: the zero-copy descriptor
    for the same bytes ``data`` views.
    """

    dataset: str
    index: int
    node: int
    data: np.ndarray
    ref: Optional[BlockRef] = None


class BlockStore:
    """In-memory stand-in for HDFS: named datasets in placed blocks.

    Args:
        nodes: number of storage nodes blocks are spread across.
        block_items: items per block (default: the 128 MB equivalent).
        shared: place datasets in shared memory so blocks can cross the
            executor boundary as descriptors instead of payloads. Call
            :meth:`close` (or use the store as a context manager) to
            unlink the segments.
    """

    def __init__(
        self,
        nodes: int = 1,
        block_items: int = DEFAULT_BLOCK_ITEMS,
        *,
        shared: bool = False,
    ) -> None:
        self.nodes = check_positive_int(nodes, name="nodes")
        self.block_items = check_positive_int(block_items, name="block_items")
        self.shared = shared
        self._datasets: Dict[str, List[Block]] = {}
        self._planes: Dict[str, ShmDataPlane] = {}

    def put(self, name: str, values) -> List[Block]:
        """Load a dataset: split into blocks, place round-robin.

        On a shared store the dataset is copied into a shared-memory
        segment here — the one and only copy the data plane performs.
        """
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} already stored")
        arr = ensure_float64_array(values)
        refs: Optional[List[BlockRef]] = None
        if self.shared:
            plane = ShmDataPlane()
            segment, _ = plane.share_array(arr)
            refs = plane.refs_for_array(segment, int(arr.size), self.block_items)
            self._planes[name] = plane
        blocks: List[Block] = []
        for i, start in enumerate(range(0, max(arr.size, 1), self.block_items)):
            chunk = arr[start : start + self.block_items]
            if chunk.size == 0 and i > 0:
                break
            ref = refs[i] if refs is not None else None
            data = resolve_block(ref) if ref is not None else chunk
            blocks.append(
                Block(dataset=name, index=i, node=i % self.nodes, data=data, ref=ref)
            )
        self._datasets[name] = blocks
        return blocks

    def blocks(self, name: str) -> List[Block]:
        """All blocks of a dataset, in index order."""
        return list(self._datasets[name])

    def block_refs(self, name: str) -> List[BlockRef]:
        """Zero-copy descriptors for a dataset (shared stores only)."""
        refs = [b.ref for b in self._datasets[name]]
        if any(r is None for r in refs):
            raise ValueError(
                f"dataset {name!r} is not in shared memory; "
                "construct the store with shared=True"
            )
        return refs  # type: ignore[return-value]

    def blocks_on_node(self, name: str, node: int) -> List[Block]:
        """The locality view: blocks whose home is ``node``."""
        return [b for b in self._datasets[name] if b.node == node]

    def delete(self, name: str) -> None:
        """Drop a dataset (and unlink its shared segment, if any)."""
        self._datasets.pop(name)
        plane = self._planes.pop(name, None)
        if plane is not None:
            plane.close()

    def close(self) -> None:
        """Unlink every shared segment this store placed (idempotent)."""
        for plane in self._planes.values():
            plane.close()
        self._planes.clear()

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __contains__(self, name: str) -> bool:
        return name in self._datasets
