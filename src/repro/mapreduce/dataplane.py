"""Zero-copy shared-memory data plane for the MapReduce engine.

The original executor boundary pickled ``(fn, ndarray)`` pairs per map
task, so shuffle-*equivalent* serialization cost scaled with ``n``
input items instead of the ``p`` superaccumulators the combine step is
supposed to leave — exactly the cost §6.2's combiner exists to remove.
This module replaces the payloads crossing that boundary with
lightweight **block descriptors**:

* the driver places the input array in a shared-memory *segment* once
  (``multiprocessing.shared_memory``) or points at an on-disk dataset
  file (``mmap``);
* each map task receives a :class:`BlockRef` — ``(kind, segment,
  offset, length)``, ~100 bytes pickled regardless of block size;
* the worker attaches the segment on first use (cached per process)
  and builds an ``np.ndarray`` view at ``offset`` with **no copy**.

The job object itself is installed once per worker by the pool
initializer (:func:`worker_initializer`) instead of being pickled into
every task, so per-task dispatch volume is a descriptor plus a phase
name — independent of both ``n`` and the job's configuration size.
"""

from __future__ import annotations

import mmap
import os
import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "BlockRef",
    "ShmDataPlane",
    "resolve_block",
    "detach_all",
    "worker_initializer",
    "run_phase_task",
    "dataset_payload_offset",
]

#: Byte offset of the raw float64 payload inside a ``.f64`` dataset
#: file (see :mod:`repro.data.io`): 4-byte magic + 8-byte count.
_DATASET_HEADER_BYTES = 12


def dataset_payload_offset() -> int:
    """Offset of the first float64 in a ``.f64`` dataset file."""
    return _DATASET_HEADER_BYTES


@dataclass(frozen=True)
class BlockRef:
    """A zero-copy block descriptor: where a block lives, not its bytes.

    Attributes:
        kind: ``"shm"`` (POSIX shared-memory segment) or ``"mmap"``
            (memory-mapped file on disk).
        segment: shared-memory segment name, or the file path for
            ``kind="mmap"``.
        offset: byte offset of the block inside the segment/file.
        length: number of items in the block.
        dtype: NumPy dtype string of the items (little-endian).
    """

    kind: str
    segment: str
    offset: int
    length: int
    dtype: str = "<f8"

    @property
    def nbytes(self) -> int:
        """Payload size the descriptor stands in for."""
        return self.length * np.dtype(self.dtype).itemsize

    def describe(self) -> str:
        return f"{self.kind}:{self.segment}[{self.offset}:+{self.length}]"


# ----------------------------------------------------------------------
# per-process attachment caches (parent and workers alike)
# ----------------------------------------------------------------------

_SHM_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_MMAP_ATTACHED: Dict[str, Tuple[object, mmap.mmap]] = {}

#: Segments kept attached per process. One job uses one segment, so a
#: handful covers interleaved work; old attachments must be released or
#: a persistent pool would pin every past call's (unlinked) segment.
_MAX_ATTACHED = 4


def _evict_attachments() -> None:
    while len(_SHM_ATTACHED) > _MAX_ATTACHED:
        name, seg = next(iter(_SHM_ATTACHED.items()))
        del _SHM_ATTACHED[name]
        try:
            seg.close()
        except BufferError:  # a view is still live; re-pin it
            _SHM_ATTACHED[name] = seg
            return
    while len(_MMAP_ATTACHED) > _MAX_ATTACHED:
        path, (fh, mapped) = next(iter(_MMAP_ATTACHED.items()))
        del _MMAP_ATTACHED[path]
        try:
            mapped.close()
            fh.close()
        except BufferError:
            _MMAP_ATTACHED[path] = (fh, mapped)
            return


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    seg = _SHM_ATTACHED.get(name)
    if seg is None:
        # Attaching registers the name with the resource tracker, but
        # pool workers share the parent's tracker and its cache is a
        # set, so this is a no-op there; ownership (the one unlink)
        # stays with the creating ShmDataPlane.
        seg = shared_memory.SharedMemory(name=name, create=False)
        _SHM_ATTACHED[name] = seg
        _evict_attachments()
    return seg


def _attach_mmap(path: str) -> mmap.mmap:
    entry = _MMAP_ATTACHED.get(path)
    if entry is None:
        fh = open(path, "rb")
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        _MMAP_ATTACHED[path] = (fh, mapped)
        _evict_attachments()
        return mapped
    return entry[1]


def resolve_block(item: Union[BlockRef, np.ndarray]) -> np.ndarray:
    """Materialize a task item as an ndarray **view** (no copy).

    Plain ndarrays pass through untouched, so every executor accepts a
    mix of legacy blocks and descriptors.
    """
    if not isinstance(item, BlockRef):
        return item
    if item.kind == "shm":
        buf = _attach_shm(item.segment).buf
    elif item.kind == "mmap":
        buf = _attach_mmap(item.segment)
    else:
        raise ValueError(f"unknown BlockRef kind {item.kind!r}")
    view = np.frombuffer(buf, dtype=item.dtype, count=item.length, offset=item.offset)
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Drop this process's cached attachments (views become invalid)."""
    for seg in _SHM_ATTACHED.values():
        try:
            seg.close()
        except BufferError:  # a live view still points into the buffer
            pass
    _SHM_ATTACHED.clear()
    for fh, mapped in _MMAP_ATTACHED.values():
        try:
            mapped.close()
        except BufferError:
            pass
        fh.close()
    _MMAP_ATTACHED.clear()


# ----------------------------------------------------------------------
# the driver-side plane: segment placement and ownership
# ----------------------------------------------------------------------


class ShmDataPlane:
    """Owns shared-memory segments holding input blocks.

    The placing process copies data into a segment **once**; everything
    downstream — parent-side serial executors and pool workers alike —
    reads through zero-copy views. Use as a context manager (or call
    :meth:`close`) so segments are unlinked deterministically::

        with ShmDataPlane() as plane:
            refs = plane.share_blocks(blocks)
            result = run_job(job, refs, ...)
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self.placed_bytes = 0

    def share_array(self, arr: np.ndarray) -> Tuple[str, shared_memory.SharedMemory]:
        """Place one array in a fresh segment; returns ``(name, segment)``."""
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        nbytes = max(int(arr.nbytes), 1)  # zero-size segments are invalid
        name = f"repro-{os.getpid():x}-{secrets.token_hex(4)}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        if arr.nbytes:
            np.frombuffer(seg.buf, dtype=np.float64, count=arr.size)[:] = arr
        self._segments.append(seg)
        self.placed_bytes += int(arr.nbytes)
        return seg.name, seg

    def share_blocks(self, blocks: Sequence[np.ndarray]) -> List[BlockRef]:
        """Lay blocks out contiguously in one segment; return descriptors.

        One placement copy total; if the blocks are contiguous slices
        of one base array (the BlockStore layout), this is the only
        copy the whole job performs.
        """
        sizes = [int(np.asarray(b).size) for b in blocks]
        total = sum(sizes)
        name = f"repro-{os.getpid():x}-{secrets.token_hex(4)}"
        seg = shared_memory.SharedMemory(
            name=name, create=True, size=max(total * 8, 1)
        )
        flat = np.frombuffer(seg.buf, dtype=np.float64, count=total)
        refs: List[BlockRef] = []
        cursor = 0
        for block, size in zip(blocks, sizes):
            flat[cursor : cursor + size] = np.asarray(block, dtype=np.float64)
            refs.append(
                BlockRef(kind="shm", segment=name, offset=cursor * 8, length=size)
            )
            cursor += size
        del flat  # release the view so close()/unlink() can proceed
        self._segments.append(seg)
        self.placed_bytes += total * 8
        return refs

    def refs_for_array(
        self, name: str, total_items: int, block_items: int
    ) -> List[BlockRef]:
        """Descriptors tiling an already-placed segment into blocks."""
        refs = []
        for start in range(0, max(total_items, 1), block_items):
            length = min(block_items, total_items - start) if total_items else 0
            refs.append(
                BlockRef(kind="shm", segment=name, offset=start * 8, length=length)
            )
            if total_items == 0:
                break
        return refs

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmDataPlane":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort cleanup
        self.close()


# ----------------------------------------------------------------------
# worker-side: one job install per process, tasks carry descriptors
# ----------------------------------------------------------------------

_WORKER_JOB: Optional[object] = None
_WORKER_JOB_TOKEN: Optional[str] = None


def worker_initializer(job_payload: bytes, token: str) -> None:
    """Pool initializer: unpickle and install the job **once** per worker."""
    global _WORKER_JOB, _WORKER_JOB_TOKEN
    _WORKER_JOB = pickle.loads(job_payload)
    _WORKER_JOB_TOKEN = token


def run_phase_task(args: Tuple[str, str, object]) -> bytes:
    """Trampoline for installed-job dispatch: ``(token, phase, item)``.

    ``phase`` names a :class:`~repro.mapreduce.runtime.MapReduceJob`
    method (``"combine"`` or ``"reduce"``); combine items may be
    :class:`BlockRef` descriptors, resolved in-worker with no copy.
    """
    token, phase, item = args
    if _WORKER_JOB is None or _WORKER_JOB_TOKEN != token:
        raise RuntimeError(
            "worker has no installed job for this token; "
            "MultiprocessExecutor.install_job must run first"
        )
    fn = getattr(_WORKER_JOB, phase)
    if phase == "combine":
        item = resolve_block(item)
    return fn(item)


class ResolvingCombine:
    """Picklable ``combine`` wrapper for executors without job install.

    Resolves descriptors before delegating, so the legacy ``map(fn,
    items)`` protocol (serial, simulated, retry fallback) transparently
    accepts :class:`BlockRef` items. Still re-pickles the job per task
    on a legacy process pool — but never the block payload.
    """

    def __init__(self, job: object) -> None:
        self.job = job

    def __call__(self, item: Union[BlockRef, np.ndarray]) -> bytes:
        return self.job.combine(resolve_block(item))  # type: ignore[attr-defined]
