"""HybridSum — Zhu & Hayes' exponent-bucketed exact sum (SISC 2009).

The companion algorithm to iFastSum from the same paper: instead of
distilling, each input is **split** into two half-width parts that are
deposited *error-free* into accumulators indexed by the input's
exponent class, and the few-thousand bucket values are handed to
iFastSum at the end.

A double ``x = M * 2**e2`` (``|M| < 2**53``, ``e2`` the frexp exponent
minus 53) splits exactly into

* ``hi = (|M| >> 26)`` with weight ``2**(e2 + 26)`` (27 bits), and
* ``lo = (|M| & (2**26 - 1))`` with weight ``2**e2`` (26 bits).

We keep the bucket contents as **int64 digit sums** in those weights
(the published algorithm stores integer-valued doubles; int64 buckets
carry the identical values with a wider deferred-add budget of ~``2**35``
deposits, and they sidestep float overflow at the very top of the
exponent range, where a handful of ``2**1023``-scale addends would
otherwise take the float buckets to infinity — an input family the
original paper does not exercise). A vectorized rebucketing pass
("flush") restores headroom by moving balanced carries 26 exponent
classes up, and :meth:`result` converts the flushed buckets back to
exact doubles for the final iFastSum — falling back to exact integer
rounding only if a converted term overflows the float range.

The deposit loop is a scatter-add over exponent indices (``np.add.at``),
making this the fastest *sequential* exact method in this package — the
wall-clock-fair stand-in for the paper's C++ iFastSum when comparing
against our (equally Python/NumPy) MapReduce implementations. See
DESIGN.md §2.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.baselines.ifastsum import ifastsum
from repro.core.fpinfo import decompose_vec
from repro.core.rounding import round_scaled_int
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["HybridAccumulator", "hybrid_sum"]

# Exponent classes: e2 = frexp_exponent - 53 spans [-1126, 971] for
# finite doubles (subnormals included); flush carries can climb a few
# classes of 26 above the top, hence the headroom.
_E2_MIN = -1126
_E2_TOP = 971
_HEADROOM = 3 * 26
_COUNT = _E2_TOP - _E2_MIN + 1 + _HEADROOM

_HALF26 = np.int64(1 << 25)
_MASK26 = np.int64((1 << 26) - 1)

#: Deposits allowed between flushes: each deposit adds < 2**27 to a
#: bucket, so 2**35 of them stay below 2**62 in int64.
_FLUSH_LIMIT = 1 << 35
_CHUNK = 1 << 22


class HybridAccumulator:
    """Streaming exact accumulator with exponent-indexed int64 buckets.

    Add arrays with :meth:`add_array`; read the correctly rounded sum
    with :meth:`result` (non-destructive up to internal flushing, which
    preserves the represented value exactly).
    """

    __slots__ = ("_hi", "_lo", "_deposits")

    def __init__(self) -> None:
        self._hi = np.zeros(_COUNT, dtype=np.int64)  # weight 2**(e2+26)
        self._lo = np.zeros(_COUNT, dtype=np.int64)  # weight 2**e2
        self._deposits = 0

    def add_array(self, values: Iterable[float]) -> None:
        """Deposit every element of ``values`` exactly."""
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        for start in range(0, arr.size, _CHUNK):
            part = arr[start : start + _CHUNK]
            if self._deposits + part.size > _FLUSH_LIMIT:
                self._flush()
            self._deposit(part)

    def _deposit(self, arr: np.ndarray) -> None:
        m, e2 = decompose_vec(arr)
        sign = np.sign(m)
        a = np.abs(m)
        hi = sign * (a >> np.int64(26))
        lo = sign * (a & _MASK26)
        idx = (e2 - _E2_MIN).astype(np.intp)
        np.add.at(self._hi, idx, hi)
        np.add.at(self._lo, idx, lo)
        self._deposits += arr.size

    def _flush(self) -> None:
        """Rebucket so every bucket magnitude drops below ``2**25``.

        Balanced carries (``(v + 2**25) >> 26``) move 26 exponent
        classes up (``lo -> hi`` of the same class, ``hi -> hi`` of the
        class 26 higher); magnitudes shrink by a factor ``2**26`` per
        pass, so this terminates in at most three passes.
        """
        carry_lo = (self._lo + _HALF26) >> np.int64(26)
        self._lo -= carry_lo << np.int64(26)
        self._hi += carry_lo
        for _ in range(6):  # magnitudes shrink 2**26-fold per pass
            carry_hi = (self._hi + _HALF26) >> np.int64(26)
            if not carry_hi.any():
                self._deposits = 0
                return
            self._hi -= carry_hi << np.int64(26)
            self._hi[26:] += carry_hi[:-26]
            if carry_hi[-26:].any():
                raise OverflowError("hybrid accumulator range exceeded")
        raise AssertionError("flush failed to converge")

    def _terms(self) -> Tuple[np.ndarray, bool]:
        """Flushed bucket contents as float terms, plus a finite flag."""
        self._flush()
        e2 = np.arange(_COUNT, dtype=np.int32) + _E2_MIN
        nz_hi = self._hi != 0
        nz_lo = self._lo != 0
        with np.errstate(over="ignore"):
            terms = np.concatenate(
                [
                    np.ldexp(self._hi[nz_hi].astype(np.float64), e2[nz_hi] + 26),
                    np.ldexp(self._lo[nz_lo].astype(np.float64), e2[nz_lo]),
                ]
            )
        return terms, bool(np.isfinite(terms).all())

    def result(self) -> float:
        """Correctly rounded sum of everything deposited so far."""
        terms, finite = self._terms()
        if terms.size == 0:
            return 0.0
        if finite:
            return ifastsum(terms)
        # Bucket totals exceed the float range (possible only when the
        # aggregated magnitude tops 2**1024): decide with exact integers.
        value = 0
        for i in np.flatnonzero(self._hi):
            value += int(self._hi[i]) << (int(i) + 26 + 1200)
        for i in np.flatnonzero(self._lo):
            value += int(self._lo[i]) << (int(i) + 1200)
        return round_scaled_int(value, _E2_MIN - 1200)


def hybrid_sum(values: Iterable[float]) -> float:
    """One-shot HybridSum: correctly rounded sum of ``values``."""
    acc = HybridAccumulator()
    acc.add_array(values)
    return acc.result()
