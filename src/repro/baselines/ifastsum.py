"""iFastSum — Zhu & Hayes' correctly rounded sequential sum (SISC 2009).

This is the "state-of-the-art sequential algorithm" of the paper's
experimental section (Figures 1-3). The algorithm repeatedly *distills*
the input with AddTwo passes: each pass replaces the array with the
exact per-step errors while folding the running totals into ``s``,
maintaining the invariant

    exact_total  =  s + st + sum(x[0:count]),

with an a-priori bound ``em`` on ``|sum(x[0:count])|``. Once ``em``
cannot affect the rounding of ``s`` (checked by rounding ``s + st ± em``
both ways), ``s``'s rounding is decided; otherwise distill again.

Fidelity notes versus the published pseudocode:

* our error bound uses a full ulp instead of a half ulp (``em = count *
  ulp(sm)``) — a factor-2 overestimate that keeps the bound safe under
  the float multiplication that computes it, at worst costing one extra
  distillation pass;
* the ``Round3`` tie-breaking procedure is implemented as an exact
  constant-time rounding of the three-float sum ``s + st ± em`` via
  integer arithmetic (Zhu & Hayes use an equivalent constant-time
  float-only procedure);
* exact half-way ties that the distillation loop cannot separate
  (detected by ``em`` failing to shrink) fall back to an exact
  superaccumulator pass over the ``O(count)`` residual terms — the role
  HybridSum recursion plays in the original.

Cost: ``O(passes * n)`` float operations, sequentially dependent —
the very structure the paper's parallel algorithms break free of.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.core.eft import two_sum
from repro.core.fpinfo import decompose
from repro.core.rounding import round_scaled_int
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["ifastsum", "round_three_exact"]


def round_three_exact(a: float, b: float, c: float, mode: str = "nearest") -> float:
    """Correctly rounded ``a + b + c`` in O(1) exact integer arithmetic."""
    # reprolint: disable-next-line=FP002 -- exact-zero terms contribute nothing
    parts = [decompose(v) for v in (a, b, c) if v != 0.0]
    if not parts:
        return 0.0
    shift = min(e for _, e in parts)
    total = sum(m << (e - shift) for m, e in parts)
    return round_scaled_int(total, shift, mode)


def _distill_pass(x: List[float], n: int) -> "tuple[int, float, float]":
    """One AddTwo sweep: compact non-zero errors in place.

    Returns ``(count, st, sm)``: the number of surviving error terms
    (now in ``x[0:count]``), the sweep's rounded total ``st``, and the
    largest ``|st|`` seen at a step that produced an error term.
    """
    count = 0
    st = 0.0
    sm = 0.0
    for i in range(n):
        st, err = two_sum(st, x[i])
        if err != 0.0:  # reprolint: disable=FP002 -- TwoSum residual is exact
            x[count] = err
            count += 1
            ast = abs(st)
            if ast > sm:
                sm = ast
    return count, st, sm


def ifastsum(values: Iterable[float]) -> float:
    """Correctly rounded sum of ``values`` (Zhu–Hayes iFastSum).

    Raises:
        NonFiniteInputError: on NaN/inf input.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    x: List[float] = arr.tolist()
    n = len(x)
    if n == 0:
        return 0.0

    # Initial absorption pass: s = rounded running total, x <- errors.
    s = 0.0
    for i in range(n):
        s, x[i] = two_sum(s, x[i])
    if not math.isfinite(s):
        # A running prefix overflowed even though the true sum may be
        # finite (e.g. [2**1023, 2**1023, -2**1023]). TwoSum is no
        # longer error-free past infinity, so distillation cannot
        # recover; decide exactly instead. (The published algorithm
        # assumes inputs whose prefixes stay finite.)
        return _exact_fallback(arr.tolist(), 0.0)

    prev_em = math.inf
    while True:
        count, st, sm = _distill_pass(x, n)
        # Safe bound on |sum of surviving errors|: each error produced
        # at a step with |st| <= sm is at most ulp(sm)/2; we charge a
        # full ulp to absorb the rounding of the bound itself.
        em = count * math.ulp(sm) if count else 0.0
        s, st = two_sum(s, st)
        if count < len(x):
            x[count] = st
        else:
            x.append(st)
        count += 1
        n = count

        if em == 0.0:  # reprolint: disable=FP002 -- em is a computed max, exact when zero
            # Residual is exactly st: one exact 2-term rounding decides.
            return round_three_exact(s, st, 0.0)
        # reprolint: disable-next-line=FP002 -- exact-zero guard before the ulp test
        if s != 0.0 and em < 0.5 * math.ulp(s):
            w_hi = round_three_exact(s, st, em)
            w_lo = round_three_exact(s, st, -em)
            if w_hi == w_lo:
                return w_hi
        if em >= prev_em:
            # Distillation stalled (constructed half-way tie): decide
            # exactly on the O(count) residual terms.
            return _exact_fallback(x[:n], s)
        prev_em = em


def _exact_fallback(terms: List[float], s: float) -> float:
    """Exact O(len) epilogue for ties and overflowed prefixes."""
    from repro.core.sparse import SparseSuperaccumulator

    acc = SparseSuperaccumulator.from_floats(terms)
    if s != 0.0:  # reprolint: disable=FP002 -- exact-zero guard, not a tolerance
        acc = acc.add(SparseSuperaccumulator.from_float(s))
    return acc.to_float()
