"""Inexact summation orderings: the accuracy baselines.

None of these are exact; they exist so tests and benches can quantify
how far ordinary float summation drifts on the ill-conditioned
distributions (and how little ordering tricks help), motivating the
exact algorithms. ``sorted_sum`` with decreasing exponent order is the
Demmel–Hida heuristic the paper cites (\"highly accurate ... yet the
answer does not have to be faithfully rounded\").
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.util.validation import ensure_float64_array

__all__ = [
    "recursive_sum",
    "pairwise_sum",
    "sorted_sum",
    "worst_case_error_bound",
]


def recursive_sum(values: Iterable[float]) -> float:
    """Left-to-right sequential ``(+)`` accumulation.

    Worst-case relative error grows linearly in ``n``; the weakest
    baseline, equivalent to ``sum(values)``.
    """
    total = 0.0
    for x in ensure_float64_array(values):
        total += float(x)
    return total


def pairwise_sum(values: Iterable[float], *, block: int = 128) -> float:
    """Balanced-tree (pairwise/cascade) summation.

    Error grows as ``O(log n)`` instead of ``O(n)``; this is the
    summation-tree shape of the paper's Section 1 discussion and what
    ``numpy.sum`` approximates. Blocks of ``block`` leaves are summed
    sequentially, then combined pairwise level by level — all in float,
    no compensation.
    """
    arr = ensure_float64_array(values).copy()
    if arr.size == 0:
        return 0.0
    # Sequential base blocks.
    nblocks = -(-arr.size // block)
    level = np.empty(nblocks, dtype=np.float64)
    for b in range(nblocks):
        total = 0.0
        for x in arr[b * block : (b + 1) * block]:
            total += float(x)
        level[b] = total
    # Pairwise combine.
    while level.size > 1:
        half = level.size // 2
        combined = level[: 2 * half : 2] + level[1 : 2 * half : 2]
        if level.size % 2:
            combined = np.append(combined, level[-1])
        level = combined
    return float(level[0])


def sorted_sum(values: Iterable[float], *, order: str = "decreasing_magnitude") -> float:
    """Sequential summation after sorting.

    Args:
        order: ``"increasing_magnitude"`` (classic advice for same-sign
            data), ``"decreasing_magnitude"`` (Demmel–Hida: summing in
            decreasing order by exponent yields a highly accurate —
            but not faithfully rounded — answer), or ``"ascending"``
            (plain value order).
    """
    arr = ensure_float64_array(values)
    if order == "increasing_magnitude":
        arr = arr[np.argsort(np.abs(arr), kind="stable")]
    elif order == "decreasing_magnitude":
        arr = arr[np.argsort(-np.abs(arr), kind="stable")]
    elif order == "ascending":
        arr = np.sort(arr)
    else:
        raise ValueError(f"unknown order {order!r}")
    total = 0.0
    for x in arr:
        total += float(x)
    return total


def worst_case_error_bound(values: Iterable[float], *, tree_depth: bool = False) -> float:
    """A-priori error bound for plain float summation.

    ``(n-1) * u * sum|x|`` for sequential order, or ``ceil(log2 n) * u *
    sum|x|`` for a balanced tree, with ``u = 2**-53``. Used by tests to
    check the naive baselines err *within* their bound while the exact
    methods err not at all.
    """
    arr = ensure_float64_array(values)
    n = arr.size
    if n <= 1:
        return 0.0
    mag = float(np.sum(np.abs(arr)))
    factor = math.ceil(math.log2(n)) if tree_depth else (n - 1)
    return factor * (2.0**-53) * mag / (1 - factor * 2.0**-53)
