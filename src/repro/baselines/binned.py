"""Reproducible (but not exact) binned summation — Demmel & Nguyen style.

The paper's related work cites Demmel & Nguyen's *parallel reproducible
summation* [11], which trades exactness for speed: every element is
**pre-rounded** onto a few coarse lattices ("bins" / "folds") anchored
at the data's maximum exponent; per-bin sums of lattice-aligned values
are exact, hence independent of summation order — reproducible across
any reduction tree — while everything below the last bin is discarded,
so the result carries an a-priori error bound instead of faithful
rounding. It is the natural *contrast* baseline for the paper's thesis
(reproducible-but-approximate vs exactly-rounded), and tests use it to
show the difference observable.

Implementation: ``fold`` lattices of width ``width`` bits each. The
classic extraction trick ``r = fl(x + c) - c`` with
``c = 1.5 * 2**(q + 52)`` rounds ``x`` to the lattice ``2**q``
deterministically per element; per-bin totals are kept as exact int64
lattice counts (chunked so every partial sum is exact), which makes the
bin totals — and therefore the final result — invariant under any
permutation or blocking of the input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.core.fpinfo import exponent_of
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["binned_sum", "BinnedSumResult"]

#: Chunk size keeping int64 lattice-count sums exact: each |count| is
#: below 2**(width + 2), so 2**20 addends stay far from 2**63 for any
#: supported width.
_CHUNK = 1 << 20


@dataclass
class BinnedSumResult:
    """Result plus diagnostics of a binned (pre-rounded) summation.

    Attributes:
        value: the reproducible float result.
        error_bound: a-priori bound on ``|value - exact|``: everything
            below the last bin's lattice, ``n * 2**(q_last) / 2`` plus
            the final-combination rounding.
        bins: the per-fold lattice exponents used.
    """

    value: float
    error_bound: float
    bins: List[int]


def binned_sum(
    values: Iterable[float], *, fold: int = 3, width: int = 40
) -> BinnedSumResult:
    """Reproducible summation by pre-rounding into ``fold`` bins.

    Args:
        values: finite float64 inputs.
        fold: number of lattices (Demmel-Nguyen use 2-3; more folds =
            more accuracy, more passes).
        width: bits per lattice; must satisfy ``1 <= width <= 50``.

    The result is bit-identical for any permutation of ``values``; the
    accuracy is ``~ n * 2**(e_max - fold*width)`` absolute (see
    ``error_bound``), which is *not* faithful rounding — the contrast
    with the paper's algorithms that tests exercise.
    """
    if not 1 <= width <= 50:
        raise ValueError("width must be in [1, 50]")
    if fold < 1:
        raise ValueError("fold must be >= 1")
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    if arr.size == 0 or not arr.any():
        return BinnedSumResult(0.0, 0.0, [])

    e_max = exponent_of(float(np.max(np.abs(arr))))
    # Lattice exponents, highest first; clamp at the subnormal floor
    # (below which everything is exactly representable anyway).
    qs: List[int] = []
    for k in range(fold):
        q = e_max - (k + 1) * width + 1
        q = max(q, -1074)
        qs.append(q)
        if q == -1074:
            break

    residual = arr.copy()
    bin_counts: List[int] = [0] * len(qs)
    for k, q in enumerate(qs):
        c = math.ldexp(1.5, q + 52)
        for start in range(0, residual.size, _CHUNK):
            part = residual[start : start + _CHUNK]
            r = (part + c) - c  # deterministic round to lattice 2**q
            part -= r
            # lattice counts are exact small integers in float form
            counts = np.ldexp(r, -q)
            bin_counts[k] += int(np.sum(counts.astype(np.int64)))
    # Final combination: high-to-low float sum of the bin totals (this
    # is where (only) the last rounding happens).
    total = 0.0
    for k, q in enumerate(qs):
        total += math.ldexp(float(bin_counts[k]), q)

    # Everything still in `residual` was discarded: each element is at
    # most half the last lattice unit.
    bound = arr.size * math.ldexp(0.5, qs[-1]) + fold * math.ulp(
        total if total else 1.0
    )
    return BinnedSumResult(value=total, error_bound=bound, bins=qs)
