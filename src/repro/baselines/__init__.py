"""Sequential baselines the paper compares against (or cites).

The accuracy ladder, weakest to strongest:

1. :func:`recursive_sum`, :func:`pairwise_sum`, :func:`sorted_sum` —
   plain float orderings (inexact);
2. :func:`kahan_sum`, :func:`neumaier_sum`, :func:`klein_sum` —
   compensated (inexact but n-independent error);
3. :func:`expansion_sum_value` — Shewchuk expansions (exact
   representation, sequential carries);
4. :func:`ifastsum` — Zhu–Hayes distillation (correctly rounded; the
   paper's experimental comparator);
5. :func:`hybrid_sum` — Zhu–Hayes exponent bucketing (correctly
   rounded; the fast vectorized sequential champion here).
"""

from repro.baselines.compensated import kahan_sum, klein_sum, neumaier_sum
from repro.baselines.expansion import (
    compress,
    expansion_from_values,
    expansion_sum,
    expansion_sum_value,
    grow_expansion,
)
from repro.baselines.hybridsum import HybridAccumulator, hybrid_sum
from repro.baselines.ifastsum import ifastsum, round_three_exact
from repro.baselines.naive import (
    pairwise_sum,
    recursive_sum,
    sorted_sum,
    worst_case_error_bound,
)

__all__ = [
    "kahan_sum",
    "klein_sum",
    "neumaier_sum",
    "compress",
    "expansion_from_values",
    "expansion_sum",
    "expansion_sum_value",
    "grow_expansion",
    "HybridAccumulator",
    "hybrid_sum",
    "ifastsum",
    "round_three_exact",
    "pairwise_sum",
    "recursive_sum",
    "sorted_sum",
    "worst_case_error_bound",
]
