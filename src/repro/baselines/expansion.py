"""Shewchuk-style floating-point expansions (related work, §1.1).

An *expansion* is a sum of floats that are pairwise non-overlapping and
ordered by increasing magnitude; Shewchuk's adaptive-precision
arithmetic keeps exact intermediate results in this form. The paper
contrasts it with the sparse superaccumulator: expansions are sparse
and adaptive but their component exponents are arbitrary (not multiples
of a radix), and summation still propagates carries — so they do not
parallelize. Implemented here both as a correctness baseline and to
let benches show the quadratic blow-up on adversarial inputs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.eft import fast_two_sum, two_sum
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "grow_expansion",
    "expansion_sum",
    "compress",
    "expansion_from_values",
    "expansion_approx",
    "expansion_sum_value",
]


def grow_expansion(expansion: Sequence[float], b: float) -> List[float]:
    """Add one float to an expansion (Shewchuk's GROW-EXPANSION).

    The input must be a valid non-overlapping expansion in increasing
    magnitude order; the output is one as well and represents the exact
    sum. O(len) TwoSum operations.
    """
    out: List[float] = []
    q = b
    for e in expansion:
        q, h = two_sum(q, e)
        if h != 0.0:  # reprolint: disable=FP002 -- TwoSum residuals are exact; zero test drops true zeros
            out.append(h)
    if q != 0.0:  # reprolint: disable=FP002 -- TwoSum residuals are exact; zero test drops true zeros
        out.append(q)
    return out


def expansion_sum(e: Sequence[float], f: Sequence[float]) -> List[float]:
    """Exact sum of two expansions (repeated GROW-EXPANSION).

    O(len(e) * len(f)) worst case — the cost the paper's carry-free
    representation avoids.
    """
    out = list(e)
    for b in f:
        out = grow_expansion(out, b)
    return out


def compress(expansion: Sequence[float]) -> List[float]:
    """Shewchuk's COMPRESS: minimal equal-value expansion.

    Two sweeps of FastTwoSum; the result has no zero components and its
    largest component approximates the total to within an ulp.
    """
    # reprolint: disable-next-line=FP002 -- exact-zero components carry no value
    e = [v for v in expansion if v != 0.0]
    if not e:
        return []
    # Downward sweep: absorb from largest to smallest.
    g: List[float] = []
    q = e[-1]
    for v in reversed(e[:-1]):
        q, small = fast_two_sum(q, v)
        if small != 0.0:  # reprolint: disable=FP002 -- TwoSum residuals are exact; zero test drops true zeros
            g.append(q)
            q = small
    g.append(q)
    # g currently holds components from largest to smallest; upward sweep.
    g.reverse()
    out: List[float] = []
    q = g[0]
    for v in g[1:]:
        q, small = fast_two_sum(v, q)
        if small != 0.0:  # reprolint: disable=FP002 -- TwoSum residuals are exact; zero test drops true zeros
            out.append(small)
    out.append(q)
    return out


def expansion_from_values(values: Iterable[float]) -> List[float]:
    """Exact expansion of the sum of arbitrary floats."""
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    out: List[float] = []
    for x in arr:
        out = grow_expansion(out, float(x))
    return out


def expansion_approx(expansion: Sequence[float]) -> float:
    """Approximate value: add components smallest-first.

    For a compressed expansion this equals the correctly rounded value
    in all but boundary cases; exactness-critical callers should round
    through :func:`repro.core.exact.exact_sum` instead.
    """
    total = 0.0
    for v in expansion:
        total += v
    return total


def expansion_sum_value(values: Iterable[float]) -> float:
    """Faithful float sum via expansions (compress + approx)."""
    return expansion_approx(compress(expansion_from_values(values)))
