"""Compensated summation: Kahan, Neumaier, Klein.

The middle rungs of the accuracy ladder — one or two orders of
compensation. These bound the error independently of ``n`` (to first or
second order in the unit roundoff) but are still **not** exact: a
condition number around ``1/u`` or ``1/u**2`` defeats them, which the
ill-conditioned test distributions demonstrate.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.eft import two_sum
from repro.util.validation import ensure_float64_array

__all__ = ["kahan_sum", "neumaier_sum", "klein_sum"]


def kahan_sum(values: Iterable[float]) -> float:
    """Kahan's classic compensated summation (one running correction).

    Known failure mode: when an addend exceeds the running total in
    magnitude the correction is lost — fixed by Neumaier's variant.
    """
    total = 0.0
    comp = 0.0
    for x in ensure_float64_array(values):
        y = float(x) - comp
        t = total + y
        comp = (t - total) - y
        total = t
    return total


def neumaier_sum(values: Iterable[float]) -> float:
    """Neumaier's improved Kahan summation (magnitude-ordered TwoSum).

    Accumulates the exact per-step errors in a side sum added once at
    the end; first-order error bound independent of ``n``.
    """
    total = 0.0
    comp = 0.0
    for x in ensure_float64_array(values):
        xf = float(x)
        t = total + xf
        if abs(total) >= abs(xf):
            comp += (total - t) + xf
        else:
            comp += (xf - t) + total
        total = t
    return total + comp


def klein_sum(values: Iterable[float]) -> float:
    """Klein's second-order compensated ("doubly compensated") sum.

    Two cascaded correction accumulators; error bound second order in
    the unit roundoff. The strongest non-exact rung of the ladder.
    """
    s = 0.0
    cs = 0.0
    ccs = 0.0
    for x in ensure_float64_array(values):
        t, c = two_sum(s, float(x))
        s = t
        t2, cc = two_sum(cs, c)
        cs = t2
        ccs += cc
    return s + cs + ccs
