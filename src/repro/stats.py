"""Correctly rounded statistical reductions (downstream-user API).

The reductions practitioners actually call — mean, variance, L2 norm,
dot — all reduce to exact sums (of values, squares, products). Every
function here computes those sums exactly with superaccumulators,
finishes the algebra in exact rational arithmetic, and rounds **once**,
so the returned float is the correctly rounded value of the true
mathematical quantity for the given float inputs.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

import numpy as np

from repro.core.eft import two_product_vec, two_square_vec
from repro.core.exact import exact_sum_fraction
from repro.core.fpinfo import decompose as _decompose
from repro.core.rounding import round_scaled_int
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "exact_mean",
    "exact_variance",
    "exact_norm2",
    "exact_dot_fraction",
    "round_fraction",
    "sqrt_round_fraction",
]


def round_fraction(value: Fraction, mode: str = "nearest") -> float:
    """Correctly rounded binary64 value of any Fraction.

    Handles non-dyadic rationals (from divisions) by scaling the
    quotient to 55 significant bits plus a sticky bit, then reusing the
    exact dyadic rounding machinery.
    """
    if value == 0:
        return 0.0
    num, den = value.numerator, value.denominator
    if den & (den - 1) == 0:
        return round_scaled_int(num, -(den.bit_length() - 1), mode)
    # Scale so the integer quotient carries >= 55 significant bits.
    sign = -1 if num < 0 else 1
    a, b = abs(num), den
    shift = 55 - (a.bit_length() - b.bit_length())
    if shift > 0:
        a <<= shift
    else:
        b <<= -shift
    q, r = divmod(a, b)
    # Fold the remainder into two sticky bits (cannot hit a rounding
    # boundary: q has >= 54 bits, the cut sits >= 2 bits above them).
    encoded = (q << 2) | (1 if r else 0)
    return round_scaled_int(sign * encoded, -(shift + 2), mode)


def exact_mean(values: Iterable[float]) -> float:
    """Correctly rounded arithmetic mean."""
    arr = ensure_float64_array(values)
    if arr.size == 0:
        raise ValueError("mean of empty input")
    total = exact_sum_fraction(arr)
    return round_fraction(total / arr.size)


#: TwoProduct is error-free only when the product is comfortably inside
#: the normal range (no overflow, and the error term above the
#: subnormal floor). Magnitudes in this band square safely.
_SAFE_LO = 2.0**-500
_SAFE_HI = 2.0**500


def _exact_square_sum_fraction(arr: np.ndarray) -> Fraction:
    """Exact ``sum(x_i**2)``: vectorized TwoProduct where safe, exact
    integer squares for magnitudes whose float squares would under- or
    overflow (where TwoProduct stops being error-free)."""
    a = np.abs(arr)
    # reprolint: disable-next-line=FP002 -- exact-zero mask, not a tolerance
    safe = ((a > _SAFE_LO) & (a < _SAFE_HI)) | (a == 0.0)
    total = Fraction(0)
    s = arr[safe]
    if s.size:
        p, e = two_square_vec(s)
        total += exact_sum_fraction(np.concatenate([p, e]))
    for v in arr[~safe]:
        m, ex = _decompose(float(v))
        total += Fraction(m * m) * Fraction(2) ** (2 * ex)
    return total


def exact_variance(values: Iterable[float], *, ddof: int = 0) -> float:
    """Correctly rounded variance of the float inputs.

    Computed as ``(sum(x^2) - sum(x)^2 / n) / (n - ddof)`` entirely in
    exact rational arithmetic — immune to the classic catastrophic
    cancellation of the textbook two-pass/one-pass float formulas.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    n = arr.size
    if n - ddof <= 0:
        raise ValueError("need more observations than ddof")
    s = exact_sum_fraction(arr)
    ss = _exact_square_sum_fraction(arr)
    var = (ss - s * s / n) / (n - ddof)
    return round_fraction(var)


def exact_norm2(values: Iterable[float]) -> float:
    """Correctly rounded Euclidean norm ``sqrt(sum(x^2))``.

    The square root of the exact rational sum-of-squares is rounded
    correctly by comparing candidate floats' exact squares against it
    (integer arithmetic only — no double rounding).
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    return sqrt_round_fraction(_exact_square_sum_fraction(arr))


def sqrt_round_fraction(ss: Fraction) -> float:
    """Correctly rounded (to nearest) ``sqrt`` of a nonnegative Fraction.

    The finisher behind :func:`exact_norm2`, shared with the ``norm2``
    reduction op so every plane rounds the root identically.
    """
    if ss == 0:
        return 0.0
    # Float estimate via even-power-of-two scaling so neither ss nor
    # sqrt(ss) under/overflows the float range prematurely: sqrt of a
    # sum of double squares always fits in a double (~< 2**1006).
    e = ss.numerator.bit_length() - ss.denominator.bit_length()
    k = (e - 100) // 2 if abs(e) > 600 else 0
    from repro.core.rounding import MAX_FINITE

    try:
        est = math.ldexp(math.sqrt(round_fraction(ss / Fraction(4) ** k)), k)
    except OverflowError:
        est = math.inf
    # reprolint: disable-next-line=FP002 -- infinity compare is exact by definition
    if est == math.inf or est >= MAX_FINITE:
        # overflow region: nearest rounds to inf iff sqrt(ss) reaches
        # the overflow midpoint 2**1024 - 2**970
        mid = Fraction(2) ** 1024 - Fraction(2) ** 970
        return math.inf if ss >= mid * mid else MAX_FINITE
    if est == 0.0:  # reprolint: disable=FP002 -- exact-zero seeds the subnormal walk
        est = 2.0**-1074
    lo = est
    # walk (at most a few ulps) until lo^2 <= ss < nextafter(lo)^2
    while Fraction(lo) * Fraction(lo) > ss:
        lo = math.nextafter(lo, 0.0)
    while True:
        hi = math.nextafter(lo, math.inf)
        # reprolint: disable-next-line=FP002 -- infinity compare is exact by definition
        if hi == math.inf or Fraction(hi) * Fraction(hi) > ss:
            break
        lo = hi
    hi = math.nextafter(lo, math.inf)
    if hi == math.inf:  # reprolint: disable=FP002 -- infinity compare is exact by definition
        mid = Fraction(2) ** 1024 - Fraction(2) ** 970
        return math.inf if ss >= mid * mid else lo
    # decide nearest by comparing ss against the midpoint's square
    mid = Fraction(lo) + Fraction(hi - lo) / 2  # exact dyadic midpoint
    if ss < mid * mid:
        return lo
    if ss > mid * mid:
        return hi
    # exact tie on the midpoint: even mantissa wins
    return lo if _mantissa_even(lo) else hi


def _mantissa_even(x: float) -> bool:
    m, _ = math.frexp(x)
    return int(m * 2**53) % 2 == 0


def exact_dot_fraction(x: Iterable[float], y: Iterable[float]) -> Fraction:
    """Exact dot product as a Fraction (building block for callers)."""
    xa = ensure_float64_array(x)
    ya = ensure_float64_array(y)
    if xa.shape != ya.shape:
        raise ValueError("length mismatch")
    check_finite_array(xa)
    check_finite_array(ya)
    with np.errstate(over="ignore", under="ignore"):
        p = xa * ya
    # TwoProduct is error-free only for products in the normal range;
    # route the rest through exact integer decomposition.
    ap = np.abs(p)
    # ... and Dekker's splitter itself overflows above ~2**996.
    safe = (
        np.isfinite(p)
        & (ap > 2.0**-1000)
        & (np.abs(xa) < 2.0**996)
        & (np.abs(ya) < 2.0**996)
    ) | (xa == 0.0) | (ya == 0.0)  # reprolint: disable=FP002 -- exact-zero mask, not a tolerance
    total = Fraction(0)
    if safe.any():
        xs, ys = xa[safe], ya[safe]
        ps, e = two_product_vec(xs, ys)
        total += exact_sum_fraction(np.concatenate([ps, e]))
    if not safe.all():
        for u, v in zip(xa[~safe], ya[~safe]):
            mu, eu = _decompose(float(u))
            mv, ev = _decompose(float(v))
            total += Fraction(mu * mv) * Fraction(2) ** (eu + ev)
    return total
