"""Radix-``R`` generalized signed-digit (GSD) machinery.

This module implements the number-theoretic core of the paper's
Section 2: numbers are represented as digit vectors

    value = sum_j  d_j * R**j,        R = 2**w,

with *signed* digits ``d_j``. A vector is *(alpha, beta)-regularized*
(paper terminology, following Parhami's GSD framework) when every digit
lies in ``[-alpha, beta]`` with ``alpha = beta = R - 1``. Lemma 1 of the
paper shows that with this choice the sum of two regularized vectors can
be re-regularized with carries that travel **at most one position** —
the carry-free property that makes every parallel algorithm in the
paper work.

Digit positions ``j`` play the role of superaccumulator component
indices; a digit at position ``j`` represents a float with exponent
``w * j``, matching the paper's requirement that component exponents be
multiples of the radix width.

Scalar routines use exact Python integers and accept any ``2 <= w``;
vectorized routines use int64 NumPy arrays and require ``w <= 31`` so
that a pairwise digit sum ``|P| <= 2R - 2 < 2**63`` and all bit-shift
tricks stay inside 64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.fpinfo import decompose, decompose_vec
from repro.errors import RepresentationError

__all__ = [
    "RadixConfig",
    "DEFAULT_RADIX",
    "split_float",
    "split_floats_vec",
    "split_scaled_ints_vec",
    "regularize_pair_vec",
    "normalize_digit_array",
    "check_regularized",
    "digits_to_int",
    "accumulate_digits",
]

#: Largest digit width for which the vectorized int64 paths are safe.
MAX_VECTOR_W = 31


@dataclass(frozen=True)
class RadixConfig:
    """Radix parameters ``(w, R, alpha, beta)`` with ``R = 2**w``.

    The paper fixes ``alpha = beta = R - 1`` (Lemma 1); we keep them as
    named properties so invariant checks read like the paper.
    """

    w: int

    def __post_init__(self) -> None:
        if not 2 <= self.w <= 61:
            raise ValueError(f"digit width w must be in [2, 61], got {self.w}")

    @property
    def R(self) -> int:
        """The radix ``2**w`` (``> 2`` as required by Lemma 1)."""
        return 1 << self.w

    @property
    def alpha(self) -> int:
        """Most negative digit magnitude allowed, ``R - 1``."""
        return self.R - 1

    @property
    def beta(self) -> int:
        """Most positive digit allowed, ``R - 1``."""
        return self.R - 1

    @property
    def mask(self) -> int:
        """Bit mask ``R - 1`` for extracting one digit."""
        return self.R - 1

    @property
    def supports_vectorized(self) -> bool:
        """Whether the int64 NumPy fast paths may be used."""
        return self.w <= MAX_VECTOR_W

    @property
    def digits_per_double(self) -> int:
        """Upper bound on digits produced by splitting one binary64.

        A 53-bit significand shifted by up to ``w - 1`` bits spans
        ``52 + w`` bits, i.e. ``ceil(52 / w) + 1`` digits.
        """
        return -(-52 // self.w) + 1

    def index_of_exponent(self, e: int) -> Tuple[int, int]:
        """Map a bit exponent ``e`` to ``(digit index, intra-digit shift)``.

        ``2**e = 2**s * R**j`` with ``0 <= s < w``; floored division so
        negative exponents (subnormals) land on the correct digit.
        """
        j = e // self.w
        return j, e - self.w * j


#: Package-wide default: 30-bit digits. Wide enough that one binary64
#: splits into at most 3 digits and an int64 limb absorbs ~2**33 raw
#: digit additions before renormalization; narrow enough for all the
#: 64-bit shift tricks. (The paper's choice R = 2**(t-1) = 2**51 is
#: available through the scalar paths; see the radix ablation bench.)
DEFAULT_RADIX = RadixConfig(w=30)


def split_float(x: float, radix: RadixConfig = DEFAULT_RADIX) -> List[Tuple[int, int]]:
    """Split a finite float into its GSD digits.

    Returns a list of ``(index, digit)`` pairs with all digits sharing
    the sign of ``x`` — hence automatically (alpha, beta)-regularized —
    and ``x == sum(d * R**j for j, d in result)`` exactly. Zero digits
    are omitted; ``0.0`` returns ``[]``.

    This is the paper's Section 3 step 2 ("convert x_i into an
    equivalent regularized superaccumulator ... by splitting each
    floating-point number into O(1) numbers").
    """
    mantissa, e = decompose(x)
    if mantissa == 0:
        return []
    j0, s = radix.index_of_exponent(e)
    sign = -1 if mantissa < 0 else 1
    value = abs(mantissa) << s
    out: List[Tuple[int, int]] = []
    k = 0
    while value:
        digit = value & radix.mask
        if digit:
            out.append((j0 + k, sign * digit))
        value >>= radix.w
        k += 1
    return out


def split_floats_vec(
    values: np.ndarray, radix: RadixConfig = DEFAULT_RADIX
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`split_float` over a float64 array.

    Returns:
        ``(indices, digits)`` int64 arrays of equal length: the
        concatenated non-zero digits of every element. No ordering
        guarantee; callers accumulate with :func:`accumulate_digits`.
    """
    if not radix.supports_vectorized:
        raise ValueError(
            f"vectorized split requires w <= {MAX_VECTOR_W}, got w={radix.w}"
        )
    mantissa, e = decompose_vec(values)
    w = radix.w
    j0 = e // w  # floored by NumPy semantics
    s = e - j0 * w  # in [0, w)
    sign = np.sign(mantissa)
    a = np.abs(mantissa).astype(np.uint64)
    mask = np.uint64(radix.mask)

    ndig = radix.digits_per_double
    parts_idx = []
    parts_dig = []
    # Digit 0 needs a left shift by s (bits [0, w - s) of the mantissa).
    low = (a & (mask >> s.astype(np.uint64))) << s.astype(np.uint64)
    parts_idx.append(j0)
    parts_dig.append(low.astype(np.int64) * sign)
    # Digits k >= 1 are right shifts by k*w - s <= 62 (clipped: mantissa
    # has < 64 significant bits, so any shift >= 63 yields zero anyway).
    for k in range(1, ndig):
        shift = np.minimum(k * w - s, 63).astype(np.uint64)
        dk = (a >> shift) & mask
        parts_idx.append(j0 + k)
        parts_dig.append(dk.astype(np.int64) * sign)

    idx = np.concatenate(parts_idx)
    dig = np.concatenate(parts_dig)
    keep = dig != 0
    return idx[keep], dig[keep]


def split_scaled_ints_vec(
    values: np.ndarray,
    exponents: np.ndarray,
    radix: RadixConfig = DEFAULT_RADIX,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized GSD split of scaled integers ``v_i * 2**e_i``.

    The generalization of :func:`split_floats_vec` from 53-bit float
    significands to arbitrary int64 magnitudes ``|v_i| < 2**63`` — the
    shape a resolved exponent-bin array produces (per-bin int64 sums at
    a known bit exponent; see :mod:`repro.kernels.binned`).

    Args:
        values: int64 array of signed integer parts ``v_i``
            (``|v_i| < 2**63``, i.e. not ``int64`` min).
        exponents: int64 array of bit exponents ``e_i`` (same length).

    Returns:
        ``(indices, digits)`` int64 arrays: the concatenated non-zero
        GSD digits of every element, exactly representing
        ``sum(v_i * 2**e_i)``. Same-sign digits per element, hence
        regularized; no ordering guarantee — callers accumulate with
        :func:`accumulate_digits`.
    """
    if not radix.supports_vectorized:
        raise ValueError(
            f"vectorized split requires w <= {MAX_VECTOR_W}, got w={radix.w}"
        )
    v = np.asarray(values, dtype=np.int64)
    e = np.asarray(exponents, dtype=np.int64)
    if v.shape != e.shape:
        raise ValueError("values and exponents must have equal shape")
    if (v == np.iinfo(np.int64).min).any():
        raise ValueError("scaled-int split requires |v| < 2**63")
    w = radix.w
    j0 = e // w  # floored by NumPy semantics
    s = e - j0 * w  # in [0, w)
    sign = np.sign(v)
    a = np.abs(v).astype(np.uint64)
    mask = np.uint64(radix.mask)

    # A 63-bit magnitude shifted left by up to w - 1 bits spans at most
    # 62 + w bits: ceil(62 / w) + 1 digits.
    ndig = -(-62 // w) + 1
    parts_idx = []
    parts_dig = []
    low = (a & (mask >> s.astype(np.uint64))) << s.astype(np.uint64)
    parts_idx.append(j0)
    parts_dig.append(low.astype(np.int64) * sign)
    for k in range(1, ndig):
        # Shifts >= 63 would be UB in C but are clipped here: bit 63 of
        # |v| is zero, so a 63-bit shift already yields the empty digit.
        shift = np.minimum(k * w - s, 63).astype(np.uint64)
        dk = (a >> shift) & mask
        parts_idx.append(j0 + k)
        parts_dig.append(dk.astype(np.int64) * sign)

    idx = np.concatenate(parts_idx)
    dig = np.concatenate(parts_dig)
    keep = dig != 0
    return idx[keep], dig[keep]


def regularize_pair_vec(
    pair_sums: np.ndarray, radix: RadixConfig = DEFAULT_RADIX
) -> np.ndarray:
    """Lemma 1: re-regularize the digitwise sum of two regularized vectors.

    Args:
        pair_sums: int64 array ``P`` with ``P[i] = Y[i] + Z[i]`` for two
            aligned (alpha, beta)-regularized vectors, least significant
            digit first; every entry lies in ``[-(2R-2), 2R-2]``.

    Returns:
        int64 array ``S`` of length ``len(P) + 1`` (one extra top
        position for the final carry-out), (alpha, beta)-regularized,
        with the same integer value.

    The construction is the paper's, verbatim: choose a signed carry
    ``C[i+1] in {-1, 0, +1}`` so the interim digit ``W[i] = P[i] -
    C[i+1]*R`` lies in ``[-(alpha-1), beta-1]``, then ``S[i] = W[i] +
    C[i]``. Each carry travels exactly one position — no propagation.
    """
    P = np.asarray(pair_sums, dtype=np.int64)
    R = np.int64(radix.R)
    carry_out = np.zeros(len(P) + 1, dtype=np.int64)
    # Case 1 / Case 2 thresholds of Lemma 1's proof.
    np.subtract(
        (P >= R - 1).astype(np.int64),
        (P <= -(R - 1)).astype(np.int64),
        out=carry_out[1:],
    )
    W = P - carry_out[1:] * R
    S = np.empty(len(P) + 1, dtype=np.int64)
    S[: len(P)] = W
    S[len(P)] = 0
    S += carry_out
    return S


def normalize_digit_array(
    raw: np.ndarray, radix: RadixConfig = DEFAULT_RADIX
) -> np.ndarray:
    """Reduce arbitrary int64 digit values to regularized range.

    Bulk accumulation (:func:`accumulate_digits`) deposits raw digit
    sums of magnitude up to ``n * (R - 1)`` into each limb; this routine
    converts such a vector into an (alpha, beta)-regularized one with
    the same value. Carries here *can* travel multiple positions (this
    is the deferred work the carry-free pairwise path avoids), but the
    loop contracts geometrically: each pass divides the carry magnitude
    by ``R``, so it runs at most ``ceil(64 / w) + 1`` times.

    Returns a new array extended by enough top positions to hold the
    final carries (least significant digit first, same base index).
    """
    w = radix.w
    half = np.int64(radix.R >> 1)
    headroom = -(-64 // w) + 1
    digits = np.concatenate(
        [np.asarray(raw, dtype=np.int64), np.zeros(headroom, dtype=np.int64)]
    )
    while True:
        # Balanced reduction: remainder in [-R/2, R/2-1]. Unlike a
        # non-negative reduction this never ripples a borrow across the
        # array for negative values — a small negative digit is already
        # in range — so carry magnitudes shrink by a factor R per pass.
        carries = (digits + half) >> w
        if not carries.any():
            return digits
        digits -= carries << w
        digits[1:] += carries[:-1]
        if carries[-1]:
            raise RepresentationError(
                "digit normalization overflowed its headroom"
            )


def check_regularized(
    digits: np.ndarray, radix: RadixConfig = DEFAULT_RADIX, *, what: str = "vector"
) -> None:
    """Assert every digit lies in ``[-alpha, beta]``.

    Raises:
        RepresentationError: naming the first offending position.
    """
    d = np.asarray(digits, dtype=np.int64)
    bad = (d < -radix.alpha) | (d > radix.beta)
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise RepresentationError(
            f"{what} digit at offset {i} = {int(d[i])} outside "
            f"[-{radix.alpha}, {radix.beta}]"
        )


def digits_to_int(
    digits: np.ndarray, base_index: int, radix: RadixConfig = DEFAULT_RADIX
) -> Tuple[int, int]:
    """Exact integer value of a digit vector, as ``(V, shift)``.

    The represented real value is ``V * 2**shift`` with ``shift = w *
    base_index``. ``V`` is an arbitrary-precision Python int, assembled
    most-significant-first with Horner's rule (mixed-sign digits are
    fine — this is plain integer arithmetic).
    """
    w = radix.w
    value = 0
    for d in reversed(np.asarray(digits, dtype=np.int64)):
        value = (value << w) + int(d)
    return value, w * base_index


def accumulate_digits(
    indices: np.ndarray,
    digits: np.ndarray,
    *,
    base_index: int,
    length: int,
) -> np.ndarray:
    """Exactly sum ``(index, digit)`` pairs into an int64 limb array.

    ``out[i - base_index] = sum of digits with index i``. This is the
    bulk n-ary analogue of superaccumulator addition: raw sums may leave
    the regularized range and are later reduced by
    :func:`normalize_digit_array`.

    Implementation note (HPC guide: prefer vectorized reductions):
    ``np.bincount`` only supports float64 weights, whose 53-bit
    significand cannot exactly hold 64-bit digit sums. We therefore
    split each digit into a low 16-bit non-negative part and a signed
    high part; each part's per-limb sum stays well below ``2**53`` for
    any realistic ``n`` (up to ``2**37`` summands), so both bincounts
    are exact, and recombination in int64 is exact. This is ~5-10x
    faster than the ``np.add.at`` scatter it replaces.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    off = np.asarray(indices, dtype=np.int64) - base_index
    if off.size == 0:
        return np.zeros(length, dtype=np.int64)
    if off.min() < 0 or off.max() >= length:
        raise ValueError("digit index outside accumulator range")
    d = np.asarray(digits, dtype=np.int64)
    if d.size > (1 << 36):  # keep the float64 bincount sums exact
        mid = d.size // 2
        return accumulate_digits(
            off[:mid], d[:mid], base_index=0, length=length
        ) + accumulate_digits(off[mid:], d[mid:], base_index=0, length=length)
    lo = (d & np.int64(0xFFFF)).astype(np.float64)
    hi = (d >> np.int64(16)).astype(np.float64)
    lo_sum = np.bincount(off, weights=lo, minlength=length)
    hi_sum = np.bincount(off, weights=hi, minlength=length)
    out = (hi_sum.astype(np.int64) << np.int64(16)) + lo_sum.astype(np.int64)
    return out
