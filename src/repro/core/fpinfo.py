"""Floating-point format introspection.

The paper (Section 2) works with a generic base-2 format parameterized
by ``t`` (mantissa bits) and ``l`` (exponent bits); IEEE 754 binary64
has ``t = 52`` and ``l = 11``. Everything downstream is written against
:class:`FloatFormat` so the representation machinery stays
precision-independent, while the fast NumPy paths are specialized to
binary64 (the only format with native array support).

The central primitive is :func:`decompose`: write a finite float ``x``
exactly as ``M * 2**e`` with integer ``M``, ``|M| < 2**(t+1)``. This is
the bridge between hardware floats and the integer signed-digit world
of :mod:`repro.core.digits`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import NonFiniteInputError

__all__ = [
    "FloatFormat",
    "BINARY32",
    "BINARY64",
    "decompose",
    "compose",
    "decompose_vec",
    "ulp",
    "exponent_of",
    "exponent_span",
]


@dataclass(frozen=True)
class FloatFormat:
    """A base-2 floating-point format ``(t, l)`` in the paper's notation.

    Attributes:
        t: number of stored mantissa bits (52 for binary64). The
            significand including the hidden bit has ``t + 1`` bits.
        l: number of exponent bits (11 for binary64).
    """

    t: int
    l: int

    @property
    def precision(self) -> int:
        """Significand width including the hidden bit (``t + 1``)."""
        return self.t + 1

    @property
    def bias(self) -> int:
        """Exponent bias ``2**(l-1) - 1``."""
        return (1 << (self.l - 1)) - 1

    @property
    def e_max(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return self.bias

    @property
    def e_min(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def min_subnormal_exponent(self) -> int:
        """Exponent ``e`` such that the smallest subnormal is ``2**e``.

        For binary64 this is -1074: the least significant bit position
        any finite value of the format can occupy.
        """
        return self.e_min - self.t

    @property
    def max_value_exponent(self) -> int:
        """Exponent of the most significant bit of the largest finite value.

        For binary64 this is 971 + 52 = 1023; i.e. ``max_finite < 2**1024``.
        """
        return self.e_max

    @property
    def delta_max(self) -> int:
        """Width of the exponent *field* range usable by finite numbers.

        The experimental sections of Zhu–Hayes and of the paper cap the
        data-generator parameter ``delta`` at 2046 for binary64: the
        number of distinct biased exponent values of finite numbers.
        """
        return (1 << self.l) - 2


BINARY32 = FloatFormat(t=23, l=8)
BINARY64 = FloatFormat(t=52, l=11)

# Scale used to lift frexp output to an integer significand for binary64.
_TWO53 = float(1 << 53)


def decompose(x: float) -> Tuple[int, int]:
    """Write finite ``x`` exactly as ``M * 2**e``, ``M`` an int, ``|M| < 2**53``.

    Zero decomposes to ``(0, 0)``. Works for subnormals (the resulting
    ``M`` simply has fewer significant bits).

    Raises:
        NonFiniteInputError: for NaN or infinities.
    """
    if x == 0.0:  # reprolint: disable=FP002 -- exact-zero special case of decompose
        return 0, 0
    if not math.isfinite(x):
        raise NonFiniteInputError(f"cannot decompose non-finite value {x!r}")
    m, e = math.frexp(x)  # x = m * 2**e, 0.5 <= |m| < 1
    mantissa = int(m * _TWO53)  # exact: m has <= 53 significant bits
    return mantissa, e - 53


def compose(mantissa: int, e: int) -> float:
    """Inverse of :func:`decompose` for representable pairs.

    ``compose(M, e)`` returns the float nearest ``M * 2**e`` (exact when
    representable). Large mantissas are handled via correct rounding of
    the underlying integer, so ``compose`` never silently truncates.
    """
    if mantissa == 0:
        return 0.0
    if abs(mantissa) < (1 << 53):
        return math.ldexp(float(mantissa), e)
    # Fall back to exact big-int scaling with correct rounding.
    from repro.core.rounding import round_scaled_int  # local: avoid cycle

    return round_scaled_int(mantissa, e)


def decompose_vec(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`decompose` for a float64 array.

    Returns:
        ``(M, e)`` int64 arrays with ``x == M * 2.0**e`` elementwise and
        ``|M| < 2**53``. Zeros map to ``(0, 0)``.

    The caller is responsible for rejecting non-finite entries (see
    :func:`repro.util.validation.check_finite_array`); NaN/inf here
    would produce garbage decompositions, not errors.
    """
    m, e = np.frexp(x)
    mantissa = np.asarray(m * _TWO53, dtype=np.int64)  # exact conversion
    exp = e.astype(np.int64) - 53
    if x.size:
        zero = mantissa == 0
        if zero.any():
            exp = np.where(zero, 0, exp)
    return mantissa, exp


def ulp(x: float) -> float:
    """Unit in the last place of ``x`` (binary64), as a positive float.

    Matches :func:`math.ulp` for non-zero finite values; defined here so
    algorithms written against :class:`FloatFormat` have one spelling.
    """
    return math.ulp(x)


def exponent_of(x: float) -> int:
    """Unbiased exponent of the most significant bit of finite ``x != 0``.

    ``2**exponent_of(x) <= |x| < 2**(exponent_of(x) + 1)``.
    """
    # reprolint: disable-next-line=FP002 -- exact-zero has no msb exponent
    if x == 0.0 or not math.isfinite(x):
        raise ValueError(f"exponent_of requires finite non-zero x, got {x!r}")
    return math.frexp(x)[1] - 1


def exponent_span(values: np.ndarray) -> int:
    """Spread (max - min) of msb exponents over the non-zero entries.

    This is the quantity the experimental parameter ``delta`` controls
    in the data generators; exposed so tests can verify generator
    output and so the harness can report the *effective* delta (which
    Anderson's distribution collapses — Figure 2 discussion).
    """
    nz = values[values != 0.0]  # reprolint: disable=FP002 -- exact-zero mask, not a tolerance
    if nz.size == 0:
        return 0
    _, e = np.frexp(nz)
    return int(e.max() - e.min())
