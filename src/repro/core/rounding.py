"""Conversion of exact digit representations back to floating point.

This implements the last two steps of the paper's Section 3 algorithm:

* step 6 — propagate signed carries to turn an (alpha, beta)-regularized
  superaccumulator into a *non-overlapping* one
  (:func:`to_nonoverlapping`); and
* step 7 — locate the most significant non-zero component and round,
  using the truncated bits, to a floating-point number
  (:func:`round_digits`).

Also provided is :func:`round_scaled_int`, correct rounding of an exact
value ``V * 2**shift`` (``V`` an arbitrary-precision int) to binary64 in
a choice of rounding directions. It is both the reference everything
else is tested against and the workhorse the accumulators use when a
full big-integer view of the value is already at hand.

Rounding-mode vocabulary:

* ``"nearest"`` — round-to-nearest, ties-to-even (IEEE default). A
  correctly rounded result is in particular *faithfully* rounded, the
  guarantee the paper targets.
* ``"down"`` / ``"up"`` / ``"zero"`` — directed modes, exposed so tests
  can check the faithfulness bracket ``RD(S) <= S* <= RU(S)``.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.core.digits import RadixConfig, DEFAULT_RADIX
from repro.errors import RepresentationError

__all__ = [
    "round_scaled_int",
    "round_scaled_int_to_format",
    "to_nonoverlapping",
    "canonicalize_sign",
    "round_digits",
    "round_windowed",
    "MAX_FINITE",
]

#: Largest finite binary64 value.
MAX_FINITE = math.ldexp(float((1 << 53) - 1), 971)

_MODES = ("nearest", "down", "up", "zero")


def _apply_direction(
    keep: int, rem_nonzero: bool, rem_half_cmp: int, keep_odd: bool,
    sign: int, mode: str,
) -> int:
    """Shared rounding decision: return increment (0 or 1) for ``keep``.

    ``rem_half_cmp`` is -1/0/+1 comparing the dropped remainder with one
    half of the dropped range (only meaningful for ``nearest``).
    """
    if mode == "nearest":
        if rem_half_cmp > 0 or (rem_half_cmp == 0 and keep_odd):
            return 1
        return 0
    if mode == "zero":
        return 0
    if mode == "down":  # toward -inf: bump magnitude only when negative
        return 1 if (sign < 0 and rem_nonzero) else 0
    if mode == "up":  # toward +inf
        return 1 if (sign > 0 and rem_nonzero) else 0
    raise ValueError(f"unknown rounding mode {mode!r}; expected one of {_MODES}")


def round_scaled_int(value: int, shift: int, mode: str = "nearest") -> float:
    """Round the exact real number ``value * 2**shift`` to binary64.

    Args:
        value: arbitrary-precision integer (any sign).
        shift: power-of-two scale (any sign).
        mode: one of ``"nearest"`` (default, ties-to-even), ``"down"``,
            ``"up"``, ``"zero"``.

    Returns:
        The correctly rounded float in the requested direction. Values
        beyond the finite range return ``±inf`` or ``±MAX_FINITE``
        according to IEEE overflow semantics for the mode. Tiny values
        round through the subnormal range to ``±0.0`` correctly.
    """
    if mode not in _MODES:
        raise ValueError(f"unknown rounding mode {mode!r}; expected one of {_MODES}")
    if value == 0:
        return 0.0
    sign = -1 if value < 0 else 1
    a = -value if value < 0 else value

    msb = a.bit_length() - 1 + shift  # exponent of the leading bit
    if msb > 1023:
        # |value| >= 2**1024: beyond every finite double, for any tail.
        return _overflow_result(sign, mode)
    # Least significant representable bit position: normal numbers keep
    # 53 significant bits; below 2**-1022 the format pins the lsb at
    # 2**-1074 (gradual underflow).
    lsb = max(msb - 52, -1074)
    cut = lsb - shift  # low bits of `a` that cannot be represented

    if cut <= 0:
        # Every bit of `a` is representable: exact conversion.
        return math.ldexp(float(sign * a), shift)

    keep = a >> cut
    rem = a - (keep << cut)
    half = 1 << (cut - 1)
    rem_half_cmp = (rem > half) - (rem < half)
    keep += _apply_direction(
        keep, rem != 0, rem_half_cmp, bool(keep & 1), sign, mode
    )

    if keep == 0:
        # Entire magnitude rounded away (deep underflow).
        return -0.0 if sign < 0 else 0.0

    # Rounding may have carried into a new leading bit (keep == 2**53
    # when starting from a normal window); the product keep * 2**lsb is
    # still exact, we only need overflow detection.
    result_msb = keep.bit_length() - 1 + lsb
    if result_msb > 1023:
        return _overflow_result(sign, mode)
    return math.ldexp(float(sign * keep), lsb)


def round_scaled_int_to_format(
    value: int, shift: int, fmt, mode: str = "nearest"
) -> "tuple[int, int]":
    """Round ``value * 2**shift`` to an arbitrary base-2 format.

    The precision-independent generalization of :func:`round_scaled_int`
    (which is the binary64 specialization): ``fmt`` is a
    :class:`~repro.core.fpinfo.FloatFormat` with any mantissa width
    ``t`` and exponent width ``l``, including binary32, binary16 and
    quad. Returns a canonical pair ``(M, E)`` with the rounded value
    equal to ``M * 2**E`` exactly, ``|M| < 2**(t+1)``, and ``E`` at or
    above the format's subnormal floor — or ``(±1, None)``-style
    sentinels are avoided by returning ``M = 0, E = 0`` for zero and
    raising ``OverflowError`` when the rounded magnitude exceeds the
    format's largest finite value (callers decide their infinity
    semantics; binary64 callers get it prepackaged via
    :func:`round_scaled_int`).
    """
    if value == 0:
        return 0, 0
    sign = -1 if value < 0 else 1
    a = -value if value < 0 else value
    msb = a.bit_length() - 1 + shift
    lsb = max(msb - fmt.t, fmt.min_subnormal_exponent)
    cut = lsb - shift
    if cut <= 0:
        m = a << (-cut)
        if (m.bit_length() - 1 + lsb) > fmt.max_value_exponent:
            raise OverflowError("value exceeds the format's finite range")
        return sign * m, lsb
    keep = a >> cut
    rem = a - (keep << cut)
    half = 1 << (cut - 1)
    rem_half_cmp = (rem > half) - (rem < half)
    keep += _apply_direction(
        keep, rem != 0, rem_half_cmp, bool(keep & 1), sign, mode
    )
    if keep == 0:
        return 0, 0
    if keep == 1 << (fmt.t + 1):
        # rounding carried into a new leading bit: renormalize (exact)
        keep >>= 1
        lsb += 1
    if keep.bit_length() - 1 + lsb > fmt.max_value_exponent:
        raise OverflowError("value exceeds the format's finite range")
    return sign * keep, lsb


def _overflow_result(sign: int, mode: str) -> float:
    """IEEE overflow outcome per rounding direction.

    ``nearest`` overflows to infinity (any value reaching here is at
    least ``2**1024 - 2**970``); directed modes saturate at the largest
    finite value on the side they cannot cross.
    """
    if mode == "nearest":
        return sign * math.inf
    if mode == "zero":
        return sign * MAX_FINITE
    if mode == "down":
        return -math.inf if sign < 0 else MAX_FINITE
    return math.inf if sign > 0 else -MAX_FINITE


def to_nonoverlapping(
    digits: Sequence[int], radix: RadixConfig = DEFAULT_RADIX
) -> np.ndarray:
    """Propagate signed carries into a non-overlapping digit vector.

    Input digits may be any int64 values (typically (alpha, beta)-
    regularized); output digits lie in the *balanced, non-redundant*
    range ``[-R/2, R/2 - 1]``, so each value has exactly one
    representation and the sign of the number equals the sign of its
    leading non-zero digit.

    Note on the paper: Section 3 step 6 asks for a
    ``((R/2)-1, (R/2)-1)``-regularized result, i.e. digits in
    ``[-(R/2-1), R/2-1]``. That digit set has only ``R - 1`` values and
    cannot positionally represent every integer (GSD completeness needs
    ``alpha + beta + 1 >= R``); we use the standard balanced complete
    set ``[-R/2, R/2-1]``, which satisfies the only property the
    algorithm relies on — non-overlap with sign determined by the
    leading digit (the tail is bounded by ``(R/2)/(R-1) * R**j < R**j``).

    The scan is sequential here (it is a prefix computation; the PRAM
    module implements the parallel-prefix version the paper sketches).
    Output gains one top position for the final carry.
    """
    w = radix.w
    R = radix.R
    half = R >> 1
    out = np.zeros(len(digits) + 1, dtype=np.int64)
    carry = 0
    for i, d in enumerate(np.asarray(digits, dtype=np.int64)):
        tot = int(d) + carry
        rem = ((tot + half) % R) - half  # in [-R/2, R/2 - 1]
        carry = (tot - rem) >> w
        out[i] = rem
    if not -1 <= carry <= 1:
        raise RepresentationError(f"final carry {carry} out of range")
    out[len(digits)] = carry
    return out


def canonicalize_sign(
    digits: Sequence[int], radix: RadixConfig = DEFAULT_RADIX
) -> Tuple[int, np.ndarray]:
    """Rewrite a digit vector so all digits are non-negative.

    Returns ``(sign, magnitude_digits)`` with every output digit in
    ``[0, R - 1]`` and value ``== sign * sum(m_j R**j)``. This is the
    borrow-propagation pass that makes digit-wise rounding easy: once
    the tail is single-signed, "the truncated bits" of the paper's step
    7 reduce to one sticky flag.
    """
    w = radix.w
    arr = np.asarray(digits, dtype=np.int64)
    # Determine the overall sign from the most significant non-zero digit
    # of the non-overlapping form (valid because |tail| < R**j there; for
    # general regularized input we conservatively re-run after flipping).
    work = to_nonoverlapping(arr, radix)
    nz = np.flatnonzero(work)
    if nz.size == 0:
        return 0, np.zeros(1, dtype=np.int64)
    sign = 1 if work[nz[-1]] > 0 else -1
    if sign < 0:
        work = -work
    # Borrow pass: make every digit non-negative. Each step fixes digit i
    # at the cost of decrementing digit i+1; since the value is positive
    # and digits are bounded, the top digit ends non-negative.
    out = work.copy()
    R = radix.R
    for i in range(len(out) - 1):
        if out[i] < 0:
            # borrow: out[i] in [-R/2, -1] -> += R, guaranteed < R
            out[i] += R
            out[i + 1] -= 1
    if out[-1] < 0:
        raise RepresentationError("sign canonicalization failed (negative top)")
    return sign, out


def round_digits(
    digits: Sequence[int],
    base_index: int,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
) -> float:
    """Digit-wise rounding of a superaccumulator to a float (§3 step 7).

    Works window-wise: canonicalize the sign, take just enough leading
    digits to cover 53 bits plus a guard, collapse everything below into
    a sticky flag, and round. Cost is ``O(#limbs)`` integer work with a
    constant-size big-int head — no full big-integer reconstruction.

    ``digits[k]`` has weight ``R**(base_index + k)``.
    """
    sign, mag = canonicalize_sign(digits, radix)
    if sign == 0:
        return 0.0
    w = radix.w
    nz = np.flatnonzero(mag)
    top = int(nz[-1])
    # Window: enough digits for 53 bits + guard bit below the leading one.
    window = -(-55 // w) + 1
    lo = max(top - window + 1, 0)
    head = 0
    for k in range(top, lo - 1, -1):
        head = (head << w) + int(mag[k])
    sticky = bool(nz[0] < lo)
    head_shift = w * (base_index + lo)
    if not sticky:
        return round_scaled_int(sign * head, head_shift, mode)
    # Fold the sticky into two extra low bits: value = (4*head + 1) *
    # 2**(head_shift - 2) brackets the true value strictly between
    # 4*head and 4*head + 2, which is enough to decide any rounding
    # (the true tail is in (0, 1) units of 2**head_shift, and the
    # window guarantees the decision bit sits above those 2 bits).
    return round_scaled_int(sign * ((head << 2) | 1), head_shift - 2, mode)


#: Digit window large enough for :func:`round_windowed` to be exact:
#: 53 significand bits + guard below the leading digit, + 2 slack
#: digits so the tail-sentinel substitution cannot reach the cut.
def window_size(radix: RadixConfig = DEFAULT_RADIX) -> int:
    """Leading-component count sufficient for windowed rounding."""
    return -(-55 // radix.w) + 3


def round_windowed(
    top_digits: Sequence[int],
    base_index: int,
    tail_sign: int,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
) -> float:
    """Round from the leading components plus a tail-sign summary.

    For streaming consumers (the external-memory algorithms) that hold
    only the most significant components of a *non-overlapping* balanced
    superaccumulator in memory: ``top_digits[k]`` weighs
    ``R**(base_index + k)``, and ``tail_sign in {-1, 0, +1}`` reports
    the sign of everything below ``R**base_index`` (for balanced
    non-overlapping digits that is the sign of the highest non-zero
    omitted digit, and the omitted magnitude is strictly below
    ``R**base_index``).

    Requires ``len(top_digits) >= window_size(radix)`` whenever
    ``tail_sign`` is non-zero, so the sticky sentinel sits far enough
    below the rounding cut; a short window with a non-zero tail raises.
    """
    if tail_sign not in (-1, 0, 1):
        raise ValueError("tail_sign must be -1, 0 or +1")
    digits = list(int(d) for d in top_digits)
    if tail_sign == 0:
        return round_digits(np.asarray(digits, dtype=np.int64), base_index, radix, mode)
    if len(digits) < window_size(radix):
        raise RepresentationError(
            "window too short for a non-zero tail; widen the hot window"
        )
    # Substitute the tail with a same-signed sentinel one position down:
    # any 0 < |tail| < R**base_index rounds identically because the cut
    # sits at least w*2 bits above the sentinel (window_size slack).
    sentinel = [tail_sign] + digits
    return round_digits(
        np.asarray(sentinel, dtype=np.int64), base_index - 1, radix, mode
    )
