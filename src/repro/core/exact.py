"""High-level exact summation API.

These are the entry points a downstream user calls; everything else in
:mod:`repro.core` is machinery. ``exact_sum`` returns the correctly
rounded (hence faithfully rounded) float sum of any finite float64
array using the representation of the caller's choice.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Tuple

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "exact_sum",
    "exact_sum_scaled",
    "exact_sum_fraction",
    "exact_sum_to_format",
    "exact_dot",
]

_METHODS = ("sparse", "small", "dense", "adaptive", "auto")


def _build(values: np.ndarray, method: str, radix: RadixConfig):
    # "adaptive"/"auto" land here only from the scaled/fraction paths
    # (which need the exact accumulator, not a rounded float) or for
    # non-nearest modes the certifying tiers cannot prove; the sparse
    # kernel is the exact workhorse in both cases. Construction goes
    # through the kernel registry so this module holds no
    # representation-specific build code of its own.
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    from repro.kernels import get_kernel

    name = "sparse" if method in ("auto", "adaptive") else method
    return get_kernel(name, radix=radix).exact_variant().fold_exact(values)


def exact_sum(
    values: Iterable[float],
    *,
    method: str = "auto",
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
) -> float:
    """Faithfully rounded sum of ``values``.

    Args:
        values: any array-like of finite float64 values.
        method: representation — ``"adaptive"`` (condition-adaptive
            tier ladder, also what ``"auto"`` now selects: certified
            fast paths for well-conditioned inputs, bit-identical
            escalation otherwise), ``"sparse"`` (the paper's sparse
            superaccumulator), ``"small"`` (Neal-style dense
            fixed-size), or ``"dense"`` (full fixed-point array).
        mode: rounding direction; ``"nearest"`` (default) is correct
            rounding, which implies faithful rounding.
        radix: digit-width configuration.

    Returns:
        The rounded sum; exact intermediate arithmetic guarantees the
        result is independent of input order — every method returns the
        same bits on the same input.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    if method in ("auto", "adaptive") and mode == "nearest":
        from repro.adaptive import adaptive_sum

        return adaptive_sum(arr, radix=radix)
    if method in _METHODS:
        return _build(arr, method, radix).to_float(mode)
    # Any registered kernel name works as a method: one fold + round
    # through the generic schedule (with escalation for speculative
    # kernels), so new kernels are usable here without touching this
    # module.
    from repro.kernels import get_kernel, kernel_sum

    try:
        kernel = get_kernel(method, radix=radix)
    except ValueError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {_METHODS} "
            f"or a registered kernel name"
        ) from None
    return kernel_sum(kernel, [arr], mode=mode)


def exact_sum_scaled(
    values: Iterable[float],
    *,
    method: str = "auto",
    radix: RadixConfig = DEFAULT_RADIX,
) -> Tuple[int, int]:
    """Exact sum as ``(V, shift)`` with value ``V * 2**shift``."""
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    return _build(arr, method, radix).to_scaled_int()


def exact_sum_fraction(
    values: Iterable[float],
    *,
    radix: RadixConfig = DEFAULT_RADIX,
) -> Fraction:
    """Exact sum as a :class:`fractions.Fraction`."""
    v, s = exact_sum_scaled(values, radix=radix)
    return Fraction(v, 1) * Fraction(2) ** s


def exact_sum_to_format(
    values: Iterable[float],
    fmt,
    *,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
) -> Tuple[int, int]:
    """Faithfully rounded sum targeted at *any* base-2 format.

    The precision-independent endpoint of the paper's pipeline: the
    exact sum of (binary64) inputs rounded once to a caller-chosen
    :class:`~repro.core.fpinfo.FloatFormat` — binary32, binary16, quad,
    or anything custom. Returns the canonical ``(M, E)`` mantissa/
    exponent pair (``value == M * 2**E``); raises ``OverflowError`` when
    the rounded magnitude exceeds the format's finite range.

    Note this is *not* the same as rounding to binary64 first and
    converting (double rounding can differ by one target ulp).
    """
    from repro.core.rounding import round_scaled_int_to_format

    v, s = exact_sum_scaled(values, radix=radix)
    return round_scaled_int_to_format(v, s, fmt, mode)


def exact_dot(
    x: Iterable[float],
    y: Iterable[float],
    *,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
) -> float:
    """Correctly rounded dot product via TwoProduct + exact summation.

    Each elementwise product is expanded error-free (Dekker/Veltkamp
    TwoProduct for normal-range products; exact integer decomposition
    where a float product would under- or overflow), and the expansion
    is summed exactly. A true dot product beyond the float range
    returns the correctly rounded ``±inf``/``±MAX_FINITE`` per mode.
    """
    from repro.stats import exact_dot_fraction, round_fraction

    return round_fraction(exact_dot_fraction(x, y), mode)
