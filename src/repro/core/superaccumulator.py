"""Dense superaccumulators: exact fixed-point sums as limb arrays.

Section 2 of the paper opens with the "instructive" exact fixed-point
representation: a wide binary integer covering the whole exponent range
of the input format. :class:`DenseSuperaccumulator` is that object,
stored as an array of radix-``R`` signed limbs with deferred
renormalization so bulk adds are a pair of exact ``bincount`` reductions
per chunk (see :func:`repro.core.digits.accumulate_digits`).

:class:`SmallSuperaccumulator` specializes it to the fixed ~70-limb
array spanning every binary64 exponent — the Neal-style comparator the
paper benchmarks its MapReduce algorithm against ("Small
Superaccumulator (MapReduce)" in Figures 1-3). Its defining property,
visible in Figure 2, is that cost is independent of the exponent-spread
parameter delta, because the limb array never grows or shrinks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.digits import (
    DEFAULT_RADIX,
    RadixConfig,
    accumulate_digits,
    digits_to_int,
    normalize_digit_array,
    split_float,
    split_floats_vec,
)
from repro.core.rounding import round_digits
from repro.errors import RepresentationError
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["DenseSuperaccumulator", "SmallSuperaccumulator"]

# Deferred-renormalization budget: with w <= 31 every digit has
# magnitude < 2**31, so int64 limbs can absorb 2**31 raw digit deposits
# (plus one regularized residue) with |limb| < 2**62 — renormalize
# before the *next* chunk could overflow.
_CHUNK = 1 << 22  # elements per vectorized deposit chunk
_NORM_BUDGET = (1 << 31) - _CHUNK * 4  # deposits allowed between norms


class DenseSuperaccumulator:
    """Exact sum accumulator over a contiguous range of digit positions.

    The represented value is ``sum(limbs[k] * R**(base_index + k))``.
    Limbs are int64 and may exceed the regularized digit range between
    renormalizations; every public query (rounding, comparison,
    serialization) renormalizes first, so observable state is always
    (alpha, beta)-regularized.

    Args:
        radix: digit width configuration; must support the vectorized
            paths (``w <= 31``) for :meth:`add_array`.
        base_index: digit position of ``limbs[0]``.
        nlimbs: number of limbs.
    """

    __slots__ = ("radix", "base_index", "limbs", "_deposits")

    def __init__(
        self,
        radix: RadixConfig = DEFAULT_RADIX,
        *,
        base_index: Optional[int] = None,
        nlimbs: Optional[int] = None,
    ) -> None:
        self.radix = radix
        if base_index is None or nlimbs is None:
            base, count = self.full_range_bounds(radix)
            base_index = base if base_index is None else base_index
            nlimbs = count if nlimbs is None else nlimbs
        self.base_index = int(base_index)
        self.limbs = np.zeros(int(nlimbs), dtype=np.int64)
        self._deposits = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def full_range_bounds(radix: RadixConfig) -> Tuple[int, int]:
        """(base_index, nlimbs) covering every finite binary64 value.

        Bit positions of binary64 span [-1074, 1023]; we add the
        per-double split width plus carry headroom on top.
        """
        lo = (-1074) // radix.w
        hi = 1023 // radix.w + radix.digits_per_double + 2
        return lo, hi - lo + 1

    @classmethod
    def from_array(
        cls, values: Iterable[float], radix: RadixConfig = DEFAULT_RADIX
    ) -> "DenseSuperaccumulator":
        """Accumulator holding the exact sum of ``values``."""
        acc = cls(radix)
        acc.add_array(values)
        return acc

    def copy(self) -> "DenseSuperaccumulator":
        """Deep copy (limbs array duplicated)."""
        dup = DenseSuperaccumulator(
            self.radix, base_index=self.base_index, nlimbs=len(self.limbs)
        )
        dup.limbs[:] = self.limbs
        dup._deposits = self._deposits
        return dup

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------

    def add_float(self, x: float) -> None:
        """Add one float exactly (scalar path, any radix width)."""
        for j, d in split_float(x, self.radix):
            k = j - self.base_index
            if not 0 <= k < len(self.limbs):
                raise RepresentationError(
                    f"digit position {j} outside accumulator range"
                )
            self.limbs[k] += d
        self._deposits += self.radix.digits_per_double
        if self._deposits >= _NORM_BUDGET:
            self.renormalize()

    def add_array(self, values: Iterable[float]) -> None:
        """Add every element of ``values`` exactly (vectorized path)."""
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        for start in range(0, arr.size, _CHUNK):
            chunk = arr[start : start + _CHUNK]
            idx, dig = split_floats_vec(chunk, self.radix)
            if self._deposits + idx.size >= _NORM_BUDGET:
                self.renormalize()
            self.limbs += accumulate_digits(
                idx, dig, base_index=self.base_index, length=len(self.limbs)
            )
            self._deposits += idx.size

    def add_accumulator(self, other: "DenseSuperaccumulator") -> None:
        """Exactly add another dense accumulator (same radix) in place."""
        if other.radix != self.radix:
            raise ValueError("cannot mix radix configurations")
        if (
            other.base_index != self.base_index
            or len(other.limbs) != len(self.limbs)
        ):
            raise ValueError("accumulator ranges differ; renormalize/rebase first")
        # Two distinct overflow hazards guard the raw limb addition:
        # the *combined* deposit count must stay under the budget so
        # int64 limbs keep headroom for the next chunk.
        if self._deposits + other._deposits + 2 >= _NORM_BUDGET:
            # Self-overflow: our own raw limbs carry most of the count;
            # renormalizing in place resets our contribution to 1.
            self.renormalize()
            if self._deposits + other._deposits + 2 >= _NORM_BUDGET:
                # Other-overflow: ``other`` alone nearly exhausts the
                # budget (deposits >= budget - 3). Renormalize a private
                # copy — the argument must never be mutated.
                other = other.copy()
                other.renormalize()
        self.limbs += other.limbs
        self._deposits += other._deposits + 1

    def renormalize(self) -> None:
        """Reduce limbs to the regularized digit range ``[-alpha, beta]``.

        Carries produced here stay inside the existing top headroom; a
        genuine overflow of the binary64-covering range is impossible
        for sums of fewer than ``2**(2w)`` inputs and raises otherwise.
        """
        reduced = normalize_digit_array(self.limbs, self.radix)
        if reduced[len(self.limbs) :].any():
            raise RepresentationError("superaccumulator range overflow")
        self.limbs = reduced[: len(self.limbs)]
        self._deposits = 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def to_scaled_int(self) -> Tuple[int, int]:
        """Exact value as ``(V, shift)`` meaning ``V * 2**shift``."""
        return digits_to_int(self.limbs, self.base_index, self.radix)

    def to_fraction(self) -> Fraction:
        """Exact value as a :class:`fractions.Fraction` (for testing)."""
        v, s = self.to_scaled_int()
        return Fraction(v, 1) * Fraction(2) ** s

    def to_float(self, mode: str = "nearest") -> float:
        """Round the exact value to binary64 (default: correct rounding).

        Uses the digit-wise pipeline of Section 3 steps 6-7 (carry
        propagation + leading-window rounding), not a big-integer
        reconstruction.
        """
        self.renormalize()
        return round_digits(self.limbs, self.base_index, self.radix, mode)

    def is_zero(self) -> bool:
        """True iff the exact value is zero."""
        self.renormalize()
        return not self.limbs.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DenseSuperaccumulator):
            return NotImplemented
        return self.to_scaled_int() == other.to_scaled_int() or (
            self.to_fraction() == other.to_fraction()
        )

    def __hash__(self) -> int:  # value-based, matches __eq__
        return hash(self.to_fraction())

    def __repr__(self) -> str:
        active = int(np.count_nonzero(self.limbs))
        return (
            f"DenseSuperaccumulator(w={self.radix.w}, "
            f"base={self.base_index}, limbs={len(self.limbs)}, "
            f"nonzero={active})"
        )

    # ------------------------------------------------------------------
    # serialization (MapReduce shuffle format)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """``DSUP`` wire frame (see :func:`repro.codec.encode_dense`)."""
        self.renormalize()
        from repro import codec

        return codec.encode_dense(self)

    @staticmethod
    def from_bytes(payload: bytes) -> "DenseSuperaccumulator":
        """Inverse of :meth:`to_bytes` (always a dense accumulator).

        Raises:
            CodecError: on payloads that are not a well-formed wire
                format — wrong magic, truncated or oversized body, or
                an invalid digit width. Shuffle payloads cross process
                boundaries, so corruption must surface as a clean
                error (a ``ValueError`` subclass), never a raw
                ``struct``/``frombuffer`` one.
        """
        from repro import codec

        return codec.decode_dense(payload)


class SmallSuperaccumulator(DenseSuperaccumulator):
    """Neal-style *small superaccumulator*: fixed limbs over all of binary64.

    This is the comparator representation of the paper's experiments: a
    dense array of overlapping limbs covering the full double exponent
    range, added to with deferred carry handling. Because the limb count
    is a format constant (~70 for ``w = 30``), per-add cost does not
    depend on the data's exponent spread — the flat-in-delta curves of
    Figure 2.
    """

    def __init__(self, radix: RadixConfig = DEFAULT_RADIX) -> None:
        super().__init__(radix)

    @classmethod
    def sum(
        cls, values: Iterable[float], radix: RadixConfig = DEFAULT_RADIX
    ) -> float:
        """Correctly rounded sum of ``values`` in one call."""
        acc = cls(radix)
        acc.add_array(values)
        return acc.to_float()
