"""Core exact-summation machinery: the paper's primary contribution.

Public surface:

* number representations — :class:`SparseSuperaccumulator` (the carry-
  free (alpha, beta)-regularized representation of Section 2),
  :class:`SmallSuperaccumulator` / :class:`DenseSuperaccumulator`
  (dense comparators), :class:`TruncatedSparseSuperaccumulator` (§4);
* primitives — error-free transforms, radix digit machinery, rounding;
* high-level API — :func:`exact_sum`, :func:`exact_dot`,
  :func:`condition_number`.
"""

from repro.core.apfloat import (
    APFloat,
    exact_sum_apfloat,
    round_apfloat_sum_to_float,
)
from repro.core.condition import condition_number, condition_number_exact
from repro.core.decimal_acc import (
    DecimalRadix,
    DecimalSuperaccumulator,
    exact_decimal_sum,
)
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.eft import fast_two_sum, split, two_product, two_sum
from repro.core.exact import (
    exact_dot,
    exact_sum,
    exact_sum_fraction,
    exact_sum_scaled,
)
from repro.core.exact import exact_sum_to_format
from repro.core.fixedpoint import FixedPointRegister
from repro.core.fpinfo import BINARY32, BINARY64, FloatFormat, decompose, compose
from repro.core.rounding import round_scaled_int
from repro.core.sparse import SparseSuperaccumulator
from repro.core.superaccumulator import DenseSuperaccumulator, SmallSuperaccumulator
from repro.core.truncated import (
    TruncatedSparseSuperaccumulator,
    stopping_condition_addtwo,
    stopping_condition_exponent,
)

__all__ = [
    "APFloat",
    "exact_sum_apfloat",
    "round_apfloat_sum_to_float",
    "DecimalRadix",
    "DecimalSuperaccumulator",
    "exact_decimal_sum",
    "condition_number",
    "condition_number_exact",
    "DEFAULT_RADIX",
    "RadixConfig",
    "fast_two_sum",
    "split",
    "two_product",
    "two_sum",
    "exact_dot",
    "exact_sum",
    "exact_sum_fraction",
    "exact_sum_scaled",
    "exact_sum_to_format",
    "FixedPointRegister",
    "BINARY32",
    "BINARY64",
    "FloatFormat",
    "decompose",
    "compose",
    "round_scaled_int",
    "SparseSuperaccumulator",
    "DenseSuperaccumulator",
    "SmallSuperaccumulator",
    "TruncatedSparseSuperaccumulator",
    "stopping_condition_addtwo",
    "stopping_condition_exponent",
]
