"""The explicit fixed-point register of paper §2 — the instructive baseline.

Section 2 opens with the representation everything else improves on:
"we could alternatively represent every floating point number ... as a
fixed-point binary number consisting of a sign bit, t + 2^(l−1) +
⌈log n⌉ bits to the left of the binary point, and t + 2^(l−1) bits to
the right" — e.g. IEEE binary32 values fit a 256-bit register. Exact,
simple, but "in the worst-case, there can be a lot of carry-bit
propagations that occur for any addition, which negatively impacts
parallel performance".

:class:`FixedPointRegister` is that object, implemented as a bounded
two's-complement integer with **observable carry chains**: every add
reports how far its carry rippled, so the ABL-FX bench can measure the
worst-case propagation the superaccumulators eliminate. Functionally it
is exact and agrees bit-for-bit with every other representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.core.fpinfo import BINARY64, FloatFormat, decompose
from repro.core.rounding import round_scaled_int
from repro.errors import NonFiniteInputError, RepresentationError

__all__ = ["FixedPointRegister", "register_width"]


def register_width(fmt: FloatFormat = BINARY64, *, log_n: int = 64) -> int:
    """Bits of the §2 register for ``fmt`` with ``2**log_n`` summands.

    ``t + 2**(l-1) + log_n`` integer bits plus ``t + 2**(l-1)``
    fractional bits plus the sign — 277+ for binary32 with the paper's
    accounting (the "256-bit" figure rounds the bookkeeping), ~4200 for
    binary64.
    """
    half_range = 1 << (fmt.l - 1)
    return 2 * (fmt.t + half_range) + log_n + 1


@dataclass
class _AddReport:
    """Carry observability for one addition.

    Attributes:
        carry_bits: highest bit position changed beyond the addend's own
            span — the length of the carry ripple the paper worries
            about (0 = no propagation past the addend).
    """

    carry_bits: int


class FixedPointRegister:
    """Exact bounded fixed-point accumulator with carry accounting.

    The value is ``register * 2**lsb_exponent`` where ``register`` is a
    bounded signed integer. Adding a float aligns its mantissa to the
    register and performs plain integer addition — conceptually a full
    hardware carry chain; :attr:`max_carry_chain` records the longest
    ripple observed (measured as how far the changed-bit span of the
    register exceeds the addend's own bit span).
    """

    def __init__(self, fmt: FloatFormat = BINARY64, *, log_n: int = 64) -> None:
        self.fmt = fmt
        self.width = register_width(fmt, log_n=log_n)
        self.lsb_exponent = fmt.min_subnormal_exponent
        self._register = 0
        self.adds = 0
        self.max_carry_chain = 0

    def add_float(self, x: float) -> _AddReport:
        """Add one float exactly; report the carry ripple length."""
        m, e = decompose(x)
        if m == 0:
            self.adds += 1
            return _AddReport(0)
        # canonicalize: decompose may leave trailing zero bits in m
        tz = (m & -m).bit_length() - 1
        m >>= tz
        e += tz
        shift = e - self.lsb_exponent
        if shift < 0:
            raise NonFiniteInputError(f"{x!r} below the register's lsb")
        addend = m << shift
        before = self._register
        after = before + addend
        if after.bit_length() > self.width:
            raise RepresentationError("fixed-point register overflow")
        # Carry ripple: how far the highest changed bit sits above the
        # addend's own most significant bit.
        changed = before ^ after
        if changed == 0:
            ripple = 0
        else:
            top_changed = changed.bit_length() - 1
            top_addend = abs(addend).bit_length() - 1
            ripple = max(0, top_changed - top_addend)
        self._register = after
        self.adds += 1
        if ripple > self.max_carry_chain:
            self.max_carry_chain = ripple
        return _AddReport(ripple)

    def add_array(self, values: Iterable[float]) -> None:
        """Add many floats (scalar loop — this baseline has no vector path;
        that asymmetry is part of what the bench shows)."""
        for v in values:
            self.add_float(float(v))

    def to_scaled_int(self) -> Tuple[int, int]:
        """Exact value as ``(V, shift)``."""
        return self._register, self.lsb_exponent

    def to_float(self, mode: str = "nearest") -> float:
        """Correctly rounded value."""
        return round_scaled_int(self._register, self.lsb_exponent, mode)

    def is_zero(self) -> bool:
        return self._register == 0
