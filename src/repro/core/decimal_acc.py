"""Base-10 sparse superaccumulators (paper footnote 1).

"We take the viewpoint in this paper that floating-point numbers are a
base-2 representation; nevertheless, our algorithms can easily be
modified to work with other standard floating-point bases, such as 10."

This module performs that modification for :class:`decimal.Decimal`
inputs: digits live in radix ``R = 10**k`` with the same
``alpha = beta = R - 1`` regularization, and Lemma 1 goes through
verbatim (its proof only needs ``R > 2``), so addition is carry-free
exactly as in base 2. Because no bit tricks apply, everything here is
scalar exact-integer arithmetic — which also makes this module the
readable reference implementation of the paper's scheme, free of the
vectorization machinery of :mod:`repro.core.digits`.
"""

from __future__ import annotations

from dataclasses import dataclass
from decimal import Decimal, localcontext
from fractions import Fraction
from typing import Dict, Iterable, Tuple

from repro.errors import NonFiniteInputError, RepresentationError

__all__ = ["DecimalRadix", "DecimalSuperaccumulator", "exact_decimal_sum"]


@dataclass(frozen=True)
class DecimalRadix:
    """Radix parameters ``R = 10**k`` for base-10 superaccumulators."""

    k: int = 9  # 10**9 < 2**31: roomy limbs, human-readable

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")

    @property
    def R(self) -> int:
        """The radix ``10**k`` (``> 2`` as Lemma 1 requires)."""
        return 10**self.k

    @property
    def alpha(self) -> int:
        return self.R - 1

    @property
    def beta(self) -> int:
        return self.R - 1


class DecimalSuperaccumulator:
    """Sparse (alpha, beta)-regularized base-10 superaccumulator.

    Components map digit position ``j`` (weight ``R**j = 10**(k*j)``) to
    a signed digit in ``[-(R-1), R-1]``. Pairwise addition is Lemma 1:
    component-wise sum, signed carry to the adjacent position only.
    """

    __slots__ = ("radix", "_digits")

    def __init__(self, radix: DecimalRadix = DecimalRadix()) -> None:
        self.radix = radix
        self._digits: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_decimal(
        cls, value: Decimal, radix: DecimalRadix = DecimalRadix()
    ) -> "DecimalSuperaccumulator":
        """Exact conversion of one finite Decimal (§3 step 2 analogue)."""
        acc = cls(radix)
        if not value.is_finite():
            raise NonFiniteInputError(f"cannot accumulate {value!r}")
        sign, digit_tuple, exp = value.as_tuple()
        mag = int("".join(map(str, digit_tuple or (0,))))
        if mag == 0:
            return acc
        if sign:
            mag = -mag
        # value = mag * 10**exp; align to multiples of k.
        j0, s = divmod(exp, radix.k)
        mag *= 10**s
        sgn = -1 if mag < 0 else 1
        mag = abs(mag)
        j = j0
        R = radix.R
        while mag:
            d = mag % R
            if d:
                acc._digits[j] = sgn * d
            mag //= R
            j += 1
        return acc

    def copy(self) -> "DecimalSuperaccumulator":
        dup = DecimalSuperaccumulator(self.radix)
        dup._digits = dict(self._digits)
        return dup

    # ------------------------------------------------------------------
    # the carry-free merge (Lemma 1, base 10)
    # ------------------------------------------------------------------

    def add(self, other: "DecimalSuperaccumulator") -> "DecimalSuperaccumulator":
        """Carry-free sum; every carry lands on the adjacent position."""
        if other.radix != self.radix:
            raise ValueError("cannot mix decimal radix configurations")
        R = self.radix.R
        alpha = self.radix.alpha
        out = DecimalSuperaccumulator(self.radix)
        digits = out._digits
        merged = sorted(set(self._digits) | set(other._digits))
        # First pass: P and carry selection (Lemma 1's two cases).
        carries: Dict[int, int] = {}
        for j in merged:
            p = self._digits.get(j, 0) + other._digits.get(j, 0)
            c = 1 if p >= R - 1 else (-1 if p <= -(R - 1) else 0)
            w = p - c * R
            digits[j] = w
            if c:
                carries[j + 1] = c
        # Second pass: deposit carries (W + C stays in [-alpha, beta]).
        for j, c in carries.items():
            digits[j] = digits.get(j, 0) + c
        for j, d in digits.items():
            if not -alpha <= d <= alpha:
                raise RepresentationError(
                    f"digit {d} at position {j} escaped regularization"
                )
        return out

    def add_decimal(self, value: Decimal) -> "DecimalSuperaccumulator":
        """Convenience: carry-free sum with one Decimal."""
        return self.add(DecimalSuperaccumulator.from_decimal(value, self.radix))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Number of active positions (zeros from cancellation kept)."""
        return len(self._digits)

    def is_zero(self) -> bool:
        return not any(self._digits.values())

    def to_fraction(self) -> Fraction:
        """Exact value."""
        total = Fraction(0)
        for j, d in self._digits.items():
            total += Fraction(d) * Fraction(10) ** (self.radix.k * j)
        return total

    def to_scaled_int(self) -> Tuple[int, int]:
        """Exact value as ``(V, p)`` meaning ``V * 10**p``."""
        if not self._digits:
            return 0, 0
        jmin = min(self._digits)
        v = sum(
            d * 10 ** (self.radix.k * (j - jmin)) for j, d in self._digits.items()
        )
        return v, self.radix.k * jmin

    def to_decimal(self, precision: int = 28) -> Decimal:
        """Round the exact value to ``precision`` significant decimal
        digits (ROUND_HALF_EVEN) — the faithful-rounding step, base 10."""
        v, p = self.to_scaled_int()
        if v == 0:
            return Decimal(0)
        with localcontext() as ctx:
            ctx.prec = precision
            return +(Decimal(v).scaleb(p))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecimalSuperaccumulator):
            return NotImplemented
        return self.to_fraction() == other.to_fraction()

    def __hash__(self) -> int:
        return hash(self.to_fraction())

    def __repr__(self) -> str:
        return (
            f"DecimalSuperaccumulator(k={self.radix.k}, "
            f"active={self.active_count})"
        )


def exact_decimal_sum(
    values: Iterable[Decimal],
    *,
    precision: int = 28,
    radix: DecimalRadix = DecimalRadix(),
) -> Decimal:
    """Correctly rounded (half-even) Decimal sum at ``precision`` digits.

    The full pipeline in base 10: exact carry-free accumulation of every
    input, one rounding at the end. Immune to the intermediate rounding
    a plain ``sum(decimals)`` performs under a finite context.
    """
    acc = DecimalSuperaccumulator(radix)
    for v in values:
        acc = acc.add_decimal(Decimal(v))
    return acc.to_decimal(precision)
