"""The (alpha, beta)-regularized **sparse superaccumulator** (Section 2).

This is the paper's primary contribution: an exact, *carry-free*
intermediate representation for floating-point sums. An accumulator is
a vector of *active* digit positions with signed digits in
``[-alpha, beta]`` (``alpha = beta = R - 1``); adding two accumulators
is a component-wise merge in which each signed carry moves to **at most
the adjacent position** (Lemma 1) — no propagation chains, hence
constant-time parallel addition given aligned components.

A position is *active* if it is currently non-zero or has ever been
non-zero (paper's definition): cancellation leaves a zero digit active,
and a carry landing on an inactive position activates it only if it is
non-zero. Activity is what the experiments' delta-sensitivity measures
(Figure 2): more distinct exponents => more active positions => more
work per merge.

Two usage styles:

* **pairwise / streaming** — :meth:`add` (accumulator + accumulator)
  and :meth:`add_float`, the operations the PRAM tree, external-memory
  scan and MapReduce reduce phases are built from;
* **bulk** — :meth:`from_floats`, an n-ary deposit + single
  renormalization used by the MapReduce combiner (the "sequential
  algorithm described earlier" of Section 6.1).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.digits import (
    DEFAULT_RADIX,
    RadixConfig,
    accumulate_digits,
    check_regularized,
    normalize_digit_array,
    split_float,
    split_floats_vec,
)
from repro.core.rounding import round_digits
from repro.errors import NonFiniteInputError, RepresentationError
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["SparseSuperaccumulator"]


class SparseSuperaccumulator:
    """Sparse (alpha, beta)-regularized superaccumulator.

    Attributes:
        radix: the digit-width configuration (``R = 2**w``).
        indices: sorted int64 array of active digit positions.
        digits: int64 array of the same length; ``digits[k]`` is the
            signed digit at position ``indices[k]``, always within
            ``[-alpha, beta]``.

    The represented value is ``sum(digits[k] * R**indices[k])`` — exact,
    with no rounding anywhere until :meth:`to_float`.
    """

    __slots__ = ("radix", "indices", "digits")

    def __init__(
        self,
        radix: RadixConfig = DEFAULT_RADIX,
        indices: Optional[np.ndarray] = None,
        digits: Optional[np.ndarray] = None,
        *,
        _validated: bool = False,
    ) -> None:
        self.radix = radix
        if indices is None:
            indices = np.empty(0, dtype=np.int64)
            digits = np.empty(0, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.digits = np.asarray(digits, dtype=np.int64)
        if not _validated:
            self._validate()

    def _validate(self) -> None:
        if self.indices.shape != self.digits.shape or self.indices.ndim != 1:
            raise RepresentationError("indices/digits must be equal-length 1-D")
        if self.indices.size > 1 and not (np.diff(self.indices) > 0).all():
            raise RepresentationError("indices must be strictly increasing")
        check_regularized(self.digits, self.radix, what="sparse accumulator")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, radix: RadixConfig = DEFAULT_RADIX) -> "SparseSuperaccumulator":
        """The empty accumulator (value 0, no active positions)."""
        return cls(radix)

    @classmethod
    def from_float(
        cls, x: float, radix: RadixConfig = DEFAULT_RADIX
    ) -> "SparseSuperaccumulator":
        """Accumulator equal to one float (§3 step 2 conversion).

        The split produces same-signed digits, which are automatically
        regularized; this is the O(1)-work leaf conversion. It rides
        the vectorized single-element split path (digit positions come
        out in increasing order, zeros already filtered), with the
        scalar big-int path kept for radices too wide to vectorize.
        """
        if radix.supports_vectorized:
            if not math.isfinite(x):
                raise NonFiniteInputError(f"cannot decompose non-finite value {x!r}")
            idx, dig = split_floats_vec(np.array([x], dtype=np.float64), radix)
            return cls(radix, idx, dig, _validated=True)
        pairs = split_float(x, radix)
        if not pairs:
            return cls(radix)
        idx = np.array([j for j, _ in pairs], dtype=np.int64)
        dig = np.array([d for _, d in pairs], dtype=np.int64)
        return cls(radix, idx, dig, _validated=True)

    @classmethod
    def from_floats(
        cls, values: Iterable[float], radix: RadixConfig = DEFAULT_RADIX
    ) -> "SparseSuperaccumulator":
        """Exact bulk sum of many floats (vectorized n-ary deposit).

        Digit contributions of all inputs are scatter-added into a
        compact position range, then reduced once to regularized form.
        The active set is the union of positions touched by any input
        or by a final carry.
        """
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        if arr.size == 0:
            return cls(radix)
        acc: Optional[SparseSuperaccumulator] = None
        # Chunked so per-limb raw sums stay within int64 (w <= 31 digits
        # allow ~2**31 deposits per limb between renormalizations).
        chunk = 1 << 22
        for start in range(0, arr.size, chunk):
            part = cls._from_floats_chunk(arr[start : start + chunk], radix)
            acc = part if acc is None else acc.add(part)
        assert acc is not None
        return acc

    @classmethod
    def _from_floats_chunk(
        cls, arr: np.ndarray, radix: RadixConfig
    ) -> "SparseSuperaccumulator":
        idx, dig = split_floats_vec(arr, radix)
        return cls.from_digit_pairs(idx, dig, radix)

    @classmethod
    def from_digit_pairs(
        cls, indices: np.ndarray, digits: np.ndarray,
        radix: RadixConfig = DEFAULT_RADIX,
    ) -> "SparseSuperaccumulator":
        """Accumulator from raw ``(index, digit)`` deposits (n-ary add).

        The deposit + single-renormalization tail shared by the bulk
        float fold and the binned kernel's carry resolution: pairs are
        scatter-added into a compact limb range (per-limb raw sums must
        stay within int64 — callers bound their deposit counts), then
        reduced once to regularized form. Positions touched by any
        deposit are active even when they cancel to zero.
        """
        idx = np.asarray(indices, dtype=np.int64)
        dig = np.asarray(digits, dtype=np.int64)
        if idx.size == 0:
            return cls(radix)
        lo = int(idx.min())
        hi = int(idx.max())
        raw = accumulate_digits(idx, dig, base_index=lo, length=hi - lo + 1)
        touched = np.zeros(hi - lo + 1, dtype=bool)
        touched[idx - lo] = True
        reduced = normalize_digit_array(raw, radix)
        active = np.zeros(len(reduced), dtype=bool)
        active[: len(touched)] = touched
        active |= reduced != 0
        keep = np.flatnonzero(active)
        return cls(
            radix,
            keep.astype(np.int64) + lo,
            reduced[keep],
            _validated=True,
        )

    def copy(self) -> "SparseSuperaccumulator":
        """Independent copy (arrays duplicated)."""
        return SparseSuperaccumulator(
            self.radix, self.indices.copy(), self.digits.copy(), _validated=True
        )

    # ------------------------------------------------------------------
    # the carry-free merge (Lemma 1 on sparse index sets)
    # ------------------------------------------------------------------

    def add(self, other: "SparseSuperaccumulator") -> "SparseSuperaccumulator":
        """Carry-free sum of two sparse superaccumulators (new object).

        Algorithm (paper, Section 2): merge the active index sets; for
        each merged position compute the pairwise digit sum ``P``,
        choose the signed carry ``C`` per Lemma 1, keep the interim
        digit ``W = P - C*R`` at the position and deposit ``C`` at the
        *adjacent* position — which may activate a previously inactive
        index. Because a carry target that is itself a merged position
        receives ``W + C`` in ``[-alpha, beta]``, and a carry landing on
        a gap is ``±1``, the result is regularized with **no**
        propagation. Cost: O(m) sequential work on the merged size m;
        O(1) parallel depth given the merge (Lemma 3).
        """
        if other.radix != self.radix:
            raise ValueError("cannot add accumulators with different radix")
        if self.indices.size == 0:
            return other.copy()
        if other.indices.size == 0:
            return self.copy()
        R = np.int64(self.radix.R)
        merged = np.union1d(self.indices, other.indices)
        P = np.zeros(len(merged), dtype=np.int64)
        pos_a = np.searchsorted(merged, self.indices)
        pos_b = np.searchsorted(merged, other.indices)
        P[pos_a] += self.digits
        P[pos_b] += other.digits
        # Lemma 1 carry selection: C[i+1] = +1 if P >= R-1, -1 if P <= -(R-1).
        carry = (P >= R - 1).astype(np.int64) - (P <= -(R - 1)).astype(np.int64)
        W = P - carry * R
        carry_nz = carry != 0
        if carry_nz.any():
            targets = merged[carry_nz] + 1
            res_idx = np.concatenate([merged, targets])
            res_dig = np.concatenate([W, carry[carry_nz]])
            order = np.argsort(res_idx, kind="stable")
            res_idx = res_idx[order]
            res_dig = res_dig[order]
            uniq, starts = np.unique(res_idx, return_index=True)
            sums = np.add.reduceat(res_dig, starts)
        else:
            uniq, sums = merged, W
        # Carries landing on fresh positions activate them only if the
        # resulting digit is non-zero; merged positions stay active even
        # at zero (the paper's "has ever been non-zero" semantics).
        was_active = np.isin(uniq, merged, assume_unique=True)
        keep = was_active | (sums != 0)
        return SparseSuperaccumulator(
            self.radix, uniq[keep], sums[keep], _validated=True
        )

    def add_float(self, x: float) -> "SparseSuperaccumulator":
        """Carry-free sum with a single float (convenience wrapper)."""
        return self.add(SparseSuperaccumulator.from_float(x, self.radix))

    @staticmethod
    def sum_many(
        accumulators: Iterable["SparseSuperaccumulator"],
        radix: RadixConfig = DEFAULT_RADIX,
    ) -> "SparseSuperaccumulator":
        """Sum a collection of accumulators (reduce/post-process phases).

        Pairwise :meth:`add` in a left fold; exactness is independent of
        order, and the count of accumulators in any realistic job is
        tiny compared to the deferred-carry budget.
        """
        total = SparseSuperaccumulator.zero(radix)
        for acc in accumulators:
            total = total.add(acc)
        return total

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Number of active components (the sigma(n) of the paper)."""
        return int(self.indices.size)

    def is_zero(self) -> bool:
        """True iff the exact value is zero (active zeros allowed)."""
        return not self.digits.any()

    def to_scaled_int(self) -> Tuple[int, int]:
        """Exact value as ``(V, shift)``: the number is ``V * 2**shift``."""
        if self.indices.size == 0:
            return 0, 0
        w = self.radix.w
        jmin = int(self.indices[0])
        value = 0
        # Horner over *positions* (gaps included) would be O(range); use
        # explicit shifts per active component instead: O(active * limbs).
        for j, d in zip(self.indices, self.digits):
            value += int(d) << (w * (int(j) - jmin))
        return value, w * jmin

    def to_fraction(self) -> Fraction:
        """Exact value as a Fraction (testing / condition numbers)."""
        v, s = self.to_scaled_int()
        return Fraction(v, 1) * Fraction(2) ** s

    def to_dense_digits(self) -> Tuple[np.ndarray, int]:
        """Materialize the contiguous digit vector ``(digits, base_index)``.

        Gaps between active positions become explicit zeros; used by the
        rounding pipeline and the PRAM carry-propagation step.
        """
        if self.indices.size == 0:
            return np.zeros(1, dtype=np.int64), 0
        lo = int(self.indices[0])
        hi = int(self.indices[-1])
        dense = np.zeros(hi - lo + 1, dtype=np.int64)
        dense[self.indices - lo] = self.digits
        return dense, lo

    def to_float(self, mode: str = "nearest") -> float:
        """Round the exact value to a float (§3 steps 6-7 pipeline).

        ``mode="nearest"`` gives the correctly rounded sum, which is in
        particular faithfully rounded.
        """
        dense, base = self.to_dense_digits()
        return round_digits(dense, base, self.radix, mode)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseSuperaccumulator):
            return NotImplemented
        return self.to_fraction() == other.to_fraction()

    def __hash__(self) -> int:
        return hash(self.to_fraction())

    def __repr__(self) -> str:
        return (
            f"SparseSuperaccumulator(w={self.radix.w}, "
            f"active={self.active_count}, "
            f"span={self._span_repr()})"
        )

    def _span_repr(self) -> str:
        if self.indices.size == 0:
            return "[]"
        return f"[{int(self.indices[0])}, {int(self.indices[-1])}]"

    # ------------------------------------------------------------------
    # serialization (MapReduce shuffle format)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """``SSUP`` wire frame (see :func:`repro.codec.encode_sparse`)."""
        from repro import codec

        return codec.encode_sparse(self)

    @staticmethod
    def from_bytes(payload: bytes) -> "SparseSuperaccumulator":
        """Inverse of :meth:`to_bytes`.

        Raises:
            CodecError: on malformed payloads — wrong magic, truncated
                or oversized body, invalid digit width, or decoded
                components violating the regularized representation.
                Shuffle payloads cross process boundaries, so
                corruption must surface as a clean error (a
                ``ValueError`` subclass), never a raw
                ``struct``/``frombuffer`` one.
        """
        from repro import codec

        return codec.decode_sparse(payload)
