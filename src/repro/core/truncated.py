"""Gamma-truncated sparse superaccumulators and stopping conditions (§4).

The condition-number-sensitive algorithm does not carry full
superaccumulators up its summation tree: it keeps only the ``r`` most
significant *active* components of every partial sum (a *r-truncated
sparse superaccumulator*), which caps the per-merge cost at ``O(r)``.
Truncation makes partial sums lossy, so after the tree pass the
algorithm checks a **stopping condition** — a proof that everything
ever truncated is too small to affect the faithfully rounded result —
and squares ``r`` and retries otherwise.

Both sufficient conditions from the paper are implemented:

* :func:`stopping_condition_addtwo` — the float test
  ``y == y (+) n*eps_min == y (-) n*eps_min``;
* :func:`stopping_condition_exponent` — the simplified exponent-gap
  test: lsb exponent of ``y`` at least ``ceil(log2 n)`` above the
  exponent of the least significant retained component.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Optional

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.util.validation import check_positive_int

__all__ = [
    "TruncatedSparseSuperaccumulator",
    "stopping_condition_addtwo",
    "stopping_condition_exponent",
]


class TruncatedSparseSuperaccumulator:
    """A sparse superaccumulator capped at its ``gamma`` top components.

    Attributes:
        gamma: maximum number of (most significant) active components
            retained after every operation.
        acc: the underlying :class:`SparseSuperaccumulator` holding the
            retained components.
        truncated: True iff any component has ever been dropped — i.e.
            whether the held value may differ from the exact sum.
        drop_count: total number of non-zero components ever dropped by
            this accumulator or anything merged into it.
        max_dropped_index: largest radix position of any dropped
            component (``None`` until the first drop). Together with
            ``drop_count`` this yields the rigorous truncation-mass
            bound ``drop_count * R**(max_dropped_index + 1)``, which —
            unlike :attr:`least_retained_exponent` — stays valid across
            merges whose retained windows later shift upward.
    """

    __slots__ = ("gamma", "acc", "truncated", "drop_count", "max_dropped_index")

    def __init__(
        self,
        gamma: int,
        radix: RadixConfig = DEFAULT_RADIX,
        *,
        acc: Optional[SparseSuperaccumulator] = None,
        truncated: bool = False,
        drop_count: int = 0,
        max_dropped_index: Optional[int] = None,
    ) -> None:
        self.gamma = check_positive_int(gamma, name="gamma")
        self.acc = acc if acc is not None else SparseSuperaccumulator.zero(radix)
        self.truncated = truncated
        self.drop_count = drop_count
        self.max_dropped_index = max_dropped_index
        self._truncate()

    @classmethod
    def from_float(
        cls, x: float, gamma: int, radix: RadixConfig = DEFAULT_RADIX
    ) -> "TruncatedSparseSuperaccumulator":
        """Leaf conversion with truncation applied immediately."""
        return cls(gamma, radix, acc=SparseSuperaccumulator.from_float(x, radix))

    @classmethod
    def from_floats(
        cls, values: Iterable[float], gamma: int, radix: RadixConfig = DEFAULT_RADIX
    ) -> "TruncatedSparseSuperaccumulator":
        """Bulk conversion: exact accumulate, then truncate once.

        Matches a sequential leaf-block build; truncation information is
        still tracked faithfully (dropped => ``truncated``).
        """
        return cls(gamma, radix, acc=SparseSuperaccumulator.from_floats(values, radix))

    def _truncate(self) -> None:
        extra = self.acc.active_count - self.gamma
        if extra > 0:
            dropped = self.acc.digits[:extra]
            # Dropping active-but-zero components loses no value and
            # does not invalidate the stopping analysis.
            nonzero = dropped != 0
            if nonzero.any():
                self.truncated = True
                self.drop_count += int(nonzero.sum())
                top = int(self.acc.indices[:extra][nonzero][-1])
                if self.max_dropped_index is None or top > self.max_dropped_index:
                    self.max_dropped_index = top
            self.acc = SparseSuperaccumulator(
                self.acc.radix,
                self.acc.indices[extra:],
                self.acc.digits[extra:],
                _validated=True,
            )

    def add(
        self, other: "TruncatedSparseSuperaccumulator"
    ) -> "TruncatedSparseSuperaccumulator":
        """Carry-free merge followed by truncation back to ``gamma``."""
        if other.gamma != self.gamma:
            raise ValueError("gamma mismatch between truncated accumulators")
        merged_max = self.max_dropped_index
        if other.max_dropped_index is not None and (
            merged_max is None or other.max_dropped_index > merged_max
        ):
            merged_max = other.max_dropped_index
        return TruncatedSparseSuperaccumulator(
            self.gamma,
            self.acc.radix,
            acc=self.acc.add(other.acc),
            truncated=self.truncated or other.truncated,
            drop_count=self.drop_count + other.drop_count,
            max_dropped_index=merged_max,
        )

    @property
    def least_retained_exponent(self) -> int:
        """Bit exponent ``E_ir`` of the least significant retained component.

        Every value ever truncated from this accumulator (or anything
        merged into it) has magnitude strictly below ``2**E_ir`` — the
        quantity the stopping conditions compare against.
        """
        if self.acc.indices.size == 0:
            return -(1 << 30)  # effectively -infinity: nothing retained
        return self.acc.radix.w * int(self.acc.indices[0])

    def truncation_mass_bound(self) -> Fraction:
        """Rigorous bound on ``|exact value - retained value|``.

        Every dropped component ``d * R**i`` satisfies ``|d| < R`` and
        ``i <= max_dropped_index``, so the dropped mass is strictly
        below ``drop_count * R**(max_dropped_index + 1)``. Exact
        (integer) arithmetic — safe to compare against half-ulp gaps.
        """
        if self.drop_count == 0 or self.max_dropped_index is None:
            return Fraction(0)
        w = self.acc.radix.w
        exp = w * (self.max_dropped_index + 1)
        if exp >= 0:
            return Fraction(self.drop_count * (1 << exp))
        return Fraction(self.drop_count, 1 << -exp)

    def to_float(self, mode: str = "nearest") -> float:
        """Round the *retained* value (candidate result for §4)."""
        return self.acc.to_float(mode)

    def __repr__(self) -> str:
        return (
            f"TruncatedSparseSuperaccumulator(gamma={self.gamma}, "
            f"active={self.acc.active_count}, truncated={self.truncated})"
        )


def stopping_condition_addtwo(y: float, n: int, e_min: int) -> bool:
    """Paper's first sufficient stopping condition (float-arithmetic form).

    ``min = 2**e_min`` bounds the magnitude of any single truncated
    value; the total truncation over an n-input sum is below
    ``n * min``. The result ``y`` is safe if adding or subtracting that
    bound leaves it unchanged under ordinary float arithmetic.

    Args:
        y: candidate rounded sum from the truncated computation.
        n: number of inputs in the summation.
        e_min: bit exponent ``E_ir`` of the least retained component.
    """
    if n <= 0:
        return True
    try:
        bound = math.ldexp(float(n), e_min)
    except OverflowError:
        return False
    # reprolint: disable-next-line=FP002 -- the AddTwo test IS this exact comparison (paper Lemma)
    return y == y + bound and y == y - bound


def stopping_condition_exponent(y: float, n: int, e_min: int) -> bool:
    """Paper's simplified sufficient stopping condition (exponent form).

    True when the exponent of the least significant bit of ``y`` is at
    least ``ceil(log2 n)`` above ``e_min``: even ``n`` worst-case
    truncated units cannot reach ``y``'s rounding position. Stricter
    than the AddTwo form but branch-free.
    """
    if n <= 0:
        return True
    if y == 0.0:  # reprolint: disable=FP002 -- exact-zero carries no magnitude information
        return False  # no information about the magnitude of the sum
    # lsb exponent of y: ulp(y) = 2**lsb for normal y.
    lsb = math.frexp(math.ulp(y))[1] - 1
    return lsb >= e_min + max(1, math.ceil(math.log2(n)))
