"""Arbitrary-precision floating-point values (paper §1-§2 generality).

The paper is explicit that its algorithms are *precision-independent*:
they "are not limited to a specific fixed-precision representation,
such as IEEE 754 double-precision", covering arbitrary-precision
formats where the mantissa width ``t`` varies (Apfloat, GMP, MPFR, LEDA
``bigfloat`` are its examples). This module supplies that input type
and wires it into the superaccumulator machinery:

* :class:`APFloat` — an immutable ``(sign-carrying mantissa, exponent)``
  software float of *unbounded* precision: the value is exactly
  ``mantissa * 2**exponent``. Construction normalizes trailing zero
  bits so representations are canonical.
* conversion to sparse-superaccumulator digits at any radix
  (:func:`split_apfloat`), with indices unbounded in both directions —
  the case where the paper's *sparse* accumulator (as opposed to the
  fixed ~70-limb dense one) genuinely earns its keep;
* :func:`exact_sum_apfloat` — faithfully rounded summation of APFloats
  *into any target precision* ``t`` (rounding to nearest-even at ``t+1``
  significant bits, unbounded exponent), and exact summation returning
  an APFloat.

Arithmetic beyond what summation applications need is out of scope
(the paper's problem is summation); ``+``/``-``/``*``/``abs``/
comparison are provided exactly.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Tuple, Union

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.fpinfo import decompose
from repro.errors import NonFiniteInputError

__all__ = [
    "APFloat",
    "split_apfloat",
    "accumulate_apfloats",
    "exact_sum_apfloat",
    "round_apfloat_sum_to_float",
]


class APFloat:
    """Arbitrary-precision binary float: exactly ``mantissa * 2**exponent``.

    ``mantissa`` is a Python int carrying the sign; canonical form has
    an odd mantissa (trailing zero bits are folded into the exponent),
    and zero is ``(0, 0)``.
    """

    __slots__ = ("mantissa", "exponent")

    def __init__(self, mantissa: int, exponent: int = 0) -> None:
        mantissa = int(mantissa)
        exponent = int(exponent)
        if mantissa == 0:
            exponent = 0
        else:
            shift = (mantissa & -mantissa).bit_length() - 1
            mantissa >>= shift
            exponent += shift
        object.__setattr__(self, "mantissa", mantissa)
        object.__setattr__(self, "exponent", exponent)

    def __setattr__(self, *args: object) -> None:  # immutability
        raise AttributeError("APFloat is immutable")

    # ------------------------------------------------------------------
    # constructors / conversions
    # ------------------------------------------------------------------

    @classmethod
    def from_float(cls, x: float) -> "APFloat":
        """Exact conversion from binary64 (finite values only)."""
        if x != x or x in (math.inf, -math.inf):
            raise NonFiniteInputError(f"cannot represent {x!r} as APFloat")
        m, e = decompose(x)
        return cls(m, e)

    @classmethod
    def from_fraction(cls, frac: Fraction) -> "APFloat":
        """Exact conversion from a dyadic Fraction (power-of-two denominator)."""
        den = frac.denominator
        if den & (den - 1):
            raise ValueError(f"{frac} is not dyadic; APFloat is base-2 exact")
        return cls(frac.numerator, -(den.bit_length() - 1))

    def to_fraction(self) -> Fraction:
        """Exact value as a Fraction."""
        return Fraction(self.mantissa) * Fraction(2) ** self.exponent

    def to_float(self) -> float:
        """Correctly rounded binary64 value."""
        from repro.core.rounding import round_scaled_int

        return round_scaled_int(self.mantissa, self.exponent)

    # ------------------------------------------------------------------
    # exact arithmetic (enough for summation applications)
    # ------------------------------------------------------------------

    @property
    def precision(self) -> int:
        """Significant bits of the canonical mantissa (0 for zero)."""
        return abs(self.mantissa).bit_length()

    def is_zero(self) -> bool:
        """True iff the value is exactly zero."""
        return self.mantissa == 0

    def __neg__(self) -> "APFloat":
        return APFloat(-self.mantissa, self.exponent)

    def __add__(self, other: "APFloat") -> "APFloat":
        if not isinstance(other, APFloat):
            return NotImplemented
        e = min(self.exponent, other.exponent)
        m = (self.mantissa << (self.exponent - e)) + (
            other.mantissa << (other.exponent - e)
        )
        return APFloat(m, e)

    def __sub__(self, other: "APFloat") -> "APFloat":
        if not isinstance(other, APFloat):
            return NotImplemented
        return self + (-other)

    def __mul__(self, other: "APFloat") -> "APFloat":
        if not isinstance(other, APFloat):
            return NotImplemented
        return APFloat(
            self.mantissa * other.mantissa, self.exponent + other.exponent
        )

    def __abs__(self) -> "APFloat":
        return APFloat(abs(self.mantissa), self.exponent)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, APFloat):
            return (self.mantissa, self.exponent) == (other.mantissa, other.exponent)
        if isinstance(other, (int, float)):
            try:
                return self == APFloat.from_float(float(other))
            except (NonFiniteInputError, OverflowError):
                return False
        return NotImplemented

    def __lt__(self, other: "APFloat") -> bool:
        return (self - other).mantissa < 0

    def __le__(self, other: "APFloat") -> bool:
        return (self - other).mantissa <= 0

    def __hash__(self) -> int:
        return hash((self.mantissa, self.exponent))

    def __repr__(self) -> str:
        return f"APFloat({self.mantissa}, {self.exponent})"

    def round_to_precision(self, t: int) -> "APFloat":
        """Round-to-nearest-even at ``t`` significant bits (unbounded exp).

        This is the paper's "arbitrary value [of t] set by a user":
        the faithful-rounding target for arbitrary-precision output.
        """
        if t < 1:
            raise ValueError("precision must be >= 1")
        a = abs(self.mantissa)
        bits = a.bit_length()
        if bits <= t:
            return self
        cut = bits - t
        keep = a >> cut
        rem = a - (keep << cut)
        half = 1 << (cut - 1)
        if rem > half or (rem == half and keep & 1):
            keep += 1
        sign = -1 if self.mantissa < 0 else 1
        return APFloat(sign * keep, self.exponent + cut)


def split_apfloat(
    value: APFloat, radix: RadixConfig = DEFAULT_RADIX
) -> List[Tuple[int, int]]:
    """GSD digits of an APFloat: ``[(index, digit)]``, any index range.

    Same contract as :func:`repro.core.digits.split_float` but with no
    bound on the number of digits — an APFloat of precision ``p``
    yields ``O(p / w)`` same-signed regularized digits.
    """
    if value.is_zero():
        return []
    w = radix.w
    j0 = value.exponent // w
    s = value.exponent - w * j0
    sign = -1 if value.mantissa < 0 else 1
    mag = abs(value.mantissa) << s
    out: List[Tuple[int, int]] = []
    k = 0
    while mag:
        d = mag & radix.mask
        if d:
            out.append((j0 + k, sign * d))
        mag >>= w
        k += 1
    return out


def accumulate_apfloats(
    values: Iterable[Union[APFloat, float]],
    radix: RadixConfig = DEFAULT_RADIX,
):
    """Exact sparse superaccumulator holding the sum of APFloats.

    Accepts a mix of :class:`APFloat` and ordinary floats. Uses the
    carry-free pairwise merge (index ranges are unbounded, so the dense
    bulk path does not apply — this is precisely the regime the sparse
    representation exists for).
    """
    import numpy as np

    from repro.core.sparse import SparseSuperaccumulator

    total = SparseSuperaccumulator.zero(radix)
    for v in values:
        ap = v if isinstance(v, APFloat) else APFloat.from_float(float(v))
        pairs = split_apfloat(ap, radix)
        if not pairs:
            continue
        idx = np.array([j for j, _ in pairs], dtype=np.int64)
        dig = np.array([d for _, d in pairs], dtype=np.int64)
        total = total.add(
            SparseSuperaccumulator(radix, idx, dig, _validated=True)
        )
    return total


def exact_sum_apfloat(
    values: Iterable[Union[APFloat, float]],
    radix: RadixConfig = DEFAULT_RADIX,
) -> APFloat:
    """Exact (unrounded) sum of arbitrary-precision values, as an APFloat."""
    acc = accumulate_apfloats(values, radix)
    v, shift = acc.to_scaled_int()
    return APFloat(v, shift)


def round_apfloat_sum_to_float(
    values: Iterable[Union[APFloat, float]],
    *,
    target_precision: int = 53,
    radix: RadixConfig = DEFAULT_RADIX,
) -> APFloat:
    """Faithfully rounded sum at a caller-chosen precision ``t``.

    The full pipeline of the paper for the arbitrary-precision setting:
    exact carry-free accumulation, then one rounding at the end to
    ``target_precision`` significant bits (round-to-nearest-even, which
    implies faithful).
    """
    return exact_sum_apfloat(values, radix).round_to_precision(target_precision)
