"""Exact condition numbers for summation problems.

The paper (Section 1) characterizes instance difficulty by

    C(X) = sum(|x_i|) / |sum(x_i)|,

which is 1 for same-signed data and grows without bound as cancellation
increases. Both numerator and denominator are computed *exactly* with
superaccumulators, so the reported condition number is itself reliable
even on instances engineered to defeat floating point.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Tuple

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["condition_number", "condition_number_exact"]


def condition_number_exact(
    values: Iterable[float], radix: RadixConfig = DEFAULT_RADIX
) -> Tuple[Fraction, Fraction]:
    """Exact ``(sum |x_i|, |sum x_i|)`` as Fractions.

    Returned separately so callers can form ``C(X)`` or detect the
    zero-sum case without dividing.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    total = SparseSuperaccumulator.from_floats(arr, radix).to_fraction()
    mag = SparseSuperaccumulator.from_floats(np.abs(arr), radix).to_fraction()
    return mag, abs(total)


def condition_number(
    values: Iterable[float], radix: RadixConfig = DEFAULT_RADIX
) -> float:
    """Exact condition number ``C(X)`` rounded to a float.

    Returns ``math.inf`` for non-trivial instances whose sum is exactly
    zero (the paper's footnote 4 caveat) and ``1.0`` for empty or
    all-zero input by convention.
    """
    mag, total = condition_number_exact(values, radix)
    if mag == 0:
        return 1.0
    if total == 0:
        return math.inf
    ratio = mag / total
    return float(ratio)
