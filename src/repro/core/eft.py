"""Error-free transformations (EFTs) on IEEE 754 binary64 values.

These are the classical building blocks the paper calls ``AddTwo``
(Section 1): given floats ``x`` and ``y``, compute floats ``(s, e)``
with ``s = x (+) y`` (the rounded sum) and ``x + y = s + e`` *exactly*.

Two implementations are provided:

* :func:`two_sum` — Knuth's branch-free 6-flop algorithm, valid for any
  finite ``x, y``.
* :func:`fast_two_sum` — Dekker's 3-flop algorithm, valid only when
  ``|x| >= |y|`` (or ``x == 0``).

Vectorized variants (``two_sum_vec``) operate elementwise on NumPy
arrays and are the workhorses of the distillation-based baselines
(iFastSum, OnlineExactSum) and of Shewchuk expansion arithmetic.

All routines assume round-to-nearest-even, which is what CPython and
NumPy use on every supported platform.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "two_sum",
    "fast_two_sum",
    "two_sum_vec",
    "fast_two_sum_vec",
    "split",
    "split_vec",
    "two_product",
    "two_square",
    "two_product_vec",
    "two_square_vec",
]

# Dekker's splitting constant for binary64: 2**ceil(53/2) + 1.
_SPLITTER = 134217729.0  # 2**27 + 1


def two_sum(x: float, y: float) -> Tuple[float, float]:
    """Knuth's TwoSum: return ``(s, e)`` with ``s = fl(x+y)`` and
    ``x + y = s + e`` exactly.

    Branch-free and valid for all finite inputs regardless of relative
    magnitude. This is the ``AddTwo`` primitive of the paper.
    """
    s = x + y
    bb = s - x
    e = (x - (s - bb)) + (y - bb)
    return s, e


def fast_two_sum(x: float, y: float) -> Tuple[float, float]:
    """Dekker's FastTwoSum; requires ``|x| >= |y|`` (unchecked).

    Three flops instead of six. Used inside expansion arithmetic where
    the magnitude ordering is known.
    """
    s = x + y
    e = y - (s - x)
    return s, e


def two_sum_vec(x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`two_sum` over arrays (broadcasting allowed)."""
    s = x + y
    bb = s - x
    e = (x - (s - bb)) + (y - bb)
    return s, e


def fast_two_sum_vec(
    x: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`fast_two_sum`; caller guarantees ``|x| >= |y|``."""
    s = x + y
    e = y - (s - x)
    return s, e


def split(a: float) -> Tuple[float, float]:
    """Dekker's split: ``a = hi + lo`` with ``hi``/``lo`` 26/27-bit values.

    Used by :func:`two_product` on machines without FMA; exposed because
    the paper's Section 2 discussion of splitting mantissas into radix
    chunks is the integer analogue of this float-level split.
    """
    c = _SPLITTER * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def two_product(a: float, b: float) -> Tuple[float, float]:
    """Dekker/Veltkamp TwoProduct: ``(p, e)`` with ``a*b = p + e`` exactly.

    Not required for summation but rounds out the EFT toolkit (needed by
    the exact dot-product convenience in :mod:`repro.core.exact`).
    """
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def two_square(a: float) -> Tuple[float, float]:
    """TwoSquare: ``(p, e)`` with ``a*a = p + e`` exactly.

    The squared specialization of :func:`two_product` needs one split
    and saves two multiplies (the cross terms coincide).
    """
    p = a * a
    hi, lo = split(a)
    e = ((hi * hi - p) + 2.0 * (hi * lo)) + lo * lo
    return p, e


def split_vec(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise Dekker :func:`split` over arrays."""
    c = _SPLITTER * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def two_product_vec(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`two_product` over arrays (broadcasting allowed).

    FMA-free: uses the Dekker split exactly like the scalar routine, so
    the returned ``(p, e)`` pairs are bit-identical to looping
    :func:`two_product` over the elements. Exactness requires the
    products to stay inside the overflow/underflow-safe domain policed
    by :mod:`repro.reduce` (see ``ReduceOp.check_domain``).
    """
    p = a * b
    a_hi, a_lo = split_vec(a)
    b_hi, b_lo = split_vec(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def two_square_vec(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Elementwise :func:`two_square` over arrays.

    Bit-identical to looping the scalar routine; one split per element
    instead of the two :func:`two_product_vec` would spend.
    """
    p = a * a
    hi, lo = split_vec(a)
    e = ((hi * hi - p) + 2.0 * (hi * lo)) + lo * lo
    return p, e
