"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NonFiniteInputError",
    "RepresentationError",
    "ModelViolationError",
    "CertificationError",
    "CodecError",
    "EmptyStreamError",
    "ReductionRangeError",
    "ProtocolError",
    "ProtocolVersionError",
    "BackpressureError",
    "ServiceError",
    "NodeDownError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NonFiniteInputError(ReproError, ValueError):
    """An input contained NaN or an infinity.

    Exact summation is defined only for finite values; the IEEE 754
    semantics of non-finite propagation are left to the caller.
    """


class RepresentationError(ReproError, ValueError):
    """A number representation violated one of its invariants.

    For example, a digit vector claimed to be (alpha, beta)-regularized
    holding a digit outside ``[-alpha, beta]``.
    """


class ModelViolationError(ReproError, RuntimeError):
    """A simulated machine model constraint was violated.

    Raised by the PRAM simulator on EREW access conflicts and by the
    external-memory device when an algorithm exceeds internal memory.
    """


class CertificationError(ReproError, ArithmeticError):
    """A speculative fast-path result could not be proven correct.

    Raised where the adaptive engine has no in-band escalation path —
    e.g. a MapReduce job whose certified combine payloads turn out, at
    the final global check, not to pin down the correctly rounded sum.
    Callers fall back to a fully exact job; the error therefore signals
    "redo exactly", never a wrong published result.
    """


class CodecError(ReproError, ValueError):
    """A wire-format frame failed to decode.

    Raised by :mod:`repro.codec` for truncated payloads, wrong or
    unknown magic tags, and corrupt headers. Wire frames cross process
    and machine boundaries (MapReduce shuffles, BSP messages, service
    snapshots, dataset files), so malformed bytes must surface as this
    clean typed error — never a raw ``struct.error`` or ``frombuffer``
    traceback. Subclasses ``ValueError`` so pre-codec callers that
    caught ``ValueError`` keep working.
    """


class EmptyStreamError(ReproError, ValueError):
    """A query that needs observations was made on an empty stream.

    ``mean``/``variance`` of zero values have no defined result; sums
    of empty streams are 0.0 and do *not* raise this.
    """


class ReductionRangeError(ReproError, ValueError):
    """An input left the error-free expansion domain of a reduction op.

    The vectorized EFT expansions (:func:`repro.core.eft.two_product_vec`
    and friends) are exact only while the products they form neither
    overflow nor lose bits to underflow. :mod:`repro.reduce` checks that
    domain up front and raises this instead of silently folding an
    inexact term stream. The full-range (but slower) serial references in
    :mod:`repro.stats` remain available for out-of-band magnitudes.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""

    #: machine-readable error code echoed in service error responses
    code = "service"


class ProtocolError(ServiceError, ValueError):
    """A wire frame violated the serve protocol.

    Covers bad length prefixes (oversized, negative), truncated
    frames, payloads that are not valid UTF-8 JSON, and JSON payloads
    that are not objects. Malformed bytes cross a trust boundary, so
    they must surface as this clean error, never a raw ``json`` or
    ``struct`` traceback.
    """

    code = "protocol"


class ProtocolVersionError(ProtocolError):
    """The server rejected a ``hello`` negotiation.

    Raised client-side when the requested protocol version or wire mode
    is not supported by the peer. Clients treat it as a downgrade
    signal — fall back to the JSON-lines wire — not a data error; the
    connection stays usable.
    """

    code = "protocol-version"


class NodeDownError(ServiceError, ConnectionError):
    """A cluster node could not be reached (dead, killed, or partitioned).

    Raised by the coordinator when every handle that could serve a
    request is down, and by node handles when their transport fails.
    The coordinator treats it as a failover trigger, not a data error:
    stream state is never lost while a replica (or the node's WAL)
    survives.
    """

    code = "node-down"


class BackpressureError(ServiceError, RuntimeError):
    """An ingest queue was full under the ``reject`` overload policy.

    Attributes:
        retry_after: suggested client back-off in seconds.
    """

    code = "busy"

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
