"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NonFiniteInputError",
    "RepresentationError",
    "ModelViolationError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NonFiniteInputError(ReproError, ValueError):
    """An input contained NaN or an infinity.

    Exact summation is defined only for finite values; the IEEE 754
    semantics of non-finite propagation are left to the caller.
    """


class RepresentationError(ReproError, ValueError):
    """A number representation violated one of its invariants.

    For example, a digit vector claimed to be (alpha, beta)-regularized
    holding a digit outside ``[-alpha, beta]``.
    """


class ModelViolationError(ReproError, RuntimeError):
    """A simulated machine model constraint was violated.

    Raised by the PRAM simulator on EREW access conflicts and by the
    external-memory device when an algorithm exceeds internal memory.
    """
