"""The wire-format registry: every byte layout in one module.

Every serialized object that crosses a process or machine boundary in
this package — MapReduce shuffle payloads, BSP messages, service
snapshots, streaming checkpoints, dataset files — is a *magic-tagged
frame*: a 4-byte ASCII magic identifying the format, followed by a
format-specific body. This module owns all of those layouts; nothing
else in the package touches :mod:`struct`. (reprolint rule ``ARCH001``
enforces that — see :mod:`repro.analysis` — and CI runs it as a
blocking check.)

Registered frame formats:

========  =================================================  =========
magic     payload                                            producer
========  =================================================  =========
``SSUP``  sparse superaccumulator: w, count, indices,        kernels /
          digits                                             shuffles
``DSUP``  dense superaccumulator: w, base, nlimbs, limbs     kernels
``ERSM``  running sum: count + embedded ``SSUP``             serve
          (service snapshot format)                          snapshots
``KSTR``  generic kernel stream: count + any embedded frame  serve
``TSUP``  gamma-truncated sparse: gamma, drop accounting +   truncated
          embedded ``SSUP``                                  kernel
``BSUP``  binned superaccumulator: chunk budget, non-zero    binned
          exponent bins (index/lo/hi) + embedded ``SSUP``    kernels
          spill
``ACRT``  adaptive certificate: (value, remainder, bound)    adaptive
``ACMP``  adaptive composite: (bound, certs, fulls) +        adaptive
          embedded ``SSUP``
``RAWB``  raw float64 block (no-combiner ablation,           mapreduce /
          binary-wire value payload)                         serve wire
``NF64``  one naive float (inexact control job)              mapreduce
``F64D``  dataset file header: item count                    data/io
``WALR``  write-ahead-log ingest record: seq, CRC-32,        cluster
          length-prefixed stream name + float64 payload      WAL
``BBAT``  binary batch ingest op: request id, seq,           serve wire
          length-prefixed stream name + embedded ``RAWB``    (binary)
``RBAT``  binary reduce-batch ingest op: request id, seq,    serve wire
          op tag (pairs/squares/observations), name +        (binary)
          one or two embedded ``RAWB`` input blocks
``WALO``  op-tagged WAL reduce record: seq, CRC-32, op tag,  cluster
          name + raw pre-expansion float64 input(s) —        WAL
          replay re-expands deterministically
========  =================================================  =========

Decoders reject truncated payloads, wrong magics, and corrupt headers
with :class:`~repro.errors.CodecError` (a ``ValueError``); embedded
accumulator bodies are additionally structurally validated by their
constructors. :func:`decode` dispatches any frame by its magic.

The serve transport's length prefix (``LENGTH_PREFIX``) also lives
here: it is the one non-magic layout, framing whole messages rather
than encoding values, and is re-exported by :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import struct
import zlib
from typing import TYPE_CHECKING, Any, Callable, Dict, Tuple, Union

import numpy as np

from repro.core.digits import RadixConfig
from repro.errors import CodecError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.sparse import SparseSuperaccumulator
    from repro.core.superaccumulator import DenseSuperaccumulator

__all__ = [
    "MAGIC_SPARSE",
    "MAGIC_DENSE",
    "MAGIC_RUNNING",
    "MAGIC_STREAM",
    "MAGIC_TRUNCATED",
    "MAGIC_BINNED",
    "MAGIC_CERT",
    "MAGIC_COMPOSITE",
    "MAGIC_RAW_BLOCK",
    "MAGIC_FLOAT",
    "MAGIC_DATASET",
    "MAGIC_WAL",
    "MAGIC_BATCH",
    "MAGIC_REDUCE_BATCH",
    "MAGIC_WAL_REDUCE",
    "REDUCE_OP_CODES",
    "REDUCE_OP_NAMES",
    "LENGTH_PREFIX",
    "DATASET_HEADER_SIZE",
    "WAL_HEADER_SIZE",
    "WAL_UNSEQUENCED",
    "peek_magic",
    "decode",
    "registered_formats",
    "encode_sparse",
    "decode_sparse",
    "encode_dense",
    "decode_dense",
    "encode_running",
    "decode_running",
    "encode_stream",
    "decode_stream",
    "encode_truncated",
    "decode_truncated",
    "encode_binned",
    "decode_binned",
    "encode_cert",
    "decode_cert",
    "encode_composite",
    "decode_composite",
    "encode_raw_block",
    "decode_raw_block",
    "encode_float",
    "decode_float",
    "encode_dataset_header",
    "decode_dataset_header",
    "encode_wal_record",
    "decode_wal_record",
    "encode_wal_reduce",
    "decode_wal_reduce",
    "decode_wal_any",
    "wal_record_size",
    "encode_batch",
    "decode_batch",
    "batch_wire_body",
    "encode_reduce_batch",
    "decode_reduce_batch",
    "reduce_batch_wire_bodies",
]

MAGIC_SPARSE = b"SSUP"
MAGIC_DENSE = b"DSUP"
MAGIC_RUNNING = b"ERSM"
MAGIC_STREAM = b"KSTR"
MAGIC_TRUNCATED = b"TSUP"
MAGIC_BINNED = b"BSUP"
MAGIC_CERT = b"ACRT"
MAGIC_COMPOSITE = b"ACMP"
MAGIC_RAW_BLOCK = b"RAWB"
MAGIC_FLOAT = b"NF64"
MAGIC_DATASET = b"F64D"
MAGIC_WAL = b"WALR"
MAGIC_BATCH = b"BBAT"
MAGIC_REDUCE_BATCH = b"RBAT"
MAGIC_WAL_REDUCE = b"WALO"

_SPARSE_HEADER = struct.Struct("<4sBq")  # magic, w, ncomponents
_DENSE_HEADER = struct.Struct("<4sBqqq")  # magic, w, base_index, nlimbs, count
_COUNT_HEADER = struct.Struct("<4sq")  # magic, count (ERSM / KSTR / F64D)
_TRUNC_HEADER = struct.Struct("<4sqq?q")  # magic, gamma, drops, flag, max_idx
_BINNED_HEADER = struct.Struct("<4sqq")  # magic, chunk budget used, nbins
_CERT_FRAME = struct.Struct("<4sddd")  # magic, value, remainder, bound
_COMPOSITE_HEADER = struct.Struct("<4sdqq")  # magic, bound, certs, fulls
_FLOAT_FRAME = struct.Struct("<4sd")  # magic, value
_WAL_HEADER = struct.Struct("<4sqIqq")  # magic, seq, crc32, stream_len, payload_len
_BATCH_HEADER = struct.Struct("<4sqqqq")  # magic, request id, seq, stream_len, nvalues
# magic, seq, crc32, op code, stream_len, n inputs, pad — 32 bytes, the
# same fixed prefix as _WAL_HEADER so one reader loop serves both.
_WAL_REDUCE_HEADER = struct.Struct("<4sqIHHq4x")
# magic, request id, seq, op code, stream_len, nx, ny
_REDUCE_BATCH_HEADER = struct.Struct("<4sqqqqqq")

#: Reduction ingest kinds carried by ``RBAT``/``WALO`` frames: the op
#: tag names the *expansion* the receiver applies before folding, so
#: WAL replay and shard scatter see identical deterministic terms.
REDUCE_OP_CODES: Dict[str, int] = {"pairs": 1, "squares": 2, "observations": 3}
REDUCE_OP_NAMES: Dict[int, str] = {v: k for k, v in REDUCE_OP_CODES.items()}

#: Serve-transport frame length prefix (network byte order uint32).
#: Message framing, not value encoding — but it is still a byte layout,
#: so it lives here with the rest of them.
LENGTH_PREFIX = struct.Struct("!I")

#: Size in bytes of the ``.f64`` dataset file header.
DATASET_HEADER_SIZE = _COUNT_HEADER.size

#: Size in bytes of a ``WALR`` record header (the fixed-length prefix a
#: WAL reader consumes before it knows how much body to read).
WAL_HEADER_SIZE = _WAL_HEADER.size

#: Sequence number meaning "this record carries no cluster sequence"
#: (scatter-mode ingest; dedup does not apply).
WAL_UNSEQUENCED = -1


def peek_magic(payload: bytes) -> bytes:
    """First 4 bytes of a frame (its magic tag).

    Raises:
        CodecError: if the payload is shorter than a magic tag.
    """
    if len(payload) < 4:
        raise CodecError(
            f"frame truncated: {len(payload)} bytes is shorter than a magic tag"
        )
    return bytes(payload[:4])


def _check_header(payload: bytes, header: struct.Struct, what: str) -> None:
    if len(payload) < header.size:
        raise CodecError(
            f"{what} payload truncated: "
            f"{len(payload)} bytes < {header.size}-byte header"
        )


def _radix_from_width(w: int) -> RadixConfig:
    try:
        return RadixConfig(w)
    except ValueError as exc:
        raise CodecError(f"corrupt header: {exc}") from exc


# ----------------------------------------------------------------------
# SSUP — sparse superaccumulator
# ----------------------------------------------------------------------


def encode_sparse(acc: "SparseSuperaccumulator") -> bytes:
    """``SSUP`` frame: header + indices + digits, little endian."""
    header = _SPARSE_HEADER.pack(MAGIC_SPARSE, acc.radix.w, acc.indices.size)
    return (
        header
        + acc.indices.astype("<i8").tobytes()
        + acc.digits.astype("<i8").tobytes()
    )


def decode_sparse(payload: bytes) -> "SparseSuperaccumulator":
    """Inverse of :func:`encode_sparse`.

    Raises:
        CodecError: wrong magic, truncated or oversized body, invalid
            digit width.
        RepresentationError: decoded components violate the regularized
            representation (also a ``ValueError``).
    """
    from repro.core.sparse import SparseSuperaccumulator

    _check_header(payload, _SPARSE_HEADER, "SparseSuperaccumulator")
    magic, w, count = _SPARSE_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_SPARSE:
        raise CodecError("not a SparseSuperaccumulator payload")
    if count < 0:
        raise CodecError(f"corrupt header: negative component count {count}")
    expected = _SPARSE_HEADER.size + 16 * count
    if len(payload) != expected:
        raise CodecError(
            f"SparseSuperaccumulator payload length mismatch: "
            f"expected {expected} bytes for {count} components, "
            f"got {len(payload)}"
        )
    radix = _radix_from_width(w)
    off = _SPARSE_HEADER.size
    idx = np.frombuffer(payload, dtype="<i8", count=count, offset=off)
    off += 8 * count
    dig = np.frombuffer(payload, dtype="<i8", count=count, offset=off)
    # Full structural validation (sorted indices, regularized digits):
    # RepresentationError is a ValueError subclass, so corrupted bodies
    # fail as cleanly as corrupted headers.
    return SparseSuperaccumulator(radix, idx.astype(np.int64), dig.astype(np.int64))


# ----------------------------------------------------------------------
# DSUP — dense superaccumulator
# ----------------------------------------------------------------------


def encode_dense(acc: "DenseSuperaccumulator") -> bytes:
    """``DSUP`` frame: header + raw little-endian limbs.

    The accumulator must already be renormalized (callers' ``to_bytes``
    does that) so observable wire state is always regularized.
    """
    header = _DENSE_HEADER.pack(
        MAGIC_DENSE, acc.radix.w, acc.base_index, len(acc.limbs), 1
    )
    return header + acc.limbs.astype("<i8").tobytes()


def decode_dense(payload: bytes) -> "DenseSuperaccumulator":
    """Inverse of :func:`encode_dense` (always a dense accumulator).

    Raises:
        CodecError: wrong magic, truncated or oversized body, invalid
            digit width.
    """
    from repro.core.superaccumulator import DenseSuperaccumulator

    _check_header(payload, _DENSE_HEADER, "DenseSuperaccumulator")
    magic, w, base, nlimbs, _count = _DENSE_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_DENSE:
        raise CodecError("not a DenseSuperaccumulator payload")
    if nlimbs < 0:
        raise CodecError(f"corrupt header: negative limb count {nlimbs}")
    expected = _DENSE_HEADER.size + 8 * nlimbs
    if len(payload) != expected:
        raise CodecError(
            f"DenseSuperaccumulator payload length mismatch: "
            f"expected {expected} bytes for {nlimbs} limbs, "
            f"got {len(payload)}"
        )
    radix = _radix_from_width(w)
    acc = DenseSuperaccumulator(radix, base_index=base, nlimbs=nlimbs)
    acc.limbs[:] = np.frombuffer(
        payload, dtype="<i8", count=nlimbs, offset=_DENSE_HEADER.size
    )
    return acc


# ----------------------------------------------------------------------
# ERSM / KSTR — counted streams (running sums, generic kernel streams)
# ----------------------------------------------------------------------


def encode_running(count: int, acc: "SparseSuperaccumulator") -> bytes:
    """``ERSM`` frame: count + embedded ``SSUP`` (service snapshots)."""
    return _COUNT_HEADER.pack(MAGIC_RUNNING, count) + encode_sparse(acc)


def decode_running(payload: bytes) -> Tuple[int, "SparseSuperaccumulator"]:
    """Inverse of :func:`encode_running`; returns ``(count, acc)``.

    Raises:
        CodecError: wrong magic, truncated header, negative count, or a
            corrupt embedded accumulator.
    """
    _check_header(payload, _COUNT_HEADER, "ExactRunningSum")
    magic, count = _COUNT_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_RUNNING:
        raise CodecError("not an ExactRunningSum payload")
    if count < 0:
        raise CodecError(f"corrupt header: negative count {count}")
    return int(count), decode_sparse(payload[_COUNT_HEADER.size :])


def encode_stream(count: int, inner: bytes) -> bytes:
    """``KSTR`` frame: count + any embedded kernel partial frame."""
    return _COUNT_HEADER.pack(MAGIC_STREAM, count) + inner


def decode_stream(payload: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`encode_stream`; returns ``(count, inner)``."""
    _check_header(payload, _COUNT_HEADER, "kernel stream")
    magic, count = _COUNT_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_STREAM:
        raise CodecError("not a kernel stream payload")
    if count < 0:
        raise CodecError(f"corrupt header: negative count {count}")
    inner = payload[_COUNT_HEADER.size :]
    # The embedded frame must itself decode: a stream snapshot whose
    # body was clipped is corrupt, not a shorter snapshot.
    decode(inner)
    return int(count), inner


# ----------------------------------------------------------------------
# TSUP — gamma-truncated sparse superaccumulator
# ----------------------------------------------------------------------


def encode_truncated(
    gamma: int,
    drop_count: int,
    truncated: bool,
    max_dropped_index: int,
    acc: "SparseSuperaccumulator",
) -> bytes:
    """``TSUP`` frame: truncation accounting + embedded ``SSUP``.

    ``max_dropped_index`` is meaningful only when ``drop_count > 0``
    (encode 0 otherwise).
    """
    header = _TRUNC_HEADER.pack(
        MAGIC_TRUNCATED, gamma, drop_count, truncated, max_dropped_index
    )
    return header + encode_sparse(acc)


def decode_truncated(
    payload: bytes,
) -> Tuple[int, int, bool, int, "SparseSuperaccumulator"]:
    """Inverse of :func:`encode_truncated`.

    Returns ``(gamma, drop_count, truncated, max_dropped_index, acc)``.
    """
    _check_header(payload, _TRUNC_HEADER, "TruncatedSparseSuperaccumulator")
    magic, gamma, drops, truncated, max_idx = _TRUNC_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_TRUNCATED:
        raise CodecError("not a TruncatedSparseSuperaccumulator payload")
    if gamma < 1:
        raise CodecError(f"corrupt header: gamma {gamma} must be >= 1")
    if drops < 0:
        raise CodecError(f"corrupt header: negative drop count {drops}")
    acc = decode_sparse(payload[_TRUNC_HEADER.size :])
    return int(gamma), int(drops), bool(truncated), int(max_idx), acc


# ----------------------------------------------------------------------
# BSUP — exponent-binned superaccumulator
# ----------------------------------------------------------------------


def encode_binned(
    chunks: int,
    indices: np.ndarray,
    bins_lo: np.ndarray,
    bins_hi: np.ndarray,
    spill: "SparseSuperaccumulator",
) -> bytes:
    """``BSUP`` frame: bin accounting + non-zero bins + embedded ``SSUP``.

    ``indices`` are the (strictly increasing) occupied biased-exponent
    bins; ``bins_lo``/``bins_hi`` their int64 low/high mantissa-unit
    sums; ``chunks`` the deferred-carry budget already consumed (bounds
    the bin magnitudes the decoder will accept).
    """
    header = _BINNED_HEADER.pack(MAGIC_BINNED, chunks, indices.size)
    return (
        header
        + np.asarray(indices, dtype="<i8").tobytes()
        + np.asarray(bins_lo, dtype="<i8").tobytes()
        + np.asarray(bins_hi, dtype="<i8").tobytes()
        + encode_sparse(spill)
    )


def decode_binned(
    payload: bytes,
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, "SparseSuperaccumulator"]:
    """Inverse of :func:`encode_binned`.

    Returns ``(chunks, indices, bins_lo, bins_hi, spill)``. Structural
    validation is strict because these frames cross process boundaries:
    the chunk budget must respect the kernel's int64 safety bound, bin
    indices must be strictly increasing finite biased exponents, and
    every bin magnitude must be achievable within the declared budget.
    """
    from repro.kernels.binned import BIN_COUNT, RESOLVE_CHUNKS

    _check_header(payload, _BINNED_HEADER, "BinnedPartial")
    magic, chunks, nbins = _BINNED_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_BINNED:
        raise CodecError("not a BinnedPartial payload")
    if not 0 <= chunks <= RESOLVE_CHUNKS:
        raise CodecError(
            f"corrupt header: chunk budget {chunks} outside "
            f"[0, {RESOLVE_CHUNKS}]"
        )
    if not 0 <= nbins <= BIN_COUNT:
        raise CodecError(
            f"corrupt header: bin count {nbins} outside [0, {BIN_COUNT}]"
        )
    off = _BINNED_HEADER.size
    body = 24 * nbins
    if len(payload) < off + body:
        raise CodecError(
            f"BinnedPartial payload truncated: expected at least "
            f"{off + body} bytes for {nbins} bins, got {len(payload)}"
        )
    indices = np.frombuffer(payload, dtype="<i8", count=nbins, offset=off)
    off += 8 * nbins
    bins_lo = np.frombuffer(payload, dtype="<i8", count=nbins, offset=off)
    off += 8 * nbins
    bins_hi = np.frombuffer(payload, dtype="<i8", count=nbins, offset=off)
    off += 8 * nbins
    if nbins:
        if indices[0] < 1 or indices[-1] >= BIN_COUNT:
            raise CodecError(
                "corrupt bins: index outside the finite biased-exponent range"
            )
        if nbins > 1 and not (np.diff(indices) > 0).all():
            raise CodecError("corrupt bins: indices must be strictly increasing")
        # Each deposit chunk contributes < 2**52 (low) / 2**41 (high)
        # per bin, so a magnitude beyond chunks * bound cannot be the
        # output of any legal fold — reject rather than resolve garbage.
        # Two-sided compares, not np.abs: abs(int64 min) wraps negative
        # and would sneak past a magnitude check.
        lo_bound = int(chunks) << 52
        hi_bound = int(chunks) << 41
        if (
            (bins_lo > lo_bound).any()
            or (bins_lo < -lo_bound).any()
            or (bins_hi > hi_bound).any()
            or (bins_hi < -hi_bound).any()
        ):
            raise CodecError(
                "corrupt bins: magnitude exceeds the declared chunk budget"
            )
    spill = decode_sparse(payload[off:])
    return (
        int(chunks),
        indices.astype(np.int64),
        bins_lo.astype(np.int64),
        bins_hi.astype(np.int64),
        spill,
    )


# ----------------------------------------------------------------------
# ACRT / ACMP — adaptive certificates and composites
# ----------------------------------------------------------------------


def encode_cert(value: float, remainder: float, bound: float) -> bytes:
    """``ACRT`` frame: one Tier-0-certified block, 32 bytes.

    ``value + remainder`` is within ``bound`` of the exact block sum;
    value and remainder are exact floats the reducer folds losslessly,
    only ``bound`` carries uncertainty.
    """
    return _CERT_FRAME.pack(MAGIC_CERT, value, remainder, bound)


def decode_cert(payload: bytes) -> Tuple[float, float, float]:
    """Inverse of :func:`encode_cert`: ``(value, remainder, bound)``."""
    _check_header(payload, _CERT_FRAME, "adaptive certificate")
    magic, value, remainder, bound = _CERT_FRAME.unpack_from(payload, 0)
    if magic != MAGIC_CERT:
        raise CodecError("not an adaptive certificate payload")
    if len(payload) != _CERT_FRAME.size:
        raise CodecError(
            f"adaptive certificate payload length mismatch: "
            f"expected {_CERT_FRAME.size} bytes, got {len(payload)}"
        )
    if not bound >= 0.0:  # also rejects NaN
        raise CodecError(f"corrupt certificate: negative or NaN bound {bound!r}")
    return float(value), float(remainder), float(bound)


def encode_composite(
    bound: float, certs: int, fulls: int, acc: "SparseSuperaccumulator"
) -> bytes:
    """``ACMP`` frame: (bound, cert/full block counts) + embedded ``SSUP``."""
    header = _COMPOSITE_HEADER.pack(MAGIC_COMPOSITE, bound, certs, fulls)
    return header + encode_sparse(acc)


def decode_composite(
    payload: bytes,
) -> Tuple[float, int, int, "SparseSuperaccumulator"]:
    """Inverse of :func:`encode_composite`: ``(bound, certs, fulls, acc)``."""
    _check_header(payload, _COMPOSITE_HEADER, "adaptive composite")
    magic, bound, certs, fulls = _COMPOSITE_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_COMPOSITE:
        raise CodecError("not an adaptive composite payload")
    if certs < 0 or fulls < 0:
        raise CodecError(
            f"corrupt header: negative block counts ({certs}, {fulls})"
        )
    if not bound >= 0.0:
        raise CodecError(f"corrupt composite: negative or NaN bound {bound!r}")
    acc = decode_sparse(payload[_COMPOSITE_HEADER.size :])
    return float(bound), int(certs), int(fulls), acc


# ----------------------------------------------------------------------
# RAWB / NF64 — raw blocks and naive floats (control jobs)
# ----------------------------------------------------------------------


def encode_raw_block(block: np.ndarray) -> bytes:
    """``RAWB`` frame: magic + raw little-endian float64 payload."""
    return MAGIC_RAW_BLOCK + np.ascontiguousarray(block, dtype="<f8").tobytes()


def decode_raw_block(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_raw_block` (read-only view)."""
    if peek_magic(payload) != MAGIC_RAW_BLOCK:
        raise CodecError("not a raw block payload")
    if (len(payload) - 4) % 8:
        raise CodecError(
            f"raw block payload length mismatch: {len(payload) - 4} "
            f"body bytes is not a whole number of float64s"
        )
    return np.frombuffer(payload, dtype="<f8", offset=4)


def encode_float(value: float) -> bytes:
    """``NF64`` frame: one float64 (the naive control job's payload)."""
    return _FLOAT_FRAME.pack(MAGIC_FLOAT, value)


def decode_float(payload: bytes) -> float:
    """Inverse of :func:`encode_float`."""
    _check_header(payload, _FLOAT_FRAME, "naive float")
    magic, value = _FLOAT_FRAME.unpack_from(payload, 0)
    if magic != MAGIC_FLOAT:
        raise CodecError("not a naive float payload")
    if len(payload) != _FLOAT_FRAME.size:
        raise CodecError(
            f"naive float payload length mismatch: "
            f"expected {_FLOAT_FRAME.size} bytes, got {len(payload)}"
        )
    return float(value)


# ----------------------------------------------------------------------
# F64D — dataset file header
# ----------------------------------------------------------------------


def encode_dataset_header(count: int) -> bytes:
    """``F64D`` dataset file header: magic + int64 item count."""
    return _COUNT_HEADER.pack(MAGIC_DATASET, count)


def decode_dataset_header(raw: bytes) -> int:
    """Item count from a ``.f64`` file header.

    Raises:
        CodecError: short read (truncated file), wrong magic, or a
            negative count.
    """
    if len(raw) < _COUNT_HEADER.size:
        raise CodecError(
            f"dataset header truncated: {len(raw)} bytes "
            f"< {_COUNT_HEADER.size}-byte header"
        )
    magic, count = _COUNT_HEADER.unpack_from(raw, 0)
    if magic != MAGIC_DATASET:
        raise CodecError("not a repro .f64 dataset file")
    if count < 0:
        raise CodecError(f"corrupt header: negative item count {count}")
    return int(count)


# ----------------------------------------------------------------------
# WALR — cluster write-ahead-log ingest record
# ----------------------------------------------------------------------


def encode_wal_record(
    seq: int, stream: str, values: Union[np.ndarray, bytes, bytearray, memoryview]
) -> bytes:
    """``WALR`` frame: one durably logged ingest batch.

    Layout: header (magic, int64 ``seq``, uint32 CRC-32, int64 stream-name
    length, int64 value-payload length) followed by the UTF-8 stream name
    and the raw little-endian float64 values.  The CRC covers the body
    (name + values) so replay can distinguish a torn tail from silent
    corruption.  ``seq`` is the cluster's per-stream sequence number;
    :data:`WAL_UNSEQUENCED` marks scatter-mode records with no dedup
    identity.

    ``values`` may be a float array or already-encoded little-endian
    float64 bytes — the binary wire path logs the frame payload it
    received verbatim, with no decode/re-encode on the durability path.

    Raises:
        CodecError: empty stream name, ``seq < WAL_UNSEQUENCED``, or a
            byte payload that is not a whole number of float64s.
    """
    if not stream:
        raise CodecError("WAL record requires a non-empty stream name")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt WAL record: sequence {seq} < -1")
    name = stream.encode("utf-8")
    if isinstance(values, (bytes, bytearray, memoryview)):
        body = bytes(values)
        if len(body) % 8:
            raise CodecError(
                f"WAL payload of {len(body)} bytes is not a whole "
                f"number of float64s"
            )
    else:
        body = np.ascontiguousarray(values, dtype="<f8").tobytes()
    crc = zlib.crc32(name + body) & 0xFFFFFFFF
    header = _WAL_HEADER.pack(MAGIC_WAL, seq, crc, len(name), len(body))
    return header + name + body


def wal_record_size(header: bytes) -> int:
    """Total record length (header + body) from a WAL record header.

    Lets a WAL reader consume a fixed :data:`WAL_HEADER_SIZE` prefix,
    learn how much body follows, and read exactly that — without the
    length arithmetic leaking out of the codec. Dispatches on the magic:
    both ``WALR`` (plain ingest) and ``WALO`` (op-tagged reduce ingest)
    share the 32-byte fixed prefix, so one reader loop serves both.

    Raises:
        CodecError: truncated header, wrong magic, or negative lengths.
    """
    _check_header(header, _WAL_HEADER, "WAL record")
    magic = bytes(header[:4])
    if magic == MAGIC_WAL_REDUCE:
        _, seq, _crc, op_code, stream_len, nx = _WAL_REDUCE_HEADER.unpack_from(
            header, 0
        )
        if op_code not in REDUCE_OP_NAMES:
            raise CodecError(f"corrupt WAL header: unknown reduce op {op_code}")
        if stream_len <= 0 or nx < 0:
            raise CodecError(
                f"corrupt WAL header: lengths ({stream_len}, {nx})"
            )
        if seq < WAL_UNSEQUENCED:
            raise CodecError(f"corrupt WAL header: sequence {seq} < -1")
        ny = nx if op_code == REDUCE_OP_CODES["pairs"] else 0
        return int(_WAL_REDUCE_HEADER.size + stream_len + 8 * (nx + ny))
    if magic != MAGIC_WAL:
        raise CodecError("not a WAL record payload")
    _, seq, _crc, stream_len, payload_len = _WAL_HEADER.unpack_from(header, 0)
    if stream_len <= 0 or payload_len < 0:
        raise CodecError(
            f"corrupt WAL header: lengths ({stream_len}, {payload_len})"
        )
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt WAL header: sequence {seq} < -1")
    return int(_WAL_HEADER.size + stream_len + payload_len)


def decode_wal_record(payload: bytes) -> Tuple[int, str, np.ndarray]:
    """Inverse of :func:`encode_wal_record`: ``(seq, stream, values)``.

    Raises:
        CodecError: truncation, wrong magic, corrupt lengths, a body that
            is not a whole number of float64s, or a CRC mismatch.
    """
    total = wal_record_size(payload)
    if bytes(payload[:4]) != MAGIC_WAL:
        raise CodecError("not a WAL record payload")
    _, seq, crc, stream_len, payload_len = _WAL_HEADER.unpack_from(payload, 0)
    if len(payload) != total:
        raise CodecError(
            f"WAL record length mismatch: expected {total} bytes, "
            f"got {len(payload)}"
        )
    if payload_len % 8:
        raise CodecError(
            f"corrupt WAL record: {payload_len} value bytes is not a "
            f"whole number of float64s"
        )
    body = payload[_WAL_HEADER.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CodecError("WAL record CRC mismatch: corrupt body")
    name = body[:stream_len]
    try:
        stream = name.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"corrupt WAL record: bad stream name: {exc}") from exc
    values = np.frombuffer(body[stream_len:], dtype="<f8")
    return int(seq), stream, values


# ----------------------------------------------------------------------
# WALO — op-tagged WAL reduce record
# ----------------------------------------------------------------------


def _as_f64_bytes(values: Union[np.ndarray, bytes, bytearray, memoryview]) -> bytes:
    if isinstance(values, (bytes, bytearray, memoryview)):
        body = bytes(values)
        if len(body) % 8:
            raise CodecError(
                f"payload of {len(body)} bytes is not a whole number of float64s"
            )
        return body
    return np.ascontiguousarray(values, dtype="<f8").tobytes()


def encode_wal_reduce(
    seq: int,
    stream: str,
    op: str,
    x: Union[np.ndarray, bytes, bytearray, memoryview],
    y: Union[np.ndarray, bytes, bytearray, memoryview, None] = None,
) -> bytes:
    """``WALO`` frame: one durably logged *reduction* ingest batch.

    Logs the raw **pre-expansion** inputs plus the op tag (one of
    :data:`REDUCE_OP_CODES`), not the expanded terms: the EFT expansion
    is deterministic, so replay re-expands and re-scatters bit-identical
    terms while the log stays half the size. ``pairs`` records carry two
    equal-length input blocks (``x`` then ``y``); the other ops carry
    one. The 32-byte header matches :data:`WAL_HEADER_SIZE` so the WAL
    reader's fixed-prefix loop is unchanged; the CRC covers the body
    (name + inputs) like ``WALR``.

    ``x``/``y`` may be float arrays or already-encoded little-endian
    float64 bytes — the binary wire path logs the frame payloads it
    received verbatim.

    Raises:
        CodecError: unknown op, empty or oversized stream name,
            ``seq < WAL_UNSEQUENCED``, a missing/mismatched pair input,
            or byte payloads that are not whole float64s.
    """
    code = REDUCE_OP_CODES.get(op)
    if code is None:
        raise CodecError(
            f"unknown reduce op {op!r}; expected one of {sorted(REDUCE_OP_CODES)}"
        )
    if not stream:
        raise CodecError("WAL record requires a non-empty stream name")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt WAL record: sequence {seq} < -1")
    name = stream.encode("utf-8")
    if len(name) > 0xFFFF:
        raise CodecError(f"stream name of {len(name)} bytes exceeds 65535")
    xb = _as_f64_bytes(x)
    if op == "pairs":
        if y is None:
            raise CodecError("reduce op 'pairs' requires a second input block")
        yb = _as_f64_bytes(y)
        if len(yb) != len(xb):
            raise CodecError(
                f"reduce op 'pairs' input length mismatch: "
                f"{len(xb)} vs {len(yb)} bytes"
            )
    else:
        if y is not None:
            raise CodecError(f"reduce op {op!r} takes a single input block")
        yb = b""
    body = name + xb + yb
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = _WAL_REDUCE_HEADER.pack(
        MAGIC_WAL_REDUCE, seq, crc, code, len(name), len(xb) // 8
    )
    return header + body


def decode_wal_reduce(
    payload: bytes,
) -> Tuple[int, str, str, np.ndarray, "np.ndarray | None"]:
    """Inverse of :func:`encode_wal_reduce`: ``(seq, stream, op, x, y)``.

    ``y`` is ``None`` for single-input ops.

    Raises:
        CodecError: truncation, wrong magic, corrupt lengths, unknown
            op code, or a CRC mismatch.
    """
    total = wal_record_size(payload)
    if bytes(payload[:4]) != MAGIC_WAL_REDUCE:
        raise CodecError("not a WAL reduce record payload")
    _, seq, crc, op_code, stream_len, nx = _WAL_REDUCE_HEADER.unpack_from(
        payload, 0
    )
    if len(payload) != total:
        raise CodecError(
            f"WAL reduce record length mismatch: expected {total} bytes, "
            f"got {len(payload)}"
        )
    body = payload[_WAL_REDUCE_HEADER.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CodecError("WAL record CRC mismatch: corrupt body")
    try:
        stream = body[:stream_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"corrupt WAL record: bad stream name: {exc}") from exc
    op = REDUCE_OP_NAMES[op_code]
    off = stream_len
    x = np.frombuffer(payload, dtype="<f8", count=nx,
                      offset=_WAL_REDUCE_HEADER.size + off)
    y = None
    if op == "pairs":
        y = np.frombuffer(payload, dtype="<f8", count=nx,
                          offset=_WAL_REDUCE_HEADER.size + off + 8 * nx)
    return int(seq), stream, op, x, y


def decode_wal_any(
    payload: bytes,
) -> Tuple[int, str, str, np.ndarray, "np.ndarray | None"]:
    """Decode either WAL record kind: ``(seq, stream, op, x, y)``.

    Plain ``WALR`` ingest records come back with ``op == "sum"`` and
    ``y is None``, so one replay loop handles a mixed log.
    """
    if peek_magic(payload) == MAGIC_WAL_REDUCE:
        return decode_wal_reduce(payload)
    seq, stream, values = decode_wal_record(payload)
    return seq, stream, "sum", values, None


# ----------------------------------------------------------------------
# BBAT — binary batch ingest op (serve wire)
# ----------------------------------------------------------------------


def encode_batch(
    request_id: int, seq: int, stream: str, values: np.ndarray
) -> bytes:
    """``BBAT`` frame: one binary-wire ingest op.

    Layout: header (magic, int64 request id, int64 ``seq``, int64
    stream-name length, int64 value count) followed by the UTF-8 stream
    name and an embedded ``RAWB`` frame carrying the raw little-endian
    float64 values.  The explicit value count makes truncation at *any*
    byte offset detectable (a bare ``RAWB`` frame cannot distinguish a
    tail lost on an 8-byte boundary from a shorter batch).

    ``seq`` is the cluster plane's per-stream dedup sequence;
    :data:`WAL_UNSEQUENCED` marks single-node ops with no dedup identity.
    The embedded ``RAWB`` body bytes are exactly what
    :func:`encode_wal_record` accepts verbatim, so the durability path
    never re-encodes values.

    Raises:
        CodecError: negative request id, ``seq < WAL_UNSEQUENCED``, or an
            empty stream name.
    """
    if request_id < 0:
        raise CodecError(f"batch frame requires request id >= 0, got {request_id}")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt batch frame: sequence {seq} < -1")
    if not stream:
        raise CodecError("batch frame requires a non-empty stream name")
    name = stream.encode("utf-8")
    block = encode_raw_block(values)
    nvalues = (len(block) - 4) // 8
    header = _BATCH_HEADER.pack(MAGIC_BATCH, request_id, seq, len(name), nvalues)
    return header + name + block


def decode_batch(payload: bytes) -> Tuple[int, int, str, np.ndarray]:
    """Inverse of :func:`encode_batch`: ``(request_id, seq, stream, values)``.

    The returned ``values`` is a read-only zero-copy view over the frame
    bytes (:func:`decode_raw_block` semantics) — callers that outlive the
    frame buffer must copy.

    Raises:
        CodecError: truncation or trailing garbage at any offset, wrong
            magic (outer or embedded), corrupt lengths, or a value count
            that disagrees with the payload size.
    """
    _check_header(payload, _BATCH_HEADER, "batch frame")
    magic, request_id, seq, stream_len, nvalues = _BATCH_HEADER.unpack_from(
        payload, 0
    )
    if magic != MAGIC_BATCH:
        raise CodecError("not a batch frame payload")
    if request_id < 0:
        raise CodecError(f"corrupt batch frame: request id {request_id} < 0")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt batch frame: sequence {seq} < -1")
    if stream_len <= 0 or nvalues < 0:
        raise CodecError(
            f"corrupt batch frame: lengths ({stream_len}, {nvalues})"
        )
    total = _BATCH_HEADER.size + stream_len + 4 + 8 * nvalues
    if len(payload) != total:
        raise CodecError(
            f"batch frame length mismatch: expected {total} bytes for "
            f"{nvalues} values, got {len(payload)}"
        )
    name = payload[_BATCH_HEADER.size : _BATCH_HEADER.size + stream_len]
    try:
        stream = name.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"corrupt batch frame: bad stream name: {exc}") from exc
    values = decode_raw_block(payload[_BATCH_HEADER.size + stream_len :])
    if values.size != nvalues:
        raise CodecError(
            f"corrupt batch frame: header promises {nvalues} values, "
            f"embedded block holds {values.size}"
        )
    return int(request_id), int(seq), stream, values


def batch_wire_body(payload: bytes) -> bytes:
    """The embedded ``RAWB`` float64 body bytes of a ``BBAT`` frame.

    This is the exact byte slice :func:`encode_wal_record` logs verbatim
    on the binary durability path; extracting it here keeps the offset
    arithmetic inside the codec.
    """
    _check_header(payload, _BATCH_HEADER, "batch frame")
    magic, _rid, _seq, stream_len, _n = _BATCH_HEADER.unpack_from(payload, 0)
    if magic != MAGIC_BATCH:
        raise CodecError("not a batch frame payload")
    return payload[_BATCH_HEADER.size + stream_len + 4 :]


# ----------------------------------------------------------------------
# RBAT — binary reduce-batch ingest op (serve wire)
# ----------------------------------------------------------------------


def encode_reduce_batch(
    request_id: int,
    seq: int,
    stream: str,
    op: str,
    x: np.ndarray,
    y: "np.ndarray | None" = None,
) -> bytes:
    """``RBAT`` frame: one binary-wire reduction ingest op.

    The reduce analogue of ``BBAT``: header (magic, int64 request id,
    int64 ``seq``, int64 op code from :data:`REDUCE_OP_CODES`, int64
    stream-name length, int64 x count, int64 y count) followed by the
    UTF-8 stream name and one (``squares``/``observations``) or two
    (``pairs``) embedded ``RAWB`` frames carrying the raw little-endian
    float64 *inputs*. Shipping inputs rather than expanded terms halves
    the wire volume of a dot and lets the durability path log the exact
    bytes received; the receiver's EFT expansion is deterministic.

    Raises:
        CodecError: unknown op, negative request id,
            ``seq < WAL_UNSEQUENCED``, empty stream name, or a
            missing/mismatched/superfluous second block.
    """
    code = REDUCE_OP_CODES.get(op)
    if code is None:
        raise CodecError(
            f"unknown reduce op {op!r}; expected one of {sorted(REDUCE_OP_CODES)}"
        )
    if request_id < 0:
        raise CodecError(f"batch frame requires request id >= 0, got {request_id}")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt batch frame: sequence {seq} < -1")
    if not stream:
        raise CodecError("batch frame requires a non-empty stream name")
    name = stream.encode("utf-8")
    x_block = encode_raw_block(x)
    nx = (len(x_block) - 4) // 8
    if op == "pairs":
        if y is None:
            raise CodecError("reduce op 'pairs' requires a second input block")
        y_block = encode_raw_block(y)
        ny = (len(y_block) - 4) // 8
        if ny != nx:
            raise CodecError(
                f"reduce op 'pairs' input length mismatch: {nx} vs {ny}"
            )
    else:
        if y is not None:
            raise CodecError(f"reduce op {op!r} takes a single input block")
        y_block = b""
        ny = 0
    header = _REDUCE_BATCH_HEADER.pack(
        MAGIC_REDUCE_BATCH, request_id, seq, code, len(name), nx, ny
    )
    return header + name + x_block + y_block


def decode_reduce_batch(
    payload: bytes,
) -> Tuple[int, int, str, str, np.ndarray, "np.ndarray | None"]:
    """Inverse of :func:`encode_reduce_batch`.

    Returns ``(request_id, seq, stream, op, x, y)``; ``y`` is ``None``
    for single-input ops. The arrays are read-only zero-copy views over
    the frame bytes — callers that outlive the buffer must copy.

    Raises:
        CodecError: truncation or trailing garbage, wrong magic (outer
            or embedded), corrupt lengths, or an unknown op code.
    """
    _check_header(payload, _REDUCE_BATCH_HEADER, "reduce batch frame")
    magic, request_id, seq, code, stream_len, nx, ny = (
        _REDUCE_BATCH_HEADER.unpack_from(payload, 0)
    )
    if magic != MAGIC_REDUCE_BATCH:
        raise CodecError("not a reduce batch frame payload")
    op = REDUCE_OP_NAMES.get(code)
    if op is None:
        raise CodecError(f"corrupt reduce batch frame: unknown op code {code}")
    if request_id < 0:
        raise CodecError(f"corrupt batch frame: request id {request_id} < 0")
    if seq < WAL_UNSEQUENCED:
        raise CodecError(f"corrupt batch frame: sequence {seq} < -1")
    if stream_len <= 0 or nx < 0 or ny < 0:
        raise CodecError(
            f"corrupt reduce batch frame: lengths ({stream_len}, {nx}, {ny})"
        )
    if op == "pairs":
        if ny != nx:
            raise CodecError(
                f"corrupt reduce batch frame: pair counts differ ({nx}, {ny})"
            )
        nblocks = 2
    else:
        if ny != 0:
            raise CodecError(
                f"corrupt reduce batch frame: op {op!r} carries one block, "
                f"header promises {ny} extra values"
            )
        nblocks = 1
    total = _REDUCE_BATCH_HEADER.size + stream_len + nblocks * 4 + 8 * (nx + ny)
    if len(payload) != total:
        raise CodecError(
            f"reduce batch frame length mismatch: expected {total} bytes "
            f"for {nx}+{ny} values, got {len(payload)}"
        )
    off = _REDUCE_BATCH_HEADER.size
    try:
        stream = payload[off : off + stream_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"corrupt batch frame: bad stream name: {exc}") from exc
    off += stream_len
    x = decode_raw_block(payload[off : off + 4 + 8 * nx])
    y = None
    if op == "pairs":
        y = decode_raw_block(payload[off + 4 + 8 * nx :])
    return int(request_id), int(seq), stream, op, x, y


def reduce_batch_wire_bodies(payload: bytes) -> Tuple[bytes, "bytes | None"]:
    """The embedded ``RAWB`` float64 body bytes of an ``RBAT`` frame.

    Returns ``(x_bytes, y_bytes)`` (``y_bytes`` is ``None`` for
    single-input ops) — exactly the slices :func:`encode_wal_reduce`
    logs verbatim on the binary durability path.
    """
    _check_header(payload, _REDUCE_BATCH_HEADER, "reduce batch frame")
    magic, _rid, _seq, code, stream_len, nx, _ny = (
        _REDUCE_BATCH_HEADER.unpack_from(payload, 0)
    )
    if magic != MAGIC_REDUCE_BATCH:
        raise CodecError("not a reduce batch frame payload")
    op = REDUCE_OP_NAMES.get(code)
    if op is None:
        raise CodecError(f"corrupt reduce batch frame: unknown op code {code}")
    off = _REDUCE_BATCH_HEADER.size + stream_len
    xb = payload[off + 4 : off + 4 + 8 * nx]
    if op != "pairs":
        return xb, None
    return xb, payload[off + 4 + 8 * nx + 4 :]


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------

_DECODERS: Dict[bytes, Tuple[str, Callable[[bytes], Any]]] = {
    MAGIC_SPARSE: ("sparse-superaccumulator", decode_sparse),
    MAGIC_DENSE: ("dense-superaccumulator", decode_dense),
    MAGIC_RUNNING: ("running-sum", decode_running),
    MAGIC_STREAM: ("kernel-stream", decode_stream),
    MAGIC_TRUNCATED: ("truncated-superaccumulator", decode_truncated),
    MAGIC_BINNED: ("binned-superaccumulator", decode_binned),
    MAGIC_CERT: ("adaptive-certificate", decode_cert),
    MAGIC_COMPOSITE: ("adaptive-composite", decode_composite),
    MAGIC_RAW_BLOCK: ("raw-block", decode_raw_block),
    MAGIC_FLOAT: ("naive-float", decode_float),
    MAGIC_DATASET: ("dataset-header", decode_dataset_header),
    MAGIC_WAL: ("wal-record", decode_wal_record),
    MAGIC_BATCH: ("binary-batch", decode_batch),
    MAGIC_REDUCE_BATCH: ("binary-reduce-batch", decode_reduce_batch),
    MAGIC_WAL_REDUCE: ("wal-reduce-record", decode_wal_reduce),
}


def registered_formats() -> Dict[bytes, str]:
    """``{magic: format name}`` for every registered frame format."""
    return {magic: name for magic, (name, _) in _DECODERS.items()}


def decode(payload: bytes) -> Any:
    """Decode any registered frame by its magic tag.

    Raises:
        CodecError: unknown magic or any format-level corruption.
    """
    magic = peek_magic(payload)
    entry = _DECODERS.get(magic)
    if entry is None:
        raise CodecError(f"unknown frame magic {magic!r}")
    return entry[1](payload)
