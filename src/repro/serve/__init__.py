"""repro.serve — the exact-aggregation serving plane.

A long-lived process that holds superaccumulator state and answers
concurrent requests: named streams sharded across single-writer
asyncio tasks, microbatched ingest with bounded-queue backpressure,
snapshot reads that round the exact state on demand, and a
length-prefixed JSON-lines TCP protocol. Built directly on the
library's exact primitives — updates commute and merges are exact, so
results are bit-reproducible regardless of request arrival order.

Quick start::

    from repro.serve import ReproService, ReproServer, ServeConfig

    async def main():
        async with ReproService(ServeConfig(shards=4)) as service:
            async with ReproServer(service, port=0) as server:
                client = await ReproServeClient.connect(port=server.port)
                await client.add_array("s", [1e16, 1.0, -1e16])
                assert await client.value("s") == 1.0
                await client.close()

Or from a shell: ``python -m repro serve --port 8765``.
"""

from repro.serve.client import InProcessClient, ReproServeClient
from repro.serve.metrics import LatencyReservoir, ServiceMetrics
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    decode_payload,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.serve.server import ReproServer
from repro.serve.service import ReproService, ServeConfig
from repro.serve.shards import AccumulatorShard

__all__ = [
    "AccumulatorShard",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "InProcessClient",
    "LatencyReservoir",
    "ReproServeClient",
    "ReproServer",
    "ReproService",
    "ServeConfig",
    "ServiceMetrics",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "write_frame",
]
