"""The exact-aggregation service: routing, endpoints, snapshots.

:class:`ReproService` is transport-agnostic — it maps request objects
(plain dicts, the decoded protocol frames) to response objects. The
TCP server and the in-process client both sit on :meth:`handle`, so
every test of service semantics runs without sockets.

**Routing.** Updates are scattered round-robin across shards; a
stream's state therefore lives as per-shard *partial* exact sums.
This is safe precisely because of the paper's representation: partial
superaccumulators merge exactly and commutatively, so reads recombine
the partials into a state bit-identical to any serial execution of
the same updates. Scatter routing turns even a single hot stream into
an N-way parallel ingest problem, which hash-affinity routing cannot.
Large arrays are additionally striped across all shards in
``scatter_chunk``-sized pieces.

**Snapshot reads.** ``value``/``mean``/``snapshot``/``drain`` fan a
sequence-point call out to every shard; each shard answers after the
folds enqueued before it (FIFO), so a read observes every add that was
*acknowledged* before the read was issued. Acks fire after the fold
lands, giving read-your-writes to any client that awaits its adds.

**Persistence.** Stream state round-trips through the configured
kernel's stream wire format (``ERSM`` for the default ``running``
kernel — the same bytes the MapReduce shuffle uses — ``KSTR``-framed
kernel partials otherwise) via the ``snapshot``/``restore``/``drain``
endpoints and :meth:`save_state`/:meth:`load_state`.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import (
    BackpressureError,
    EmptyStreamError,
    NonFiniteInputError,
    ProtocolError,
    ReductionRangeError,
    ReproError,
    ServiceError,
)
from repro.adaptive import AdaptiveFolder
from repro.kernels import get_kernel, kernel_names
# reprolint: disable-next-line=ARCH004 -- dataplane is the shared zero-copy layer, not a plane entry point
from repro.mapreduce.dataplane import BlockRef, resolve_block
from repro.serve.metrics import ServiceMetrics
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    WIRE_BINARY,
    decode_bytes_field,
    encode_bytes_field,
)
from repro.serve.shards import AccumulatorShard
from repro.stats import round_fraction, sqrt_round_fraction
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["ServeConfig", "ReproService"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one service instance."""

    shards: int = 4
    queue_depth: int = 256
    policy: str = "block"  # "block" | "reject"
    retry_after: float = 0.05
    max_frame: int = DEFAULT_MAX_FRAME
    scatter_chunk: int = 8192
    allow_shutdown: bool = True
    #: registry name of the kernel backing every stream; the service
    #: always uses the kernel's exact variant (stateful streams cannot
    #: un-fold a speculated value)
    kernel: str = "running"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.policy not in ("block", "reject"):
            raise ValueError(f"unknown backpressure policy {self.policy!r}")
        if self.scatter_chunk < 1:
            raise ValueError("scatter_chunk must be >= 1")
        if self.kernel not in kernel_names():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"expected one of {list(kernel_names())}"
            )


def _atomic_write_text(path: Path, payload: str) -> None:
    """Write-then-rename so a crash mid-save never truncates the file.

    ``os.replace`` is atomic on POSIX and Windows within one
    filesystem; readers see either the old complete snapshot or the
    new complete snapshot, never a torn one. The temp file lives next
    to the target (same directory, ``.tmp`` suffix) to stay on the
    same filesystem, and is fsync'd before the rename so the rename
    cannot land before the data.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _require_stream(request: Dict[str, Any]) -> str:
    stream = request.get("stream")
    if not isinstance(stream, str) or not stream:
        raise ServiceError("request needs a non-empty string 'stream' field")
    return stream


#: Suffix of the shadow stream holding a reduction stream's TwoSquare
#: terms; the NUL keeps it out of any client-reachable stream namespace
#: while letting snapshots/merges treat it as an ordinary stream.
SQUARE_SHADOW_SUFFIX = "\x00sq"


def square_shadow(stream: str) -> str:
    """Name of the squared-terms shadow stream of ``stream``."""
    return stream + SQUARE_SHADOW_SUFFIX


class ReproService:
    """Sharded exact-aggregation service (transport-agnostic core)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        radix: RadixConfig = DEFAULT_RADIX,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.radix = radix
        self.metrics = ServiceMetrics()
        # One kernel instance serves the whole service: shard writers
        # fold through it, reads recombine through it, and snapshots
        # use its wire format. exact_variant() pins stateful streams to
        # the exact fold path.
        self._kernel = get_kernel(
            self.config.kernel, radix=radix, counters=self.metrics.tiering
        ).exact_variant()
        self.shards: List[AccumulatorShard] = [
            AccumulatorShard(
                i,
                queue_depth=self.config.queue_depth,
                policy=self.config.policy,
                retry_after=self.config.retry_after,
                metrics=self.metrics,
                radix=radix,
                kernel=self._kernel,
            )
            for i in range(self.config.shards)
        ]
        # Stateless one-shot sums (`sum` op) run the full tier ladder;
        # tier decisions land in the shared metrics tally alongside the
        # shards' fold accounting.
        self._folder = AdaptiveFolder(radix=radix, counters=self.metrics.tiering)
        self._rr = 0
        self._started = False
        self._ops: Dict[str, Callable[[Dict[str, Any]], Awaitable[Dict[str, Any]]]] = {
            "ping": self._op_ping,
            "sum": self._op_sum,
            "add": self._op_add,
            "add_array": self._op_add_array,
            "add_block": self._op_add_block,
            "add_pairs": self._op_add_pairs,
            "add_squares": self._op_add_squares,
            "add_observations": self._op_add_observations,
            "value": self._op_value,
            "dot": self._op_dot,
            "norm2": self._op_norm2,
            "moments": self._op_moments,
            "mean": self._op_mean,
            "stats": self._op_stats,
            "streams": self._op_streams,
            "merge": self._op_merge,
            "snapshot": self._op_snapshot,
            "restore": self._op_restore,
            "drain": self._op_drain,
            "flush": self._op_flush,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        for shard in self.shards:
            shard.start()
        self._started = True

    async def close(self) -> None:
        for shard in self.shards:
            await shard.stop()
        self._started = False

    async def __aenter__(self) -> "ReproService":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Map one request object to one response object (never raises)."""
        t0 = time.perf_counter()
        op = request.get("op") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise ProtocolError("request must be a JSON object")
            if not isinstance(op, str):
                raise ServiceError("request needs a string 'op' field")
            handler = self._ops.get(op)
            if handler is None:
                err = ServiceError(f"unknown op {op!r}")
                err.code = "unknown-op"
                raise err
            response = await handler(request)
            response.setdefault("ok", True)
        except BackpressureError as exc:
            response = {
                "ok": False,
                "code": exc.code,
                "error": str(exc),
                "retry_after": exc.retry_after,
            }
        except (ReproError, ValueError, TypeError) as exc:
            response = {"ok": False, "code": _error_code(exc), "error": str(exc)}
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        self.metrics.record_request(
            op if isinstance(op, str) else "?",
            time.perf_counter() - t0,
            ok=bool(response.get("ok")),
        )
        return response

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _next_shard(self) -> AccumulatorShard:
        shard = self.shards[self._rr % len(self.shards)]
        self._rr += 1
        return shard

    async def _scatter(self, stream: str, arr: np.ndarray) -> int:
        """Route a validated array across shards; returns values folded."""
        nshards = len(self.shards)
        chunk = self.config.scatter_chunk
        if nshards == 1 or arr.size <= chunk:
            return await self._next_shard().fold(stream, arr)
        pieces = np.array_split(arr, min(nshards, max(1, arr.size // chunk)))
        folds = [self._next_shard().fold(stream, piece) for piece in pieces]
        return sum(await asyncio.gather(*folds))

    async def _gather_partials(self, stream: str) -> List[Any]:
        """Sequence-point read of every shard's partial for ``stream``."""
        def read(streams: Dict[str, Any]) -> Optional[Any]:
            rs = streams.get(stream)
            if rs is None:
                return None
            out = self._kernel.new_stream()
            out.merge(rs)  # deep-ish copy: merge duplicates the exact state
            return out

        partials = await asyncio.gather(*(s.call(read) for s in self.shards))
        return [p for p in partials if p is not None]

    async def _merged_state(self, stream: str) -> Any:
        merged = self._kernel.new_stream()
        for partial in await self._gather_partials(stream):
            merged.merge(partial)
        return merged

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "shards": len(self.shards)}

    def _validated_array(self, values: Any) -> np.ndarray:
        try:
            arr = ensure_float64_array(values)
        except (ValueError, TypeError) as exc:
            raise ServiceError(f"'values' is not a float array: {exc}") from exc
        check_finite_array(arr)
        return arr

    async def _op_sum(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Stateless one-shot exact sum through the adaptive tier ladder.

        No stream is touched: the request's values are summed with
        :meth:`AdaptiveFolder.sum` and the correctly rounded result is
        returned along with the tier that proved it. This is the
        request-scoped fast path — well-conditioned payloads are served
        by the Tier-0 certificate at a fraction of a fold's cost.
        """
        if "values" not in request:
            raise ServiceError("sum needs a 'values' field")
        mode = request.get("mode", "nearest")
        if mode not in ("nearest", "down", "up", "zero"):
            raise ValueError(f"unknown rounding mode {mode!r}")
        arr = self._validated_array(request["values"])
        result = self._folder.sum(arr, mode=mode)
        return {
            "value": result.value,
            "hex": result.value.hex(),
            "count": result.n,
            "tier": result.tier,
            "escalations": result.escalations,
            "margin_bits": (
                result.margin_bits if math.isfinite(result.margin_bits) else None
            ),
        }

    async def _op_add(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        value = request.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceError("'value' must be a number")
        arr = self._validated_array([float(value)])
        added = await self._next_shard().fold(stream, arr)
        return {"added": added}

    async def _op_add_array(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Bulk ingest; the one op the binary wire accelerates.

        JSON requests carry ``values`` as a list and pay per-value
        boxing in :meth:`_validated_array`. Binary-wire requests
        (``wire == "binary"``, set only by the protocol layer's ``BBAT``
        parser, which already enforced dtype and finiteness) arrive as a
        read-only zero-copy float64 view and skip the re-scan — the
        array flows from socket bytes to the shard fold without ever
        becoming Python objects.
        """
        stream = _require_stream(request)
        if "values" not in request:
            raise ServiceError("add_array needs a 'values' field")
        values = request.get("values")
        if request.get("wire") == WIRE_BINARY and isinstance(values, np.ndarray):
            arr = ensure_float64_array(values)
        else:
            arr = self._validated_array(values)
        if arr.size == 0:
            return {"added": 0}
        added = await self._scatter(stream, arr)
        return {"added": added}

    async def _op_add_block(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Zero-copy bulk ingest from a data-plane block descriptor.

        The caller must keep the shared segment / file alive until the
        response arrives — the fold reads through the view directly.
        """
        stream = _require_stream(request)
        spec = request.get("block")
        if not isinstance(spec, dict):
            raise ServiceError("add_block needs a 'block' descriptor object")
        try:
            ref = BlockRef(
                kind=str(spec["kind"]),
                segment=str(spec["segment"]),
                offset=int(spec.get("offset", 0)),
                length=int(spec["length"]),
                dtype=str(spec.get("dtype", "<f8")),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(f"malformed block descriptor: {exc}") from exc
        try:
            view = resolve_block(ref)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot resolve block {ref.describe()}: {exc}") from exc
        arr = ensure_float64_array(view)
        check_finite_array(arr)
        added = await self._scatter(stream, arr)
        return {"added": added, "block": ref.describe()}

    # -- reduction ingest: EFT expansion happens server-side -----------

    def _reduce_array(self, request: Dict[str, Any], key: str, op: str) -> np.ndarray:
        """Pull one float64 array field of a reduction ingest request.

        Binary-wire requests (``RBAT`` frames) arrive as read-only
        zero-copy views the protocol layer already validated; JSON
        requests pay the per-value boxing scan, like ``add_array``.
        """
        if key not in request:
            raise ServiceError(f"{op} needs a '{key}' field")
        values = request.get(key)
        if request.get("wire") == WIRE_BINARY and isinstance(values, np.ndarray):
            return ensure_float64_array(values)
        return self._validated_array(values)

    @staticmethod
    def _reduce_op_for(op_kind: str):
        """The :class:`~repro.reduce.ops.ReduceOp` behind one ingest kind."""
        from repro.reduce.ops import get_op

        name = {"pairs": "dot", "squares": "norm2", "observations": "var"}.get(
            op_kind
        )
        if name is None:
            raise ServiceError(f"unknown reduction kind {op_kind!r}")
        return get_op(name)

    async def _apply_reduce(
        self,
        stream: str,
        op_kind: str,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
    ) -> int:
        """Domain-check, EFT-expand, and scatter one reduction batch.

        The expansion is elementwise and deterministic, so chunked
        ingest produces exactly the term multiset a serial expansion of
        the whole array would — which is what makes reduction reads
        bit-identical to the serial references, and what lets the
        cluster WAL log pre-expansion inputs and re-expand on replay.
        """
        op = self._reduce_op_for(op_kind)
        op.check_domain(x, y)
        if op_kind == "observations":
            raw, sq_terms = op.expand(x)
            await self._scatter(stream, raw)
            await self._scatter(square_shadow(stream), sq_terms)
        else:
            await self._scatter(stream, op.expand(x, y)[0])
        return int(x.size)

    async def _ingest_reduce(
        self,
        stream: str,
        op_kind: str,
        x: np.ndarray,
        y: Optional[np.ndarray],
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Apply one validated reduction batch.

        Overridable seam: the WAL-backed cluster node intercepts here
        to add seq dedup and durable logging of the raw inputs before
        the expansion is applied.
        """
        if x.size == 0:
            return {"added": 0}
        added = await self._apply_reduce(stream, op_kind, x, y)
        return {"added": added}

    async def _op_add_pairs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dot-product ingest: TwoProduct-expand (x, y), scatter the terms."""
        stream = _require_stream(request)
        x = self._reduce_array(request, "values", "add_pairs")
        y = self._reduce_array(request, "values2", "add_pairs")
        if x.shape != y.shape:
            raise ServiceError(
                "add_pairs needs equal-length 'values' and 'values2'"
            )
        return await self._ingest_reduce(stream, "pairs", x, y, request)

    async def _op_add_squares(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Norm ingest: TwoSquare-expand the values, scatter the terms."""
        stream = _require_stream(request)
        x = self._reduce_array(request, "values", "add_squares")
        return await self._ingest_reduce(stream, "squares", x, None, request)

    async def _op_add_observations(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Moments ingest: raw values into the stream, TwoSquare terms
        into its NUL-suffixed shadow stream (:func:`square_shadow`), so
        ``moments`` can read both exact sums the variance finish needs.
        """
        stream = _require_stream(request)
        x = self._reduce_array(request, "values", "add_observations")
        return await self._ingest_reduce(stream, "observations", x, None, request)

    # -- reduction reads ------------------------------------------------

    async def _op_dot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Correctly rounded dot product of an ``add_pairs`` stream.

        The TwoProduct terms already sum to the exact inner product, so
        this is precisely the ``value`` read — a named endpoint keeps
        the op surface symmetric with ``norm2``/``moments``.
        """
        return await self._op_value(request)

    async def _op_norm2(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Correctly rounded Euclidean norm of an ``add_squares`` stream.

        Reads the *exact* sum-of-squares fraction off the merged state
        and rounds its square root once (nearest only); the norm of an
        empty stream is 0.0, never an error.
        """
        stream = _require_stream(request)
        merged = await self._merged_state(stream)
        if merged.count == 0:
            value = 0.0
        else:
            value = sqrt_round_fraction(merged.exact_fraction())
        return {"value": value, "count": merged.count, "hex": value.hex()}

    async def _op_moments(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Exact mean and variance of an ``add_observations`` stream.

        Both finishes run in exact rational arithmetic — ``sum(x)/n``
        and ``(sum(x^2) - sum(x)^2/n) / (n - ddof)`` — then round once,
        matching the serial ``var``/``mean`` ops bit for bit.
        """
        stream = _require_stream(request)
        mode = request.get("mode", "nearest")
        if mode not in ("nearest", "down", "up", "zero"):
            raise ValueError(f"unknown rounding mode {mode!r}")
        ddof = request.get("ddof", 0)
        if isinstance(ddof, bool) or not isinstance(ddof, int) or ddof < 0:
            raise ServiceError("'ddof' must be a non-negative integer")
        merged = await self._merged_state(stream)
        n = merged.count
        if n == 0:
            raise EmptyStreamError(f"moments of empty stream {stream!r}")
        if n - ddof <= 0:
            raise EmptyStreamError("need more observations than ddof")
        shadow = await self._merged_state(square_shadow(stream))
        if shadow.count != 2 * n:
            raise ServiceError(
                f"stream {stream!r} was not fed through add_observations: "
                f"square shadow holds {shadow.count} terms, expected {2 * n}"
            )
        s = merged.exact_fraction()
        ss = shadow.exact_fraction()
        mean = round_fraction(s / n, mode)
        variance = round_fraction((ss - s * s / n) / (n - ddof), mode)
        return {
            "mean": mean,
            "variance": variance,
            "count": n,
            "ddof": ddof,
            "hex": mean.hex(),
        }

    async def _op_value(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        mode = request.get("mode", "nearest")
        if mode not in ("nearest", "down", "up", "zero"):
            # validate eagerly: rounding is skipped for empty streams,
            # which must not let a bad mode slip through silently
            raise ValueError(f"unknown rounding mode {mode!r}")
        merged = await self._merged_state(stream)
        value = merged.value(mode)
        return {"value": value, "count": merged.count, "hex": value.hex()}

    async def _op_mean(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        merged = await self._merged_state(stream)
        if merged.count == 0:
            raise EmptyStreamError(f"mean of empty stream {stream!r}")
        mean = round_fraction(merged.exact_fraction() / merged.count)
        return {"mean": mean, "count": merged.count, "hex": mean.hex()}

    async def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        snap = self.metrics.snapshot()
        snap["shards"] = len(self.shards)
        snap["policy"] = self.config.policy
        snap["queue_depths"] = [s.queue_depth for s in self.shards]
        return {"stats": snap}

    async def _op_streams(self, request: Dict[str, Any]) -> Dict[str, Any]:
        def counts(streams: Dict[str, Any]) -> Dict[str, int]:
            return {name: rs.count for name, rs in streams.items()}

        totals: Dict[str, int] = {}
        for shard_counts in await asyncio.gather(
            *(s.call(counts) for s in self.shards)
        ):
            for name, count in shard_counts.items():
                totals[name] = totals.get(name, 0) + count
        return {"streams": dict(sorted(totals.items()))}

    async def _op_merge(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Fold stream ``src`` into stream ``dst`` and delete ``src``.

        Runs shard-locally: each shard merges its own ``src`` partial
        into its own ``dst`` partial. Exactness of partial merges makes
        this equivalent to any global ordering.
        """
        src = request.get("src")
        dst = request.get("dst")
        if not isinstance(src, str) or not isinstance(dst, str) or not src or not dst:
            raise ServiceError("merge needs non-empty 'src' and 'dst' stream names")
        if src == dst:
            raise ServiceError("merge src and dst must differ")

        def merge_local(streams: Dict[str, Any]) -> int:
            partial = streams.pop(src, None)
            if partial is None:
                return 0
            rs = streams.get(dst)
            if rs is None:
                rs = streams[dst] = self._kernel.new_stream()
            rs.merge(partial)
            return partial.count

        moved = sum(
            await asyncio.gather(*(s.call(merge_local) for s in self.shards))
        )
        return {"merged": moved, "src": src, "dst": dst}

    async def _op_snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        merged = await self._merged_state(stream)
        return {
            "snapshot": encode_bytes_field(merged.to_bytes()),
            "count": merged.count,
        }

    async def _op_restore(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        payload = decode_bytes_field(request.get("snapshot"))
        try:
            restored = self._kernel.stream_from_bytes(payload)
        except ValueError as exc:
            raise ServiceError(f"corrupt snapshot: {exc}") from exc

        def absorb(streams: Dict[str, Any]) -> int:
            rs = streams.get(stream)
            if rs is None:
                rs = streams[stream] = self._kernel.new_stream()
            rs.merge(restored)
            return rs.count

        await self._next_shard().call(absorb)
        return {"restored": restored.count}

    async def _op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Atomically read out and remove a stream (exact hand-off)."""
        stream = _require_stream(request)

        def pop(streams: Dict[str, Any]) -> Optional[Any]:
            return streams.pop(stream, None)

        merged = self._kernel.new_stream()
        for partial in await asyncio.gather(*(s.call(pop) for s in self.shards)):
            if partial is not None:
                merged.merge(partial)
        value = merged.value()
        return {
            "value": value,
            "count": merged.count,
            "hex": value.hex(),
            "snapshot": encode_bytes_field(merged.to_bytes()),
        }

    async def _op_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Barrier: resolves after every previously enqueued fold."""
        await asyncio.gather(*(s.call(lambda streams: None) for s in self.shards))
        return {"flushed": True}

    # ------------------------------------------------------------------
    # whole-service persistence (CLI --state-path)
    # ------------------------------------------------------------------

    async def save_state(self, path: Union[str, Path]) -> int:
        """Snapshot every stream to one JSON file; returns stream count."""
        listing = await self._op_streams({})
        states: Dict[str, str] = {}
        for name in listing["streams"]:
            snap = await self._op_snapshot({"stream": name})
            states[name] = snap["snapshot"]
        payload = json.dumps({"format": "repro-serve-state-v1", "streams": states})
        await asyncio.to_thread(_atomic_write_text, Path(path), payload)
        return len(states)

    async def load_state(self, path: Union[str, Path]) -> int:
        """Restore a :meth:`save_state` file; returns stream count."""
        doc = json.loads(await asyncio.to_thread(Path(path).read_text))
        if doc.get("format") != "repro-serve-state-v1":
            raise ServiceError(f"unrecognized state file format in {path}")
        streams = doc.get("streams", {})
        for name, b64 in streams.items():
            await self._op_restore({"stream": name, "snapshot": b64})
        return len(streams)


def _error_code(exc: Exception) -> str:
    if isinstance(exc, ServiceError):
        return exc.code
    if isinstance(exc, NonFiniteInputError):
        return "non-finite"
    if isinstance(exc, EmptyStreamError):
        return "empty-stream"
    if isinstance(exc, ReductionRangeError):
        return "reduction-range"
    return "bad-request"
