"""Asyncio TCP front-end for :class:`~repro.serve.service.ReproService`.

One connection may *pipeline* frames: the server reads continuously,
dispatches each request as its own task (bounded by a per-connection
in-flight cap), and writes responses as they complete, tagged with the
request's ``id`` for client-side matching. Out-of-order completion is
harmless for ingest — superaccumulator updates commute — and any
client that awaits its adds before reading still gets read-your-writes
through the service's FIFO shard queues.

Error containment per the protocol module's contract: invalid JSON in
a well-delimited frame gets an error *response* and the connection
lives on; an unrecoverable framing violation (oversized or truncated
length) gets a best-effort error frame and the connection is closed.
A connection dying never takes the server down.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional, Set

from repro.errors import ProtocolError
from repro.serve.protocol import read_frame, write_frame
from repro.serve.service import ReproService

__all__ = ["ReproServer"]


class ReproServer:
    """TCP server wrapping one service instance."""

    def __init__(
        self,
        service: ReproService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 1024,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start
        self.max_inflight = int(max_inflight)
        self._server: Optional[asyncio.AbstractServer] = None
        # Created lazily inside the running loop (3.9 binds the loop at
        # Event construction time, and servers are built before run()).
        self._stop: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    def _stop_event(self) -> asyncio.Event:
        if self._stop is None:
            self._stop = asyncio.Event()
        return self._stop

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (service must already be started)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or the ``shutdown`` op)."""
        if self._server is None:
            await self.start()
        await self._stop_event().wait()
        await self.close()

    def request_stop(self) -> None:
        self._stop_event().set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._stop_event().set()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        inflight = asyncio.Semaphore(self.max_inflight)
        pending: Set["asyncio.Task[None]"] = set()
        max_frame = self.service.config.max_frame
        try:
            while True:
                try:
                    request = await read_frame(reader, max_frame=max_frame)
                except ProtocolError as exc:
                    err = {
                        "ok": False,
                        "code": "protocol",
                        "error": str(exc),
                        "fatal": getattr(exc, "fatal", True),
                    }
                    with contextlib.suppress(ConnectionError, ProtocolError):
                        async with write_lock:
                            await write_frame(writer, err, max_frame=max_frame)
                    if getattr(exc, "fatal", True):
                        break
                    continue
                if request is None:  # clean EOF
                    break
                if request.get("op") == "shutdown":
                    await self._handle_shutdown(request, writer, write_lock, max_frame)
                    break
                await inflight.acquire()
                sub = asyncio.get_running_loop().create_task(
                    self._dispatch(request, writer, write_lock, inflight, max_frame)
                )
                pending.add(sub)
                sub.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        inflight: asyncio.Semaphore,
        max_frame: int,
    ) -> None:
        try:
            response = await self.service.handle(request)
            try:
                async with write_lock:
                    await write_frame(writer, response, max_frame=max_frame)
            except (ConnectionError, ProtocolError):
                pass  # client gone or response unencodable; nothing to do
        finally:
            inflight.release()

    async def _handle_shutdown(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        max_frame: int,
    ) -> None:
        allowed = self.service.config.allow_shutdown
        response: Dict[str, Any] = (
            {"ok": True, "stopping": True}
            if allowed
            else {"ok": False, "code": "forbidden", "error": "shutdown op disabled"}
        )
        if "id" in request:
            response["id"] = request["id"]
        with contextlib.suppress(ConnectionError):
            async with write_lock:
                await write_frame(writer, response, max_frame=max_frame)
        if allowed:
            self.request_stop()
