"""Asyncio TCP front-end for :class:`~repro.serve.service.ReproService`.

One connection may *pipeline* frames: the server reads continuously,
dispatches each request as its own task (bounded by a per-connection
in-flight cap), and writes responses as they complete, tagged with the
request's ``id`` for client-side matching. Out-of-order completion is
harmless for ingest — superaccumulator updates commute — and any
client that awaits its adds before reading still gets read-your-writes
through the service's FIFO shard queues.

Every connection starts on the JSON-lines wire. A ``hello`` op
(handled inline, like ``shutdown``, because it mutates per-connection
state) negotiates the protocol version and may upgrade the connection
to the binary wire, after which ingest payloads may be codec ``BBAT``
frames decoded as zero-copy float64 views. Responses stay JSON either
way, and a binary connection may still interleave JSON requests — the
payload's first byte discriminates per frame.

Error containment per the protocol module's contract: invalid JSON or
a corrupt batch frame in a well-delimited frame gets an error
*response* and the connection lives on; an unrecoverable framing
violation (oversized or truncated length) gets a best-effort error
frame and the connection is closed. A connection dying never takes
the server down.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional, Set

import numpy as np

from repro.errors import ProtocolError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_WIRES,
    WIRE_BINARY,
    WIRE_JSON,
    parse_payload,
    read_frame_bytes,
    write_frame,
)
from repro.serve.service import ReproService

__all__ = ["ReproServer"]

#: Ops whose request frames carry stream values (ingest observability).
_VALUE_BEARING_OPS = frozenset({"add", "add_array"})


def _frame_value_count(request: Dict[str, Any]) -> int:
    """Float64 count a value-bearing request frame carried (best effort)."""
    if request.get("op") == "add":
        return 1
    values = request.get("values")
    if isinstance(values, np.ndarray):
        return int(values.size)
    if isinstance(values, (list, tuple)):
        return len(values)
    return 0


class ReproServer:
    """TCP server wrapping one service instance."""

    def __init__(
        self,
        service: ReproService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 1024,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start
        self.max_inflight = int(max_inflight)
        self._server: Optional[asyncio.AbstractServer] = None
        # Created lazily inside the running loop (3.9 binds the loop at
        # Event construction time, and servers are built before run()).
        self._stop: Optional[asyncio.Event] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()

    def _stop_event(self) -> asyncio.Event:
        if self._stop is None:
            self._stop = asyncio.Event()
        return self._stop

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (service must already be started)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or the ``shutdown`` op)."""
        if self._server is None:
            await self.start()
        await self._stop_event().wait()
        await self.close()

    def request_stop(self) -> None:
        self._stop_event().set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._stop_event().set()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        inflight = asyncio.Semaphore(self.max_inflight)
        pending: Set["asyncio.Task[None]"] = set()
        max_frame = self.service.config.max_frame
        wire = WIRE_JSON  # per-connection mode; `hello` may upgrade it
        try:
            while True:
                try:
                    payload = await read_frame_bytes(reader, max_frame=max_frame)
                    if payload is None:  # clean EOF
                        break
                    request = parse_payload(payload, binary=wire == WIRE_BINARY)
                except ProtocolError as exc:
                    err = {
                        "ok": False,
                        "code": exc.code,
                        "error": str(exc),
                        "fatal": getattr(exc, "fatal", True),
                    }
                    # Payload errors found after the frame decoded far
                    # enough to yield a request id (e.g. non-finite
                    # values in a valid BBAT frame) are matchable.
                    rid = getattr(exc, "request_id", None)
                    if rid is not None:
                        err["id"] = rid
                    with contextlib.suppress(ConnectionError, ProtocolError):
                        async with write_lock:
                            await write_frame(writer, err, max_frame=max_frame)
                    if getattr(exc, "fatal", True):
                        break
                    continue
                op = request.get("op")
                if op == "hello":
                    wire = await self._handle_hello(
                        request, writer, write_lock, max_frame, wire
                    )
                    continue
                if op == "shutdown":
                    await self._handle_shutdown(request, writer, write_lock, max_frame)
                    break
                if op in _VALUE_BEARING_OPS:
                    self.service.metrics.record_wire_frame(
                        WIRE_BINARY if request.get("wire") == WIRE_BINARY else WIRE_JSON,
                        len(payload),
                        _frame_value_count(request),
                    )
                await inflight.acquire()
                sub = asyncio.get_running_loop().create_task(
                    self._dispatch(request, writer, write_lock, inflight, max_frame)
                )
                pending.add(sub)
                sub.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        inflight: asyncio.Semaphore,
        max_frame: int,
    ) -> None:
        try:
            response = await self.service.handle(request)
            try:
                async with write_lock:
                    await write_frame(writer, response, max_frame=max_frame)
            except (ConnectionError, ProtocolError):
                pass  # client gone or response unencodable; nothing to do
        finally:
            inflight.release()

    async def _handle_hello(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        max_frame: int,
        wire: str,
    ) -> str:
        """Negotiate protocol version / wire mode; returns the new mode.

        Handled inline (not dispatched) because the wire mode is
        per-connection read-loop state. A rejected hello answers with
        the ``protocol-version`` error code and leaves the connection
        in its current mode — the client downgrades, nothing breaks.
        """
        version = request.get("version", 1)
        want = request.get("wire", WIRE_JSON)
        ok = (
            isinstance(version, int)
            and not isinstance(version, bool)
            and 1 <= version <= PROTOCOL_VERSION
            and want in SUPPORTED_WIRES
            and not (want == WIRE_BINARY and version < 2)
        )
        if ok:
            wire = str(want)
            response: Dict[str, Any] = {
                "ok": True,
                "version": PROTOCOL_VERSION,
                "wire": wire,
            }
        else:
            response = {
                "ok": False,
                "code": "protocol-version",
                "error": (
                    f"unsupported hello: version={version!r} wire={want!r} "
                    f"(this server speaks versions 1-{PROTOCOL_VERSION}, "
                    f"wires {list(SUPPORTED_WIRES)}; binary needs version >= 2)"
                ),
                "version": PROTOCOL_VERSION,
                "wires": list(SUPPORTED_WIRES),
            }
        if "id" in request:
            response["id"] = request["id"]
        with contextlib.suppress(ConnectionError):
            async with write_lock:
                await write_frame(writer, response, max_frame=max_frame)
        return wire

    async def _handle_shutdown(
        self,
        request: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        max_frame: int,
    ) -> None:
        allowed = self.service.config.allow_shutdown
        response: Dict[str, Any] = (
            {"ok": True, "stopping": True}
            if allowed
            else {"ok": False, "code": "forbidden", "error": "shutdown op disabled"}
        )
        if "id" in request:
            response["id"] = request["id"]
        with contextlib.suppress(ConnectionError):
            async with write_lock:
                await write_frame(writer, response, max_frame=max_frame)
        if allowed:
            self.request_stop()
