"""Service metrics: request counters, batch shapes, queue depth, latency.

Everything here is plain in-process bookkeeping updated from the
event loop (no locks needed: asyncio callbacks don't preempt each
other). ``snapshot()`` renders one JSON-safe dict served verbatim by
the ``stats`` endpoint.

Latency quantiles come from a fixed-size ring reservoir over the most
recent requests — O(1) memory, O(k log k) only at snapshot time —
which is the right trade for a stats endpoint hit far less often than
the hot path it observes.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, List

from repro.adaptive import TierCounters

__all__ = ["LatencyReservoir", "ServiceMetrics"]


class LatencyReservoir:
    """Ring buffer of the last ``size`` request latencies (seconds)."""

    def __init__(self, size: int = 4096) -> None:
        if size < 1:
            raise ValueError("reservoir size must be >= 1")
        self._slots: List[float] = [0.0] * size
        self._size = size
        self._count = 0

    def record(self, seconds: float) -> None:
        self._slots[self._count % self._size] = float(seconds)
        self._count += 1

    def __len__(self) -> int:
        return min(self._count, self._size)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained window (0.0 if empty)."""
        n = len(self)
        if n == 0:
            return 0.0
        ordered = sorted(self._slots[:n])
        rank = min(n - 1, max(0, int(round(p / 100.0 * (n - 1)))))
        return ordered[rank]


class ServiceMetrics:
    """Counters and gauges for one service instance."""

    def __init__(self, *, reservoir_size: int = 4096) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.errors_total = 0
        self.requests_by_op: Counter = Counter()
        self.values_ingested = 0
        self.batches_folded = 0
        self.batched_values = 0
        self.max_batch = 0
        self.queue_rejections = 0
        self.queue_depth_peak = 0
        #: Ingest wire observability: per-mode frame / byte / value
        #: tallies for the value-bearing ops that arrived on each wire.
        self.wire_frames: Counter = Counter()
        self.wire_bytes: Counter = Counter()
        self.wire_values: Counter = Counter()
        self.latency = LatencyReservoir(reservoir_size)
        #: Adaptive-engine tier decisions (tier0 hits, escalations,
        #: certificate margins). The service's AdaptiveFolder and every
        #: shard's fold path write into this shared tally.
        self.tiering = TierCounters()

    # -- recording hooks -------------------------------------------------

    def record_request(self, op: str, seconds: float, *, ok: bool) -> None:
        self.requests_total += 1
        self.requests_by_op[op] += 1
        if not ok:
            self.errors_total += 1
        self.latency.record(seconds)

    def record_fold(self, batch_values: int, coalesced_ops: int) -> None:
        """One shard fold: ``batch_values`` floats from ``coalesced_ops`` ops."""
        self.batches_folded += 1
        self.batched_values += batch_values
        self.values_ingested += batch_values
        self.max_batch = max(self.max_batch, coalesced_ops)

    def record_wire_frame(self, mode: str, payload_bytes: int, values: int) -> None:
        """One value-bearing ingest frame arrived on wire ``mode``.

        ``payload_bytes`` is the frame payload size as read off the
        socket (JSON text or binary batch alike), ``values`` the float64
        count it carried — together they yield bytes/sec, frames/sec and
        mean values-per-frame per wire in :meth:`snapshot`.
        """
        self.wire_frames[mode] += 1
        self.wire_bytes[mode] += payload_bytes
        self.wire_values[mode] += values

    def record_queue_depth(self, depth: int) -> None:
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def record_rejection(self) -> None:
        self.queue_rejections += 1

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view for the ``stats`` endpoint."""
        folds = self.batches_folded
        uptime = time.monotonic() - self.started
        wire: Dict[str, Dict[str, float]] = {}
        for mode in sorted(self.wire_frames):
            frames = self.wire_frames[mode]
            wire[mode] = {
                "frames": frames,
                "payload_bytes": self.wire_bytes[mode],
                "values": self.wire_values[mode],
                "frames_per_s": frames / uptime if uptime > 0 else 0.0,
                "payload_bytes_per_s": (
                    self.wire_bytes[mode] / uptime if uptime > 0 else 0.0
                ),
                "mean_values_per_frame": (
                    self.wire_values[mode] / frames if frames else 0.0
                ),
            }
        return {
            "uptime_s": uptime,
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "requests_by_op": dict(self.requests_by_op),
            "values_ingested": self.values_ingested,
            "batches_folded": folds,
            "mean_batch_values": (self.batched_values / folds) if folds else 0.0,
            "max_coalesced_ops": self.max_batch,
            "queue_rejections": self.queue_rejections,
            "queue_depth_peak": self.queue_depth_peak,
            "wire": wire,
            "latency_p50_ms": self.latency.percentile(50) * 1e3,
            "latency_p99_ms": self.latency.percentile(99) * 1e3,
            "tiering": self.tiering.as_dict(),
        }
