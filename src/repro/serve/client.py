"""Clients for the exact-aggregation service.

:class:`ReproServeClient` speaks the TCP protocol with pipelining: a
background reader task matches responses to requests by ``id``, so
many requests may be in flight on one connection — that concurrency is
what feeds the server's microbatcher. :class:`InProcessClient` has the
identical surface but calls :meth:`ReproService.handle` directly,
still round-tripping every message through the wire codec so tests
exercise the real encoding without sockets.

Both clients can negotiate the **binary wire** (``wire="binary"``):
after a successful ``hello`` the :meth:`~_ClientBase.add_batch` bulk
path ships numpy arrays as single codec ``BBAT`` frames — raw
little-endian float64 bytes, no per-value boxing, no JSON text. If the
server rejects the hello (old build, unknown wire) the client raises
nothing and **falls back to JSON-lines automatically**; the typed
:class:`ProtocolVersionError` is surfaced by :meth:`hello` for callers
that negotiate explicitly. Either wire produces bit-identical sums —
the negotiation is purely about speed.

Error responses are raised as the exception they encode:
``busy`` -> :class:`BackpressureError` (with ``retry_after``),
``empty-stream`` -> :class:`EmptyStreamError`, ``protocol`` ->
:class:`ProtocolError`, ``protocol-version`` ->
:class:`ProtocolVersionError`, anything else ->
:class:`ServiceError` with ``.code`` set.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from typing import Any, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    BackpressureError,
    EmptyStreamError,
    ProtocolError,
    ProtocolVersionError,
    ReductionRangeError,
    ServiceError,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    WIRE_BINARY,
    WIRE_JSON,
    decode_bytes_field,
    decode_payload,
    encode_batch_frame,
    encode_bytes_field,
    encode_frame,
    encode_reduce_batch_frame,
    parse_payload,
    read_frame,
    write_frame,
)
from repro.util.validation import ensure_float64_array

__all__ = ["ReproServeClient", "InProcessClient", "raise_for_response"]


def raise_for_response(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return an ok response; raise the typed error of a failed one."""
    if response.get("ok"):
        return response
    code = response.get("code", "service")
    message = response.get("error", "service error")
    if code == "busy":
        raise BackpressureError(message, retry_after=response.get("retry_after", 0.05))
    if code == "empty-stream":
        raise EmptyStreamError(message)
    if code == "reduction-range":
        raise ReductionRangeError(message)
    if code == "protocol-version":
        raise ProtocolVersionError(message)
    if code == "protocol":
        raise ProtocolError(message)
    err = ServiceError(message)
    err.code = code
    raise err


class _ClientBase:
    """Shared endpoint helpers over an abstract request transport."""

    #: Wire mode this client is currently using; transports that can
    #: negotiate override it after a successful ``hello``.
    wire: str = WIRE_JSON

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        raise NotImplementedError

    # -- ingest ----------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def add(self, stream: str, value: float) -> int:
        resp = await self.request("add", stream=stream, value=float(value))
        return int(resp["added"])

    async def add_array(self, stream: str, values: Iterable[float]) -> int:
        resp = await self.request(
            "add_array",
            stream=stream,
            # reprolint: disable-next-line=ARCH005 -- the JSON add_array op wrapper; batch ingest goes through request_batch
            values=[float(v) for v in values],
        )
        return int(resp["added"])

    async def add_block(self, stream: str, block: Dict[str, Any]) -> int:
        resp = await self.request("add_block", stream=stream, block=block)
        return int(resp["added"])

    async def request_batch(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Bulk ingest of a float64 array; returns the full response.

        On a binary-negotiated connection the array ships as one codec
        ``BBAT`` frame (raw float64 bytes, zero boxing). On JSON-lines
        transports this base implementation degrades to ``add_array`` —
        same semantics, same bits, slower wire. ``seq`` is the cluster
        plane's per-stream dedup sequence; single-node services ignore
        it. Cluster callers read the ``duplicate`` flag off the
        response; most callers want :meth:`add_batch` instead.
        """
        arr = ensure_float64_array(values)
        fields: Dict[str, Any] = {
            "stream": stream,
            # reprolint: disable-next-line=ARCH005 -- JSON-lines fallback wire: boxing is the format
            "values": [float(v) for v in arr],
        }
        if seq is not None:
            fields["seq"] = int(seq)
        return await self.request("add_array", **fields)

    async def add_batch(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> int:
        """Bulk ingest of a float64 array; returns the count folded."""
        resp = await self.request_batch(stream, values, seq=seq)
        return int(resp["added"])

    # -- reduction ingest ------------------------------------------------

    #: reduction op kind (codec naming) -> the service op it invokes
    _REDUCE_OPS = {
        "pairs": "add_pairs",
        "squares": "add_squares",
        "observations": "add_observations",
    }

    async def request_reduce(
        self,
        stream: str,
        op: str,
        x: Union[np.ndarray, Iterable[float]],
        y: Optional[Union[np.ndarray, Iterable[float]]] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Bulk reduction ingest; returns the full response.

        ``op`` is the codec op kind — ``"pairs"`` (dot products, needs
        ``y``), ``"squares"`` (norms), or ``"observations"`` (moments).
        On a binary-negotiated connection the raw pre-expansion inputs
        ship as one codec ``RBAT`` frame and the server expands them;
        JSON transports degrade to the boxed op — same deterministic
        expansion server-side, same bits, slower wire. ``seq`` is the
        cluster plane's per-stream dedup sequence.
        """
        request_op = self._REDUCE_OPS.get(op)
        if request_op is None:
            raise ValueError(
                f"unknown reduction op kind {op!r}; "
                f"expected one of {sorted(self._REDUCE_OPS)}"
            )
        xa = ensure_float64_array(x)
        fields: Dict[str, Any] = {
            "stream": stream,
            # reprolint: disable-next-line=ARCH005 -- JSON-lines fallback wire: boxing is the format
            "values": [float(v) for v in xa],
        }
        if y is not None:
            ya = ensure_float64_array(y)
            fields["values2"] = [float(v) for v in ya]
        if seq is not None:
            fields["seq"] = int(seq)
        return await self.request(request_op, **fields)

    async def add_pairs(
        self,
        stream: str,
        xs: Union[np.ndarray, Iterable[float]],
        ys: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> int:
        """Ingest (x, y) pairs for a dot-product stream; returns pairs added."""
        resp = await self.request_reduce(stream, "pairs", xs, ys, seq=seq)
        return int(resp["added"])

    async def add_squares(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> int:
        """Ingest values for a norm stream; returns values added."""
        resp = await self.request_reduce(stream, "squares", values, seq=seq)
        return int(resp["added"])

    async def add_observations(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> int:
        """Ingest observations for a moments stream; returns values added."""
        resp = await self.request_reduce(stream, "observations", values, seq=seq)
        return int(resp["added"])

    async def sum_values(
        self, values: Iterable[float], mode: str = "nearest"
    ) -> Dict[str, Any]:
        """Stateless one-shot exact sum (adaptive tier ladder).

        Returns the full response dict — ``value``, ``hex``, ``count``,
        plus the tier telemetry (``tier``, ``escalations``,
        ``margin_bits``) for callers that want the decision trail.
        """
        return await self.request(
            "sum",
            # reprolint: disable-next-line=ARCH005 -- one-shot JSON sum op carries no stream; no binary frame exists for it
            values=[float(v) for v in values],
            mode=mode,
        )

    # -- snapshot reads --------------------------------------------------

    async def value(self, stream: str, mode: str = "nearest") -> float:
        resp = await self.request("value", stream=stream, mode=mode)
        return float(resp["value"])

    async def count(self, stream: str) -> int:
        resp = await self.request("value", stream=stream)
        return int(resp["count"])

    async def mean(self, stream: str) -> float:
        resp = await self.request("mean", stream=stream)
        return float(resp["mean"])

    async def dot(self, stream: str, mode: str = "nearest") -> float:
        """Correctly rounded dot product of an :meth:`add_pairs` stream."""
        resp = await self.request("dot", stream=stream, mode=mode)
        return float(resp["value"])

    async def norm2(self, stream: str) -> float:
        """Correctly rounded Euclidean norm of an :meth:`add_squares` stream."""
        resp = await self.request("norm2", stream=stream)
        return float(resp["value"])

    async def moments(
        self, stream: str, *, ddof: int = 0, mode: str = "nearest"
    ) -> Dict[str, Any]:
        """Exact mean/variance of an :meth:`add_observations` stream.

        Returns the full response dict — ``mean``, ``variance``,
        ``count``, ``ddof``.
        """
        return await self.request("moments", stream=stream, ddof=ddof, mode=mode)

    async def stats(self) -> Dict[str, Any]:
        return (await self.request("stats"))["stats"]

    async def streams(self) -> Dict[str, int]:
        return (await self.request("streams"))["streams"]

    async def flush(self) -> None:
        await self.request("flush")

    # -- state manipulation ---------------------------------------------

    async def merge(self, src: str, dst: str) -> int:
        resp = await self.request("merge", src=src, dst=dst)
        return int(resp["merged"])

    async def snapshot(self, stream: str) -> bytes:
        resp = await self.request("snapshot", stream=stream)
        return decode_bytes_field(resp["snapshot"])

    async def restore(self, stream: str, payload: bytes) -> int:
        resp = await self.request(
            "restore", stream=stream, snapshot=encode_bytes_field(payload)
        )
        return int(resp["restored"])

    async def drain(self, stream: str) -> Tuple[float, int, bytes]:
        resp = await self.request("drain", stream=stream)
        return (
            float(resp["value"]),
            int(resp["count"]),
            decode_bytes_field(resp["snapshot"]),
        )


class ReproServeClient(_ClientBase):
    """Pipelined TCP client; create via :meth:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._write_lock = asyncio.Lock()
        self.wire = WIRE_JSON
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        wire: str = WIRE_JSON,
    ) -> "ReproServeClient":
        """Open a connection, negotiating ``wire`` if it isn't JSON-lines.

        A server that rejects the negotiation (pre-binary build) is not
        an error: the client silently stays on JSON-lines — the caller
        checks :attr:`wire` if it cares which mode won. Use
        :meth:`hello` directly to get the typed
        :class:`ProtocolVersionError` instead of the fallback.
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame=max_frame)
        if wire != WIRE_JSON:
            try:
                await client.hello(wire=wire)
            except ProtocolVersionError:
                client.wire = WIRE_JSON  # automatic JSON-lines fallback
        return client

    async def hello(
        self, *, wire: str = WIRE_BINARY, version: int = PROTOCOL_VERSION
    ) -> Dict[str, Any]:
        """Negotiate the protocol version and wire mode explicitly.

        Returns the server's hello response and records the negotiated
        mode in :attr:`wire`.

        Raises:
            ProtocolVersionError: the server rejected the requested
                version/wire combination. The connection stays usable
                on its previous wire.
        """
        resp = await self.request("hello", version=version, wire=wire)
        self.wire = str(resp.get("wire", WIRE_JSON))
        return resp

    async def close(self) -> None:
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        with contextlib.suppress(ConnectionError):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "ReproServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- transport -------------------------------------------------------

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        rid = next(self._ids)
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[rid] = fut
        message = {"op": op, "id": rid, **fields}
        try:
            async with self._write_lock:
                await write_frame(self._writer, message, max_frame=self._max_frame)
        except Exception:
            self._pending.pop(rid, None)
            raise
        return raise_for_response(await fut)

    async def request_batch(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if self.wire != WIRE_BINARY:
            return await super().request_batch(stream, values, seq=seq)
        arr = ensure_float64_array(values)
        rid = next(self._ids)
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[rid] = fut
        frame = encode_batch_frame(
            rid, stream, arr, seq=seq, max_frame=self._max_frame
        )
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except Exception:
            self._pending.pop(rid, None)
            raise
        return raise_for_response(await fut)

    async def request_reduce(
        self,
        stream: str,
        op: str,
        x: Union[np.ndarray, Iterable[float]],
        y: Optional[Union[np.ndarray, Iterable[float]]] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if self.wire != WIRE_BINARY:
            return await super().request_reduce(stream, op, x, y, seq=seq)
        xa = ensure_float64_array(x)
        ya = None if y is None else ensure_float64_array(y)
        rid = next(self._ids)
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[rid] = fut
        frame = encode_reduce_batch_frame(
            rid, stream, op, xa, ya, seq=seq, max_frame=self._max_frame
        )
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except Exception:
            self._pending.pop(rid, None)
            raise
        return raise_for_response(await fut)

    async def send_raw(self, message: Dict[str, Any]) -> None:
        """Fire one frame without registering for a response (tests)."""
        async with self._write_lock:
            await write_frame(self._writer, message, max_frame=self._max_frame)

    async def send_raw_bytes(self, frame: bytes) -> None:
        """Fire pre-encoded frame bytes without response matching (tests)."""
        async with self._write_lock:
            self._writer.write(frame)
            await self._writer.drain()

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop; returns its final response."""
        return await self.request("shutdown")

    async def _read_loop(self) -> None:
        try:
            while True:
                response = await read_frame(self._reader, max_frame=self._max_frame)
                if response is None:
                    self._fail_pending(ConnectionError("server closed connection"))
                    return
                rid = response.get("id")
                fut = self._pending.pop(rid, None) if rid is not None else None
                if fut is not None and not fut.done():
                    fut.set_result(response)
                # unmatched frames (e.g. fatal protocol notices) are
                # surfaced when the connection then drops
        except ProtocolError as exc:
            self._fail_pending(exc)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()


class InProcessClient(_ClientBase):
    """Same surface, no sockets: requests go straight to the service.

    Every message still passes through ``encode_frame``/``decode`` so
    the JSON codec (including bit-exact float round-tripping) is on the
    path, making this a faithful stand-in for the TCP client in tests
    and benchmarks. With ``wire="binary"``, :meth:`add_batch` likewise
    round-trips through the real ``BBAT`` encode/parse pair, so the
    zero-copy binary path is exercised without sockets too.
    """

    def __init__(self, service: Any, *, wire: str = WIRE_JSON) -> None:
        if wire not in (WIRE_JSON, WIRE_BINARY):
            raise ValueError(f"unknown wire mode {wire!r}")
        self.service = service
        self.wire = wire
        self._ids = itertools.count(1)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        message = {"op": op, "id": next(self._ids), **fields}
        frame = encode_frame(message, max_frame=self.service.config.max_frame)
        request = decode_payload(frame[4:])
        self._record_wire(request, len(frame) - 4)
        response = await self.service.handle(request)
        back = decode_payload(
            encode_frame(response, max_frame=self.service.config.max_frame)[4:]
        )
        return raise_for_response(back)

    async def request_batch(
        self,
        stream: str,
        values: Union[np.ndarray, Iterable[float]],
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if self.wire != WIRE_BINARY:
            return await super().request_batch(stream, values, seq=seq)
        arr = ensure_float64_array(values)
        max_frame = self.service.config.max_frame
        frame = encode_batch_frame(
            next(self._ids), stream, arr, seq=seq, max_frame=max_frame
        )
        request = parse_payload(frame[4:], binary=True)
        self._record_wire(request, len(frame) - 4)
        response = await self.service.handle(request)
        back = decode_payload(encode_frame(response, max_frame=max_frame)[4:])
        return raise_for_response(back)

    async def request_reduce(
        self,
        stream: str,
        op: str,
        x: Union[np.ndarray, Iterable[float]],
        y: Optional[Union[np.ndarray, Iterable[float]]] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if self.wire != WIRE_BINARY:
            return await super().request_reduce(stream, op, x, y, seq=seq)
        xa = ensure_float64_array(x)
        ya = None if y is None else ensure_float64_array(y)
        max_frame = self.service.config.max_frame
        frame = encode_reduce_batch_frame(
            next(self._ids), stream, op, xa, ya, seq=seq, max_frame=max_frame
        )
        request = parse_payload(frame[4:], binary=True)
        self._record_wire(request, len(frame) - 4)
        response = await self.service.handle(request)
        back = decode_payload(encode_frame(response, max_frame=max_frame)[4:])
        return raise_for_response(back)

    def _record_wire(self, request: Dict[str, Any], payload_bytes: int) -> None:
        """Mirror the TCP server's per-wire ingest accounting.

        The socketless transport would otherwise leave LocalCluster
        nodes' ``stats.wire`` empty even though real frame bytes were
        encoded and parsed on the way in.
        """

        def size(field: str) -> int:
            values = request.get(field)
            if isinstance(values, np.ndarray):
                return int(values.size)
            return len(values) if isinstance(values, (list, tuple)) else 0

        op = request.get("op")
        if op == "add":
            nvalues = 1
        elif op == "add_array":
            nvalues = size("values")
        elif op in ("add_pairs", "add_squares", "add_observations"):
            nvalues = size("values") + size("values2")
        else:
            return
        mode = WIRE_BINARY if request.get("wire") == WIRE_BINARY else WIRE_JSON
        self.service.metrics.record_wire_frame(mode, payload_bytes, nvalues)

    async def close(self) -> None:  # symmetry with the TCP client
        return None
