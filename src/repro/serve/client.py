"""Clients for the exact-aggregation service.

:class:`ReproServeClient` speaks the TCP protocol with pipelining: a
background reader task matches responses to requests by ``id``, so
many requests may be in flight on one connection — that concurrency is
what feeds the server's microbatcher. :class:`InProcessClient` has the
identical surface but calls :meth:`ReproService.handle` directly,
still round-tripping every message through the wire codec so tests
exercise the real encoding without sockets.

Error responses are raised as the exception they encode:
``busy`` -> :class:`BackpressureError` (with ``retry_after``),
``empty-stream`` -> :class:`EmptyStreamError`, ``protocol`` ->
:class:`ProtocolError`, anything else -> :class:`ServiceError` with
``.code`` set.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import (
    BackpressureError,
    EmptyStreamError,
    ProtocolError,
    ServiceError,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    decode_bytes_field,
    decode_payload,
    encode_bytes_field,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = ["ReproServeClient", "InProcessClient", "raise_for_response"]


def raise_for_response(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return an ok response; raise the typed error of a failed one."""
    if response.get("ok"):
        return response
    code = response.get("code", "service")
    message = response.get("error", "service error")
    if code == "busy":
        raise BackpressureError(message, retry_after=response.get("retry_after", 0.05))
    if code == "empty-stream":
        raise EmptyStreamError(message)
    if code == "protocol":
        raise ProtocolError(message)
    err = ServiceError(message)
    err.code = code
    raise err


class _ClientBase:
    """Shared endpoint helpers over an abstract request transport."""

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        raise NotImplementedError

    # -- ingest ----------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def add(self, stream: str, value: float) -> int:
        resp = await self.request("add", stream=stream, value=float(value))
        return int(resp["added"])

    async def add_array(self, stream: str, values: Iterable[float]) -> int:
        resp = await self.request(
            "add_array", stream=stream, values=[float(v) for v in values]
        )
        return int(resp["added"])

    async def add_block(self, stream: str, block: Dict[str, Any]) -> int:
        resp = await self.request("add_block", stream=stream, block=block)
        return int(resp["added"])

    async def sum_values(
        self, values: Iterable[float], mode: str = "nearest"
    ) -> Dict[str, Any]:
        """Stateless one-shot exact sum (adaptive tier ladder).

        Returns the full response dict — ``value``, ``hex``, ``count``,
        plus the tier telemetry (``tier``, ``escalations``,
        ``margin_bits``) for callers that want the decision trail.
        """
        return await self.request(
            "sum", values=[float(v) for v in values], mode=mode
        )

    # -- snapshot reads --------------------------------------------------

    async def value(self, stream: str, mode: str = "nearest") -> float:
        resp = await self.request("value", stream=stream, mode=mode)
        return float(resp["value"])

    async def count(self, stream: str) -> int:
        resp = await self.request("value", stream=stream)
        return int(resp["count"])

    async def mean(self, stream: str) -> float:
        resp = await self.request("mean", stream=stream)
        return float(resp["mean"])

    async def stats(self) -> Dict[str, Any]:
        return (await self.request("stats"))["stats"]

    async def streams(self) -> Dict[str, int]:
        return (await self.request("streams"))["streams"]

    async def flush(self) -> None:
        await self.request("flush")

    # -- state manipulation ---------------------------------------------

    async def merge(self, src: str, dst: str) -> int:
        resp = await self.request("merge", src=src, dst=dst)
        return int(resp["merged"])

    async def snapshot(self, stream: str) -> bytes:
        resp = await self.request("snapshot", stream=stream)
        return decode_bytes_field(resp["snapshot"])

    async def restore(self, stream: str, payload: bytes) -> int:
        resp = await self.request(
            "restore", stream=stream, snapshot=encode_bytes_field(payload)
        )
        return int(resp["restored"])

    async def drain(self, stream: str) -> Tuple[float, int, bytes]:
        resp = await self.request("drain", stream=stream)
        return (
            float(resp["value"]),
            int(resp["count"]),
            decode_bytes_field(resp["snapshot"]),
        )


class ReproServeClient(_ClientBase):
    """Pipelined TCP client; create via :meth:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> "ReproServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame=max_frame)

    async def close(self) -> None:
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        with contextlib.suppress(ConnectionError):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "ReproServeClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- transport -------------------------------------------------------

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        rid = next(self._ids)
        fut: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[rid] = fut
        message = {"op": op, "id": rid, **fields}
        try:
            async with self._write_lock:
                await write_frame(self._writer, message, max_frame=self._max_frame)
        except Exception:
            self._pending.pop(rid, None)
            raise
        return raise_for_response(await fut)

    async def send_raw(self, message: Dict[str, Any]) -> None:
        """Fire one frame without registering for a response (tests)."""
        async with self._write_lock:
            await write_frame(self._writer, message, max_frame=self._max_frame)

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop; returns its final response."""
        return await self.request("shutdown")

    async def _read_loop(self) -> None:
        try:
            while True:
                response = await read_frame(self._reader, max_frame=self._max_frame)
                if response is None:
                    self._fail_pending(ConnectionError("server closed connection"))
                    return
                rid = response.get("id")
                fut = self._pending.pop(rid, None) if rid is not None else None
                if fut is not None and not fut.done():
                    fut.set_result(response)
                # unmatched frames (e.g. fatal protocol notices) are
                # surfaced when the connection then drops
        except ProtocolError as exc:
            self._fail_pending(exc)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(exc)
        self._pending.clear()


class InProcessClient(_ClientBase):
    """Same surface, no sockets: requests go straight to the service.

    Every message still passes through ``encode_frame``/``decode`` so
    the JSON codec (including bit-exact float round-tripping) is on the
    path, making this a faithful stand-in for the TCP client in tests
    and benchmarks.
    """

    def __init__(self, service: Any) -> None:
        self.service = service
        self._ids = itertools.count(1)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        message = {"op": op, "id": next(self._ids), **fields}
        frame = encode_frame(message, max_frame=self.service.config.max_frame)
        request = decode_payload(frame[4:])
        response = await self.service.handle(request)
        back = decode_payload(
            encode_frame(response, max_frame=self.service.config.max_frame)[4:]
        )
        return raise_for_response(back)

    async def close(self) -> None:  # symmetry with the TCP client
        return None
