"""Length-prefixed wire protocol for the serve subsystem.

A *frame* is a 4-byte big-endian unsigned length ``n`` followed by
exactly ``n`` bytes of payload. Every connection starts in *JSON-lines*
mode: the payload is UTF-8 JSON encoding a single object and ending in
a newline (so a captured stream is also greppable as JSON lines), and
binary payloads (snapshot wire bytes) travel base64-encoded inside JSON
string fields.

A client may send a ``hello`` op negotiating the *binary* wire: after a
successful upgrade, ingest request payloads may instead be
codec-registered ``BBAT`` frames carrying raw little-endian float64
batches (:func:`repro.codec.encode_batch`) — no per-value text
encoding, no Python boxing. The first payload byte discriminates:
``{`` is a JSON object, a codec magic is a binary op. Responses stay
JSON in both modes; only value-bearing ingest is worth the binary
treatment.

Framing errors are *connection-fatal* (after an oversized or negative
length prefix the byte stream cannot be resynchronized); payload
errors (bad UTF-8, invalid JSON, non-object JSON, corrupt or
non-finite batch frames) are *recoverable* — the frame boundary is
still trustworthy, so the server answers with an error response and
keeps the connection. :class:`ProtocolError.fatal` carries that
distinction.

Floats survive the JSON round-trip bit-exactly: Python emits the
shortest round-tripping repr and parses it back to the identical
binary64, which is what lets a JSON protocol front an *exact*
summation service at all. The binary wire ships the identical
binary64 bit patterns, so the two modes are bit-identical by
construction — the upgrade buys speed, never a different sum.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro import codec
from repro.codec import LENGTH_PREFIX
from repro.errors import CodecError, ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME",
    "LENGTH_PREFIX",
    "PROTOCOL_VERSION",
    "WIRE_JSON",
    "WIRE_BINARY",
    "SUPPORTED_WIRES",
    "encode_frame",
    "encode_batch_frame",
    "encode_reduce_batch_frame",
    "decode_payload",
    "parse_payload",
    "read_frame",
    "read_frame_bytes",
    "write_frame",
    "encode_bytes_field",
    "decode_bytes_field",
    "FrameDecoder",
]

#: Frames above this many payload bytes are rejected (both directions).
#: 48 MiB fits an ``add_array`` of ~2M values in JSON text form.
DEFAULT_MAX_FRAME = 48 * 1024 * 1024

#: Highest protocol version this build speaks. Version 1 is the
#: JSON-lines-only protocol (implicit for clients that never say
#: ``hello``); version 2 adds the negotiated binary batch wire.
PROTOCOL_VERSION = 2

#: Wire mode names used in ``hello`` negotiation and metrics.
WIRE_JSON = "json"
WIRE_BINARY = "binary"
SUPPORTED_WIRES = (WIRE_JSON, WIRE_BINARY)


def _fatal(message: str) -> ProtocolError:
    err = ProtocolError(message)
    err.fatal = True
    return err


def _recoverable(message: str) -> ProtocolError:
    err = ProtocolError(message)
    err.fatal = False
    return err


def encode_frame(obj: Dict[str, Any], *, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message object to a wire frame.

    Raises:
        ProtocolError: if the encoded payload exceeds ``max_frame``.
    """
    payload = json.dumps(obj, separators=(",", ":"), allow_nan=True).encode("utf-8")
    payload += b"\n"
    if len(payload) > max_frame:
        raise _fatal(
            f"outgoing frame of {len(payload)} bytes exceeds max_frame={max_frame}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload into a message object.

    Raises:
        ProtocolError: (recoverable) on bad UTF-8, invalid JSON, or a
            JSON value that is not an object.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _recoverable(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise _recoverable(
            f"payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def encode_batch_frame(
    request_id: int,
    stream: str,
    values: np.ndarray,
    *,
    seq: Optional[int] = None,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> bytes:
    """Serialize one binary ingest op to a wire frame.

    The payload is a codec ``BBAT`` frame: the values travel as their
    raw little-endian float64 bytes, ~3.4x denser than JSON text and
    decodable server-side as a zero-copy numpy view. Only valid on a
    connection that has negotiated ``wire="binary"``.

    Raises:
        ProtocolError: if the encoded payload exceeds ``max_frame``.
        CodecError: negative request id or empty stream name.
    """
    wal_seq = codec.WAL_UNSEQUENCED if seq is None else seq
    payload = codec.encode_batch(request_id, wal_seq, stream, values)
    if len(payload) > max_frame:
        raise _fatal(
            f"outgoing batch frame of {len(payload)} bytes exceeds "
            f"max_frame={max_frame}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


#: codec reduce-op kind -> the service op name its request dict carries
_REDUCE_REQUEST_OPS = {
    "pairs": "add_pairs",
    "squares": "add_squares",
    "observations": "add_observations",
}


def _parse_binary_payload(payload: bytes) -> Dict[str, Any]:
    """Decode a binary op payload into the request-dict shape.

    A ``BBAT`` frame becomes the same request dict the JSON
    ``add_array`` op produces — ``values`` is a read-only zero-copy
    float64 view instead of a list, ``seq`` appears only when the frame
    carries a cluster sequence, and ``payload_f64`` carries the raw
    float64 body bytes so the WAL can log them verbatim. An ``RBAT``
    frame likewise becomes the reduction-op request dict
    (``add_pairs``/``add_squares``/``add_observations``), with
    ``values2``/``payload_f64_y`` present for two-input ops. Downstream
    service code is wire-agnostic either way.

    Raises:
        ProtocolError: (recoverable) on unknown magic, any codec-level
            corruption, or non-finite values. The frame boundary is
            intact, so the connection survives.
    """
    magic = bytes(payload[:4])
    if magic == codec.MAGIC_REDUCE_BATCH:
        return _parse_reduce_batch_payload(payload)
    if magic != codec.MAGIC_BATCH:
        raise _recoverable(
            f"unknown binary frame magic {magic!r} "
            f"(expected {codec.MAGIC_BATCH!r} or {codec.MAGIC_REDUCE_BATCH!r})"
        )
    try:
        request_id, seq, stream, values = codec.decode_batch(payload)
    except CodecError as exc:
        raise _recoverable(f"corrupt batch frame: {exc}") from exc
    if values.size and not np.isfinite(values).all():
        err = _recoverable(
            "batch frame carries non-finite values: exact summation is "
            "defined only for finite float64"
        )
        # The frame decoded — the request id is known, so the error
        # response can be matched by a pipelined client instead of
        # stalling its future.
        err.request_id = request_id
        raise err
    request: Dict[str, Any] = {
        "op": "add_array",
        "id": request_id,
        "stream": stream,
        "values": values,
        "wire": WIRE_BINARY,
        "payload_f64": codec.batch_wire_body(payload),
    }
    if seq != codec.WAL_UNSEQUENCED:
        request["seq"] = seq
    return request


def _parse_reduce_batch_payload(payload: bytes) -> Dict[str, Any]:
    """Decode an ``RBAT`` reduce-op frame into its request dict."""
    try:
        request_id, seq, stream, op_kind, x, y = codec.decode_reduce_batch(payload)
        x_body, y_body = codec.reduce_batch_wire_bodies(payload)
    except CodecError as exc:
        raise _recoverable(f"corrupt reduce batch frame: {exc}") from exc
    for arr in (x,) if y is None else (x, y):
        if arr.size and not np.isfinite(arr).all():
            err = _recoverable(
                "reduce batch frame carries non-finite values: exact "
                "reduction is defined only for finite float64"
            )
            err.request_id = request_id
            raise err
    request: Dict[str, Any] = {
        "op": _REDUCE_REQUEST_OPS[op_kind],
        "id": request_id,
        "stream": stream,
        "values": x,
        "wire": WIRE_BINARY,
        "payload_f64": x_body,
    }
    if y is not None:
        request["values2"] = y
        request["payload_f64_y"] = y_body
    if seq != codec.WAL_UNSEQUENCED:
        request["seq"] = seq
    return request


def encode_reduce_batch_frame(
    request_id: int,
    stream: str,
    op: str,
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    *,
    seq: Optional[int] = None,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> bytes:
    """Serialize one binary reduction ingest op to a wire frame.

    The payload is a codec ``RBAT`` frame carrying the *pre-expansion*
    inputs of a reduction op (``"pairs"``, ``"squares"``, or
    ``"observations"``) as raw little-endian float64 bytes — half the
    wire volume of shipping expanded EFT terms, with the server
    re-expanding deterministically. Only valid on a connection that has
    negotiated ``wire="binary"``.

    Raises:
        ProtocolError: if the encoded payload exceeds ``max_frame``.
        CodecError: unknown op kind, negative request id, empty stream
            name, or mismatched pair lengths.
    """
    wal_seq = codec.WAL_UNSEQUENCED if seq is None else seq
    payload = codec.encode_reduce_batch(request_id, wal_seq, stream, op, x, y)
    if len(payload) > max_frame:
        raise _fatal(
            f"outgoing reduce batch frame of {len(payload)} bytes exceeds "
            f"max_frame={max_frame}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def parse_payload(payload: bytes, *, binary: bool = False) -> Dict[str, Any]:
    """Parse a frame payload in the connection's negotiated wire mode.

    JSON-lines payloads (first byte ``{``) always parse; binary ``BBAT``
    payloads parse only when ``binary=True`` (i.e. after a successful
    ``hello`` upgrade). A binary frame on a JSON-only connection fails
    as a recoverable not-valid-JSON error, exactly like any other
    malformed text.

    Raises:
        ProtocolError: (recoverable) on any payload-level problem.
    """
    if binary and not payload.startswith(b"{"):
        return _parse_binary_payload(payload)
    return decode_payload(payload)


def encode_bytes_field(raw: bytes) -> str:
    """Binary payload -> JSON-safe base64 string."""
    return base64.b64encode(raw).decode("ascii")


def decode_bytes_field(text: Any) -> bytes:
    """JSON base64 string -> binary payload.

    Raises:
        ProtocolError: (recoverable) if the field is not valid base64.
    """
    if not isinstance(text, str):
        raise _recoverable("binary field must be a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise _recoverable(f"invalid base64 payload: {exc}") from exc


async def read_frame_bytes(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[bytes]:
    """Read one raw frame payload from a stream (no parsing).

    Returns ``None`` on clean EOF (no bytes after the last frame).
    Callers that need the payload size (ingest byte metrics) or a
    per-connection wire mode read bytes here and parse with
    :func:`parse_payload`.

    Raises:
        ProtocolError: fatal on truncated length prefix / truncated
            payload / oversized length.
    """
    try:
        header = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _fatal(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = LENGTH_PREFIX.unpack(header)
    if length > max_frame:
        raise _fatal(f"length prefix {length} exceeds max_frame={max_frame}")
    if length == 0:
        raise _fatal("zero-length frame")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise _fatal(
            f"truncated frame: got {len(exc.partial)}/{length} payload bytes"
        ) from exc


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one JSON message from a stream.

    Returns ``None`` on clean EOF (no bytes after the last frame).

    Raises:
        ProtocolError: fatal on truncated length prefix / truncated
            payload / oversized length; recoverable on invalid JSON
            inside a well-delimited frame.
    """
    payload = await read_frame_bytes(reader, max_frame=max_frame)
    if payload is None:
        return None
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: Dict[str, Any],
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Encode and send one message; drains the transport."""
    writer.write(encode_frame(obj, max_frame=max_frame))
    await writer.drain()


class FrameDecoder:
    """Incremental sans-IO frame decoder (fuzzing and sync consumers).

    Feed arbitrary byte chunks; :meth:`feed` returns the complete
    messages they finished. Framing violations raise fatal
    :class:`ProtocolError` and poison the decoder; payload-level
    errors (invalid JSON, corrupt or non-finite batch frames) raise
    recoverable ones and the decoder stays usable for the next frame —
    mirroring the server's connection semantics. ``binary=True`` mirrors
    a connection that negotiated the binary wire via ``hello``.
    """

    def __init__(
        self, *, max_frame: int = DEFAULT_MAX_FRAME, binary: bool = False
    ) -> None:
        self.max_frame = max_frame
        self.binary = binary
        self._buf = bytearray()
        self._dead = False

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        if self._dead:
            raise _fatal("decoder poisoned by an earlier framing error")
        self._buf.extend(data)
        out: List[Dict[str, Any]] = []
        while len(self._buf) >= LENGTH_PREFIX.size:
            (length,) = LENGTH_PREFIX.unpack_from(self._buf, 0)
            if length > self.max_frame or length == 0:
                self._dead = True
                raise _fatal(
                    f"length prefix {length} outside (0, max_frame={self.max_frame}]"
                )
            if len(self._buf) < LENGTH_PREFIX.size + length:
                break
            payload = bytes(self._buf[LENGTH_PREFIX.size : LENGTH_PREFIX.size + length])
            del self._buf[: LENGTH_PREFIX.size + length]
            out.append(parse_payload(payload, binary=self.binary))
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for a complete frame."""
        return len(self._buf)
