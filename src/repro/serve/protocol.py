"""Length-prefixed JSON-lines wire protocol for the serve subsystem.

A *frame* is a 4-byte big-endian unsigned length ``n`` followed by
exactly ``n`` bytes of UTF-8 JSON encoding a single object and ending
in a newline (so a captured stream is also greppable as JSON lines).
Requests and responses are both frames; binary payloads (snapshot wire
bytes) travel base64-encoded inside JSON string fields.

Framing errors are *connection-fatal* (after an oversized or negative
length prefix the byte stream cannot be resynchronized); payload
errors (bad UTF-8, invalid JSON, non-object JSON) are *recoverable* —
the frame boundary is still trustworthy, so the server answers with an
error response and keeps the connection. :class:`ProtocolError.fatal`
carries that distinction.

Floats survive the JSON round-trip bit-exactly: Python emits the
shortest round-tripping repr and parses it back to the identical
binary64, which is what lets a JSON protocol front an *exact*
summation service at all.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Any, Dict, List, Optional

from repro.codec import LENGTH_PREFIX
from repro.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME",
    "LENGTH_PREFIX",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "encode_bytes_field",
    "decode_bytes_field",
    "FrameDecoder",
]

#: Frames above this many payload bytes are rejected (both directions).
#: 48 MiB fits an ``add_array`` of ~2M values in JSON text form.
DEFAULT_MAX_FRAME = 48 * 1024 * 1024


def _fatal(message: str) -> ProtocolError:
    err = ProtocolError(message)
    err.fatal = True
    return err


def _recoverable(message: str) -> ProtocolError:
    err = ProtocolError(message)
    err.fatal = False
    return err


def encode_frame(obj: Dict[str, Any], *, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize one message object to a wire frame.

    Raises:
        ProtocolError: if the encoded payload exceeds ``max_frame``.
    """
    payload = json.dumps(obj, separators=(",", ":"), allow_nan=True).encode("utf-8")
    payload += b"\n"
    if len(payload) > max_frame:
        raise _fatal(
            f"outgoing frame of {len(payload)} bytes exceeds max_frame={max_frame}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload into a message object.

    Raises:
        ProtocolError: (recoverable) on bad UTF-8, invalid JSON, or a
            JSON value that is not an object.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _recoverable(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise _recoverable(
            f"payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def encode_bytes_field(raw: bytes) -> str:
    """Binary payload -> JSON-safe base64 string."""
    return base64.b64encode(raw).decode("ascii")


def decode_bytes_field(text: Any) -> bytes:
    """JSON base64 string -> binary payload.

    Raises:
        ProtocolError: (recoverable) if the field is not valid base64.
    """
    if not isinstance(text, str):
        raise _recoverable("binary field must be a base64 string")
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise _recoverable(f"invalid base64 payload: {exc}") from exc


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one message from a stream.

    Returns ``None`` on clean EOF (no bytes after the last frame).

    Raises:
        ProtocolError: fatal on truncated length prefix / truncated
            payload / oversized length; recoverable on invalid JSON
            inside a well-delimited frame.
    """
    try:
        header = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _fatal(
            f"connection closed mid-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = LENGTH_PREFIX.unpack(header)
    if length > max_frame:
        raise _fatal(f"length prefix {length} exceeds max_frame={max_frame}")
    if length == 0:
        raise _fatal("zero-length frame")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise _fatal(
            f"truncated frame: got {len(exc.partial)}/{length} payload bytes"
        ) from exc
    return decode_payload(payload)


async def write_frame(
    writer: asyncio.StreamWriter,
    obj: Dict[str, Any],
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
) -> None:
    """Encode and send one message; drains the transport."""
    writer.write(encode_frame(obj, max_frame=max_frame))
    await writer.drain()


class FrameDecoder:
    """Incremental sans-IO frame decoder (fuzzing and sync consumers).

    Feed arbitrary byte chunks; :meth:`feed` returns the complete
    messages they finished. Framing violations raise fatal
    :class:`ProtocolError` and poison the decoder; payload-level JSON
    errors raise recoverable ones and the decoder stays usable for the
    next frame — mirroring the server's connection semantics.
    """

    def __init__(self, *, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()
        self._dead = False

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        if self._dead:
            raise _fatal("decoder poisoned by an earlier framing error")
        self._buf.extend(data)
        out: List[Dict[str, Any]] = []
        while len(self._buf) >= LENGTH_PREFIX.size:
            (length,) = LENGTH_PREFIX.unpack_from(self._buf, 0)
            if length > self.max_frame or length == 0:
                self._dead = True
                raise _fatal(
                    f"length prefix {length} outside (0, max_frame={self.max_frame}]"
                )
            if len(self._buf) < LENGTH_PREFIX.size + length:
                break
            payload = bytes(self._buf[LENGTH_PREFIX.size : LENGTH_PREFIX.size + length])
            del self._buf[: LENGTH_PREFIX.size + length]
            out.append(decode_payload(payload))
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for a complete frame."""
        return len(self._buf)
